// FIG2: the structural topology tree (paper Fig. 2) — traceroutes from
// every mapped host towards the external target, folded into a tree.
#include <cstdio>

#include "bench_util.hpp"
#include "env/mapper.hpp"
#include "env/scenario_zones.hpp"
#include "env/sim_probe_engine.hpp"
#include "simnet/scenario.hpp"

int main(int argc, char** argv) {
  using namespace envnws;
  bench::banner("FIG2", "paper Fig. 2: structural topology (the initial tree in ENV)",
                "root 192.168.254.1 (non-routable, kept per the paper's ENV fix);"
                " branch 140.77.13.1 -> {canaria, moby, the-doors};"
                " branch routeur-backbone -> routlhpc -> {myri, popc, sci};"
                " the silent giga-router is invisible (dropped traceroute)");

  simnet::Scenario scenario = bench::scenario_from_cli(argc, argv, "ens-lyon");
  simnet::Network net(simnet::Scenario(scenario).topology);
  env::MapperOptions options;
  env::SimProbeEngine engine(net, options);
  env::Mapper mapper(engine, options);

  const auto zones = env::zones_from_scenario(scenario);
  if (!zones.ok()) {
    std::fprintf(stderr, "%s\n", zones.error().to_string().c_str());
    return 1;
  }
  for (const auto& zone : zones.value()) {
    auto result = mapper.map_zone(zone);
    if (!result.ok()) {
      std::fprintf(stderr, "zone %s failed: %s\n", zone.zone_name.c_str(),
                   result.error().to_string().c_str());
      return 1;
    }
    std::printf("--- structural tree, zone %s (traceroute target: %s) ---\n%s\n",
                zone.zone_name.c_str(), zone.traceroute_target.c_str(),
                env::render_structural(result.value().structural).c_str());
  }
  return 0;
}
