// FIG2: the structural topology tree (paper Fig. 2) — traceroutes from
// every mapped host towards the external target, folded into a tree.
// `--json=<path>` writes per-zone tree shapes for bench_diff baselines.
#include <cstdio>
#include <fstream>

#include "bench_util.hpp"
#include "env/mapper.hpp"
#include "env/scenario_zones.hpp"
#include "env/sim_probe_engine.hpp"
#include "simnet/scenario.hpp"

namespace {

std::size_t tree_nodes(const envnws::env::StructuralNode& node) {
  std::size_t count = 1;
  for (const auto& child : node.children) count += tree_nodes(child);
  return count;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace envnws;
  bench::banner("FIG2", "paper Fig. 2: structural topology (the initial tree in ENV)",
                "root 192.168.254.1 (non-routable, kept per the paper's ENV fix);"
                " branch 140.77.13.1 -> {canaria, moby, the-doors};"
                " branch routeur-backbone -> routlhpc -> {myri, popc, sci};"
                " the silent giga-router is invisible (dropped traceroute)");

  const bench::BenchCli cli = bench::bench_cli(argc, argv, "ens-lyon", /*parallel_flags=*/false);
  simnet::Scenario scenario = bench::make_scenario_or_exit(cli.scenario_spec);
  simnet::Network net(simnet::Scenario(scenario).topology);
  env::MapperOptions options;
  env::SimProbeEngine engine(net, options);
  env::Mapper mapper(engine, options);

  const auto zones = env::zones_from_scenario(scenario);
  if (!zones.ok()) {
    std::fprintf(stderr, "%s\n", zones.error().to_string().c_str());
    return 1;
  }
  bench::JsonWriter writer;
  bench::JsonWriter* json = cli.json_path.empty() ? nullptr : &writer;
  if (json != nullptr) {
    json->field("bench", "fig2_structural").field("scenario_spec", cli.scenario_spec);
    json->begin_array("zones");
  }
  for (const auto& zone : zones.value()) {
    auto result = mapper.map_zone(zone);
    if (!result.ok()) {
      std::fprintf(stderr, "zone %s failed: %s\n", zone.zone_name.c_str(),
                   result.error().to_string().c_str());
      return 1;
    }
    std::printf("--- structural tree, zone %s (traceroute target: %s) ---\n%s\n",
                zone.zone_name.c_str(), zone.traceroute_target.c_str(),
                env::render_structural(result.value().structural).c_str());
    if (json != nullptr) {
      const env::StructuralNode& tree = result.value().structural;
      json->begin_object()
          .field("zone", zone.zone_name)
          .field("tree_nodes", static_cast<std::uint64_t>(tree_nodes(tree)))
          .field("machines", static_cast<std::uint64_t>(tree.machine_count()))
          .field("experiments", result.value().stats.experiments)
          .end_object();
    }
  }
  if (json != nullptr) {
    json->end_array();
    std::ofstream out(cli.json_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write --json report to '%s'\n", cli.json_path.c_str());
      return 1;
    }
    out << json->finish();
    std::printf("JSON report written to %s\n", cli.json_path.c_str());
  }
  return 0;
}
