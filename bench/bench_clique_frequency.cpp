// CLAIM-CLIQUE (paper §2.3, "Scalability concerns"): "the frequency of
// the measurements obviously decreases when the number of hosts in a
// given clique increases. The cliques must then be split in sub-cliques
// to ensure a sufficient network measurement frequency."
//
// Simulates token-ring cliques of growing size on a switched LAN and
// reports the achieved per-pair measurement period, next to the k(k-1)
// analytic cycle, and the effect of the planner's max-clique-size split.
#include <cstdio>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "nws/system.hpp"
#include "simnet/scenario.hpp"

using namespace envnws;

namespace {

double measure_pair_period(int members, double period_s, double sim_time) {
  auto scenario = simnet::star_switch(members, units::mbps(100));
  simnet::Network net(std::move(scenario.topology));
  nws::SystemConfig config;
  config.nameserver_host = "h0";
  nws::NwsSystem system(net, config);
  nws::CliqueSpec spec;
  spec.name = "ring";
  spec.period_s = period_s;
  for (int i = 0; i < members; ++i) {
    spec.members.push_back(net.topology().find_by_name("h" + std::to_string(i)).value());
  }
  system.add_clique(spec);
  system.start();
  net.run_until(sim_time);
  const nws::TimeSeries* series =
      system.find_series({nws::ResourceKind::bandwidth, "h0", "h1"});
  system.stop();
  if (series == nullptr || series->size() < 2) return 0.0;
  return series->mean_period();
}

}  // namespace

int main() {
  bench::banner("CLAIM-CLIQUE",
                "§2.3 measurement frequency vs clique size (token-ring cost)",
                "per-pair re-measurement period grows ~ k(k-1): beyond ~8 members a"
                " pair is refreshed less than once per 2 minutes at a 2 s pace;"
                " splitting restores frequency at the price of extra cliques");

  const double period = 2.0;
  Table table({"members", "ordered pairs", "analytic cycle s", "measured pair period s",
               "measurements/hour/pair"});
  for (const int k : {2, 3, 4, 6, 8, 12, 16}) {
    const double cycle = period * k * (k - 1);
    const double sim_time = std::max(1200.0, 4.0 * cycle);
    const double measured = measure_pair_period(k, period, sim_time);
    table.add_row({std::to_string(k), std::to_string(k * (k - 1)),
                   strings::format_double(cycle, 1), strings::format_double(measured, 1),
                   strings::format_double(measured > 0 ? 3600.0 / measured : 0.0, 1)});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("planner mitigation: a 16-member switched segment split at max size 6\n");
  std::printf("  unsplit: 240 ordered pairs in one ring -> cycle %.0f s\n",
              period * 16 * 15);
  std::printf("  split into 3 sub-cliques of <=6 (one pivot member): worst ring 30 pairs"
              " -> cycle %.0f s (%.0fx faster refresh)\n",
              period * 6 * 5, (16.0 * 15.0) / (6.0 * 5.0));
  return 0;
}
