// EXT-HOSTLOCK: the paper's concluding proposal, implemented and
// measured. "on a switched network, more than one experiment may be
// authorized if the hosts involved in each experiments are different.
// That is to say that a possibility to lock hosts (and not networks) is
// still needed."
//
// Two effects, both quantified here:
//  1. cross-clique collision-freedom on the ENS-Lyon plan (the 50%
//     worst-case error of the classic plan disappears: colliding
//     experiments always share a representative host);
//  2. parallel disjoint-host experiments on switched cliques multiply
//     the measurement refresh rate.
#include <cstdio>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/autodeploy.hpp"

using namespace envnws;

namespace {

std::uint64_t switched_throughput(std::size_t members, std::size_t tokens) {
  auto scenario = simnet::star_switch(static_cast<int>(members), units::mbps(100));
  simnet::Network net(std::move(scenario.topology));
  nws::SystemConfig config;
  config.nameserver_host = "h0";
  config.enable_host_locks = true;
  nws::NwsSystem system(net, config);
  nws::CliqueSpec spec;
  spec.name = "par";
  spec.period_s = 2.0;
  spec.parallel_tokens = tokens;
  for (std::size_t i = 0; i < members; ++i) {
    spec.members.push_back(net.topology().find_by_name("h" + std::to_string(i)).value());
  }
  system.add_clique(spec);
  system.start();
  net.run_until(2000.0);
  const std::uint64_t experiments = system.cliques().front()->experiments_run();
  system.stop();
  return experiments;
}

}  // namespace

int main() {
  bench::banner("EXT-HOSTLOCK",
                "paper conclusion: host locks instead of network locks (implemented)",
                "the ENS-Lyon plan's 50% worst-case cross-clique error drops to 0;"
                " switched cliques with k parallel tokens refresh ~k x faster");

  // --- effect 1: the ENS-Lyon plan -------------------------------------
  Table plans({"deployment", "collision-free", "worst concurrent error", "complete"});
  for (const bool locks : {false, true}) {
    simnet::Scenario scenario = simnet::ens_lyon();
    simnet::Network net(simnet::Scenario(scenario).topology);
    core::AutoDeployOptions options;
    options.planner.use_host_locks = locks;
    auto result = core::auto_deploy(net, scenario, options);
    if (!result.ok()) {
      std::fprintf(stderr, "auto-deploy failed\n");
      return 1;
    }
    const auto& report = result.value().validation;
    plans.add_row({locks ? "with host locks (extension)" : "classic (paper Fig. 3 plan)",
                   report.collision_free ? "yes" : "NO",
                   strings::format_double(report.worst_collision_error * 100.0, 1) + "%",
                   report.complete ? "yes" : "no"});
    result.value().system->stop();
  }
  std::printf("--- ENS-Lyon deployment ---\n%s\n", plans.to_string().c_str());

  // --- effect 2: switched-clique parallelism ---------------------------
  Table throughput({"members", "tokens", "experiments in 2000 s", "speedup"});
  for (const std::size_t members : {6u, 8u, 12u}) {
    const std::uint64_t serial = switched_throughput(members, 1);
    for (const std::size_t tokens : {1u, 2u, 3u}) {
      const std::uint64_t experiments =
          tokens == 1 ? serial : switched_throughput(members, tokens);
      throughput.add_row(
          {std::to_string(members), std::to_string(tokens), std::to_string(experiments),
           strings::format_double(static_cast<double>(experiments) /
                                      static_cast<double>(serial),
                                  2) +
               "x"});
    }
  }
  std::printf("--- switched clique refresh rate (2 s pace) ---\n%s",
              throughput.to_string().c_str());
  return 0;
}
