// ABLATE-THRESH (paper §4.2.2): "The value of this thresholds may have a
// great impact on the mapping results, and where determined experimentally
// and empirically by the ENV authors." (bw split x3, pairwise 1.25,
// jammed 0.7/0.9)
//
// Sweeps each threshold while holding the others at the paper's values
// and scores classification accuracy against ground truth over a family
// of randomized LANs. The paper's choices should sit on the accuracy
// plateau; extreme values should mis-cluster.
#include <cstdio>
#include <fstream>
#include <functional>
#include <vector>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "env/mapper.hpp"
#include "env/scenario_zones.hpp"
#include "env/sim_probe_engine.hpp"
#include "simnet/scenario.hpp"

using namespace envnws;

namespace {

struct Score {
  int correct = 0;
  int total = 0;
  [[nodiscard]] double percent() const {
    return total > 0 ? 100.0 * correct / total : 0.0;
  }
};

/// Map every seed's platform with the given options and score segment
/// classification. The platform family is a spec template whose
/// placeholder receives the seed (default random-lan:{SEED}@100: all
/// segments run at one speed so no verdict is masked by an upstream
/// bottleneck — that effect is a separate experiment). Every measurement
/// carries 5% multiplicative jitter — the noise the thresholds were
/// designed to absorb.
Score score_options(const std::string& spec_template, const env::MapperOptions& options) {
  Score score;
  for (const std::uint64_t seed : {11u, 22u, 33u, 44u, 55u, 66u}) {
    simnet::Scenario scenario = bench::make_scenario_or_exit(
        bench::instantiate_spec(spec_template, static_cast<long long>(seed)));
    simnet::NetworkOptions net_options;
    net_options.measurement_jitter_sigma = 0.05;
    net_options.seed = seed;
    simnet::Network net(simnet::Scenario(scenario).topology, net_options);
    env::SimProbeEngine engine(net, options);
    env::Mapper mapper(engine, options);
    const auto zones = env::zones_from_scenario(scenario);
    auto result = mapper.map_zone(zones.value().front());
    if (!result.ok()) continue;
    // Ground-truth members are short names; the mapped view speaks
    // fqdns. Resolve through the topology so any scenario family works.
    const auto fqdn_of = [&scenario](const std::string& short_name) {
      const auto id = scenario.id(short_name);
      if (!id.ok()) return short_name;
      const simnet::Node& node = scenario.topology.node(id.value());
      return node.fqdn.empty() ? node.name : node.fqdn;
    };
    for (const auto& truth : scenario.ground_truth) {
      if (truth.member_names.size() < 2) continue;
      ++score.total;
      const env::EnvNetwork* segment =
          result.value().root.find_containing(fqdn_of(truth.member_names.front()));
      if (segment == nullptr) continue;
      const bool want_shared = truth.kind == simnet::GroundTruthNet::Kind::shared;
      // A classification is correct when the verdict matches AND the
      // segment was not dissolved/merged (member count right).
      const bool kind_ok = (want_shared && segment->kind == env::NetKind::shared) ||
                           (!want_shared && segment->kind == env::NetKind::switched);
      std::vector<std::string> expected_members;
      for (const auto& name : truth.member_names) expected_members.push_back(fqdn_of(name));
      int present = 0;
      for (const auto& name : expected_members) {
        const auto& machines = segment->machines;
        if (std::find(machines.begin(), machines.end(), name) != machines.end()) ++present;
      }
      const bool membership_ok =
          present == static_cast<int>(expected_members.size()) &&
          segment->machines.size() <= expected_members.size() + 1;  // +1 for the master
      if (kind_ok && membership_ok) ++score.correct;
    }
  }
  return score;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchCli cli = bench::bench_cli(argc, argv, "random-lan:{SEED}@100");
  const std::string& spec = cli.scenario_spec;
  bench::banner("ABLATE-THRESH",
                "§4.2.2 empirically-determined thresholds (3 / 1.25 / 0.7 / 0.9)",
                "accuracy is 100% on a plateau containing the paper's values and"
                " degrades at the extremes of each sweep");
  std::printf("scenario family: %s (the placeholder receives each seed)\n\n", spec.c_str());

  // --json: one array per swept threshold with (value, accuracy) pairs
  // — what scripts/bench_diff.py compares across CI runs.
  bench::JsonWriter writer;
  bench::JsonWriter* json = cli.json_path.empty() ? nullptr : &writer;
  if (json != nullptr) {
    json->field("bench", "threshold_ablation").field("scenario_spec", spec);
  }

  const auto sweep = [&](const char* key, const char* title, double paper,
                         const std::vector<double>& values,
                         const std::function<void(env::MapperOptions&, double)>& apply) {
    Table table({key, "accuracy %"});
    if (json != nullptr) json->begin_array(key);
    for (const double v : values) {
      env::MapperOptions options;
      apply(options, v);
      const double percent = score_options(spec, options).percent();
      table.add_row({strings::format_double(v, 2) + (v == paper ? " (paper)" : ""),
                     strings::format_double(percent, 1)});
      if (json != nullptr) {
        json->begin_object()
            .field("value", v)
            .field("paper", v == paper)
            .field("accuracy_percent", percent)
            .end_object();
      }
    }
    if (json != nullptr) json->end_array();
    std::printf("--- %s ---\n%s\n", title, table.to_string().c_str());
  };

  sweep("bw_split_ratio", "host-bandwidth split threshold", 3.0,
        {1.02, 1.5, 2.0, 3.0, 6.0, 20.0},
        [](env::MapperOptions& options, double v) { options.bw_split_ratio = v; });
  sweep("pairwise_independence", "pairwise independence threshold", 1.25,
        {1.01, 1.1, 1.25, 1.6, 1.95, 4.0},
        [](env::MapperOptions& options, double v) { options.pairwise_independence_ratio = v; });
  sweep("jam_shared_max", "jammed 'shared' threshold", 0.7, {0.1, 0.3, 0.5, 0.7, 0.85, 0.99},
        [](env::MapperOptions& options, double v) {
          options.jam_shared_max = v;
          options.jam_switched_min = std::max(v, options.jam_switched_min);
        });
  sweep("jam_switched_min", "jammed 'switched' threshold", 0.9,
        {0.55, 0.7, 0.8, 0.9, 0.97, 1.0}, [](env::MapperOptions& options, double v) {
          options.jam_switched_min = v;
          options.jam_shared_max = std::min(v, options.jam_shared_max);
        });

  if (json != nullptr) {
    std::ofstream out(cli.json_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write --json report to '%s'\n", cli.json_path.c_str());
      return 1;
    }
    out << json->finish();
    std::printf("JSON report written to %s\n", cli.json_path.c_str());
  }
  return 0;
}
