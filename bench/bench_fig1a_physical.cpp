// FIG1A: the modelled physical ENS-Lyon topology (paper Fig. 1a) — the
// ground truth every other experiment is scored against.
#include <cstdio>

#include "bench_util.hpp"
#include "simnet/render.hpp"
#include "simnet/scenario.hpp"

int main(int argc, char** argv) {
  using namespace envnws;
  bench::banner("FIG1A", "paper Fig. 1(a): physical topology (simplified schema)",
                "hub1{the-doors,canaria,moby} / 10 Mbps bottleneck with asymmetric"
                " gigabit return / hub2{popc,myri,sci} / myri hub / sci switch;"
                " popc.private firewalled behind dual-homed gateways");

  const simnet::Scenario scenario = bench::scenario_from_cli(argc, argv, "ens-lyon");
  std::printf("%s\n", scenario.description.c_str());
  std::printf("\n--- topology tree (rooted at the edge router) ---\n%s",
              simnet::render_physical(scenario.topology).c_str());
  std::printf("\n--- link table ---\n%s",
              simnet::render_link_table(scenario.topology).c_str());

  std::printf("\n--- firewall zones ---\n");
  for (const auto& zone : scenario.topology.zones()) {
    std::printf("  %s:", zone.c_str());
    for (const auto host : scenario.topology.hosts_in_zone(zone)) {
      std::printf(" %s", scenario.topology.node(host).name.c_str());
    }
    std::printf("\n");
  }
  return 0;
}
