// Shared helpers for the figure-reproduction bench binaries.
#pragma once

#include <cstdio>
#include <string>

namespace envnws::bench {

inline void banner(const std::string& experiment_id, const std::string& paper_artifact,
                   const std::string& expectation) {
  std::printf("==============================================================\n");
  std::printf("%s — reproduces %s\n", experiment_id.c_str(), paper_artifact.c_str());
  std::printf("expected shape: %s\n", expectation.c_str());
  std::printf("==============================================================\n\n");
}

}  // namespace envnws::bench
