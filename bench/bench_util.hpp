// Shared helpers for the figure-reproduction bench binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "api/scenario_registry.hpp"
#include "simnet/scenario.hpp"

namespace envnws::bench {

inline void banner(const std::string& experiment_id, const std::string& paper_artifact,
                   const std::string& expectation) {
  std::printf("==============================================================\n");
  std::printf("%s — reproduces %s\n", experiment_id.c_str(), paper_artifact.c_str());
  std::printf("expected shape: %s\n", expectation.c_str());
  std::printf("==============================================================\n\n");
}

/// Common bench CLI: `--scenario=<spec>` overrides the bench's default
/// platform, `--list` prints the scenario catalog and exits. Exits with a
/// usage message on unknown flags or unresolvable specs, so every bench
/// main can stay a straight-line experiment.
inline simnet::Scenario scenario_from_cli(int argc, char** argv,
                                          const std::string& default_spec) {
  std::string spec = default_spec;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      std::printf("available scenarios (spec: name[:D1xD2...][@R1/R2...], rates in Mbps):\n%s",
                  api::ScenarioRegistry::builtin().render_catalog().c_str());
      std::exit(0);
    } else if (arg.rfind("--scenario=", 0) == 0) {
      spec = arg.substr(std::strlen("--scenario="));
    } else if (arg == "--scenario" && i + 1 < argc) {
      spec = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--scenario=<spec>] [--list]   (default: %s)\n",
                   argv[0], default_spec.c_str());
      std::exit(2);
    }
  }
  auto made = api::ScenarioRegistry::builtin().make(spec);
  if (!made.ok()) {
    std::fprintf(stderr, "bad scenario '%s': %s\n", spec.c_str(),
                 made.error().to_string().c_str());
    std::exit(2);
  }
  return std::move(made.value());
}

}  // namespace envnws::bench
