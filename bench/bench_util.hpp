// Shared helpers for the figure-reproduction bench binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "api/scenario_registry.hpp"
#include "simnet/scenario.hpp"

namespace envnws::bench {

/// Minimal JSON emitter for bench --json reports: no dependency, just
/// comma/nesting bookkeeping. The document root is an object; finish()
/// closes it and returns the text. Keys are emitter-controlled literals;
/// values are escaped.
class JsonWriter {
 public:
  JsonWriter() { first_.push_back(true); out_ = "{"; }

  JsonWriter& field(const std::string& key, const std::string& value) {
    pre(key);
    out_ += quoted(value);
    return *this;
  }
  JsonWriter& field(const std::string& key, const char* value) {
    return field(key, std::string(value));
  }
  JsonWriter& field(const std::string& key, double value) {
    pre(key);
    out_ += number(value);
    return *this;
  }
  JsonWriter& field(const std::string& key, std::uint64_t value) {
    pre(key);
    out_ += std::to_string(value);
    return *this;
  }
  JsonWriter& field(const std::string& key, int value) {
    pre(key);
    out_ += std::to_string(value);
    return *this;
  }
  JsonWriter& field(const std::string& key, bool value) {
    pre(key);
    out_ += value ? "true" : "false";
    return *this;
  }
  /// Empty key: anonymous element (inside an array).
  JsonWriter& begin_object(const std::string& key = "") {
    pre(key);
    out_ += "{";
    first_.push_back(true);
    return *this;
  }
  JsonWriter& end_object() {
    out_ += "}";
    first_.pop_back();
    return *this;
  }
  JsonWriter& begin_array(const std::string& key) {
    pre(key);
    out_ += "[";
    first_.push_back(true);
    return *this;
  }
  JsonWriter& end_array() {
    out_ += "]";
    first_.pop_back();
    return *this;
  }
  /// Close the root object and return the document.
  [[nodiscard]] std::string finish() {
    out_ += "}\n";
    return out_;
  }

 private:
  void pre(const std::string& key) {
    if (!first_.back()) out_ += ", ";
    first_.back() = false;
    if (!key.empty()) out_ += quoted(key) + ": ";
  }
  static std::string quoted(const std::string& text) {
    std::string out = "\"";
    for (const char c : text) {
      if (c == '"') {
        out += "\\\"";
      } else if (c == '\\') {
        out += "\\\\";
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char escape[8];
        std::snprintf(escape, sizeof(escape), "\\u%04x", static_cast<unsigned char>(c));
        out += escape;
      } else {
        out += c;
      }
    }
    return out + "\"";
  }
  static std::string number(double value) {
    char text[40];
    std::snprintf(text, sizeof(text), "%.17g", value);
    // JSON has no inf/nan literals.
    const std::string out = text;
    if (out.find("inf") != std::string::npos || out.find("nan") != std::string::npos) {
      return "null";
    }
    return out;
  }

  std::string out_;
  std::vector<bool> first_;  ///< per nesting level: no element emitted yet
};

inline void banner(const std::string& experiment_id, const std::string& paper_artifact,
                   const std::string& expectation) {
  std::printf("==============================================================\n");
  std::printf("%s — reproduces %s\n", experiment_id.c_str(), paper_artifact.c_str());
  std::printf("expected shape: %s\n", expectation.c_str());
  std::printf("==============================================================\n\n");
}

/// True when the spec is a template carrying a `{...}` placeholder
/// (e.g. "star-switch:{N}@100", "random-lan:{SEED}@100").
inline bool is_spec_template(const std::string& spec) {
  const auto open = spec.find('{');
  return open != std::string::npos && spec.find('}', open) != std::string::npos;
}

/// Instantiate a spec template: every `{...}` placeholder becomes
/// `value`. Non-template specs come back unchanged.
inline std::string instantiate_spec(const std::string& spec_template, long long value) {
  std::string out;
  std::size_t pos = 0;
  while (pos < spec_template.size()) {
    const auto open = spec_template.find('{', pos);
    const auto close = open == std::string::npos ? std::string::npos
                                                 : spec_template.find('}', open);
    if (open == std::string::npos || close == std::string::npos) {
      out += spec_template.substr(pos);
      break;
    }
    out += spec_template.substr(pos, open - pos);
    out += std::to_string(value);
    pos = close + 1;
  }
  return out;
}

/// Flags shared by the bench binaries. `--scenario` accepts either a
/// concrete spec or (sweep-style benches) a `{...}` template the bench
/// substitutes its swept variable into; `--threads` / `--map-cache` are
/// only offered by the benches that use them.
struct BenchCli {
  std::string scenario_spec;  ///< spec or template, per the bench's default
  int threads = 8;            ///< --threads=K (zone-mapping workers)
  int jobs = 8;               ///< --jobs=K (within-zone probe batch workers)
  std::string map_cache_dir;  ///< --map-cache=DIR ("" = cache disabled)
  /// --probe=<spec>: probe-engine spec forwarded to
  /// api::Session::set_probe_engine_spec ("" = the simulator). E.g.
  /// record:/tmp/run.envtrace, replay:/tmp/run.envtrace,
  /// fault:bw%7=fail:timeout, socket:agents.cfg (real TCP probe
  /// agents), record:/tmp/run.envtrace@socket:agents.cfg — grammar in
  /// docs/TESTING.md and docs/SOCKET_ENGINE.md.
  std::string probe_spec;
  /// --json=<path>: also write the bench's measurements as a JSON
  /// report ("" = text output only).
  std::string json_path;
};

/// The single bench flag parser. `parallel_flags` controls whether
/// --threads / --map-cache are accepted (and mentioned in usage);
/// everything unknown exits 2 with a usage line, --list prints the
/// scenario catalog and exits 0.
inline BenchCli bench_cli(int argc, char** argv, const std::string& default_spec,
                          bool parallel_flags = true) {
  const auto usage_and_exit = [&] {
    std::fprintf(stderr,
                 "usage: %s [--scenario=<spec%s>]%s [--json=<path>] [--list]   "
                 "(default scenario: %s)\n",
                 argv[0], parallel_flags ? "-or-template" : "",
                 parallel_flags
                     ? " [--threads=K] [--jobs=K] [--map-cache=DIR] [--probe=<engine-spec>]"
                     : "",
                 default_spec.c_str());
    std::exit(2);
  };
  BenchCli cli;
  cli.scenario_spec = default_spec;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      std::printf("available scenarios (spec: name[:D1xD2...][@R1/R2...], rates in Mbps):\n%s",
                  api::ScenarioRegistry::builtin().render_catalog().c_str());
      std::exit(0);
    } else if (arg.rfind("--scenario=", 0) == 0) {
      cli.scenario_spec = arg.substr(std::strlen("--scenario="));
    } else if (arg == "--scenario" && i + 1 < argc) {
      cli.scenario_spec = argv[++i];
    } else if (parallel_flags && arg.rfind("--threads=", 0) == 0) {
      cli.threads = std::atoi(arg.c_str() + std::strlen("--threads="));
      if (cli.threads < 1) usage_and_exit();
    } else if (parallel_flags && arg.rfind("--jobs=", 0) == 0) {
      cli.jobs = std::atoi(arg.c_str() + std::strlen("--jobs="));
      if (cli.jobs < 1) usage_and_exit();
    } else if (parallel_flags && arg.rfind("--map-cache=", 0) == 0) {
      cli.map_cache_dir = arg.substr(std::strlen("--map-cache="));
    } else if (parallel_flags && arg.rfind("--probe=", 0) == 0) {
      cli.probe_spec = arg.substr(std::strlen("--probe="));
    } else if (arg.rfind("--json=", 0) == 0) {
      cli.json_path = arg.substr(std::strlen("--json="));
      if (cli.json_path.empty()) usage_and_exit();
    } else {
      usage_and_exit();
    }
  }
  return cli;
}

/// Resolve a concrete (non-template) spec or exit with a message.
inline simnet::Scenario make_scenario_or_exit(const std::string& spec) {
  auto made = api::ScenarioRegistry::builtin().make(spec);
  if (!made.ok()) {
    std::fprintf(stderr, "bad scenario '%s': %s\n", spec.c_str(),
                 made.error().to_string().c_str());
    std::exit(2);
  }
  return std::move(made.value());
}

/// Common bench CLI: `--scenario=<spec>` overrides the bench's default
/// platform, `--list` prints the scenario catalog and exits. Exits with a
/// usage message on unknown flags or unresolvable specs, so every bench
/// main can stay a straight-line experiment.
inline simnet::Scenario scenario_from_cli(int argc, char** argv,
                                          const std::string& default_spec) {
  return make_scenario_or_exit(
      bench_cli(argc, argv, default_spec, /*parallel_flags=*/false).scenario_spec);
}

}  // namespace envnws::bench
