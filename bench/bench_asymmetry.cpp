// CLAIM-ASYM (paper §4.3, "Asymmetric routes"): "the route between
// the-doors and popc goes through a 10 Mbps link, whereas in the other
// direction it is on 100 Mbps links only. Since ENV bandwidth tests are
// conducted in only one way, the system cannot detect such problems."
//
// Maps the public ENS-Lyon zone from two opposite viewpoints and compares
// what each believes about the same physical connection.
#include <cstdio>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "env/mapper.hpp"
#include "env/sim_probe_engine.hpp"
#include "simnet/scenario.hpp"

using namespace envnws;

namespace {

/// Map the public zone with the given master; return the base bandwidth
/// ENV records for the cluster containing `probe_member`.
double base_bw_from(simnet::Network& net, const std::string& master,
                    const std::string& probe_member,
                    env::MapperOptions options = {}) {
  env::SimProbeEngine engine(net, options);
  env::Mapper mapper(engine, options);
  env::ZoneSpec spec;
  spec.zone_name = "ens-lyon.fr";
  spec.hostnames = {"the-doors.ens-lyon.fr", "canaria.ens-lyon.fr",
                    "moby.cri2000.ens-lyon.fr", "popc.ens-lyon.fr", "myri.ens-lyon.fr",
                    "sci.ens-lyon.fr"};
  spec.master = master;
  spec.traceroute_target = "edge";
  auto result = mapper.map_zone(spec);
  if (!result.ok()) return 0.0;
  const env::EnvNetwork* segment = result.value().root.find_containing(probe_member);
  return segment != nullptr ? segment->base_bw_bps : 0.0;
}

}  // namespace

int main() {
  bench::banner("CLAIM-ASYM",
                "§4.3 one-way tests cannot see asymmetric routes",
                "mapping from the-doors reports the hub2 side at ~10 Mbps (forward"
                " path over the slow link); mapping from popc reports the hub1 side"
                " at ~100 Mbps (return path over the gigabit route): each view holds"
                " only its own direction, neither sees the asymmetry itself");

  simnet::Scenario scenario = simnet::ens_lyon();
  simnet::Network net(simnet::Scenario(scenario).topology);

  const auto doors = scenario.id("the-doors").value();
  const auto popc = scenario.id("popc").value();
  const double truth_fwd = net.ground_truth_bandwidth(doors, popc).value();
  const double truth_rev = net.ground_truth_bandwidth(popc, doors).value();

  const double from_doors = base_bw_from(net, "the-doors.ens-lyon.fr", "popc.ens-lyon.fr");
  const double from_popc = base_bw_from(net, "popc.ens-lyon.fr", "the-doors.ens-lyon.fr");

  Table table({"viewpoint", "cluster observed", "ENV base bw Mbps", "true fwd Mbps",
               "true rev Mbps"});
  table.add_row({"the-doors (paper's run)", "hub2 {popc,myri,sci}",
                 strings::format_double(units::to_mbps(from_doors), 2),
                 strings::format_double(units::to_mbps(truth_fwd), 0),
                 strings::format_double(units::to_mbps(truth_rev), 0)});
  table.add_row({"popc (reversed master)", "hub1 {the-doors,canaria,moby}",
                 strings::format_double(units::to_mbps(from_popc), 2),
                 strings::format_double(units::to_mbps(truth_rev), 0),
                 strings::format_double(units::to_mbps(truth_fwd), 0)});
  std::printf("%s\n", table.to_string().c_str());
  std::printf("limitation reproduced: the two viewpoints disagree by %.1fx on the same\n"
              "physical interconnection, and no single ENV run can tell (\"solving this\n"
              "would imply almost a complete rewrite of ENV tests\").\n\n",
              from_doors > 0 ? units::to_mbps(from_popc) / units::to_mbps(from_doors) : 0.0);

  // --- the fix the paper left as future work, implemented -------------
  env::MapperOptions bidir;
  bidir.bidirectional_probes = true;
  env::SimProbeEngine engine(net, bidir);
  env::Mapper mapper(engine, bidir);
  env::ZoneSpec spec;
  spec.zone_name = "ens-lyon.fr";
  spec.hostnames = {"the-doors.ens-lyon.fr", "canaria.ens-lyon.fr",
                    "moby.cri2000.ens-lyon.fr", "popc.ens-lyon.fr", "myri.ens-lyon.fr",
                    "sci.ens-lyon.fr"};
  spec.master = "the-doors.ens-lyon.fr";
  spec.traceroute_target = "edge";
  auto mapped = mapper.map_zone(spec);
  if (mapped.ok()) {
    const env::EnvNetwork* hub2 =
        mapped.value().root.find_containing("popc.ens-lyon.fr");
    if (hub2 != nullptr) {
      std::printf("EXT-BIDIR (bidirectional_probes=true, +n-1 experiments): hub2 forward"
                  " %.2f Mbps, reverse %.2f Mbps -> %s\n",
                  units::to_mbps(hub2->base_bw_bps),
                  units::to_mbps(hub2->base_reverse_bw_bps),
                  hub2->route_asymmetric ? "flagged [ASYMMETRIC ROUTE]"
                                         : "not flagged");
    }
  }
  return 0;
}
