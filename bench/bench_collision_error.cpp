// CLAIM-COLLIDE (paper §2.3): "If two measurements were conducted on a
// given network link at the same time, both of them could be influenced
// by the bandwidth consumption of the other one, and may therefore report
// an availability of about the half of the real value."
//
// Same 10 Mbps hub, two monitoring schemes: uncoordinated periodic probes
// (always overlapping) vs a token-ring clique (serialized).
// `--json=<path>` writes both schemes' numbers for bench_diff baselines.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "nws/system.hpp"
#include "simnet/scenario.hpp"

using namespace envnws;

namespace {

struct SchemeResult {
  double mean_mbps = 0.0;
  double min_mbps = 0.0;
  std::size_t samples = 0;
};

SchemeResult run_uncoordinated(double hub_mbps) {
  auto scenario = simnet::star_hub(4, units::mbps(hub_mbps));
  simnet::Network net(std::move(scenario.topology));
  nws::SystemConfig config;
  config.nameserver_host = "h0";
  nws::NwsSystem system(net, config);
  system.add_uncoordinated_probe("h0", "h1", 5.0);
  system.add_uncoordinated_probe("h2", "h3", 5.0);
  system.start();
  net.run_until(1800.0);
  const nws::TimeSeries* series =
      system.find_series({nws::ResourceKind::bandwidth, "h0", "h1"});
  system.stop();
  SchemeResult result;
  if (series != nullptr) {
    const auto values = series->values();
    result.mean_mbps = units::to_mbps(stats::mean(values));
    result.min_mbps = units::to_mbps(stats::min(values));
    result.samples = values.size();
  }
  return result;
}

SchemeResult run_clique(double hub_mbps) {
  auto scenario = simnet::star_hub(4, units::mbps(hub_mbps));
  simnet::Network net(std::move(scenario.topology));
  nws::SystemConfig config;
  config.nameserver_host = "h0";
  nws::NwsSystem system(net, config);
  nws::CliqueSpec spec;
  spec.name = "hub-clique";
  spec.period_s = 5.0;
  for (int i = 0; i < 4; ++i) {
    spec.members.push_back(net.topology().find_by_name("h" + std::to_string(i)).value());
  }
  system.add_clique(spec);
  system.start();
  net.run_until(1800.0);
  const nws::TimeSeries* series =
      system.find_series({nws::ResourceKind::bandwidth, "h0", "h1"});
  system.stop();
  SchemeResult result;
  if (series != nullptr) {
    const auto values = series->values();
    result.mean_mbps = units::to_mbps(stats::mean(values));
    result.min_mbps = units::to_mbps(stats::min(values));
    result.samples = values.size();
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("CLAIM-COLLIDE",
                "§2.3 colliding measurements report ~half the real availability",
                "uncoordinated probes on one hub under-report by ~50%;"
                " the NWS measurement clique keeps every reading at the true rate");

  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0 && arg.size() > std::strlen("--json=")) {
      json_path = arg.substr(std::strlen("--json="));
    } else {
      std::fprintf(stderr, "usage: %s [--json=<path>]\n", argv[0]);
      return 2;
    }
  }

  const double hub_mbps = 10.0;
  const SchemeResult uncoordinated = run_uncoordinated(hub_mbps);
  const SchemeResult clique = run_clique(hub_mbps);

  Table table({"scheme", "samples", "mean Mbps", "min Mbps", "error vs truth"});
  const auto row = [&](const char* name, const SchemeResult& r) {
    table.add_row({name, std::to_string(r.samples), strings::format_double(r.mean_mbps, 2),
                   strings::format_double(r.min_mbps, 2),
                   strings::format_double((1.0 - r.mean_mbps / hub_mbps) * 100.0, 1) + "%"});
  };
  row("uncoordinated probes", uncoordinated);
  row("token-ring clique", clique);
  std::printf("ground truth: %.1f Mbps shared hub\n\n%s", hub_mbps,
              table.to_string().c_str());

  if (!json_path.empty()) {
    bench::JsonWriter json;
    json.field("bench", "collision_error").field("ground_truth_mbps", hub_mbps);
    const auto scheme = [&](const char* key, const SchemeResult& r) {
      json.begin_object(key)
          .field("samples", static_cast<std::uint64_t>(r.samples))
          .field("mean_mbps", r.mean_mbps)
          .field("min_mbps", r.min_mbps)
          .field("error_vs_truth_pct", (1.0 - r.mean_mbps / hub_mbps) * 100.0)
          .end_object();
    };
    scheme("uncoordinated", uncoordinated);
    scheme("clique", clique);
    std::ofstream out(json_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write --json report to '%s'\n", json_path.c_str());
      return 1;
    }
    out << json.finish();
    std::printf("JSON report written to %s\n", json_path.c_str());
  }
  return 0;
}
