// CLAIM-LOAD (paper §4.3, "Reliability and accuracy"): "The results given
// by ENV may be corrupted if the network load evolves greatly (increasing
// or decreasing) between tests. There is no solution yet to this problem,
// except rapidity."
//
// Maps a mixed hub/switch platform under growing background cross-traffic
// and scores classification accuracy and bandwidth-estimate error.
#include <cstdio>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "env/mapper.hpp"
#include "env/scenario_zones.hpp"
#include "env/sim_probe_engine.hpp"
#include "simnet/background.hpp"
#include "simnet/scenario.hpp"

using namespace envnws;

namespace {

struct LoadResult {
  int correct = 0;
  int total = 0;
  double worst_bw_error = 0.0;
};

LoadResult map_under_load(double intensity, std::uint64_t seed) {
  simnet::RandomLanParams params;
  params.segment_count = 4;
  params.segment_bw_bps = {units::mbps(100)};
  simnet::Scenario scenario = simnet::random_lan(seed, params);
  simnet::Network net(simnet::Scenario(scenario).topology);

  auto generators =
      simnet::make_background_load(net, net.topology().hosts(), intensity, seed * 13 + 1);
  for (auto& generator : generators) generator->start();
  net.run_until(5.0);  // let the load pattern establish itself

  env::MapperOptions options;
  env::SimProbeEngine engine(net, options);
  env::Mapper mapper(engine, options);
  const auto zones = env::zones_from_scenario(scenario);
  auto result = mapper.map_zone(zones.value().front());
  for (auto& generator : generators) generator->stop();

  LoadResult score;
  if (!result.ok()) return score;
  for (const auto& truth : scenario.ground_truth) {
    if (truth.member_names.size() < 2) continue;
    ++score.total;
    const env::EnvNetwork* segment =
        result.value().root.find_containing(truth.member_names.front() + ".lan");
    if (segment == nullptr) continue;
    const bool want_shared = truth.kind == simnet::GroundTruthNet::Kind::shared;
    const bool kind_ok = (want_shared && segment->kind == env::NetKind::shared) ||
                         (!want_shared && segment->kind == env::NetKind::switched);
    if (kind_ok) ++score.correct;
    if (segment->base_local_bw_bps > 0.0) {
      const double error =
          std::abs(segment->base_local_bw_bps - truth.local_bw_bps) / truth.local_bw_bps;
      score.worst_bw_error = std::max(score.worst_bw_error, error);
    }
  }
  return score;
}

}  // namespace

int main() {
  bench::banner("CLAIM-LOAD",
                "§4.3 ENV results 'may be corrupted if the network load evolves'",
                "idle platform: 100% accuracy, ~0% bandwidth error; rising background"
                " load first distorts the bandwidth estimates, then flips shared/"
                "switched verdicts — 'no solution yet ... except rapidity'");

  Table table({"background intensity", "classification accuracy %", "worst local-bw error %"});
  for (const double intensity : {0.0, 0.1, 0.3, 0.6, 1.0}) {
    LoadResult aggregate;
    for (const std::uint64_t seed : {3u, 14u, 25u}) {
      const LoadResult one = map_under_load(intensity, seed);
      aggregate.correct += one.correct;
      aggregate.total += one.total;
      aggregate.worst_bw_error = std::max(aggregate.worst_bw_error, one.worst_bw_error);
    }
    table.add_row(
        {strings::format_double(intensity, 1),
         strings::format_double(
             aggregate.total > 0 ? 100.0 * aggregate.correct / aggregate.total : 0.0, 1),
         strings::format_double(aggregate.worst_bw_error * 100.0, 1)});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}
