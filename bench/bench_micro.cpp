// Substrate micro-benchmarks (google-benchmark): cost of the fluid
// max-min solver, event queue, routing, XML parsing, forecasting, and a
// complete ENV mapping — the "how expensive is the simulator itself"
// numbers behind every other experiment.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "env/mapper.hpp"
#include "env/scenario_zones.hpp"
#include "env/sim_probe_engine.hpp"
#include "gridml/model.hpp"
#include "nws/forecast.hpp"
#include "simnet/event_queue.hpp"
#include "simnet/fairshare.hpp"
#include "simnet/routing.hpp"
#include "simnet/scenario.hpp"

namespace {

using namespace envnws;

void BM_FairShareSolve(benchmark::State& state) {
  const auto flows = static_cast<std::size_t>(state.range(0));
  Rng rng(42);
  simnet::FairShareProblem problem;
  const std::size_t resources = flows / 2 + 2;
  for (std::size_t r = 0; r < resources; ++r) {
    problem.capacities.push_back(rng.uniform(1e6, 1e9));
  }
  for (std::size_t f = 0; f < flows; ++f) {
    std::vector<std::uint32_t> used;
    for (std::uint32_t r = 0; r < resources; ++r) {
      if (rng.next_double() < 0.3) used.push_back(r);
    }
    if (used.empty()) used.push_back(0);
    problem.flows.push_back(used);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(simnet::solve_max_min(problem));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(flows));
}
BENCHMARK(BM_FairShareSolve)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_EventQueueChurn(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  for (auto _ : state) {
    simnet::EventQueue queue;
    for (std::size_t i = 0; i < events; ++i) {
      queue.schedule_at(rng.next_double() * 1000.0, [] {});
    }
    simnet::SimTime t = 0;
    simnet::EventFn fn;
    while (queue.pop(t, fn)) {
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(events));
}
BENCHMARK(BM_EventQueueChurn)->Arg(1024)->Arg(16384);

void BM_RoutingDijkstra(benchmark::State& state) {
  auto scenario = simnet::wan_constellation(8, 12, units::mbps(100), units::mbps(10));
  const simnet::Topology topo = std::move(scenario.topology);
  const auto hosts = topo.hosts();
  for (auto _ : state) {
    simnet::RouteTable routes(topo);  // cold tables each iteration
    benchmark::DoNotOptimize(routes.path(hosts.front(), hosts.back()));
  }
}
BENCHMARK(BM_RoutingDijkstra);

void BM_FlowTransferSimulation(benchmark::State& state) {
  for (auto _ : state) {
    auto scenario = simnet::star_switch(8, units::mbps(100));
    simnet::Network net(std::move(scenario.topology));
    int done = 0;
    for (int i = 0; i < 4; ++i) {
      net.start_flow(simnet::NodeId(static_cast<std::uint32_t>(2 * i)),
                     simnet::NodeId(static_cast<std::uint32_t>(2 * i + 1)), 1 << 20,
                     [&done](const simnet::FlowResult&) { ++done; });
    }
    net.run();
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_FlowTransferSimulation);

void BM_ForecasterObserve(benchmark::State& state) {
  Rng rng(5);
  std::vector<double> values;
  for (int i = 0; i < 1024; ++i) values.push_back(50.0 + rng.normal(0.0, 5.0));
  for (auto _ : state) {
    nws::AdaptiveForecaster forecaster;
    for (const double v : values) forecaster.observe(v);
    benchmark::DoNotOptimize(forecaster.forecast());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_ForecasterObserve);

void BM_GridmlParse(benchmark::State& state) {
  auto scenario = simnet::ens_lyon();
  simnet::Network net(std::move(scenario.topology));
  // Build a representative document once via a real mapping.
  env::MapperOptions options;
  env::SimProbeEngine engine(net, options);
  env::Mapper mapper(engine, options);
  simnet::Scenario fresh = simnet::ens_lyon();
  auto mapped = mapper.map(env::zones_from_scenario(fresh).value(),
                           env::gateway_aliases_from_scenario(fresh));
  const std::string xml = mapped.ok() ? mapped.value().grid.to_string() : "<GRID />";
  for (auto _ : state) {
    benchmark::DoNotOptimize(gridml::GridDoc::parse(xml));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(xml.size()));
}
BENCHMARK(BM_GridmlParse);

void BM_FullEnvMapping(benchmark::State& state) {
  for (auto _ : state) {
    simnet::Scenario scenario = simnet::ens_lyon();
    simnet::Network net(simnet::Scenario(scenario).topology);
    env::MapperOptions options;
    env::SimProbeEngine engine(net, options);
    env::Mapper mapper(engine, options);
    auto result = mapper.map(env::zones_from_scenario(scenario).value(),
                             env::gateway_aliases_from_scenario(scenario));
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FullEnvMapping)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
