// FIG3: the NWS deployment plan for ENS-Lyon (paper Fig. 3) plus the
// §2.3 constraint validation of the resulting deployment.
#include <cstdio>

#include "bench_util.hpp"
#include "core/autodeploy.hpp"

int main() {
  using namespace envnws;
  bench::banner(
      "FIG3", "paper Fig. 3: NWS deployment plan in ENS-Lyon",
      "shared hub1 -> pair clique {canaria, moby}; shared hub2 -> pair {popc0, myri0};"
      " shared myri hub -> pair {myri1, myri2}; switched sci -> full clique"
      " {sci0, sci1..sci6}; inter-hub clique {canaria, popc0};"
      " NS/forecaster on the-doors, one memory per site");

  simnet::Scenario scenario = simnet::ens_lyon();
  simnet::Network net(simnet::Scenario(scenario).topology);
  auto result = core::auto_deploy(net, scenario);
  if (!result.ok()) {
    std::fprintf(stderr, "auto-deploy failed: %s\n", result.error().to_string().c_str());
    return 1;
  }

  std::printf("%s\n", result.value().plan.render().c_str());
  std::printf("--- constraint validation (§2.3) ---\n%s\n",
              result.value().validation.render().c_str());
  std::printf("--- shared manager configuration (§5.2) ---\n%s",
              result.value().config_text.c_str());
  result.value().system->stop();
  return 0;
}
