// FIG3: the NWS deployment plan for ENS-Lyon (paper Fig. 3) plus the
// §2.3 constraint validation of the resulting deployment, produced stage
// by stage through the api::Session pipeline. `--scenario=<spec>` plans
// any registry platform instead; `--json=<path>` writes the plan and
// validation numbers for scripts/bench_diff.py baselines.
#include <cstdio>
#include <fstream>

#include "api/envnws.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace envnws;
  bench::banner(
      "FIG3", "paper Fig. 3: NWS deployment plan in ENS-Lyon",
      "shared hub1 -> pair clique {canaria, moby}; shared hub2 -> pair {popc0, myri0};"
      " shared myri hub -> pair {myri1, myri2}; switched sci -> full clique"
      " {sci0, sci1..sci6}; inter-hub clique {canaria, popc0};"
      " NS/forecaster on the-doors, one memory per site");

  const bench::BenchCli cli = bench::bench_cli(argc, argv, "ens-lyon", /*parallel_flags=*/false);
  simnet::Scenario scenario = bench::make_scenario_or_exit(cli.scenario_spec);
  simnet::Network net(simnet::Scenario(scenario).topology);
  api::Session session(net, scenario);
  if (auto status = session.run_all(); !status.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n", status.error().to_string().c_str());
    return 1;
  }

  std::printf("%s\n", session.plan_result().render().c_str());
  std::printf("--- constraint validation (§2.3) ---\n%s\n", session.validation().render().c_str());
  std::printf("--- shared manager configuration (§5.2) ---\n%s", session.config_text().c_str());

  if (!cli.json_path.empty()) {
    const deploy::DeploymentPlan& plan = session.plan_result();
    const deploy::ValidationReport& validation = session.validation();
    bench::JsonWriter json;
    json.field("bench", "fig3_deployment").field("scenario_spec", cli.scenario_spec);
    json.field("master", plan.master)
        .field("nameserver", plan.nameserver_host)
        .field("forecaster", plan.forecaster_host)
        .field("sensor_hosts", static_cast<std::uint64_t>(plan.hosts.size()))
        .field("memory_hosts", static_cast<std::uint64_t>(plan.memory_hosts.size()))
        .field("substitutions", static_cast<std::uint64_t>(plan.substitutions.size()))
        .field("experiments_per_cycle", plan.experiments_per_cycle());
    json.begin_array("cliques");
    for (const deploy::PlannedClique& clique : plan.cliques) {
      json.begin_object()
          .field("name", clique.name)
          .field("role", deploy::to_string(clique.role))
          .field("members", static_cast<std::uint64_t>(clique.members.size()))
          .field("period_s", clique.period_s)
          .field("probe_bytes", static_cast<std::uint64_t>(clique.probe_bytes))
          .field("parallel_tokens", static_cast<std::uint64_t>(clique.parallel_tokens))
          .end_object();
    }
    json.end_array();
    json.begin_object("validation")
        .field("collision_free", validation.collision_free)
        .field("worst_collision_error", validation.worst_collision_error)
        .field("max_clique_size", static_cast<std::uint64_t>(validation.max_clique_size))
        .field("worst_cycle_time_s", validation.worst_cycle_time_s)
        .field("complete", validation.complete)
        .field("experiments_per_cycle", validation.experiments_per_cycle)
        .field("bytes_per_cycle", static_cast<std::uint64_t>(validation.bytes_per_cycle))
        .end_object();
    std::ofstream out(cli.json_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write --json report to '%s'\n", cli.json_path.c_str());
      session.system().stop();
      return 1;
    }
    out << json.finish();
    std::printf("JSON report written to %s\n", cli.json_path.c_str());
  }
  session.system().stop();
  return 0;
}
