// FIG3: the NWS deployment plan for ENS-Lyon (paper Fig. 3) plus the
// §2.3 constraint validation of the resulting deployment, produced stage
// by stage through the api::Session pipeline. `--scenario=<spec>` plans
// any registry platform instead.
#include <cstdio>

#include "api/envnws.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace envnws;
  bench::banner(
      "FIG3", "paper Fig. 3: NWS deployment plan in ENS-Lyon",
      "shared hub1 -> pair clique {canaria, moby}; shared hub2 -> pair {popc0, myri0};"
      " shared myri hub -> pair {myri1, myri2}; switched sci -> full clique"
      " {sci0, sci1..sci6}; inter-hub clique {canaria, popc0};"
      " NS/forecaster on the-doors, one memory per site");

  simnet::Scenario scenario = bench::scenario_from_cli(argc, argv, "ens-lyon");
  simnet::Network net(simnet::Scenario(scenario).topology);
  api::Session session(net, scenario);
  if (auto status = session.run_all(); !status.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n", status.error().to_string().c_str());
    return 1;
  }

  std::printf("%s\n", session.plan_result().render().c_str());
  std::printf("--- constraint validation (§2.3) ---\n%s\n", session.validation().render().c_str());
  std::printf("--- shared manager configuration (§5.2) ---\n%s", session.config_text().c_str());
  session.system().stop();
  return 0;
}
