// NWS-AGG (paper §2.3, "Completeness"): "given three machines A, B and C,
// if the machine B is the gateway connecting A and C, it is sufficient to
// conduct only the experiments on (AB) and on (BC). Latency between A and
// C can then be roughly estimated by adding the latencies measured on AB
// and on BC. The minimum of the bandwidths on AB and BC can be used to
// estimate the one on AC."
#include <cstdio>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "deploy/manager.hpp"
#include "deploy/query.hpp"
#include "simnet/topology.hpp"

using namespace envnws;

int main() {
  bench::banner("NWS-AGG",
                "§2.3 aggregation across a gateway (the A-B-C example)",
                "bw(AC) ~= min(bw(AB), bw(BC)); lat(AC) ~= lat(AB)+lat(BC);"
                " both within a few percent of a direct measurement");

  // A --100 Mbps/2ms-- B --30 Mbps/5ms-- C, B a dual-homed gateway host.
  simnet::Topology topo;
  const auto a = topo.add_host("A", "a.lan", simnet::Ipv4(10, 0, 1, 1));
  const auto b = topo.add_host("B", "b.lan", simnet::Ipv4(10, 0, 1, 2));
  const auto c = topo.add_host("C", "c.lan", simnet::Ipv4(10, 0, 2, 1));
  topo.connect(a, b, units::mbps(100), 2e-3);
  topo.connect(b, c, units::mbps(30), 5e-3);
  simnet::Network net(std::move(topo));

  // Deployment measuring only (A,B) and (B,C) — never (A,C).
  deploy::DeploymentPlan plan;
  plan.master = "a.lan";
  plan.nameserver_host = "a.lan";
  plan.forecaster_host = "a.lan";
  plan.hosts = {"a.lan", "b.lan", "c.lan"};
  for (const auto& [name, members] :
       {std::pair<const char*, std::vector<std::string>>{"ab", {"a.lan", "b.lan"}},
        {"bc", {"b.lan", "c.lan"}}}) {
    deploy::PlannedClique clique;
    clique.name = name;
    clique.role = deploy::CliqueRole::inter;
    clique.members = members;
    clique.period_s = 5.0;
    clique.probe_bytes = 512 * 1024;
    plan.cliques.push_back(clique);
  }
  auto system = deploy::apply_plan(plan, net);
  if (!system.ok()) {
    std::fprintf(stderr, "apply failed: %s\n", system.error().to_string().c_str());
    return 1;
  }
  net.run_until(900.0);
  deploy::QueryService queries(*system.value(), plan);

  const auto bw = queries.bandwidth("a.lan", "a.lan", "c.lan");
  const auto lat = queries.latency("a.lan", "a.lan", "c.lan");
  const double truth_bw = net.ground_truth_bandwidth(a, c).value();
  const double truth_rtt = 2.0 * net.ground_truth_latency(a, c).value();

  Table table({"quantity", "aggregated estimate", "ground truth", "error %"});
  if (bw.ok()) {
    table.add_row({"bandwidth A->C (Mbps)",
                   strings::format_double(units::to_mbps(bw.value().value), 2),
                   strings::format_double(units::to_mbps(truth_bw), 2),
                   strings::format_double(
                       100.0 * (bw.value().value - truth_bw) / truth_bw, 1)});
  }
  if (lat.ok()) {
    table.add_row({"rtt A->C (ms)", strings::format_double(lat.value().value * 1e3, 2),
                   strings::format_double(truth_rtt * 1e3, 2),
                   strings::format_double(
                       100.0 * (lat.value().value - truth_rtt) / truth_rtt, 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
  if (bw.ok()) {
    std::printf("chain used: %zu measured segments, method %s\n",
                bw.value().segments.size(), to_string(bw.value().method));
  }
  system.value()->stop();
  return 0;
}
