// Throughput of the schedule-exploration harness (src/testing/): how
// many complete schedules per second the explorer replays, from the
// bare scheduler seam (a synthetic decision tree, no probing) up to
// whole mapping runs with every concurrency decision virtualized. This
// is the budget the CI explore job spends — exhaustive small-N suites
// and the seeded random sweep both pay these per-schedule costs.
#include <chrono>
#include <cstdio>
#include <fstream>

#include "api/envnws.hpp"
#include "bench_util.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "env/batch_schedule.hpp"
#include "env/sim_probe_engine.hpp"
#include "testing/explorer.hpp"

using namespace envnws;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(const Clock::time_point& begin) {
  return std::chrono::duration<double>(Clock::now() - begin).count();
}

struct Measured {
  std::size_t schedules = 0;
  double elapsed_s = 0.0;
  bool exhaustive = false;
  bool ok = false;
};

Measured measure(const testing::ExploreScenario& scenario, testing::ExploreOptions options,
                 bool random) {
  testing::Explorer explorer(options);
  const auto begin = Clock::now();
  const auto result =
      random ? explorer.explore_random(scenario) : explorer.explore_exhaustive(scenario);
  Measured measured;
  measured.schedules = result.schedules;
  measured.elapsed_s = seconds_since(begin);
  measured.exhaustive = result.exhaustive;
  measured.ok = result.ok();
  return measured;
}

std::string rate(const Measured& measured) {
  if (measured.elapsed_s <= 0.0) return "-";
  return strings::format_double(static_cast<double>(measured.schedules) / measured.elapsed_s, 0);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchCli cli = bench::bench_cli(argc, argv, "star-switch:6");
  bench::banner("EXPLORE", "schedule-exploration harness throughput",
                "per-schedule cost from the bare VirtualScheduler seam to fully"
                " virtualized mapping runs (what the CI explore job spends)");

  // --json: the same rows as the table, machine-readable, so CI can
  // archive per-workload throughput and diff runs (scripts/bench_diff.py).
  bench::JsonWriter writer;
  bench::JsonWriter* json = cli.json_path.empty() ? nullptr : &writer;
  if (json != nullptr) json->field("bench", "schedule_explore").begin_array("workloads");

  Table table({"workload", "mode", "schedules", "exhaustive", "ok", "elapsed", "schedules/s"});
  const auto add = [&table, json](const char* workload, const char* mode,
                                  const Measured& measured) {
    table.add_row({workload, mode, std::to_string(measured.schedules),
                   measured.exhaustive ? "yes" : "no", measured.ok ? "yes" : "NO",
                   strings::format_double(measured.elapsed_s, 3) + " s", rate(measured)});
    if (json != nullptr) {
      json->begin_object()
          .field("workload", workload)
          .field("mode", mode)
          .field("schedules", static_cast<std::uint64_t>(measured.schedules))
          .field("exhaustive", measured.exhaustive)
          .field("ok", measured.ok)
          .field("elapsed_seconds", measured.elapsed_s)
          .end_object();
    }
  };

  // --- bare seam: a synthetic 8-level tree, fanout 4, no probing ---------
  const testing::ExploreScenario tree = [](testing::VirtualScheduler& scheduler) {
    for (int depth = 0; depth < 8; ++depth) {
      testing::DecisionPoint point;
      point.point = "tree";
      for (std::size_t i = 0; i < 4; ++i) point.ready.push_back({i, "branch"});
      (void)scheduler.pick(point);
    }
    return scheduler.health();
  };
  {
    testing::ExploreOptions options;
    options.random_schedules = 20000;
    options.max_schedules = 20000;
    add("synthetic tree 4^8", "random", measure(tree, options, true));
    add("synthetic tree 4^8 (capped)", "exhaustive", measure(tree, options, false));
  }

  // --- batch executor: the acceptance batch over the simulator ----------
  auto scenario = api::ScenarioRegistry::builtin().make("star-switch:6");
  if (!scenario.ok()) {
    std::fprintf(stderr, "scenario construction failed\n");
    return 1;
  }
  std::vector<std::string> names;
  for (const simnet::NodeId id : scenario.value().topology.hosts()) {
    const simnet::Node& node = scenario.value().topology.node(id);
    names.push_back(node.fqdn.empty() ? node.name : node.fqdn);
  }
  env::MapperOptions mapper_options;
  const std::vector<env::ProbeExperiment> experiments = {
      env::ProbeExperiment::single(names[0], names[1]),
      env::ProbeExperiment::concurrent(
          {env::BandwidthRequest{names[2], names[3]}, env::BandwidthRequest{names[3], names[2]}}),
      env::ProbeExperiment::single(names[0], names[2]),
      env::ProbeExperiment::concurrent(
          {env::BandwidthRequest{names[1], names[3]}, env::BandwidthRequest{names[3], names[1]}}),
  };
  const testing::ExploreScenario batch = [&](testing::VirtualScheduler& scheduler) {
    simnet::Network net(simnet::Scenario(scenario.value()).topology);
    env::SimProbeEngine engine(net, mapper_options);
    env::run_batch_virtual(engine, experiments, 3, scheduler);
    return scheduler.health();
  };
  add("4-experiment batch, 3 jobs", "exhaustive", measure(batch, {}, false));

  // --- whole maps: every seam virtualized --------------------------------
  auto small = api::ScenarioRegistry::builtin().make("star-switch:4");
  if (!small.ok()) {
    std::fprintf(stderr, "scenario construction failed\n");
    return 1;
  }
  const testing::ExploreScenario whole_map = [&](testing::VirtualScheduler& scheduler) {
    simnet::Network net(simnet::Scenario(small.value()).topology);
    api::Session session(net, small.value());
    session.options().mapper.probe_jobs = 3;
    session.options().mapper.virtual_scheduler = &scheduler;
    if (auto status = session.map(); !status.ok()) return status;
    return scheduler.health();
  };
  add("star-switch:4 full map", "exhaustive", measure(whole_map, {}, false));
  {
    testing::ExploreOptions options;
    options.random_schedules = 50;
    add("star-switch:4 full map", "random", measure(whole_map, options, true));
  }

  std::printf("%s", table.to_string().c_str());
  if (json != nullptr) {
    json->end_array();
    std::ofstream out(cli.json_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write --json report to '%s'\n", cli.json_path.c_str());
      return 1;
    }
    out << json->finish();
    std::printf("JSON report written to %s\n", cli.json_path.c_str());
  }
  return 0;
}
