// CLAIM-INTRUSIVE (paper §2.3 + §5.1): "In order to reduce the system
// intrusiveness to its minimum, only the needed tests have to be
// conducted. ... since the bandwidth is shared by all hosts connected to
// a hub, it is sufficient to measure it for a pair of hosts."
//
// Compares three ways of monitoring the ENS-Lyon platform:
//   1. the ENV-derived plan (shared -> representative pair, switched ->
//      full clique, hierarchy of cliques);
//   2. a naive single clique over every host (collision-free but slow
//      and maximally intrusive);
//   3. the naive full mesh of uncoordinated probes (fast but colliding).
#include <cstdio>

#include "api/envnws.hpp"
#include "bench_util.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "deploy/validate.hpp"

using namespace envnws;

int main(int argc, char** argv) {
  bench::banner("CLAIM-INTRUSIVE",
                "§2.3/§5.1 intrusiveness & scalability of the ENV-derived plan",
                "the ENV plan needs ~4x fewer experiments per cycle than one"
                " all-hosts clique, refreshes pairs ~5x faster, keeps completeness"
                " (substitution + aggregation), and stays collision-bounded");

  simnet::Scenario scenario = bench::scenario_from_cli(argc, argv, "ens-lyon");
  simnet::Network net(simnet::Scenario(scenario).topology);
  api::Session session(net, scenario);
  if (auto status = session.run_all(); !status.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n", status.error().to_string().c_str());
    return 1;
  }
  const deploy::DeploymentPlan& env_plan = session.plan_result();
  const deploy::ValidationReport env_report = session.validation();

  // Naive alternative 1: every host in one giant clique. Note: the
  // firewall makes a true all-hosts clique impossible on this platform
  // (private hosts cannot exchange probes with public ones); we model the
  // idealized version to give the naive scheme its best case.
  deploy::DeploymentPlan naive_plan;
  naive_plan.master = env_plan.master;
  naive_plan.nameserver_host = env_plan.nameserver_host;
  naive_plan.forecaster_host = env_plan.forecaster_host;
  naive_plan.memory_hosts = {env_plan.master};
  naive_plan.hosts = env_plan.hosts;
  deploy::PlannedClique all;
  all.name = "all-hosts";
  all.role = deploy::CliqueRole::switched_all;
  all.members = env_plan.hosts;
  all.period_s = 10.0;
  naive_plan.cliques.push_back(all);
  const deploy::ValidationReport naive_report = deploy::validate_plan(naive_plan, net);

  const std::size_t n = env_plan.hosts.size();
  const double period = 10.0;

  Table table({"scheme", "exps/cycle", "KiB/cycle", "worst refresh s", "collisions",
               "complete"});
  table.add_row({"ENV-derived plan", std::to_string(env_report.experiments_per_cycle),
                 strings::format_double(static_cast<double>(env_report.bytes_per_cycle) / 1024.0, 0),
                 strings::format_double(env_report.worst_cycle_time_s, 0),
                 strings::format_double(env_report.worst_collision_error * 100.0, 0) + "% worst",
                 env_report.complete ? "yes" : "no"});
  table.add_row({"one all-hosts clique", std::to_string(naive_report.experiments_per_cycle),
                 strings::format_double(static_cast<double>(naive_report.bytes_per_cycle) / 1024.0, 0),
                 strings::format_double(naive_report.worst_cycle_time_s, 0),
                 "none (fully serialized)", naive_report.complete ? "yes" : "no"});
  // Naive alternative 2: uncoordinated full mesh (n(n-1) probes per
  // period, no serialization): modeled numbers.
  const auto mesh_exps = static_cast<std::uint64_t>(n * (n - 1));
  table.add_row({"uncoordinated full mesh", std::to_string(mesh_exps),
                 strings::format_double(static_cast<double>(mesh_exps) * 64.0, 0),
                 strings::format_double(period, 0), "~50% on shared media", "yes"});
  std::printf("%zu hosts, period %.0f s per experiment slot\n\n%s\n", n, period,
              table.to_string().c_str());

  std::printf("ENV plan detail: %zu cliques, substitution table covers the shared segments\n",
              env_plan.cliques.size());
  for (const auto& clique : env_plan.cliques) {
    std::printf("  %-36s %zu members (%s)\n", clique.name.c_str(), clique.members.size(),
                to_string(clique.role));
  }
  session.system().stop();
  return 0;
}
