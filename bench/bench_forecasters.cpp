// NWS-FORECAST (paper §2): the forecaster battery and dynamic predictor
// selection. For each trace family, prints every predictor's error and
// checks the adaptive selection tracks the best of the battery.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "nws/forecast.hpp"
#include "simnet/topology.hpp"

using namespace envnws;

namespace {

std::vector<double> trace_for(const std::string& family, int n, Rng& rng) {
  std::vector<double> out;
  simnet::LoadModel diurnal{0.8, 0.6, 400.0, 0.0, 0.15, 5.0, 7};
  for (int i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    if (family == "stationary") {
      out.push_back(55.0 + rng.normal(0.0, 4.0));
    } else if (family == "trend") {
      out.push_back(20.0 + 0.15 * t + rng.normal(0.0, 1.0));
    } else if (family == "periodic-load") {
      out.push_back(diurnal.at(10.0 * t));  // a simulated host's CPU load
    } else if (family == "bursty") {
      out.push_back(15.0 + (rng.next_double() < 0.07 ? rng.uniform(50.0, 90.0)
                                                     : rng.normal(0.0, 1.0)));
    } else {  // regime-switch
      out.push_back(i < n / 2 ? 30.0 + rng.normal(0.0, 2.0) : 70.0 + rng.normal(0.0, 2.0));
    }
  }
  return out;
}

}  // namespace

int main() {
  bench::banner("NWS-FORECAST",
                "§2 statistical forecasting with dynamic predictor selection",
                "each trace family is won by a different predictor; the adaptive"
                " selection's error tracks the per-family best of the battery");

  Rng rng(2003);
  Table summary({"trace family", "winner", "winner MAE", "battery best MAE",
                 "battery worst MAE", "adaptive/best"});
  for (const std::string family :
       {"stationary", "trend", "periodic-load", "bursty", "regime-switch"}) {
    const auto trace = trace_for(family, 800, rng);
    nws::AdaptiveForecaster forecaster;
    for (const double v : trace) forecaster.observe(v);
    const nws::Forecast forecast = forecaster.forecast();
    double best = 1e300;
    double worst = 0.0;
    for (const auto& [name, mae] : forecaster.predictor_errors()) {
      best = std::min(best, mae);
      worst = std::max(worst, mae);
    }
    summary.add_row({family, forecast.winner, strings::format_double(forecast.mae, 3),
                     strings::format_double(best, 3), strings::format_double(worst, 3),
                     strings::format_double(best > 0 ? forecast.mae / best : 1.0, 2)});
  }
  std::printf("%s\n", summary.to_string().c_str());

  // Full per-predictor table for one family, like an NWS evaluation run.
  const auto trace = trace_for("periodic-load", 800, rng);
  nws::AdaptiveForecaster forecaster;
  for (const double v : trace) forecaster.observe(v);
  Table detail({"predictor", "MAE"});
  for (const auto& [name, mae] : forecaster.predictor_errors()) {
    detail.add_row({name, strings::format_double(mae, 4)});
  }
  std::printf("--- per-predictor error on the periodic CPU-load trace ---\n%s",
              detail.to_string().c_str());
  return 0;
}
