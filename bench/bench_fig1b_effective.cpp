// FIG1B: the effective topology from the-doors' point of view (paper
// Fig. 1b), including the firewall merge (CLAIM-MERGE) and the GridML
// output with the paper's ENV_base_BW / ENV_base_local_BW properties.
// `--json=<path>` writes the measured segment bandwidths and mapping
// cost for scripts/bench_diff.py baselines.
#include <cstdio>
#include <fstream>

#include "api/envnws.hpp"
#include "bench_util.hpp"
#include "common/units.hpp"

int main(int argc, char** argv) {
  using namespace envnws;
  bench::banner(
      "FIG1B", "paper Fig. 1(b): effective topology from the-doors's point of view",
      "Hub1 shared {the-doors, canaria, moby} ~100 Mbps;"
      " Hub2 shared {popc0, myri0, sci0} local ~100 Mbps reached through a ~10 Mbps"
      " bottleneck; Hub3 shared {myri1, myri2}; sci cluster switched {sci1..sci6}"
      " ~33 Mbps (paper GridML: base 32.65 / local 32.29)");

  const bench::BenchCli cli = bench::bench_cli(argc, argv, "ens-lyon", /*parallel_flags=*/false);
  simnet::Scenario scenario = bench::make_scenario_or_exit(cli.scenario_spec);
  simnet::Network net(simnet::Scenario(scenario).topology);

  // Only the map stage of the pipeline runs here.
  api::Session session(net, scenario);
  if (auto status = session.map(); !status.ok()) {
    std::fprintf(stderr, "mapping failed: %s\n", status.error().to_string().c_str());
    return 1;
  }
  const env::MapResult& result = session.map_result();

  std::printf("--- merged effective view (master: %s) ---\n%s\n",
              result.master_fqdn.c_str(), env::render_effective(result.root).c_str());

  std::printf("--- measured vs paper-reported segment bandwidths ---\n");
  const auto show = [&](const char* label, const char* member, double paper_base_mbps,
                        double paper_local_mbps) {
    const env::EnvNetwork* segment = result.root.find_containing(member);
    if (segment == nullptr) return;
    std::printf("  %-10s measured base %6.2f local %6.2f | paper-shape base %6.2f local %6.2f"
                " | verdict %s\n",
                label, units::to_mbps(segment->base_bw_bps),
                units::to_mbps(segment->base_local_bw_bps), paper_base_mbps, paper_local_mbps,
                to_string(segment->kind));
  };
  show("hub1", "canaria.ens-lyon.fr", 100.0, 100.0);
  show("hub2", "popc.ens-lyon.fr", 10.0, 100.0);
  show("hub3(myri)", "myri1.popc.private", 100.0, 100.0);
  show("sci", "sci3.popc.private", 32.65, 32.29);

  std::printf("\n--- mapping cost ---\n");
  std::printf("  experiments: %llu, bytes injected: %.1f MiB, simulated time: %.1f min\n",
              static_cast<unsigned long long>(result.stats.experiments),
              static_cast<double>(result.stats.bytes_sent) / (1024.0 * 1024.0),
              result.stats.duration_s / 60.0);

  std::printf("\n--- merged GridML (CLAIM-MERGE: both sites, gateways cross-aliased) ---\n%s",
              result.grid.to_string().c_str());

  if (!cli.json_path.empty()) {
    bench::JsonWriter json;
    json.field("bench", "fig1b_effective").field("scenario_spec", cli.scenario_spec);
    json.begin_array("segments");
    const auto segment = [&](const char* label, const char* member) {
      const env::EnvNetwork* found = result.root.find_containing(member);
      if (found == nullptr) return;
      json.begin_object()
          .field("label", label)
          .field("kind", env::to_string(found->kind))
          .field("base_mbps", units::to_mbps(found->base_bw_bps))
          .field("local_mbps", units::to_mbps(found->base_local_bw_bps))
          .end_object();
    };
    segment("hub1", "canaria.ens-lyon.fr");
    segment("hub2", "popc.ens-lyon.fr");
    segment("hub3-myri", "myri1.popc.private");
    segment("sci", "sci3.popc.private");
    json.end_array();
    json.begin_object("cost")
        .field("experiments", result.stats.experiments)
        .field("bytes_sent", static_cast<std::uint64_t>(result.stats.bytes_sent))
        .end_object();
    std::ofstream out(cli.json_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write --json report to '%s'\n", cli.json_path.c_str());
      return 1;
    }
    out << json.finish();
    std::printf("JSON report written to %s\n", cli.json_path.c_str());
  }
  return 0;
}
