// CLAIM-SCALE (paper §4.3): "this naive algorithm would not scale at
// all... the whole process would last about 50 days for 20 hosts. That is
// why ENV does not try to completely map the network."
//
// Prints the naive full-mapping cost model next to MEASURED ENV runs on
// switched LANs of growing size.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/strings.hpp"
#include "common/units.hpp"
#include "env/cost_model.hpp"
#include "env/mapper.hpp"
#include "env/scenario_zones.hpp"
#include "env/sim_probe_engine.hpp"
#include "simnet/scenario.hpp"

int main() {
  using namespace envnws;
  bench::banner("CLAIM-SCALE",
                "§4.3 mapping-cost argument (naive ~50 days at 20 hosts, 30 s/experiment)",
                "naive experiment count grows ~n^4 (all link pairs), ENV ~n^2;"
                " naive hits ~50 days at n=20 while ENV stays at simulated minutes");

  Table table({"hosts", "naive exps", "naive days@30s", "env model exps", "env measured exps",
               "env sim minutes", "naive/env ratio"});

  for (const int n : {4, 8, 12, 16, 20, 24, 32}) {
    const env::MappingCost naive = env::naive_full_mapping_cost(n);
    const env::MappingCost model = env::env_worst_case_cost(n);

    simnet::Scenario scenario = simnet::star_switch(n, units::mbps(100));
    simnet::Network net(simnet::Scenario(scenario).topology);
    env::MapperOptions options;
    env::SimProbeEngine engine(net, options);
    env::Mapper mapper(engine, options);
    const auto zones = env::zones_from_scenario(scenario);
    auto result = mapper.map_zone(zones.value().front());
    if (!result.ok()) {
      std::fprintf(stderr, "mapping failed at n=%d\n", n);
      return 1;
    }
    const auto measured = result.value().stats;
    table.add_row(
        {std::to_string(n), std::to_string(naive.experiments),
         strings::format_double(naive.days(30.0), 1), std::to_string(model.experiments),
         std::to_string(measured.experiments),
         strings::format_double(measured.duration_s / 60.0, 1),
         strings::format_double(static_cast<double>(naive.experiments) /
                                    static_cast<double>(measured.experiments),
                                0)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("paper anchor: naive at 20 hosts = %.1f days (paper: \"about 50 days\")\n",
              env::naive_full_mapping_cost(20).days(30.0));
  return 0;
}
