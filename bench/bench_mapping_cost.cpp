// CLAIM-SCALE (paper §4.3): "this naive algorithm would not scale at
// all... the whole process would last about 50 days for 20 hosts. That is
// why ENV does not try to completely map the network."
//
// Three sections:
//  1. The naive full-mapping cost model next to MEASURED ENV runs over a
//     growing scenario family (`--scenario` template, default
//     star-switch:{N}@100 — the swept host count substitutes into {N}).
//  2. Concurrent zone mapping: the same multi-zone platform mapped with
//     --threads=1 and --threads=K; prints the (simulated) wall-clock
//     speedup and verifies the merged results are identical.
//  3. With --map-cache=DIR: maps once through the persistent cache, then
//     again — the second run must reload with ZERO probe experiments.
//  4. With --probe=<engine-spec>: maps through the given probe engine
//     (record:/replay:/fault:/socket: — docs/TESTING.md,
//     docs/SOCKET_ENGINE.md). A record: spec is additionally replayed
//     back and verified bit-identical, so the bench doubles as a trace
//     round-trip smoke test.
//  5. Live-vs-model (skipped when ENVNWS_TEST_NO_NET=1): an in-process
//     loopback probe-agent fleet is mapped over REAL TCP sockets at
//     --jobs=1 and --jobs=K; the measured wall-clock speedup of the
//     genuinely concurrent run_batch is printed next to the
//     batch_schedule.hpp model's prediction, and the two runs must be
//     digest-identical.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "api/envnws.hpp"
#include "bench_util.hpp"
#include "common/hash.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

#include "common/units.hpp"
#include "env/cost_model.hpp"
#include "env/env_tree.hpp"
#include "env/mapper.hpp"
#include "env/probe_agent.hpp"
#include "env/scenario_zones.hpp"
#include "env/sim_probe_engine.hpp"
#include "env/socket_probe_engine.hpp"
#include "simnet/scenario.hpp"

using namespace envnws;

namespace {

constexpr const char* kDefaultTemplate = "star-switch:{N}@100";
constexpr const char* kParallelScenario = "multi-firewall:8x8";

/// identity_digest() is the full canonical identity TEXT; the JSON
/// report carries its fixed-width hash (same convention as the
/// monitor's snapshot digests).
std::string short_digest(const std::string& identity) {
  return hash::hex64(hash::fnv1a64(identity));
}

void sweep_section(const std::string& spec_template, bench::JsonWriter* json) {
  Table table({"hosts", "naive exps", "naive days@30s", "env model exps", "env measured exps",
               "env sim minutes", "naive/env ratio"});

  if (json != nullptr) json->begin_array("sweep");
  for (const int n : {4, 8, 12, 16, 20, 24, 32}) {
    const std::string spec = bench::instantiate_spec(spec_template, n);
    simnet::Scenario scenario = bench::make_scenario_or_exit(spec);
    const int hosts = static_cast<int>(scenario.topology.hosts().size());
    const env::MappingCost naive = env::naive_full_mapping_cost(hosts);
    const env::MappingCost model = env::env_worst_case_cost(hosts);

    simnet::Network net(simnet::Scenario(scenario).topology);
    env::MapperOptions options;
    env::SimProbeEngine engine(net, options);
    env::Mapper mapper(engine, options);
    const auto zones = env::zones_from_scenario(scenario);
    auto result = mapper.map_zone(zones.value().front());
    if (!result.ok()) {
      std::fprintf(stderr, "mapping '%s' failed: %s\n", spec.c_str(),
                   result.error().to_string().c_str());
      std::exit(1);
    }
    const auto measured = result.value().stats;
    table.add_row(
        {std::to_string(hosts), std::to_string(naive.experiments),
         strings::format_double(naive.days(30.0), 1), std::to_string(model.experiments),
         std::to_string(measured.experiments),
         strings::format_double(measured.duration_s / 60.0, 1),
         strings::format_double(static_cast<double>(naive.experiments) /
                                    static_cast<double>(measured.experiments),
                                0)});
    if (json != nullptr) {
      json->begin_object()
          .field("scenario", spec)
          .field("hosts", hosts)
          .field("naive_experiments", naive.experiments)
          .field("naive_days_at_30s", naive.days(30.0))
          .field("model_experiments", model.experiments)
          .field("measured_experiments", measured.experiments)
          .field("sim_minutes", measured.duration_s / 60.0)
          .end_object();
    }
    if (!bench::is_spec_template(spec_template)) break;  // single fixed scenario
  }
  if (json != nullptr) json->end_array();
  std::printf("%s\n", table.to_string().c_str());
  std::printf("paper anchor: naive at 20 hosts = %.1f days (paper: \"about 50 days\")\n\n",
              env::naive_full_mapping_cost(20).days(30.0));
}

/// Hierarchical sampled interrogation (MapperOptions::max_pairwise):
/// push the same scenario family far past the full-interrogation wall
/// and show the experiment count flattening from O(n^2) to ~O(n + k^2)
/// while the digest stays a pure function of (spec, sample_seed).
void sampled_section(const std::string& spec_template, bench::JsonWriter* json) {
  constexpr int kMaxPairwise = 64;
  std::printf("--- hierarchical sampled interrogation (--max-pairwise model: %d) ---\n",
              kMaxPairwise);
  Table table({"hosts", "full pairwise", "experiments", "reps", "inferred", "escalated",
               "digest", "real seconds"});
  if (json != nullptr) {
    json->begin_object("sampled")
        .field("max_pairwise", kMaxPairwise)
        .begin_array("sweep");
  }
  std::vector<int> sizes{256, 1024, 4096, 10000};
  if (!bench::is_spec_template(spec_template)) sizes = {0};  // single fixed scenario
  for (const int n : sizes) {
    const std::string spec =
        n == 0 ? spec_template : bench::instantiate_spec(spec_template, n);
    simnet::Scenario scenario = bench::make_scenario_or_exit(spec);
    const auto hosts = static_cast<unsigned long long>(scenario.topology.hosts().size());
    simnet::Network net(simnet::Scenario(scenario).topology);
    api::Session session(net, scenario);
    session.options().mapper.max_pairwise = kMaxPairwise;
    const auto begin = std::chrono::steady_clock::now();
    if (auto status = session.map(); !status.ok()) {
      std::fprintf(stderr, "sampled map of '%s' failed: %s\n", spec.c_str(),
                   status.error().to_string().c_str());
      std::exit(1);
    }
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - begin).count();
    const env::MapResult& result = session.map_result();
    const env::SampleStats& sampling = result.sampling;
    // C(n-1, 2) concurrent-pair experiments the paper's full phase 2b
    // would have scheduled against the master (n-1 zone members).
    const unsigned long long full_pairwise =
        hosts < 3 ? 0 : (hosts - 1) * (hosts - 2) / 2;
    // The whole point: total cost must stay linear-ish in n, never
    // quadratic. 8n + a generous fixed allowance covers phases 1-2d.
    if (result.stats.experiments > 8 * hosts + 4096) {
      std::fprintf(stderr, "BUG: sampled mapping of '%s' ran %llu experiments (> O(n*k))\n",
                   spec.c_str(),
                   static_cast<unsigned long long>(result.stats.experiments));
      std::exit(1);
    }
    const std::string digest = short_digest(result.identity_digest());
    table.add_row({std::to_string(hosts), std::to_string(full_pairwise),
                   std::to_string(result.stats.experiments),
                   std::to_string(sampling.representatives),
                   std::to_string(sampling.inferred_members),
                   std::to_string(sampling.escalated_members), digest,
                   strings::format_double(wall, 2)});
    if (json != nullptr) {
      json->begin_object()
          .field("scenario", spec)
          .field("hosts", static_cast<std::uint64_t>(hosts))
          .field("full_pairwise_experiments", static_cast<std::uint64_t>(full_pairwise))
          .field("experiments", result.stats.experiments)
          .field("representatives", sampling.representatives)
          .field("inferred_members", sampling.inferred_members)
          .field("escalated_members", sampling.escalated_members)
          .field("sim_minutes", result.stats.duration_s / 60.0)
          .field("real_seconds", wall)
          .field("digest", digest)
          .end_object();
    }
  }
  if (json != nullptr) json->end_array().end_object();
  std::printf("%s", table.to_string().c_str());
  std::printf("sampled interrogation keeps experiments ~O(n + k^2): yes\n\n");
}

/// Map `scenario` through a Session with the given zone-worker count;
/// returns the elapsed real time in seconds.
double timed_map(api::Session& session, int threads) {
  session.options().mapper.map_threads = threads;
  const auto begin = std::chrono::steady_clock::now();
  if (auto status = session.map(); !status.ok()) {
    std::fprintf(stderr, "map failed: %s\n", status.error().to_string().c_str());
    std::exit(1);
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - begin).count();
}

void parallel_section(const std::string& spec, int threads, bench::JsonWriter* json) {
  simnet::Scenario scenario = bench::make_scenario_or_exit(spec);
  std::printf("--- concurrent zone mapping: %s ---\n", spec.c_str());

  simnet::Network seq_net(simnet::Scenario(scenario).topology);
  api::Session sequential(seq_net, scenario);
  const double seq_real_s = timed_map(sequential, 1);
  const env::MapStats seq = sequential.map_result().stats;

  simnet::Network par_net(simnet::Scenario(scenario).topology);
  api::Session parallel(par_net, scenario);
  const double par_real_s = timed_map(parallel, threads);
  const env::MapStats par = parallel.map_result().stats;

  Table table({"threads", "zones", "experiments", "sim minutes", "real seconds"});
  table.add_row({"1", std::to_string(sequential.map_result().zones.size()),
                 std::to_string(seq.experiments),
                 strings::format_double(seq.duration_s / 60.0, 2),
                 strings::format_double(seq_real_s, 2)});
  table.add_row({std::to_string(threads), std::to_string(parallel.map_result().zones.size()),
                 std::to_string(par.experiments),
                 strings::format_double(par.duration_s / 60.0, 2),
                 strings::format_double(par_real_s, 2)});
  std::printf("%s", table.to_string().c_str());

  const double sim_speedup = par.duration_s > 0.0 ? seq.duration_s / par.duration_s : 0.0;
  const bool identical =
      sequential.map_result().grid.to_string() == parallel.map_result().grid.to_string() &&
      env::render_effective(sequential.map_result().root) ==
          env::render_effective(parallel.map_result().root) &&
      sequential.map_result().warnings == parallel.map_result().warnings &&
      sequential.map_result().master_fqdn == parallel.map_result().master_fqdn;
  std::printf("mapping wall-clock speedup with --threads=%d: %sx (simulated)\n", threads,
              strings::format_double(sim_speedup, 1).c_str());
  std::printf("parallel merged MapResult (grid, root, warnings) identical to sequential: %s\n\n",
              identical ? "yes" : "NO — BUG");
  if (!identical) std::exit(1);
  if (json != nullptr) {
    json->begin_object("parallel_zones")
        .field("scenario", spec)
        .field("threads", threads)
        .field("experiments", seq.experiments)
        .field("sequential_real_seconds", seq_real_s)
        .field("parallel_real_seconds", par_real_s)
        .field("sim_speedup", sim_speedup)
        .field("identical", identical)
        .field("digest", short_digest(parallel.map_result().identity_digest()))
        .end_object();
  }
}

void cache_section(const std::string& spec, const std::string& cache_dir) {
  simnet::Scenario scenario = bench::make_scenario_or_exit(spec);
  std::printf("--- persistent map cache (%s) ---\n", cache_dir.c_str());

  simnet::Network first_net(simnet::Scenario(scenario).topology);
  api::Session first(first_net, scenario);
  first.set_map_cache(cache_dir);
  if (auto status = first.map(); !status.ok()) {
    std::fprintf(stderr, "map failed: %s\n", status.error().to_string().c_str());
    std::exit(1);
  }
  const env::MapStats cold = first.map_result().stats;

  simnet::Network second_net(simnet::Scenario(scenario).topology);
  api::Session second(second_net, scenario);
  second.set_map_cache(cache_dir);
  if (auto status = second.map(); !status.ok()) {
    std::fprintf(stderr, "cached map failed: %s\n", status.error().to_string().c_str());
    std::exit(1);
  }
  const env::MapStats warm = second.map_result().stats;

  std::printf("first  map(): %llu experiments, %s MiB injected\n",
              static_cast<unsigned long long>(cold.experiments),
              strings::format_double(static_cast<double>(cold.bytes_sent) / (1024.0 * 1024.0), 1)
                  .c_str());
  std::printf("second map(): %llu experiments (reloaded from cache)\n",
              static_cast<unsigned long long>(warm.experiments));
  if (warm.experiments != 0) {
    std::fprintf(stderr, "BUG: cache reload still probed\n");
    std::exit(1);
  }
  std::printf("\n");
}

/// Batched within-zone probe schedule: map `spec` once per worker count
/// (probe_jobs = 1, 2, ..., max_jobs) and plot the modeled makespan
/// against the unconstrained list-scheduling bound. Every run must
/// produce the bit-identical MapResult (identity_digest) — batching
/// changes WHEN experiments could run, never what they measure.
void jobs_section(const std::string& spec, int max_jobs, bench::JsonWriter* json) {
  std::printf("--- batched within-zone probe schedule (--jobs): %s ---\n", spec.c_str());
  std::vector<int> sweep{1};
  for (int jobs = 2; jobs < max_jobs; jobs *= 2) sweep.push_back(jobs);
  if (max_jobs > 1) sweep.push_back(max_jobs);
  if (json != nullptr) json->begin_object().field("scenario", spec).begin_array("runs");

  std::string baseline_digest;
  double sequential_minutes = 0.0;
  double final_batched_minutes = 0.0;  ///< at the largest swept jobs value
  double final_saved_s = 0.0;
  Table table({"jobs", "batches", "batched exps", "sim minutes", "batched minutes", "speedup",
               "list-model bound"});
  for (const int jobs : sweep) {
    simnet::Scenario scenario = bench::make_scenario_or_exit(spec);
    simnet::Network net(simnet::Scenario(scenario).topology);
    api::Session session(net, scenario);
    session.options().mapper.probe_jobs = jobs;
    if (auto status = session.map(); !status.ok()) {
      std::fprintf(stderr, "map failed at --jobs=%d: %s\n", jobs,
                   status.error().to_string().c_str());
      std::exit(1);
    }
    const env::MapResult& result = session.map_result();
    if (jobs == 1) {
      baseline_digest = result.identity_digest();
      sequential_minutes = result.stats.duration_s / 60.0;
    } else if (result.identity_digest() != baseline_digest) {
      std::fprintf(stderr, "BUG: --jobs=%d MapResult differs from the sequential one\n", jobs);
      std::exit(1);
    }
    const double batched_minutes = result.batched_duration_s() / 60.0;
    final_batched_minutes = batched_minutes;
    final_saved_s = result.batch.saved_s();
    // The unconstrained bound: batched experiments spread perfectly over
    // the workers, everything else sequential. The measured makespan
    // sits above it because experiments sharing an endpoint serialize.
    const double bound_minutes =
        (result.stats.duration_s - result.batch.sequential_s +
         result.batch.sequential_s / jobs) /
        60.0;
    table.add_row({std::to_string(jobs), std::to_string(result.batch.batches),
                   std::to_string(result.batch.batched_experiments),
                   strings::format_double(result.stats.duration_s / 60.0, 2),
                   strings::format_double(batched_minutes, 2),
                   strings::format_double(
                       batched_minutes > 0.0 ? sequential_minutes / batched_minutes : 0.0, 2),
                   strings::format_double(bound_minutes, 2)});
    if (json != nullptr) {
      json->begin_object()
          .field("jobs", jobs)
          .field("batches", result.batch.batches)
          .field("batched_experiments", result.batch.batched_experiments)
          .field("sim_minutes", result.stats.duration_s / 60.0)
          .field("batched_minutes", batched_minutes)
          .field("list_model_bound_minutes", bound_minutes)
          .end_object();
    }
  }
  if (json != nullptr) json->end_array().field("digest", short_digest(baseline_digest)).end_object();
  std::printf("%s", table.to_string().c_str());
  // Zero savings is the CORRECT outcome on a platform without switched
  // segments (a hub serializes everything — see BatchStats): report it,
  // don't fail. A scenario that did earn savings must really be faster.
  if (final_saved_s <= 0.0) {
    std::printf("no switched-segment savings on this platform: batched == sequential, as "
                "modeled; MapResult bit-identical at every worker count: yes\n\n");
    return;
  }
  const bool faster = final_batched_minutes < sequential_minutes;
  std::printf("batched schedule (--jobs=%d) faster than sequential: %s; "
              "MapResult bit-identical at every worker count: yes\n\n",
              sweep.back(), faster ? "yes" : "NO — BUG");
  if (max_jobs > 1 && !faster) std::exit(1);
}

/// Live-vs-model: map a loopback probe-agent fleet over real TCP at
/// jobs=1 and jobs=max_jobs. Agents run paced fixed-rate mode, so the
/// reported measurements (and the digest) are identical across runs
/// while the wall clock honestly reflects the realized batch schedule.
void socket_section(const std::string& spec, int max_jobs, bench::JsonWriter* json) {
  if (const char* no_net = std::getenv("ENVNWS_TEST_NO_NET");
      no_net != nullptr && std::string(no_net) == "1") {
    std::printf("--- live socket agents: skipped (ENVNWS_TEST_NO_NET=1) ---\n\n");
    if (json != nullptr) {
      json->begin_object("socket_live")
          .field("scenario", spec)
          .field("skipped", true)
          .end_object();
    }
    return;
  }
  std::printf("--- live socket agents vs batch-schedule model: %s ---\n", spec.c_str());
  simnet::Scenario scenario = bench::make_scenario_or_exit(spec);

  // 512 KiB at a paced 200 Mbps ~= 21 ms per transfer: long enough for
  // honest overlap measurements, short enough for a bench.
  constexpr double kPacedRate = 200e6;
  constexpr std::int64_t kProbeBytes = 512 * 1024;
  std::vector<std::unique_ptr<env::ProbeAgent>> agents;
  std::string roster_text;
  for (const simnet::NodeId id : scenario.topology.hosts()) {
    const simnet::Node& node = scenario.topology.node(id);
    env::ProbeAgentConfig config;
    // Rostered under the zone-local name the mapper probes with.
    config.name = node.fqdn.empty() ? node.name : node.fqdn;
    config.fqdn = node.fqdn;
    config.ip = node.ip.is_zero() ? "127.0.0.1" : node.ip.to_string();
    config.fixed_rate_bps = kPacedRate;
    config.pace = true;
    agents.push_back(std::make_unique<env::ProbeAgent>(std::move(config)));
    if (auto status = agents.back()->start(); !status.ok()) {
      std::fprintf(stderr, "agent '%s' failed to start: %s\n", node.name.c_str(),
                   status.error().to_string().c_str());
      std::exit(1);
    }
    roster_text +=
        agents.back()->config().name + " 127.0.0.1:" + std::to_string(agents.back()->port()) + "\n";
  }
  // Unique per process: concurrent bench invocations on one machine
  // must not clobber each other's roster.
  const std::string roster_path =
      (std::filesystem::temp_directory_path() /
       ("envnws-bench-agents." + std::to_string(static_cast<long long>(::getpid())) + ".cfg"))
          .string();
  {
    std::ofstream out(roster_path, std::ios::trunc);
    out << roster_text;
  }

  std::string baseline_digest;
  double wall_1 = 0.0;
  double wall_k = 0.0;
  double modeled_sequential_s = 0.0;
  double modeled_makespan_s = 0.0;
  Table table({"jobs", "experiments", "wall seconds", "modeled batched s", "modeled saved s"});
  std::vector<int> sweep{1};
  if (max_jobs > 1) sweep.push_back(max_jobs);
  for (const int jobs : sweep) {
    simnet::Network net(simnet::Scenario(scenario).topology);
    api::Session session(net, scenario);
    session.options().mapper.probe_bytes = kProbeBytes;
    session.options().mapper.stabilization_gap_s = 0.0;
    session.options().mapper.probe_jobs = jobs;
    if (auto status = session.set_probe_engine_spec("socket:" + roster_path); !status.ok()) {
      std::fprintf(stderr, "socket spec failed: %s\n", status.error().to_string().c_str());
      std::exit(1);
    }
    const auto begin = std::chrono::steady_clock::now();
    if (auto status = session.map(); !status.ok()) {
      std::fprintf(stderr, "socket map failed at --jobs=%d: %s\n", jobs,
                   status.error().to_string().c_str());
      std::exit(1);
    }
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - begin).count();
    const env::MapResult& result = session.map_result();
    if (jobs == 1) {
      baseline_digest = result.identity_digest();
      wall_1 = wall;
    } else {
      wall_k = wall;
      modeled_sequential_s = result.stats.duration_s;
      modeled_makespan_s = result.batched_duration_s();
      if (result.identity_digest() != baseline_digest) {
        std::fprintf(stderr, "BUG: --jobs=%d socket MapResult differs from --jobs=1\n", jobs);
        std::exit(1);
      }
    }
    table.add_row({std::to_string(jobs), std::to_string(result.stats.experiments),
                   strings::format_double(wall, 2),
                   strings::format_double(result.batched_duration_s(), 2),
                   strings::format_double(result.batch.saved_s(), 2)});
  }
  for (auto& agent : agents) agent->stop();
  std::error_code roster_ec;
  std::filesystem::remove(roster_path, roster_ec);
  std::printf("%s", table.to_string().c_str());
  if (max_jobs <= 1) {
    std::printf("single worker requested (--jobs=1): no schedule to realize, "
                "live mapping completed\n\n");
    if (json != nullptr) {
      json->begin_object("socket_live")
          .field("scenario", spec)
          .field("skipped", false)
          .field("jobs", 1)
          .field("wall_seconds_sequential", wall_1)
          .field("digest", short_digest(baseline_digest))
          .end_object();
    }
    return;
  }

  const double live_speedup = wall_k > 0.0 ? wall_1 / wall_k : 0.0;
  const double model_speedup =
      modeled_makespan_s > 0.0 ? modeled_sequential_s / modeled_makespan_s : 0.0;
  if (json != nullptr) {
    json->begin_object("socket_live")
        .field("scenario", spec)
        .field("skipped", false)
        .field("jobs", max_jobs)
        .field("wall_seconds_sequential", wall_1)
        .field("wall_seconds_batched", wall_k)
        .field("measured_speedup", live_speedup)
        .field("model_predicted_speedup", model_speedup)
        .field("digest", short_digest(baseline_digest))
        .end_object();
  }
  std::printf("run_batch over %d real connections: %.2fx measured wall-clock speedup "
              "(batch-schedule model predicts %.2fx); digest identical: yes\n",
              max_jobs, live_speedup, model_speedup);
  const bool faster = max_jobs > 1 && wall_k < wall_1;
  std::printf("jobs=%d measurably beats jobs=1 wall-clock: %s\n\n", max_jobs,
              faster ? "yes" : "NO — BUG");
  if (max_jobs > 1 && !faster) std::exit(1);
}

/// Map through `probe_spec`; after a record: run, replay the trace back
/// and require the bit-identical MapResult (MapResult::identity_digest,
/// the same definition the golden-trace suite asserts).
void probe_engine_section(const std::string& spec, const std::string& probe_spec) {
  simnet::Scenario scenario = bench::make_scenario_or_exit(spec);
  std::printf("--- probe engine '%s' on %s ---\n", probe_spec.c_str(), spec.c_str());

  simnet::Network net(simnet::Scenario(scenario).topology);
  api::Session session(net, scenario);
  if (auto status = session.set_probe_engine_spec(probe_spec); !status.ok()) {
    std::fprintf(stderr, "bad --probe spec: %s\n", status.error().to_string().c_str());
    std::exit(2);
  }
  if (auto status = session.map(); !status.ok()) {
    std::fprintf(stderr, "map failed: %s\n", status.error().to_string().c_str());
    std::exit(1);
  }
  const env::MapStats stats = session.map_result().stats;
  std::printf("map(): %llu experiments, %zu warning(s)\n",
              static_cast<unsigned long long>(stats.experiments),
              session.map_result().warnings.size());

  if (probe_spec.rfind("record:", 0) == 0) {
    const std::string path = probe_spec.substr(std::strlen("record:"));
    simnet::Network replay_net(simnet::Scenario(scenario).topology);
    api::Session replay(replay_net, scenario);
    if (auto status = replay.set_probe_engine_spec("replay:" + path); !status.ok()) {
      std::fprintf(stderr, "replay setup failed: %s\n", status.error().to_string().c_str());
      std::exit(1);
    }
    if (auto status = replay.map(); !status.ok()) {
      std::fprintf(stderr, "replay failed: %s\n", status.error().to_string().c_str());
      std::exit(1);
    }
    const bool identical =
        session.map_result().identity_digest() == replay.map_result().identity_digest();
    std::printf("trace replay from '%s' bit-identical to recorded run: %s\n", path.c_str(),
                identical ? "yes" : "NO — BUG");
    if (!identical) std::exit(1);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchCli cli = bench::bench_cli(argc, argv, kDefaultTemplate);
  bench::banner("CLAIM-SCALE",
                "§4.3 mapping-cost argument (naive ~50 days at 20 hosts, 30 s/experiment)",
                "naive experiment count grows ~n^4 (all link pairs), ENV ~n^2; naive hits"
                " ~50 days at n=20 while ENV stays at simulated minutes — and concurrent"
                " zone mapping cuts those minutes by ~the zone count");

  // --json: a machine-readable report next to the tables (scenario,
  // worker counts, wall clocks, model predictions, digests).
  bench::JsonWriter writer;
  bench::JsonWriter* json = cli.json_path.empty() ? nullptr : &writer;
  if (json != nullptr) {
    json->field("bench", "mapping_cost")
        .field("scenario_spec", cli.scenario_spec)
        .field("threads", cli.threads)
        .field("jobs", cli.jobs);
  }

  sweep_section(cli.scenario_spec, json);
  sampled_section(cli.scenario_spec, json);

  // The zone fan-out needs a genuinely multi-zone platform: use the
  // given scenario when it is one concrete spec, the default firewall
  // family when the bench swept a template.
  const std::string parallel_spec =
      bench::is_spec_template(cli.scenario_spec) ? kParallelScenario : cli.scenario_spec;
  parallel_section(parallel_spec, cli.threads, json);

  // The within-zone batch schedule: a single-zone star (where zone
  // fan-out buys nothing — the exact gap this schedule closes) and the
  // multi-zone firewall platform.
  if (json != nullptr) json->begin_array("probe_batching");
  jobs_section(bench::is_spec_template(cli.scenario_spec)
                   ? bench::instantiate_spec(cli.scenario_spec, 24)
                   : cli.scenario_spec,
               cli.jobs, json);
  if (bench::is_spec_template(cli.scenario_spec)) {
    jobs_section(kParallelScenario, cli.jobs, json);
  }
  if (json != nullptr) json->end_array();

  // The realized batch schedule: real sockets, real overlap, next to
  // the model the jobs_section plotted.
  socket_section("star-switch:12@100", cli.jobs, json);

  if (!cli.map_cache_dir.empty()) cache_section(parallel_spec, cli.map_cache_dir);
  if (!cli.probe_spec.empty()) probe_engine_section(parallel_spec, cli.probe_spec);

  if (json != nullptr) {
    std::ofstream out(cli.json_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write --json report to '%s'\n", cli.json_path.c_str());
      return 1;
    }
    out << json->finish();
    std::printf("JSON report written to %s\n", cli.json_path.c_str());
  }
  return 0;
}
