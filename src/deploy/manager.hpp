// The NWS manager (paper §5.2).
//
// "We realized a NWS manager program using a configuration file shared
// across all involved hosts and applying the local parts on each host."
// This module is that manager: it serializes a DeploymentPlan into a
// single shared configuration file, parses it back, extracts the
// per-host process list (what one host's manager instance would launch),
// and applies the plan onto a simulated platform by instantiating the
// NWS processes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "deploy/plan.hpp"
#include "nws/system.hpp"

namespace envnws::deploy {

/// Serialize the plan into the shared configuration file format.
[[nodiscard]] std::string generate_config(const DeploymentPlan& plan);

/// Parse a shared configuration file back into a plan (the manager's
/// startup path on each host).
Result<DeploymentPlan> parse_config(const std::string& text);

/// What a single host's manager instance must start locally.
struct HostAssignment {
  std::string host;
  bool nameserver = false;
  bool forecaster = false;
  bool memory = false;
  bool host_sensor = false;
  std::vector<std::string> cliques;  ///< clique names this host joins

  [[nodiscard]] std::string render() const;
};

[[nodiscard]] HostAssignment local_assignment(const DeploymentPlan& plan,
                                              const std::string& host);

struct ManagerOptions {
  std::int64_t bandwidth_probe_bytes = 64 * 1024;
  bool start_host_sensors = true;
  double host_sensor_period_s = 10.0;
};

/// Launch every process of the plan on the simulated platform. The
/// returned system is started (cliques circulating, sensors ticking).
Result<std::unique_ptr<nws::NwsSystem>> apply_plan(const DeploymentPlan& plan,
                                                   simnet::Network& net,
                                                   ManagerOptions options = {});

}  // namespace envnws::deploy
