// The deployment planning algorithm (paper §5.1) — the core contribution:
// derive an NWS deployment plan from the Effective Network View.
#pragma once

#include <string>
#include <vector>

#include "common/result.hpp"
#include "deploy/plan.hpp"
#include "env/env_tree.hpp"
#include "env/mapper.hpp"

namespace envnws::deploy {

struct PlannerOptions {
  double clique_period_s = 10.0;
  /// Payload for LAN clique bandwidth experiments (the NWS default).
  std::int64_t lan_probe_bytes = 64 * 1024;
  /// Payload for inter-network cliques: larger, so WAN latency does not
  /// dominate the timed transfer.
  std::int64_t wan_probe_bytes = 1024 * 1024;
  /// Split switched cliques larger than this into sub-cliques (0 = never).
  /// Splitting a *switched* network is collision-safe because its pairs
  /// are independent; the sub-cliques are stitched with one shared member.
  std::size_t max_clique_size = 0;
  /// Prefer these machines as network representatives (the firewall
  /// merge pivots are natural choices; the planner also ranks zone
  /// masters first automatically when planning from a MapResult).
  std::vector<std::string> preferred_representatives;
  /// Extension (paper conclusion): plan for host-level locks. Cross-
  /// clique collisions through shared representatives disappear, and
  /// switched cliques get several parallel tokens.
  bool use_host_locks = false;
  /// Tokens per switched clique when host locks are on (capped at
  /// floor(members/2), the concurrency a switched segment supports).
  std::size_t switched_parallel_tokens = 2;
};

/// Plan from a merged map result. Memory servers are placed on the
/// primary master and on each secondary zone's master (one per site —
/// the "hierarchical monitoring infrastructure" of §5).
Result<DeploymentPlan> plan_deployment(const env::MapResult& map,
                                       PlannerOptions options = {});

/// Plan from a bare effective view (single-zone runs, tests).
Result<DeploymentPlan> plan_from_tree(const env::EnvNetwork& root, const std::string& master,
                                      PlannerOptions options = {});

}  // namespace envnws::deploy
