// Deployment-constraint validator.
//
// Checks a plan against the ground-truth platform for the four §2.3
// constraints: (1) experiments must not collide — quantified here as the
// worst-case relative measurement error any clique's experiment can
// suffer from a concurrent experiment of another clique (within a clique
// the token ring already serializes); (2) cliques stay small enough for
// a given re-measurement frequency; (3) completeness — every host pair is
// answerable directly, by substitution, or by aggregation; (4)
// intrusiveness — experiments and bytes injected per full cycle.
#pragma once

#include <string>
#include <vector>

#include "deploy/plan.hpp"
#include "simnet/network.hpp"

namespace envnws::deploy {

struct CollisionFinding {
  std::string clique_a;
  std::string pair_a;
  std::string clique_b;
  std::string pair_b;
  /// Relative error the (a) experiment suffers when (b) runs concurrently.
  double worst_error = 0.0;
};

struct ValidationReport {
  // Constraint 1 — collision-freedom.
  bool collision_free = true;
  /// Cross-clique experiment pairs whose concurrent error exceeds the
  /// tolerance (sorted by severity, worst first).
  std::vector<CollisionFinding> collisions;
  double worst_collision_error = 0.0;

  // Constraint 2 — scalability.
  std::size_t max_clique_size = 0;
  /// Worst (longest) full-cycle time across cliques: how stale a series
  /// can get.
  double worst_cycle_time_s = 0.0;

  // Constraint 3 — completeness.
  bool complete = true;
  std::vector<std::pair<std::string, std::string>> uncovered_pairs;

  // Constraint 4 — intrusiveness.
  std::uint64_t experiments_per_cycle = 0;
  std::int64_t bytes_per_cycle = 0;

  [[nodiscard]] bool ok() const { return collision_free && complete; }
  [[nodiscard]] std::string render() const;
};

struct ValidatorOptions {
  /// Concurrent-measurement error above this counts as a collision. The
  /// paper's hard constraint is zero sharing; hierarchical deployments
  /// accept bounded cross-level interference (a 100 Mbps LAN experiment
  /// barely dents a WAN experiment capped at 10 Mbps), so the tolerance
  /// is configurable.
  double collision_tolerance = 0.05;
  std::int64_t bandwidth_probe_bytes = 64 * 1024;
};

[[nodiscard]] ValidationReport validate_plan(const DeploymentPlan& plan,
                                             simnet::Network& net,
                                             ValidatorOptions options = {});

}  // namespace envnws::deploy
