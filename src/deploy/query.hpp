// Completeness layer: answering queries about ANY host pair (§2.3).
//
// The NWS itself can only answer for pairs some clique measures. The
// deployment plan closes the gap with two mechanisms the paper calls for:
//   - substitution: on a shared segment, the representative pair's series
//     answers for every covered pair ("NWS is unable to substitute
//     automatically ... the user has to keep track of this" — this layer
//     is that bookkeeping, automated);
//   - aggregation: when no direct or substituted series exists, chain the
//     measured segments along the clique graph: latencies add up,
//     bandwidths take the minimum ("A-B-C gateway" example of §2.3).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "deploy/plan.hpp"
#include "nws/system.hpp"

namespace envnws::deploy {

enum class QueryMethod { direct, substituted, aggregated };

[[nodiscard]] const char* to_string(QueryMethod method);

/// Static view of which host pairs a plan can answer for, and through
/// which measured series. Usable without a running NWS (the validator's
/// completeness check) as well as by the live QueryService.
class CoverageGraph {
 public:
  using Resolver = std::function<std::string(const std::string&)>;

  /// `resolve` maps plan machine names to series/node names (identity by
  /// default).
  CoverageGraph(const DeploymentPlan& plan, Resolver resolve = nullptr);

  /// Direct or substituted measured pair answering for (a, b), if any.
  [[nodiscard]] const std::pair<std::string, std::string>* measured_pair(
      const std::string& a, const std::string& b) const;
  /// The measured-pair chain answering for (src, dst); empty if none.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> route(
      const std::string& src, const std::string& dst) const;
  [[nodiscard]] bool coverable(const std::string& src, const std::string& dst) const;

 private:
  std::map<std::string, std::vector<std::string>> adjacency_;
  std::map<std::pair<std::string, std::string>, std::pair<std::string, std::string>>
      pair_to_series_;
};

struct PathQueryReply {
  double value = 0.0;  ///< forecast (bit/s or seconds)
  QueryMethod method = QueryMethod::direct;
  /// The measured pairs combined to produce the value (>1 => aggregated).
  std::vector<std::pair<std::string, std::string>> segments;
};

class QueryService {
 public:
  /// `plan` members are canonical machine names; they are resolved to
  /// topology node names through the system's network.
  QueryService(nws::NwsSystem& system, const DeploymentPlan& plan);

  /// End-to-end bandwidth forecast between any two deployed hosts.
  Result<PathQueryReply> bandwidth(const std::string& client, const std::string& src,
                                   const std::string& dst);
  /// End-to-end latency forecast (seconds).
  Result<PathQueryReply> latency(const std::string& client, const std::string& src,
                                 const std::string& dst);
  [[nodiscard]] const CoverageGraph& coverage() const { return coverage_; }

 private:
  [[nodiscard]] std::string resolve(const std::string& machine) const;
  Result<PathQueryReply> query(nws::ResourceKind kind, const std::string& client,
                               const std::string& src, const std::string& dst);

  nws::NwsSystem& system_;
  DeploymentPlan plan_;
  CoverageGraph coverage_;
};

/// Resolver mapping canonical machine fqdns to topology node names.
[[nodiscard]] CoverageGraph::Resolver topology_resolver(const simnet::Topology& topo);

}  // namespace envnws::deploy
