// NWS deployment plans (paper §5.1).
//
// A plan answers "which NWS processes run where, and which measurement
// cliques exist": one clique per ENV network — a representative pair for
// shared segments (one couple's connectivity is representative of every
// couple's), the full member set for switched segments (pairs are
// independent but each host may join at most one experiment at a time) —
// plus inter-network cliques linking one representative per sibling, and
// a substitution table recording which unmeasured pairs a representative
// pair stands for.
#pragma once

#include <string>
#include <vector>

#include "common/result.hpp"

namespace envnws::deploy {

enum class CliqueRole {
  shared_pair,   ///< two representatives of a shared (hub) segment
  switched_all,  ///< every member of a switched segment
  inter,         ///< one representative per sibling network
};

[[nodiscard]] const char* to_string(CliqueRole role);

struct PlannedClique {
  std::string name;
  CliqueRole role = CliqueRole::inter;
  std::vector<std::string> members;  ///< canonical machine names
  /// The ENV network this clique monitors (label, for reports).
  std::string network_label;
  double period_s = 10.0;
  /// Bandwidth-experiment payload. LAN cliques keep the NWS default of
  /// 64 KiB; inter-network cliques need larger probes or the transfer
  /// time drowns in WAN round-trip latency and bandwidth is
  /// underestimated by ~2x.
  std::int64_t probe_bytes = 64 * 1024;
  /// Extension: tokens circulating concurrently (switched segments with
  /// host locking only; >1 multiplies the refresh rate).
  std::size_t parallel_tokens = 1;
};

/// "The connexion (AB) is representative of the connexion (CD)": every
/// pair within `covered` may be answered with the (rep_a, rep_b) series.
struct Substitution {
  std::string network_label;
  std::vector<std::string> covered;
  std::string rep_a;
  std::string rep_b;
};

struct DeploymentPlan {
  std::string master;  ///< deployment viewpoint (runs NS + forecaster)
  std::string nameserver_host;
  std::string forecaster_host;
  std::vector<std::string> memory_hosts;
  std::vector<std::string> hosts;  ///< every machine receiving a sensor
  std::vector<PlannedClique> cliques;
  std::vector<Substitution> substitutions;
  /// Extension (paper conclusion): deploy with host-level measurement
  /// locks; experiments sharing an endpoint serialize across cliques,
  /// and switched cliques may run disjoint-host experiments in parallel.
  bool use_host_locks = false;

  /// Total experiments in one full measurement cycle (every clique
  /// visiting each of its ordered pairs once) — the intrusiveness proxy.
  [[nodiscard]] std::uint64_t experiments_per_cycle() const;
  [[nodiscard]] const PlannedClique* find_clique(const std::string& name) const;
  [[nodiscard]] std::string render() const;
};

}  // namespace envnws::deploy
