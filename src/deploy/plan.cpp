#include "deploy/plan.hpp"

#include <sstream>

#include "common/strings.hpp"

namespace envnws::deploy {

const char* to_string(CliqueRole role) {
  switch (role) {
    case CliqueRole::shared_pair: return "shared-pair";
    case CliqueRole::switched_all: return "switched-all";
    case CliqueRole::inter: return "inter";
  }
  return "?";
}

std::uint64_t DeploymentPlan::experiments_per_cycle() const {
  std::uint64_t total = 0;
  for (const auto& clique : cliques) {
    const auto n = static_cast<std::uint64_t>(clique.members.size());
    if (n >= 2) total += n * (n - 1);
  }
  return total;
}

const PlannedClique* DeploymentPlan::find_clique(const std::string& name) const {
  for (const auto& clique : cliques) {
    if (clique.name == name) return &clique;
  }
  return nullptr;
}

std::string DeploymentPlan::render() const {
  std::ostringstream out;
  out << "NWS deployment plan (master: " << master << ")\n";
  out << "  name server : " << nameserver_host << "\n";
  out << "  forecaster  : " << forecaster_host << "\n";
  out << "  memories    : " << strings::join(memory_hosts, ", ") << "\n";
  if (use_host_locks) out << "  host locks  : enabled (paper-conclusion extension)\n";
  out << "  cliques:\n";
  for (const auto& clique : cliques) {
    out << "    [" << clique.name << "] (" << to_string(clique.role) << ", net '"
        << clique.network_label << "', period " << clique.period_s
        << "s): " << strings::join(clique.members, ", ") << "\n";
  }
  if (!substitutions.empty()) {
    out << "  substitutions:\n";
    for (const auto& sub : substitutions) {
      out << "    any pair of {" << strings::join(sub.covered, ", ") << "} -> ("
          << sub.rep_a << ", " << sub.rep_b << ")\n";
    }
  }
  out << "  experiments per cycle: " << experiments_per_cycle() << "\n";
  return out.str();
}

}  // namespace envnws::deploy
