#include "deploy/validate.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/strings.hpp"
#include "deploy/query.hpp"
#include "simnet/fairshare.hpp"

namespace envnws::deploy {

namespace {

struct ResolvedClique {
  std::string name;
  double period_s = 10.0;
  std::vector<simnet::NodeId> members;
  std::vector<std::pair<simnet::NodeId, simnet::NodeId>> pairs;
};

}  // namespace

ValidationReport validate_plan(const DeploymentPlan& plan, simnet::Network& net,
                               ValidatorOptions options) {
  ValidationReport report;
  const simnet::Topology& topo = net.topology();
  const auto resolve = topology_resolver(topo);

  // Resolve cliques to node ids and ordered experiment pairs.
  std::vector<ResolvedClique> cliques;
  for (const auto& planned : plan.cliques) {
    ResolvedClique clique;
    clique.name = planned.name;
    clique.period_s = planned.period_s;
    for (const auto& member : planned.members) {
      if (auto id = topo.find_by_name(resolve(member)); id.ok()) {
        clique.members.push_back(id.value());
      }
    }
    for (const simnet::NodeId a : clique.members) {
      for (const simnet::NodeId b : clique.members) {
        if (a != b) clique.pairs.emplace_back(a, b);
      }
    }
    report.max_clique_size = std::max(report.max_clique_size, clique.members.size());
    report.worst_cycle_time_s = std::max(
        report.worst_cycle_time_s, clique.period_s * static_cast<double>(clique.pairs.size()));
    cliques.push_back(std::move(clique));
  }

  // --- constraint 1: collision-freedom ---------------------------------
  const std::vector<double>& capacities = net.resource_capacities();
  const auto pair_label = [&topo](std::pair<simnet::NodeId, simnet::NodeId> p) {
    return topo.node(p.first).name + "->" + topo.node(p.second).name;
  };
  for (std::size_t i = 0; i < cliques.size(); ++i) {
    for (std::size_t j = 0; j < cliques.size(); ++j) {
      if (i == j) continue;
      for (const auto& pa : cliques[i].pairs) {
        const auto res_a = net.path_resources(pa.first, pa.second);
        if (!res_a.ok()) continue;
        for (const auto& pb : cliques[j].pairs) {
          // Host-level locks (extension) serialize any two experiments
          // that share an endpoint: those can never run concurrently.
          if (plan.use_host_locks &&
              (pa.first == pb.first || pa.first == pb.second || pa.second == pb.first ||
               pa.second == pb.second)) {
            continue;
          }
          const auto res_b = net.path_resources(pb.first, pb.second);
          if (!res_b.ok()) continue;
          // Fast reject: disjoint resource sets can never interact.
          std::set<std::uint32_t> set_a(res_a.value().begin(), res_a.value().end());
          const bool overlap =
              std::any_of(res_b.value().begin(), res_b.value().end(),
                          [&set_a](std::uint32_t r) { return set_a.count(r) > 0; });
          if (!overlap) continue;
          // Quantify: max-min rate of experiment (a) alone vs concurrent.
          simnet::FairShareProblem alone{capacities, {res_a.value()}};
          simnet::FairShareProblem together{capacities, {res_a.value(), res_b.value()}};
          const double rate_alone = simnet::solve_max_min(alone)[0];
          const double rate_together = simnet::solve_max_min(together)[0];
          const double error =
              rate_alone > 0.0 ? 1.0 - rate_together / rate_alone : 0.0;
          report.worst_collision_error = std::max(report.worst_collision_error, error);
          if (error > options.collision_tolerance) {
            report.collisions.push_back(CollisionFinding{
                cliques[i].name, pair_label(pa), cliques[j].name, pair_label(pb), error});
          }
        }
      }
    }
  }
  std::sort(report.collisions.begin(), report.collisions.end(),
            [](const CollisionFinding& a, const CollisionFinding& b) {
              return a.worst_error > b.worst_error;
            });
  report.collision_free = report.collisions.empty();

  // --- constraint 3: completeness --------------------------------------
  const CoverageGraph coverage(plan, resolve);
  std::vector<std::string> nodes;
  for (const auto& host : plan.hosts) nodes.push_back(resolve(host));
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      if (!coverage.coverable(nodes[i], nodes[j])) {
        report.uncovered_pairs.emplace_back(nodes[i], nodes[j]);
      }
    }
  }
  report.complete = report.uncovered_pairs.empty();

  // --- constraint 4: intrusiveness --------------------------------------
  report.experiments_per_cycle = plan.experiments_per_cycle();
  report.bytes_per_cycle = 0;
  for (const auto& planned : plan.cliques) {
    const auto n = static_cast<std::int64_t>(planned.members.size());
    if (n < 2) continue;
    const std::int64_t probe =
        planned.probe_bytes > 0 ? planned.probe_bytes : options.bandwidth_probe_bytes;
    report.bytes_per_cycle += n * (n - 1) * (probe + 2 * 4 /*latency*/ + 64 /*store*/);
  }
  return report;
}

std::string ValidationReport::render() const {
  std::ostringstream out;
  out << "deployment validation: " << (ok() ? "OK" : "VIOLATIONS FOUND") << "\n";
  out << "  collision-free : " << (collision_free ? "yes" : "NO") << " (worst concurrent error "
      << strings::format_double(worst_collision_error * 100.0, 1) << "%)\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(collisions.size(), 8); ++i) {
    const auto& c = collisions[i];
    out << "    " << c.clique_a << " [" << c.pair_a << "] vs " << c.clique_b << " ["
        << c.pair_b << "]: " << strings::format_double(c.worst_error * 100.0, 1) << "%\n";
  }
  out << "  completeness   : " << (complete ? "yes" : "NO");
  if (!uncovered_pairs.empty()) {
    out << " (" << uncovered_pairs.size() << " uncovered pairs, e.g. "
        << uncovered_pairs.front().first << "<->" << uncovered_pairs.front().second << ")";
  }
  out << "\n";
  out << "  max clique     : " << max_clique_size << " members\n";
  out << "  worst cycle    : " << strings::format_double(worst_cycle_time_s, 1) << " s\n";
  out << "  intrusiveness  : " << experiments_per_cycle << " experiments / cycle, "
      << bytes_per_cycle << " bytes / cycle\n";
  return out.str();
}

}  // namespace envnws::deploy
