#include "deploy/planner.hpp"

#include <algorithm>
#include <set>

namespace envnws::deploy {

using env::EnvNetwork;
using env::NetKind;

namespace {

class Planner {
 public:
  Planner(const std::string& master, const PlannerOptions& options)
      : master_(master), options_(options) {}

  Result<DeploymentPlan> run(const EnvNetwork& root) {
    plan_.master = master_;
    plan_.nameserver_host = master_;
    plan_.forecaster_host = master_;
    plan_.use_host_locks = options_.use_host_locks;
    plan_.hosts = root.all_machines();
    std::sort(plan_.hosts.begin(), plan_.hosts.end());
    plan_.hosts.erase(std::unique(plan_.hosts.begin(), plan_.hosts.end()),
                      plan_.hosts.end());
    if (plan_.hosts.empty()) {
      return make_error(ErrorCode::invalid_argument, "effective view contains no machines");
    }
    visit(root);
    if (plan_.memory_hosts.empty()) plan_.memory_hosts.push_back(master_);
    return plan_;
  }

  void add_memory_host(const std::string& host) {
    if (std::find(plan_.memory_hosts.begin(), plan_.memory_hosts.end(), host) ==
        plan_.memory_hosts.end()) {
      plan_.memory_hosts.push_back(host);
    }
  }

 private:
  /// Rank of a machine as a representative: preferred (merge pivots /
  /// zone masters) beat ordinary members; the global master is avoided
  /// (the paper picked canaria+moby for hub1, not the-doors); ties break
  /// alphabetically for determinism.
  [[nodiscard]] std::vector<std::string> ranked(std::vector<std::string> machines) const {
    std::sort(machines.begin(), machines.end(), [this](const auto& a, const auto& b) {
      const auto rank = [this](const std::string& m) {
        const bool preferred =
            std::find(options_.preferred_representatives.begin(),
                      options_.preferred_representatives.end(),
                      m) != options_.preferred_representatives.end();
        if (preferred) return 0;
        if (m == master_) return 2;
        return 1;
      };
      const int ra = rank(a);
      const int rb = rank(b);
      if (ra != rb) return ra < rb;
      return a < b;
    });
    return machines;
  }

  /// The machine that stands for a whole subtree in inter-network cliques.
  [[nodiscard]] std::string representative_of(const EnvNetwork& network) const {
    if (!network.machines.empty()) return ranked(network.machines).front();
    for (const auto& child : network.children) {
      const std::string rep = representative_of(child);
      if (!rep.empty()) return rep;
    }
    return "";
  }

  void add_clique(CliqueRole role, const std::string& network_label,
                  std::vector<std::string> members) {
    if (members.size() < 2) return;
    PlannedClique clique;
    clique.name = "clique-" + std::to_string(plan_.cliques.size() + 1) + "-" +
                  (network_label.empty() ? to_string(role) : network_label);
    clique.role = role;
    clique.members = std::move(members);
    clique.network_label = network_label;
    clique.period_s = options_.clique_period_s;
    clique.probe_bytes =
        role == CliqueRole::inter ? options_.wan_probe_bytes : options_.lan_probe_bytes;
    if (options_.use_host_locks && role == CliqueRole::switched_all) {
      clique.parallel_tokens =
          std::min(options_.switched_parallel_tokens, clique.members.size() / 2);
      if (clique.parallel_tokens < 1) clique.parallel_tokens = 1;
    }
    plan_.cliques.push_back(std::move(clique));
  }

  void plan_shared(const EnvNetwork& network) {
    // One couple's connectivity is representative of every couple's:
    // measure two representatives, substitute for the rest.
    const std::vector<std::string> by_rank = ranked(network.machines);
    std::vector<std::string> pair(by_rank.begin(),
                                  by_rank.begin() + std::min<std::size_t>(2, by_rank.size()));
    if (pair.size() < 2) return;
    add_clique(CliqueRole::shared_pair, network.label, pair);

    Substitution substitution;
    substitution.network_label = network.label;
    substitution.covered = network.machines;
    // The gateway sits on this medium too: its local pairs are covered.
    if (!network.gateway.empty() &&
        std::find(substitution.covered.begin(), substitution.covered.end(),
                  network.gateway) == substitution.covered.end()) {
      substitution.covered.push_back(network.gateway);
    }
    std::sort(substitution.covered.begin(), substitution.covered.end());
    substitution.rep_a = pair[0];
    substitution.rep_b = pair[1];
    plan_.substitutions.push_back(std::move(substitution));
  }

  void plan_switched(const EnvNetwork& network) {
    // Pairs are independent but a host must join one experiment at a
    // time: one clique with every member (§5.1). The gateway joins so
    // member<->rest-of-world paths have a measured first hop.
    std::vector<std::string> members = network.machines;
    if (!network.gateway.empty() &&
        std::find(members.begin(), members.end(), network.gateway) == members.end()) {
      members.push_back(network.gateway);
    }
    std::sort(members.begin(), members.end());

    if (options_.max_clique_size >= 3 && members.size() > options_.max_clique_size) {
      // Scalability split: carve into sub-cliques stitched by a shared
      // pivot member, so aggregation paths exist across the split.
      const std::string pivot = ranked(members).front();
      std::vector<std::string> rest;
      for (const auto& member : members) {
        if (member != pivot) rest.push_back(member);
      }
      const std::size_t chunk = options_.max_clique_size - 1;
      for (std::size_t start = 0, index = 1; start < rest.size();
           start += chunk, ++index) {
        std::vector<std::string> sub{pivot};
        for (std::size_t i = start; i < std::min(rest.size(), start + chunk); ++i) {
          sub.push_back(rest[i]);
        }
        add_clique(CliqueRole::switched_all,
                   network.label + "/part" + std::to_string(index), sub);
      }
      return;
    }
    add_clique(CliqueRole::switched_all, network.label, members);
  }

  void visit(const EnvNetwork& network) {
    switch (network.kind) {
      case NetKind::shared:
        plan_shared(network);
        break;
      case NetKind::switched:
      case NetKind::inconclusive:
        // Inconclusive segments get the conservative treatment: a full
        // clique is collision-safe whether the medium is shared or
        // switched, at the price of more experiments.
        plan_switched(network);
        break;
      case NetKind::structural:
        break;
    }

    // Children: recurse, then link the siblings of this level with an
    // inter-network clique of one representative each. Machines sitting
    // directly on a structural node count as their own group.
    std::vector<std::string> group_representatives;
    if (network.kind == NetKind::structural) {
      for (const auto& machine : network.machines) group_representatives.push_back(machine);
    }
    for (const auto& child : network.children) {
      visit(child);
      const std::string rep = representative_of(child);
      if (!rep.empty()) group_representatives.push_back(rep);
    }
    // Children that hang off a *LAN* network (e.g. the sci switch behind
    // the hub2 gateway sci0) need no inter clique: the gateway membership
    // already stitches the levels together. Only structural (routing)
    // nodes link their sibling groups.
    if (network.kind == NetKind::structural && group_representatives.size() >= 2) {
      add_clique(CliqueRole::inter, network.label.empty() ? "root" : network.label,
                 ranked(group_representatives));
    }
  }

  std::string master_;
  PlannerOptions options_;
  DeploymentPlan plan_;
};

}  // namespace

Result<DeploymentPlan> plan_from_tree(const env::EnvNetwork& root, const std::string& master,
                                      PlannerOptions options) {
  Planner planner(master, options);
  return planner.run(root);
}

Result<DeploymentPlan> plan_deployment(const env::MapResult& map, PlannerOptions options) {
  // Zone masters (the firewall-merge pivots) make natural representatives.
  for (const auto& zone : map.zones) {
    const std::string canonical = map.canonical(zone.master_fqdn);
    if (canonical != map.master_fqdn) {
      options.preferred_representatives.push_back(canonical);
    }
  }
  auto plan = plan_from_tree(map.root, map.master_fqdn, options);
  if (!plan.ok()) return plan;
  // One memory server per site: the primary master plus each secondary
  // zone's master.
  for (const auto& zone : map.zones) {
    const std::string canonical = map.canonical(zone.master_fqdn);
    if (std::find(plan.value().memory_hosts.begin(), plan.value().memory_hosts.end(),
                  canonical) == plan.value().memory_hosts.end()) {
      plan.value().memory_hosts.push_back(canonical);
    }
  }
  return plan;
}

}  // namespace envnws::deploy
