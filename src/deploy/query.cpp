#include "deploy/query.hpp"

#include <algorithm>
#include <deque>
#include <limits>

namespace envnws::deploy {

const char* to_string(QueryMethod method) {
  switch (method) {
    case QueryMethod::direct: return "direct";
    case QueryMethod::substituted: return "substituted";
    case QueryMethod::aggregated: return "aggregated";
  }
  return "?";
}

namespace {
std::pair<std::string, std::string> ordered(const std::string& a, const std::string& b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}
}  // namespace

CoverageGraph::Resolver topology_resolver(const simnet::Topology& topo) {
  return [&topo](const std::string& machine) {
    if (auto id = topo.find_host_by_fqdn(machine); id.ok()) {
      return topo.node(id.value()).name;
    }
    return machine;  // assume it already is a node name
  };
}

CoverageGraph::CoverageGraph(const DeploymentPlan& plan, Resolver resolve) {
  if (!resolve) resolve = [](const std::string& name) { return name; };
  const auto link = [this](const std::string& a, const std::string& b,
                           const std::string& series_a, const std::string& series_b) {
    pair_to_series_.emplace(ordered(a, b), std::make_pair(series_a, series_b));
    adjacency_[a].push_back(b);
    adjacency_[b].push_back(a);
  };

  // Directly measured pairs: every pair of every clique.
  for (const auto& clique : plan.cliques) {
    std::vector<std::string> members;
    members.reserve(clique.members.size());
    for (const auto& member : clique.members) members.push_back(resolve(member));
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        link(members[i], members[j], members[i], members[j]);
      }
    }
  }
  // Substituted pairs: covered pairs answered by the representative pair.
  for (const auto& substitution : plan.substitutions) {
    const std::string rep_a = resolve(substitution.rep_a);
    const std::string rep_b = resolve(substitution.rep_b);
    std::vector<std::string> covered;
    covered.reserve(substitution.covered.size());
    for (const auto& machine : substitution.covered) covered.push_back(resolve(machine));
    for (std::size_t i = 0; i < covered.size(); ++i) {
      for (std::size_t j = i + 1; j < covered.size(); ++j) {
        if (pair_to_series_.count(ordered(covered[i], covered[j])) == 0) {
          link(covered[i], covered[j], rep_a, rep_b);
        }
      }
    }
  }
}

const std::pair<std::string, std::string>* CoverageGraph::measured_pair(
    const std::string& a, const std::string& b) const {
  const auto it = pair_to_series_.find(ordered(a, b));
  return it == pair_to_series_.end() ? nullptr : &it->second;
}

std::vector<std::pair<std::string, std::string>> CoverageGraph::route(
    const std::string& src, const std::string& dst) const {
  if (src == dst) return {};
  if (const auto* direct = measured_pair(src, dst)) return {*direct};

  // Breadth-first search over the measured-pair graph (fewest segments
  // means fewest stacked estimation errors).
  std::map<std::string, std::string> parent;
  std::deque<std::string> frontier{src};
  parent[src] = src;
  while (!frontier.empty()) {
    const std::string current = frontier.front();
    frontier.pop_front();
    if (current == dst) break;
    const auto it = adjacency_.find(current);
    if (it == adjacency_.end()) continue;
    for (const auto& next : it->second) {
      if (parent.count(next) == 0) {
        parent[next] = current;
        frontier.push_back(next);
      }
    }
  }
  if (parent.count(dst) == 0) return {};
  std::vector<std::pair<std::string, std::string>> chain;
  for (std::string cursor = dst; cursor != src; cursor = parent[cursor]) {
    const auto& series = *measured_pair(parent[cursor], cursor);
    // Directly-measured segments keep the *walk* orientation — on
    // asymmetric routes the two directions have different series and the
    // query must follow the direction travelled. Substituted segments
    // keep the representative pair's own orientation.
    if (ordered(series.first, series.second) == ordered(parent[cursor], cursor)) {
      chain.emplace_back(parent[cursor], cursor);
    } else {
      chain.push_back(series);
    }
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

bool CoverageGraph::coverable(const std::string& src, const std::string& dst) const {
  if (src == dst) return true;
  return !route(src, dst).empty();
}

std::string QueryService::resolve(const std::string& machine) const {
  return topology_resolver(system_.network().topology())(machine);
}

QueryService::QueryService(nws::NwsSystem& system, const DeploymentPlan& plan)
    : system_(system),
      plan_(plan),
      coverage_(plan, topology_resolver(system.network().topology())) {}

Result<PathQueryReply> QueryService::query(nws::ResourceKind kind, const std::string& client,
                                           const std::string& src, const std::string& dst) {
  const std::string src_node = resolve(src);
  const std::string dst_node = resolve(dst);
  const auto chain = coverage_.route(src_node, dst_node);
  if (chain.empty()) {
    return make_error(ErrorCode::not_found,
                      "deployment cannot answer for (" + src + ", " + dst + ")");
  }

  PathQueryReply reply;
  reply.segments = chain;
  if (chain.size() == 1) {
    const bool direct = ordered(chain.front().first, chain.front().second) ==
                        ordered(src_node, dst_node);
    reply.method = direct ? QueryMethod::direct : QueryMethod::substituted;
  } else {
    reply.method = QueryMethod::aggregated;
  }

  double bandwidth = std::numeric_limits<double>::infinity();
  double latency = 0.0;
  for (const auto& [a, b] : chain) {
    auto piece = system_.query(resolve(client), nws::SeriesKey{kind, a, b});
    if (!piece.ok()) {
      // The series may exist in the other direction only.
      piece = system_.query(resolve(client), nws::SeriesKey{kind, b, a});
    }
    if (!piece.ok()) return piece.error();
    if (kind == nws::ResourceKind::bandwidth) {
      bandwidth = std::min(bandwidth, piece.value().forecast.value);
    } else {
      latency += piece.value().forecast.value;
    }
  }
  reply.value = kind == nws::ResourceKind::bandwidth ? bandwidth : latency;
  return reply;
}

Result<PathQueryReply> QueryService::bandwidth(const std::string& client,
                                               const std::string& src,
                                               const std::string& dst) {
  return query(nws::ResourceKind::bandwidth, client, src, dst);
}

Result<PathQueryReply> QueryService::latency(const std::string& client, const std::string& src,
                                             const std::string& dst) {
  return query(nws::ResourceKind::latency, client, src, dst);
}

}  // namespace envnws::deploy
