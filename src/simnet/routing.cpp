#include "simnet/routing.hpp"

#include <algorithm>
#include <limits>
#include <queue>

namespace envnws::simnet {

std::vector<NodeId> Path::nodes() const {
  std::vector<NodeId> out;
  out.push_back(src);
  for (const Hop& hop : hops) out.push_back(hop.to);
  return out;
}

double Path::total_latency(const Topology& topo) const {
  double total = 0.0;
  for (const Hop& hop : hops) total += topo.link(hop.link).latency_s;
  return total;
}

double Path::bottleneck_bandwidth(const Topology& topo) const {
  double bw = std::numeric_limits<double>::infinity();
  for (const Hop& hop : hops) {
    bw = std::min(bw, topo.capacity(hop.link, hop.from));
    const Node& to = topo.node(hop.to);
    if (to.kind == NodeKind::hub) bw = std::min(bw, to.hub_capacity_bps);
  }
  return bw;
}

RouteTable::RouteTable(const Topology& topo)
    : topo_(topo),
      built_(topo.node_count(), false),
      pred_(topo.node_count()),
      last_used_(topo.node_count(), 0) {}

void RouteTable::build_from(NodeId src) const {
  if (built_count_ >= kMaxCachedSources) {
    // Evict the least-recently-used tree so the cache stays bounded.
    std::size_t victim = topo_.node_count();
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t i = 0; i < built_.size(); ++i) {
      if (built_[i] && i != src.index() && last_used_[i] < oldest) {
        oldest = last_used_[i];
        victim = i;
      }
    }
    if (victim < topo_.node_count()) {
      built_[victim] = false;
      std::vector<Hop>().swap(pred_[victim]);  // actually release the memory
      --built_count_;
    }
  }
  const std::size_t n = topo_.node_count();
  auto& pred = pred_[src.index()];
  pred.assign(n, Hop{LinkId::invalid(), NodeId::invalid(), NodeId::invalid()});
  // Distances are only needed while relaxing; keeping them per source
  // would double the cache footprint for no post-build benefit.
  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  dist[src.index()] = 0.0;

  // (distance, node id) min-heap; the id component makes ties deterministic.
  using Entry = std::pair<double, NodeId::underlying_type>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  heap.emplace(0.0, src.value());
  while (!heap.empty()) {
    const auto [d, uv] = heap.top();
    heap.pop();
    const NodeId u{uv};
    if (d > dist[u.index()]) continue;
    for (LinkId lid : topo_.node(u).links) {
      const NodeId v = topo_.peer(lid, u);
      const double w = topo_.routing_weight(lid, u);
      const double nd = d + w;
      // Strict improvement, or an equal-cost path through a
      // lower-numbered link: keeps route selection deterministic.
      const bool better = nd < dist[v.index()] ||
                          (nd == dist[v.index()] && pred[v.index()].link.valid() &&
                           lid < pred[v.index()].link);
      if (better) {
        dist[v.index()] = nd;
        pred[v.index()] = Hop{lid, u, v};
        heap.emplace(nd, v.value());
      }
    }
  }
  built_[src.index()] = true;
  ++built_count_;
}

Result<Path> RouteTable::path(NodeId src, NodeId dst) const {
  if (src == dst) return Path{src, dst, {}};
  const auto it = overrides_.find({src, dst});
  if (it != overrides_.end()) return it->second;

  if (!built_[src.index()]) build_from(src);
  last_used_[src.index()] = ++use_clock_;
  const auto& pred = pred_[src.index()];
  if (!pred[dst.index()].link.valid()) {
    return make_error(ErrorCode::unreachable,
                      "no route from " + topo_.node(src).name + " to " + topo_.node(dst).name);
  }
  Path path{src, dst, {}};
  NodeId cursor = dst;
  while (cursor != src) {
    const Hop& hop = pred[cursor.index()];
    path.hops.push_back(hop);
    cursor = hop.from;
  }
  std::reverse(path.hops.begin(), path.hops.end());
  return path;
}

Status RouteTable::set_override(NodeId src, NodeId dst, const std::vector<LinkId>& links) {
  Path path{src, dst, {}};
  NodeId cursor = src;
  for (LinkId lid : links) {
    const Link& link = topo_.link(lid);
    if (link.a != cursor && link.b != cursor) {
      return make_error(ErrorCode::invalid_argument,
                        "override link sequence is not a connected walk");
    }
    const NodeId next = topo_.peer(lid, cursor);
    path.hops.push_back(Hop{lid, cursor, next});
    cursor = next;
  }
  if (cursor != dst) {
    return make_error(ErrorCode::invalid_argument, "override does not end at destination");
  }
  overrides_[{src, dst}] = std::move(path);
  return {};
}

}  // namespace envnws::simnet
