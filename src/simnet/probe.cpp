#include "simnet/probe.hpp"

#include <memory>

namespace envnws::simnet {

ProbeSession::ProbeSession(Network& net, ProbeOptions options)
    : net_(net), options_(std::move(options)) {}

void ProbeSession::finish_experiment(double started_at) {
  ++experiments_;
  net_.run_until(net_.now() + options_.stabilization_gap_s);
  busy_time_ += net_.now() - started_at;
}

TransferOutcome ProbeSession::single(NodeId src, NodeId dst, std::int64_t bytes) {
  auto outcomes = concurrent({TransferSpec{src, dst, bytes}});
  return outcomes.front();
}

std::vector<TransferOutcome> ProbeSession::concurrent(const std::vector<TransferSpec>& specs) {
  const double started_at = net_.now();
  std::vector<TransferOutcome> outcomes(specs.size());
  auto pending = std::make_shared<std::size_t>(0);

  for (std::size_t i = 0; i < specs.size(); ++i) {
    const TransferSpec& spec = specs[i];
    TransferOutcome& outcome = outcomes[i];
    outcome.src = spec.src;
    outcome.dst = spec.dst;
    outcome.bytes = spec.bytes;
    const auto flow = net_.start_flow(
        spec.src, spec.dst, spec.bytes,
        [this, &outcome, pending](const FlowResult& result) {
          outcome.ok = true;
          outcome.duration_s = result.duration() * net_.measurement_jitter();
          outcome.bandwidth_bps =
              outcome.duration_s > 0.0
                  ? static_cast<double>(result.bytes) * 8.0 / outcome.duration_s
                  : 0.0;
          --*pending;
        },
        FlowOptions{true, options_.purpose});
    if (flow.ok()) {
      ++*pending;
      bytes_sent_ += spec.bytes;
    } else {
      outcome.ok = false;
      outcome.error = flow.error();
    }
  }

  while (*pending > 0 && net_.step()) {
  }
  finish_experiment(started_at);
  return outcomes;
}

Result<double> ProbeSession::rtt(NodeId a, NodeId b, std::int64_t bytes) {
  const double started_at = net_.now();
  auto done = std::make_shared<bool>(false);
  auto finish = std::make_shared<double>(0.0);

  const Status forward = net_.send_message(
      a, b, bytes,
      [this, a, b, bytes, done, finish] {
        const Status back = net_.send_message(
            b, a, bytes,
            [this, done, finish] {
              *finish = net_.now();
              *done = true;
            },
            options_.purpose);
        if (!back.ok()) *done = true;  // reply lost: caller sees timeout below
      },
      options_.purpose);
  if (!forward.ok()) {
    finish_experiment(started_at);
    return forward.error();
  }
  bytes_sent_ += 2 * bytes;

  while (!*done && net_.step()) {
  }
  const bool replied = *finish > 0.0;
  finish_experiment(started_at);
  if (!replied) {
    return make_error(ErrorCode::timeout, "no RTT reply received");
  }
  return (*finish - started_at) * net_.measurement_jitter();
}

Result<double> ProbeSession::connect_time(NodeId a, NodeId b) {
  const auto round_trip = rtt(a, b, 1);
  if (!round_trip.ok()) return round_trip.error();
  return 1.5 * round_trip.value();
}

}  // namespace envnws::simnet
