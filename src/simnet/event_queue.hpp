// Deterministic discrete-event queue.
//
// Events at equal timestamps fire in insertion order (a monotonically
// increasing sequence number breaks ties), so a given scenario replays
// identically on every run and platform.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <utility>
#include <vector>

#include "simnet/types.hpp"

namespace envnws::simnet {

using EventFn = std::function<void()>;
/// Opaque handle for cancellation.
using EventHandle = std::uint64_t;

class EventQueue {
 public:
  EventHandle schedule_at(SimTime t, EventFn fn);
  /// Remove a pending event; no-op if it already fired or was cancelled.
  void cancel(EventHandle handle);

  [[nodiscard]] bool empty() const { return live_.empty(); }
  [[nodiscard]] std::size_t size() const { return live_.size(); }
  /// Timestamp of the next event; only valid when !empty().
  [[nodiscard]] SimTime next_time() const;

  /// Pop the next event (time order, then insertion order). The callable
  /// is returned rather than invoked so the caller can advance its clock
  /// first. Returns false when the queue is empty.
  bool pop(SimTime& time_out, EventFn& fn_out);

 private:
  struct Key {
    SimTime time;
    EventHandle seq;
    bool operator>(const Key& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  std::priority_queue<Key, std::vector<Key>, std::greater<>> heap_;
  std::map<EventHandle, EventFn> live_;
  EventHandle next_seq_ = 0;
};

}  // namespace envnws::simnet
