#include "simnet/scenario.hpp"

#include <cassert>
#include <functional>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace envnws::simnet {

using units::gbps;
using units::mbps;
using units::usec;

namespace {

/// Gives hosts paper-flavoured inventory properties (ENV's "extra
/// information gathering" phase reads these).
void decorate_host(Topology& topo, NodeId id, const std::string& cpu_model, double clock_mhz,
                   int kflops) {
  topo.set_property(id, "CPU_clock", std::to_string(clock_mhz));
  topo.set_property(id, "CPU_model", cpu_model);
  topo.set_property(id, "CPU_num", "1");
  topo.set_property(id, "Machine_type", "i686");
  topo.set_property(id, "OS_version", "Linux 2.4.19-pre7-act");
  topo.set_property(id, "kflops", std::to_string(kflops));
}

/// Address of star host `i` inside 10.0.0.0/8. The first 254 hosts keep
/// the historical 10.0.0.(1+i) addresses (committed golden traces depend
/// on them); beyond that the index spills into the higher octets /24 by
/// /24 — the old uint8_t cast silently wrapped at i == 255 and handed
/// out duplicate addresses, which is UB-adjacent for a 10,000-host star.
Ipv4 star_host_ip(int i) {
  const int block = i / 254;
  return Ipv4(10, static_cast<std::uint8_t>(block / 256), static_cast<std::uint8_t>(block % 256),
              static_cast<std::uint8_t>(1 + i % 254));
}

}  // namespace

Scenario ens_lyon() {
  Scenario scenario;
  scenario.name = "ens-lyon";
  scenario.description =
      "ENS-Lyon LAN (paper Fig. 1a): hub1{the-doors,canaria,moby} --"
      " 10 Mbps bottleneck (asymmetric return via giga router) --"
      " hub2{popc,myri,sci gateways} fronting the firewalled popc.private"
      " domain with a shared myri hub and a switched sci cluster";
  Topology& topo = scenario.topology;

  const std::string kPublicZone = "ens-lyon.fr";
  const std::string kPrivateZone = "popc.private";

  // --- public hosts ------------------------------------------------------
  const NodeId the_doors =
      topo.add_host("the-doors", "the-doors.ens-lyon.fr", Ipv4(140, 77, 13, 100));
  const NodeId canaria = topo.add_host("canaria", "canaria.ens-lyon.fr", Ipv4(140, 77, 13, 229));
  const NodeId moby = topo.add_host("moby", "moby.cri2000.ens-lyon.fr", Ipv4(140, 77, 13, 82));
  for (const NodeId id : {the_doors, canaria, moby}) topo.set_zones(id, {kPublicZone});
  decorate_host(topo, the_doors, "Pentium III", 866.8, 84000);
  decorate_host(topo, canaria, "Pentium II", 448.9, 43000);
  decorate_host(topo, moby, "Pentium Pro", 198.9, 17607);

  // --- dual-homed firewall gateways --------------------------------------
  const NodeId popc = topo.add_host("popc", "popc.ens-lyon.fr", Ipv4(140, 77, 12, 51));
  const NodeId myri = topo.add_host("myri", "myri.ens-lyon.fr", Ipv4(140, 77, 12, 52));
  const NodeId sci = topo.add_host("sci", "sci.ens-lyon.fr", Ipv4(140, 77, 12, 53));
  topo.set_zones(popc, {kPublicZone});
  topo.set_zones(myri, {kPublicZone});
  topo.set_zones(sci, {kPublicZone});
  topo.add_alias(popc, HostAlias{"popc0.popc.private", Ipv4(192, 168, 81, 51), kPrivateZone});
  topo.add_alias(myri, HostAlias{"myri0.popc.private", Ipv4(192, 168, 81, 50), kPrivateZone});
  topo.add_alias(sci, HostAlias{"sci0.popc.private", Ipv4(192, 168, 81, 52), kPrivateZone});
  decorate_host(topo, popc, "Pentium III", 1000.2, 98000);
  decorate_host(topo, myri, "Pentium III", 1000.2, 98000);
  decorate_host(topo, sci, "Pentium III", 1000.2, 98000);

  // --- private hosts ------------------------------------------------------
  const NodeId myri1 = topo.add_host("myri1", "myri1.popc.private", Ipv4(192, 168, 81, 61));
  const NodeId myri2 = topo.add_host("myri2", "myri2.popc.private", Ipv4(192, 168, 81, 62));
  std::vector<NodeId> sci_nodes;
  for (int i = 1; i <= 6; ++i) {
    const std::string name = "sci" + std::to_string(i);
    sci_nodes.push_back(topo.add_host(name, name + ".popc.private",
                                      Ipv4(192, 168, 81, static_cast<std::uint8_t>(10 + i))));
  }
  for (const NodeId id : {myri1, myri2}) {
    topo.set_zones(id, {kPrivateZone});
    decorate_host(topo, id, "Pentium II", 448.9, 43000);
  }
  for (const NodeId id : sci_nodes) {
    topo.set_zones(id, {kPrivateZone});
    decorate_host(topo, id, "Pentium III", 866.8, 84000);
  }

  // Distinct CPU load patterns (sensors and forecaster demos read these).
  topo.set_cpu_load(the_doors, LoadModel{0.6, 0.4, 3600.0, 0.0, 0.1, 10.0, 11});
  topo.set_cpu_load(canaria, LoadModel{0.2, 0.1, 1800.0, 1.0, 0.05, 10.0, 12});
  topo.set_cpu_load(moby, LoadModel{1.1, 0.6, 7200.0, 2.0, 0.2, 10.0, 13});

  // --- network devices ----------------------------------------------------
  RouterPolicy unnamed;
  unnamed.has_hostname = false;
  const NodeId edge = topo.add_router("edge", "", Ipv4(192, 168, 254, 1), unnamed);
  const NodeId r13 = topo.add_router("r13", "", Ipv4(140, 77, 13, 1), unnamed);
  const NodeId rb =
      topo.add_router("routeur-backbone", "routeur-backbone.ens-lyon.fr", Ipv4(140, 77, 161, 1));
  const NodeId routlhpc =
      topo.add_router("routlhpc", "routlhpc.ens-lyon.fr", Ipv4(140, 77, 12, 1));
  RouterPolicy silent;  // paper §4.3: many modern routers drop traceroute
  silent.responds_to_traceroute = false;
  const NodeId giga =
      topo.add_router("giga-router", "giga-router.ens-lyon.fr", Ipv4(140, 77, 200, 1), silent);
  topo.set_edge_router(edge);

  const NodeId hub1 = topo.add_hub("hub1", mbps(100));
  const NodeId hub2 = topo.add_hub("hub2", mbps(100));
  const NodeId hub3 = topo.add_hub("hub3", mbps(100));
  const NodeId sciswitch = topo.add_switch("sciswitch");

  // --- links --------------------------------------------------------------
  // hub1: public machines + uplink router r13.
  for (const NodeId id : {the_doors, canaria, moby, r13}) {
    topo.connect(id, hub1, mbps(100), usec(50), "hub1-port");
  }
  topo.connect(r13, edge, mbps(100), usec(100), "r13-edge");
  topo.connect(edge, rb, gbps(1), usec(100), "edge-backbone");

  // The asymmetric pair of routes between the backbone and routlhpc:
  // forward (towards popc) crosses the 10 Mbps link, the return flows over
  // the gigabit path through giga-router (paper §4.3, "Asymmetric routes").
  const LinkId slow = topo.connect(rb, routlhpc, mbps(10), usec(200), "slow-10mbps");
  topo.set_routing_weight(slow, /*rb->routlhpc=*/1.0, /*routlhpc->rb=*/100.0);
  const LinkId fast_a = topo.connect(rb, giga, gbps(1), usec(100), "backbone-giga");
  topo.set_routing_weight(fast_a, /*rb->giga=*/50.0, /*giga->rb=*/1.0);
  const LinkId fast_b = topo.connect(giga, routlhpc, gbps(1), usec(100), "giga-routlhpc");
  topo.set_routing_weight(fast_b, /*giga->routlhpc=*/50.0, /*routlhpc->giga=*/1.0);

  // hub2: the gateway hub behind routlhpc.
  for (const NodeId id : {routlhpc, popc, myri, sci}) {
    topo.connect(id, hub2, mbps(100), usec(50), "hub2-port");
  }
  // hub3: the shared myri cluster behind the myri gateway.
  for (const NodeId id : {myri, myri1, myri2}) {
    topo.connect(id, hub3, mbps(100), usec(50), "hub3-port");
  }
  // sci cluster: switched, ~33 Mbps effective ports (the paper's ENV run
  // reported ENV_base_BW = 32.65 Mbps for this cluster).
  topo.connect(sci, sciswitch, mbps(33), usec(50), "sci-uplink");
  for (const NodeId id : sci_nodes) {
    topo.connect(id, sciswitch, mbps(33), usec(50), "sci-port");
  }

  scenario.master = "the-doors";
  scenario.zone_traceroute_target[kPublicZone] = "edge";
  scenario.zone_traceroute_target[kPrivateZone] = "popc";

  scenario.ground_truth = {
      GroundTruthNet{GroundTruthNet::Kind::shared, {"the-doors", "canaria", "moby"}, mbps(100)},
      GroundTruthNet{GroundTruthNet::Kind::shared, {"popc", "myri", "sci"}, mbps(100)},
      GroundTruthNet{GroundTruthNet::Kind::shared, {"myri1", "myri2"}, mbps(100)},
      GroundTruthNet{GroundTruthNet::Kind::switched,
                     {"sci1", "sci2", "sci3", "sci4", "sci5", "sci6"},
                     mbps(33)},
  };
  return scenario;
}

Scenario star_hub(int n, double hub_bw_bps, double latency_s) {
  Scenario scenario;
  scenario.name = "star-hub";
  scenario.description = std::to_string(n) + " hosts on one shared hub";
  Topology& topo = scenario.topology;
  const NodeId hub = topo.add_hub("hub", hub_bw_bps);
  GroundTruthNet truth;
  truth.kind = GroundTruthNet::Kind::shared;
  truth.local_bw_bps = hub_bw_bps;
  for (int i = 0; i < n; ++i) {
    const std::string name = "h" + std::to_string(i);
    const NodeId host = topo.add_host(name, name + ".lan", star_host_ip(i));
    topo.connect(host, hub, hub_bw_bps, latency_s);
    truth.member_names.push_back(name);
  }
  scenario.master = "h0";
  scenario.ground_truth.push_back(std::move(truth));
  return scenario;
}

Scenario star_switch(int n, double port_bw_bps, double latency_s) {
  Scenario scenario;
  scenario.name = "star-switch";
  scenario.description = std::to_string(n) + " hosts on one switch";
  Topology& topo = scenario.topology;
  const NodeId sw = topo.add_switch("switch");
  GroundTruthNet truth;
  truth.kind = GroundTruthNet::Kind::switched;
  truth.local_bw_bps = port_bw_bps;
  for (int i = 0; i < n; ++i) {
    const std::string name = "h" + std::to_string(i);
    const NodeId host = topo.add_host(name, name + ".lan", star_host_ip(i));
    topo.connect(host, sw, port_bw_bps, latency_s);
    truth.member_names.push_back(name);
  }
  scenario.master = "h0";
  scenario.ground_truth.push_back(std::move(truth));
  return scenario;
}

Scenario dumbbell(int left, int right, double port_bw_bps, double bottleneck_bps,
                  double wan_latency_s) {
  Scenario scenario;
  scenario.name = "dumbbell";
  scenario.description = "two switched clusters joined by a bottleneck";
  Topology& topo = scenario.topology;
  const NodeId sw_l = topo.add_switch("sw-left");
  const NodeId sw_r = topo.add_switch("sw-right");
  const NodeId r_l = topo.add_router("router-left", "router-left.lan", Ipv4(10, 0, 0, 1));
  const NodeId r_r = topo.add_router("router-right", "router-right.lan", Ipv4(10, 0, 1, 1));
  topo.connect(sw_l, r_l, port_bw_bps, 50e-6);
  topo.connect(sw_r, r_r, port_bw_bps, 50e-6);
  topo.connect(r_l, r_r, bottleneck_bps, wan_latency_s, "bottleneck");
  topo.set_edge_router(r_l);
  for (int i = 0; i < left; ++i) {
    const std::string name = "l" + std::to_string(i);
    const NodeId host =
        topo.add_host(name, name + ".lan", Ipv4(10, 0, 0, static_cast<std::uint8_t>(10 + i)));
    topo.connect(host, sw_l, port_bw_bps, 50e-6);
  }
  for (int i = 0; i < right; ++i) {
    const std::string name = "r" + std::to_string(i);
    const NodeId host =
        topo.add_host(name, name + ".lan", Ipv4(10, 0, 1, static_cast<std::uint8_t>(10 + i)));
    topo.connect(host, sw_r, port_bw_bps, 50e-6);
  }
  scenario.master = "l0";
  return scenario;
}

Scenario two_cluster_transversal(int per_cluster, double port_bw_bps, double transversal_bps) {
  Scenario scenario;
  scenario.name = "two-cluster-transversal";
  scenario.description =
      "master + two clusters with a transversal link invisible to a master-centric mapping";
  Topology& topo = scenario.topology;
  const NodeId master = topo.add_host("master", "master.lan", Ipv4(10, 1, 0, 1));
  const NodeId router = topo.add_router("router", "router.lan", Ipv4(10, 1, 0, 254));
  topo.set_edge_router(router);
  topo.connect(master, router, port_bw_bps, 50e-6, "link-master");
  const NodeId sw_a = topo.add_switch("sw-a");
  const NodeId sw_b = topo.add_switch("sw-b");
  topo.connect(router, sw_a, port_bw_bps, 1e-3, "link-A");
  topo.connect(router, sw_b, port_bw_bps, 1e-3, "link-B");
  // Link C: direct cluster<->cluster connectivity that no master-centric
  // experiment exercises. Cheap weights make inter-cluster routes use it.
  const LinkId c = topo.connect(sw_a, sw_b, transversal_bps, 100e-6, "link-C");
  topo.set_routing_weight(c, 0.5, 0.5);
  for (int i = 0; i < per_cluster; ++i) {
    const std::string an = "a" + std::to_string(i);
    const NodeId a =
        topo.add_host(an, an + ".lan", Ipv4(10, 1, 1, static_cast<std::uint8_t>(10 + i)));
    topo.connect(a, sw_a, port_bw_bps, 50e-6);
    const std::string bn = "b" + std::to_string(i);
    const NodeId b =
        topo.add_host(bn, bn + ".lan", Ipv4(10, 1, 2, static_cast<std::uint8_t>(10 + i)));
    topo.connect(b, sw_b, port_bw_bps, 50e-6);
  }
  scenario.master = "master";
  return scenario;
}

Scenario vlan_lab(int hosts_per_vlan, int vlan_count, double port_bw_bps) {
  Scenario scenario;
  scenario.name = "vlan-lab";
  scenario.description =
      "one physical switch carved into VLANs joined by a router; the logical"
      " topology (what ENV can see) differs from the physical wiring";
  Topology& topo = scenario.topology;
  const NodeId router = topo.add_router("router", "router.lan", Ipv4(10, 2, 0, 254));
  topo.set_edge_router(router);
  for (int v = 0; v < vlan_count; ++v) {
    // Each VLAN behaves as its own logical switch even though all ports
    // share one chassis; inter-VLAN traffic must cross the router, whose
    // routed trunk runs well below port speed (were inter-VLAN routing
    // at line rate, the VLANs would be indistinguishable from one big
    // switched LAN at the effective level — ENV can only observe VLANs
    // through their bandwidth footprint).
    const NodeId sw = topo.add_switch("vlan" + std::to_string(10 + v));
    topo.connect(sw, router, port_bw_bps * 0.3, 100e-6);
    GroundTruthNet truth;
    truth.kind = GroundTruthNet::Kind::switched;
    truth.local_bw_bps = port_bw_bps;
    for (int i = 0; i < hosts_per_vlan; ++i) {
      const std::string name = "v" + std::to_string(10 + v) + "h" + std::to_string(i);
      const NodeId host = topo.add_host(
          name, name + ".lan",
          Ipv4(10, 2, static_cast<std::uint8_t>(10 + v), static_cast<std::uint8_t>(1 + i)));
      topo.set_vlan(host, 10 + v);
      topo.connect(host, sw, port_bw_bps, 50e-6);
      truth.member_names.push_back(name);
    }
    scenario.ground_truth.push_back(std::move(truth));
  }
  scenario.master = "v10h0";
  return scenario;
}

Scenario wan_constellation(int sites, int hosts_per_site, double lan_bw_bps, double wan_bw_bps,
                           double wan_latency_s) {
  Scenario scenario;
  scenario.name = "wan-constellation";
  scenario.description = "WAN constellation of LAN sites (grid testbed shape)";
  Topology& topo = scenario.topology;
  const NodeId core = topo.add_router("wan-core", "core.wan", Ipv4(193, 0, 0, 1));
  topo.set_edge_router(core);
  for (int s = 0; s < sites; ++s) {
    const std::string site = "site" + std::to_string(s);
    const NodeId site_router = topo.add_router(
        site + "-gw", site + "-gw." + site + ".org", Ipv4(193, 1, static_cast<std::uint8_t>(s), 1));
    topo.connect(site_router, core, wan_bw_bps, wan_latency_s, site + "-uplink");
    const bool shared = (s % 2 == 0);
    const NodeId lan = shared ? topo.add_hub(site + "-hub", lan_bw_bps)
                              : topo.add_switch(site + "-switch");
    topo.connect(lan, site_router, lan_bw_bps, 50e-6);
    GroundTruthNet truth;
    truth.kind = shared ? GroundTruthNet::Kind::shared : GroundTruthNet::Kind::switched;
    truth.local_bw_bps = lan_bw_bps;
    for (int i = 0; i < hosts_per_site; ++i) {
      const std::string name = site + "n" + std::to_string(i);
      const NodeId host = topo.add_host(
          name, name + "." + site + ".org",
          Ipv4(193, 1, static_cast<std::uint8_t>(s), static_cast<std::uint8_t>(10 + i)));
      topo.connect(host, lan, lan_bw_bps, 50e-6);
      truth.member_names.push_back(name);
    }
    scenario.ground_truth.push_back(std::move(truth));
  }
  scenario.master = "site0n0";
  return scenario;
}

Scenario multi_firewall(int zone_count, int hosts_per_zone, double lan_bw_bps,
                        double public_bw_bps) {
  Scenario scenario;
  scenario.name = "multi-firewall";
  scenario.description = std::to_string(zone_count) + " firewalled domains of " +
                         std::to_string(hosts_per_zone) +
                         " hosts behind dual-homed gateways on one public backbone";
  Topology& topo = scenario.topology;

  const std::string kPublicZone = "corp.example";
  const NodeId edge = topo.add_router("edge", "edge.corp.example", Ipv4(10, 0, 0, 254));
  topo.set_edge_router(edge);
  const NodeId backbone = topo.add_switch("backbone-sw");
  topo.connect(backbone, edge, public_bw_bps, usec(100));

  const NodeId master = topo.add_host("master", "master.corp.example", Ipv4(10, 0, 0, 1));
  topo.set_zones(master, {kPublicZone});
  decorate_host(topo, master, "Pentium III", 1000.2, 98000);
  topo.connect(master, backbone, public_bw_bps, usec(50));
  scenario.master = "master";
  scenario.zone_traceroute_target[kPublicZone] = "edge";

  GroundTruthNet public_truth;
  public_truth.kind = GroundTruthNet::Kind::switched;
  public_truth.local_bw_bps = public_bw_bps;
  public_truth.member_names.push_back("master");

  for (int z = 0; z < zone_count; ++z) {
    const std::string zone = "zone" + std::to_string(z) + ".private";
    const std::string gw_name = "gw" + std::to_string(z);
    const auto zone_octet = static_cast<std::uint8_t>(1 + z);

    const NodeId gateway = topo.add_host(gw_name, gw_name + ".corp.example",
                                         Ipv4(10, 0, 0, static_cast<std::uint8_t>(10 + z)));
    topo.set_zones(gateway, {kPublicZone});
    topo.add_alias(gateway, HostAlias{gw_name + "." + zone, Ipv4(192, 168, zone_octet, 1), zone});
    decorate_host(topo, gateway, "Pentium III", 866.8, 84000);
    topo.connect(gateway, backbone, public_bw_bps, usec(50));
    public_truth.member_names.push_back(gw_name);
    scenario.zone_traceroute_target[zone] = gw_name;

    const bool shared = (z % 2 == 0);
    const NodeId lan = shared ? topo.add_hub("z" + std::to_string(z) + "-hub", lan_bw_bps)
                              : topo.add_switch("z" + std::to_string(z) + "-sw");
    topo.connect(gateway, lan, lan_bw_bps, usec(50));

    GroundTruthNet truth;
    truth.kind = shared ? GroundTruthNet::Kind::shared : GroundTruthNet::Kind::switched;
    truth.local_bw_bps = lan_bw_bps;
    for (int i = 0; i < hosts_per_zone; ++i) {
      const std::string name = "z" + std::to_string(z) + "h" + std::to_string(i);
      const NodeId host = topo.add_host(name, name + "." + zone,
                                        Ipv4(192, 168, zone_octet,
                                             static_cast<std::uint8_t>(10 + i)));
      topo.set_zones(host, {zone});
      decorate_host(topo, host, "Pentium II", 448.9, 43000);
      topo.connect(host, lan, lan_bw_bps, usec(50));
      truth.member_names.push_back(name);
    }
    scenario.ground_truth.push_back(std::move(truth));
  }
  scenario.ground_truth.insert(scenario.ground_truth.begin(), std::move(public_truth));
  return scenario;
}

Scenario fat_tree(int k, double bw_bps) {
  assert(k >= 2 && k % 2 == 0);
  Scenario scenario;
  scenario.name = "fat-tree";
  scenario.description = std::to_string(k) + "-ary fat-tree of " +
                         std::to_string(k * k * k / 4) + " hosts";
  Topology& topo = scenario.topology;
  const int half = k / 2;

  std::vector<NodeId> cores;
  for (int c = 0; c < half * half; ++c) {
    const std::string name = "core" + std::to_string(c);
    cores.push_back(topo.add_router(name, name + ".fat.net",
                                    Ipv4(10, 255, static_cast<std::uint8_t>(c / half),
                                         static_cast<std::uint8_t>(1 + c % half))));
  }
  topo.set_edge_router(cores.front());

  for (int p = 0; p < k; ++p) {
    const std::string pod = "p" + std::to_string(p);
    std::vector<NodeId> aggs;
    for (int a = 0; a < half; ++a) {
      const std::string name = pod + "a" + std::to_string(a);
      aggs.push_back(topo.add_router(name, name + ".fat.net",
                                     Ipv4(10, static_cast<std::uint8_t>(p), 250,
                                          static_cast<std::uint8_t>(1 + a))));
      // Aggregation router `a` reaches cores [a*half, (a+1)*half).
      for (int c = 0; c < half; ++c) {
        topo.connect(aggs.back(), cores[static_cast<std::size_t>(a * half + c)], bw_bps,
                     usec(100));
      }
    }
    for (int e = 0; e < half; ++e) {
      const NodeId edge_sw = topo.add_switch(pod + "e" + std::to_string(e));
      for (const NodeId agg : aggs) topo.connect(edge_sw, agg, bw_bps, usec(50));
      GroundTruthNet truth;
      truth.kind = GroundTruthNet::Kind::switched;
      truth.local_bw_bps = bw_bps;
      for (int h = 0; h < half; ++h) {
        const std::string name = pod + "e" + std::to_string(e) + "h" + std::to_string(h);
        const NodeId host = topo.add_host(name, name + ".fat.net",
                                          Ipv4(10, static_cast<std::uint8_t>(p),
                                               static_cast<std::uint8_t>(e),
                                               static_cast<std::uint8_t>(10 + h)));
        topo.connect(host, edge_sw, bw_bps, usec(50));
        truth.member_names.push_back(name);
      }
      scenario.ground_truth.push_back(std::move(truth));
    }
  }
  scenario.master = "p0e0h0";
  return scenario;
}

Scenario torus3d(int x, int y, int z, double bw_bps) {
  assert(x >= 1 && y >= 1 && z >= 1);
  Scenario scenario;
  scenario.name = "torus3d";
  scenario.description = std::to_string(x) + "x" + std::to_string(y) + "x" +
                         std::to_string(z) + " torus, one host per node";
  Topology& topo = scenario.topology;

  const auto node_tag = [](int i, int j, int l) {
    return std::to_string(i) + "-" + std::to_string(j) + "-" + std::to_string(l);
  };
  std::vector<NodeId> routers(static_cast<std::size_t>(x) * static_cast<std::size_t>(y) *
                              static_cast<std::size_t>(z));
  const auto at = [&](int i, int j, int l) -> NodeId& {
    return routers[static_cast<std::size_t>((i * y + j) * z + l)];
  };
  for (int i = 0; i < x; ++i) {
    for (int j = 0; j < y; ++j) {
      for (int l = 0; l < z; ++l) {
        const std::string rname = "tr" + node_tag(i, j, l);
        at(i, j, l) = topo.add_router(rname, rname + ".torus.net",
                                      Ipv4(10, static_cast<std::uint8_t>(100 + i),
                                           static_cast<std::uint8_t>(j),
                                           static_cast<std::uint8_t>(1 + l)));
        const std::string hname = "t" + node_tag(i, j, l);
        const NodeId host = topo.add_host(hname, hname + ".torus.net",
                                          Ipv4(10, static_cast<std::uint8_t>(i),
                                               static_cast<std::uint8_t>(j),
                                               static_cast<std::uint8_t>(10 + l)));
        topo.connect(host, at(i, j, l), bw_bps, usec(50));
      }
    }
  }
  // Ring links per dimension; a dimension of size 2 gets a single link
  // (the "wrap" would duplicate it) and of size 1 none at all.
  const auto ring = [&](int size, const std::function<NodeId(int)>& pick) {
    if (size < 2) return;
    for (int a = 0; a < (size == 2 ? 1 : size); ++a) {
      topo.connect(pick(a), pick((a + 1) % size), bw_bps, usec(100));
    }
  };
  for (int j = 0; j < y; ++j) {
    for (int l = 0; l < z; ++l) {
      ring(x, [&](int a) { return at(a, j, l); });
    }
  }
  for (int i = 0; i < x; ++i) {
    for (int l = 0; l < z; ++l) {
      ring(y, [&](int a) { return at(i, a, l); });
    }
  }
  for (int i = 0; i < x; ++i) {
    for (int j = 0; j < y; ++j) {
      ring(z, [&](int a) { return at(i, j, a); });
    }
  }
  topo.set_edge_router(at(0, 0, 0));
  scenario.master = "t0-0-0";
  return scenario;
}

Scenario random_lan(std::uint64_t seed, const RandomLanParams& params) {
  Scenario scenario;
  scenario.name = "random-lan-" + std::to_string(seed);
  scenario.description = "randomized LAN with recorded ground truth";
  Topology& topo = scenario.topology;
  Rng rng(seed);
  const NodeId backbone = topo.add_router("backbone", "backbone.lan", Ipv4(10, 9, 0, 254));
  topo.set_edge_router(backbone);
  for (int s = 0; s < params.segment_count; ++s) {
    const double bw =
        params.segment_bw_bps[rng.next_below(params.segment_bw_bps.size())];
    const bool shared = rng.next_double() < params.shared_probability;
    const int host_count = params.min_hosts_per_segment +
                           static_cast<int>(rng.next_below(static_cast<std::uint64_t>(
                               params.max_hosts_per_segment - params.min_hosts_per_segment + 1)));
    const std::string seg = "seg" + std::to_string(s);
    // Each segment sits behind its own gateway router (a routed subnet,
    // like routlhpc fronting the popc hub in the paper's network): the
    // structural phase can then tell segments apart even when the master
    // lives on a slow one.
    const NodeId seg_router =
        topo.add_router(seg + "-gw", seg + "-gw.lan",
                        Ipv4(10, 9, static_cast<std::uint8_t>(1 + s), 254));
    topo.connect(seg_router, backbone, params.backbone_bw_bps, 100e-6);
    const NodeId lan = shared ? topo.add_hub(seg + "-hub", bw) : topo.add_switch(seg + "-sw");
    // The uplink runs at the segment's own speed (an access switch with
    // a line-rate uplink would make its hosts pairwise-independent from
    // outside, and ENV would — correctly — dissolve the segment).
    topo.connect(lan, seg_router, bw, 50e-6);
    GroundTruthNet truth;
    truth.kind = shared ? GroundTruthNet::Kind::shared : GroundTruthNet::Kind::switched;
    truth.local_bw_bps = bw;
    for (int i = 0; i < host_count; ++i) {
      const std::string name = seg + "h" + std::to_string(i);
      const NodeId host = topo.add_host(
          name, name + ".lan",
          Ipv4(10, 9, static_cast<std::uint8_t>(1 + s), static_cast<std::uint8_t>(1 + i)));
      topo.connect(host, lan, bw, 50e-6);
      truth.member_names.push_back(name);
    }
    scenario.ground_truth.push_back(std::move(truth));
  }
  scenario.master = "seg0h0";
  return scenario;
}

}  // namespace envnws::simnet
