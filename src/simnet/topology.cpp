#include "simnet/topology.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace envnws::simnet {

namespace {
// Deterministic per-bucket standard normal: hash the (seed, bucket) pair
// through SplitMix64 and Box-Muller the resulting uniforms. This gives the
// LoadModel value-noise that is a pure function of time.
double hashed_normal(std::uint64_t seed, std::int64_t bucket) {
  auto mix = [](std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  };
  const std::uint64_t h1 = mix(seed ^ static_cast<std::uint64_t>(bucket));
  const std::uint64_t h2 = mix(h1);
  const double u1 =
      (static_cast<double>(h1 >> 11) + 0.5) * 0x1.0p-53;  // (0,1)
  const double u2 = static_cast<double>(h2 >> 11) * 0x1.0p-53;  // [0,1)
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}
}  // namespace

double LoadModel::at(double t) const {
  double v = base;
  if (amplitude != 0.0 && period_s > 0.0) {
    v += amplitude * std::sin(2.0 * std::numbers::pi * t / period_s + phase);
  }
  if (noise_sigma > 0.0 && noise_bucket_s > 0.0) {
    const auto bucket = static_cast<std::int64_t>(std::floor(t / noise_bucket_s));
    v += noise_sigma * hashed_normal(seed, bucket);
  }
  return std::max(0.0, v);
}

NodeId Topology::add_node(NodeKind kind, const std::string& name, const std::string& fqdn,
                          Ipv4 ip) {
  Node node;
  node.id = NodeId(static_cast<NodeId::underlying_type>(nodes_.size()));
  node.kind = kind;
  node.name = name;
  node.fqdn = fqdn;
  node.ip = ip;
  if (kind != NodeKind::host) node.zones.clear();
  by_name_.emplace(name, node.id);
  if (kind == NodeKind::host && !fqdn.empty()) host_by_fqdn_.emplace(fqdn, node.id);
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

NodeId Topology::add_host(const std::string& name, const std::string& fqdn, Ipv4 ip) {
  return add_node(NodeKind::host, name, fqdn, ip);
}

NodeId Topology::add_hub(const std::string& name, double capacity_bps) {
  const NodeId id = add_node(NodeKind::hub, name, "", Ipv4());
  nodes_[id.index()].hub_capacity_bps = capacity_bps;
  return id;
}

NodeId Topology::add_switch(const std::string& name) {
  return add_node(NodeKind::switch_, name, "", Ipv4());
}

NodeId Topology::add_router(const std::string& name, const std::string& fqdn, Ipv4 ip,
                            RouterPolicy policy) {
  const NodeId id = add_node(NodeKind::router, name, fqdn, ip);
  nodes_[id.index()].router = policy;
  return id;
}

LinkId Topology::connect(NodeId a, NodeId b, double bw_bps, double latency_s,
                         const std::string& label) {
  return connect_directional(a, b, bw_bps, bw_bps, latency_s, label);
}

LinkId Topology::connect_directional(NodeId a, NodeId b, double bw_ab_bps, double bw_ba_bps,
                                     double latency_s, const std::string& label) {
  Link link;
  link.id = LinkId(static_cast<LinkId::underlying_type>(links_.size()));
  link.a = a;
  link.b = b;
  link.bw_ab_bps = bw_ab_bps;
  link.bw_ba_bps = bw_ba_bps;
  link.latency_s = latency_s;
  link.label = label;
  // A hub port is physically part of the hub's collision domain.
  link.half_duplex =
      node(a).kind == NodeKind::hub || node(b).kind == NodeKind::hub;
  nodes_[a.index()].links.push_back(link.id);
  nodes_[b.index()].links.push_back(link.id);
  links_.push_back(link);
  return links_.back().id;
}

void Topology::set_zones(NodeId host, std::set<std::string> zones) {
  nodes_.at(host.index()).zones = std::move(zones);
}

void Topology::add_alias(NodeId host, HostAlias alias) {
  auto& node = nodes_.at(host.index());
  node.zones.insert(alias.zone);
  if (!alias.fqdn.empty()) host_by_fqdn_.emplace(alias.fqdn, host);
  node.aliases.push_back(std::move(alias));
}

void Topology::set_vlan(NodeId host, int vlan) { nodes_.at(host.index()).vlan = vlan; }

void Topology::set_property(NodeId host, const std::string& key, const std::string& value) {
  nodes_.at(host.index()).properties[key] = value;
}

void Topology::set_cpu_load(NodeId host, LoadModel model) {
  nodes_.at(host.index()).cpu_load = model;
}

void Topology::set_routing_weight(LinkId link, double weight_ab, double weight_ba) {
  links_.at(link.index()).weight_ab = weight_ab;
  links_.at(link.index()).weight_ba = weight_ba;
}

Result<NodeId> Topology::find_by_name(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return make_error(ErrorCode::not_found, "no node named '" + name + "'");
  }
  return it->second;
}

Result<NodeId> Topology::find_host_by_fqdn(const std::string& fqdn) const {
  const auto it = host_by_fqdn_.find(fqdn);
  if (it == host_by_fqdn_.end()) {
    return make_error(ErrorCode::not_found, "no host with fqdn '" + fqdn + "'");
  }
  return it->second;
}

std::vector<NodeId> Topology::hosts() const {
  std::vector<NodeId> out;
  for (const auto& node : nodes_) {
    if (node.is_host()) out.push_back(node.id);
  }
  return out;
}

std::vector<NodeId> Topology::hosts_in_zone(const std::string& zone) const {
  std::vector<NodeId> out;
  for (const auto& node : nodes_) {
    if (node.is_host() && node.zones.count(zone) > 0) out.push_back(node.id);
  }
  return out;
}

std::vector<std::string> Topology::zones() const {
  std::set<std::string> unique;
  for (const auto& node : nodes_) {
    if (node.is_host()) unique.insert(node.zones.begin(), node.zones.end());
  }
  return {unique.begin(), unique.end()};
}

std::vector<NodeId> Topology::gateways_between(const std::string& za,
                                               const std::string& zb) const {
  std::vector<NodeId> out;
  for (const auto& node : nodes_) {
    if (node.is_host() && node.zones.count(za) > 0 && node.zones.count(zb) > 0) {
      out.push_back(node.id);
    }
  }
  return out;
}

double Topology::capacity(LinkId id, NodeId from) const {
  const Link& l = link(id);
  return from == l.a ? l.bw_ab_bps : l.bw_ba_bps;
}

double Topology::routing_weight(LinkId id, NodeId from) const {
  const Link& l = link(id);
  return from == l.a ? l.weight_ab : l.weight_ba;
}

NodeId Topology::peer(LinkId id, NodeId from) const {
  const Link& l = link(id);
  return from == l.a ? l.b : l.a;
}

Status Topology::validate() const {
  if (by_name_.size() != nodes_.size()) {
    return make_error(ErrorCode::invalid_argument, "duplicate node names");
  }
  for (const auto& l : links_) {
    if (l.bw_ab_bps <= 0.0 || l.bw_ba_bps <= 0.0) {
      return make_error(ErrorCode::invalid_argument,
                        "link " + std::to_string(l.id.value()) + " has non-positive capacity");
    }
    if (l.latency_s < 0.0) {
      return make_error(ErrorCode::invalid_argument,
                        "link " + std::to_string(l.id.value()) + " has negative latency");
    }
    if (l.a == l.b) {
      return make_error(ErrorCode::invalid_argument,
                        "link " + std::to_string(l.id.value()) + " is a self-loop");
    }
  }
  for (const auto& n : nodes_) {
    if (n.kind == NodeKind::hub && n.hub_capacity_bps <= 0.0) {
      return make_error(ErrorCode::invalid_argument,
                        "hub '" + n.name + "' has non-positive capacity");
    }
    if (n.is_host() && n.zones.empty()) {
      return make_error(ErrorCode::invalid_argument,
                        "host '" + n.name + "' belongs to no firewall zone");
    }
  }
  return {};
}

}  // namespace envnws::simnet
