#include "simnet/fairshare.hpp"

#include <cassert>
#include <limits>

namespace envnws::simnet {

std::vector<double> solve_max_min(const FairShareProblem& problem) {
  const std::size_t flow_count = problem.flows.size();
  const std::size_t resource_count = problem.capacities.size();
  std::vector<double> rates(flow_count, std::numeric_limits<double>::infinity());
  std::vector<double> residual = problem.capacities;
  std::vector<bool> fixed(flow_count, false);
  // users[r] = number of still-unfixed flows crossing resource r.
  std::vector<std::uint32_t> users(resource_count, 0);
  for (std::size_t f = 0; f < flow_count; ++f) {
    for (const std::uint32_t r : problem.flows[f]) {
      assert(r < resource_count);
      ++users[r];
    }
  }

  std::size_t remaining = 0;
  for (std::size_t f = 0; f < flow_count; ++f) {
    if (problem.flows[f].empty()) {
      fixed[f] = true;  // rate stays infinite: no shared resource involved
    } else {
      ++remaining;
    }
  }

  // Progressive filling: repeatedly saturate the most contended resource.
  while (remaining > 0) {
    double bottleneck_share = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < resource_count; ++r) {
      if (users[r] == 0) continue;
      const double share = residual[r] / static_cast<double>(users[r]);
      if (share < bottleneck_share) bottleneck_share = share;
    }
    assert(bottleneck_share < std::numeric_limits<double>::infinity());

    // Every unfixed flow crossing a resource whose fair share equals the
    // bottleneck share is frozen at that rate.
    bool froze_any = false;
    for (std::size_t f = 0; f < flow_count; ++f) {
      if (fixed[f]) continue;
      bool at_bottleneck = false;
      for (const std::uint32_t r : problem.flows[f]) {
        // Tolerate floating-point noise when comparing shares.
        const double share = residual[r] / static_cast<double>(users[r]);
        if (share <= bottleneck_share * (1.0 + 1e-12)) {
          at_bottleneck = true;
          break;
        }
      }
      if (!at_bottleneck) continue;
      fixed[f] = true;
      froze_any = true;
      --remaining;
      rates[f] = bottleneck_share;
      for (const std::uint32_t r : problem.flows[f]) {
        residual[r] -= bottleneck_share;
        if (residual[r] < 0.0) residual[r] = 0.0;
        --users[r];
      }
    }
    assert(froze_any);
    (void)froze_any;
  }
  return rates;
}

std::vector<double> solve_max_min_weighted(const WeightedFairShareProblem& problem) {
  const std::size_t flow_count = problem.flows.size();
  const std::size_t resource_count = problem.capacities.size();
  std::vector<double> rates(flow_count, std::numeric_limits<double>::infinity());
  std::vector<double> residual = problem.capacities;
  std::vector<bool> fixed(flow_count, false);
  // weight_sum[r] = total weight of still-unfixed flows crossing r; the
  // equal-rate share of r is residual[r] / weight_sum[r]. The integer
  // live-user count, not the floating-point weight sum, decides whether
  // a resource still constrains anyone: subtracting frozen weights
  // leaves dust (~1e-17) on a fully-drained resource, and its dust
  // share residual/dust can undercut every live flow's share — a
  // bottleneck no flow crosses, so no flow freezes and the filling
  // loop never terminates.
  std::vector<double> weight_sum(resource_count, 0.0);
  std::vector<std::uint32_t> live_users(resource_count, 0);
  for (std::size_t f = 0; f < flow_count; ++f) {
    for (const WeightedUse& use : problem.flows[f]) {
      assert(use.resource < resource_count);
      assert(use.weight > 0.0);
      weight_sum[use.resource] += use.weight;
      ++live_users[use.resource];
    }
  }

  std::size_t remaining = 0;
  for (std::size_t f = 0; f < flow_count; ++f) {
    if (problem.flows[f].empty()) {
      fixed[f] = true;  // rate stays infinite: no shared resource involved
    } else {
      ++remaining;
    }
  }

  while (remaining > 0) {
    double bottleneck_share = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < resource_count; ++r) {
      if (live_users[r] == 0) continue;
      const double share = residual[r] / weight_sum[r];
      if (share < bottleneck_share) bottleneck_share = share;
    }
    assert(bottleneck_share < std::numeric_limits<double>::infinity());

    bool froze_any = false;
    for (std::size_t f = 0; f < flow_count; ++f) {
      if (fixed[f]) continue;
      bool at_bottleneck = false;
      for (const WeightedUse& use : problem.flows[f]) {
        // weight_sum here is ≥ this flow's own weight: an unfixed flow
        // counts itself among the resource's live users.
        const double share = residual[use.resource] / weight_sum[use.resource];
        if (share <= bottleneck_share * (1.0 + 1e-12)) {
          at_bottleneck = true;
          break;
        }
      }
      if (!at_bottleneck) continue;
      fixed[f] = true;
      froze_any = true;
      --remaining;
      rates[f] = bottleneck_share;
      for (const WeightedUse& use : problem.flows[f]) {
        residual[use.resource] -= bottleneck_share * use.weight;
        if (residual[use.resource] < 0.0) residual[use.resource] = 0.0;
        weight_sum[use.resource] -= use.weight;
        // A drained resource drops out exactly; the dust the subtraction
        // left behind must never re-enter a share quotient.
        if (--live_users[use.resource] == 0 || weight_sum[use.resource] < 0.0) {
          weight_sum[use.resource] = 0.0;
        }
      }
    }
    assert(froze_any);
    (void)froze_any;
  }
  return rates;
}

}  // namespace envnws::simnet
