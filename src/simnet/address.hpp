// IPv4 addresses with the classful and RFC1918 vocabulary ENV needs.
//
// ENV falls back to "IP address class" grouping when reverse DNS fails
// (paper §4.3, "Machines without hostname"), and must keep non-routable
// (private) addresses in the mapping instead of discarding them. This
// module provides exactly that address arithmetic.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.hpp"

namespace envnws::simnet {

class Ipv4 {
 public:
  constexpr Ipv4() = default;
  constexpr explicit Ipv4(std::uint32_t value) : value_(value) {}
  constexpr Ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value_((std::uint32_t(a) << 24) | (std::uint32_t(b) << 16) | (std::uint32_t(c) << 8) |
               std::uint32_t(d)) {}

  static Result<Ipv4> parse(std::string_view text);

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] constexpr bool is_zero() const { return value_ == 0; }
  [[nodiscard]] std::string to_string() const;

  /// Classful network class per RFC 791 / RFC 1166: 'A', 'B', 'C', 'D', 'E'.
  [[nodiscard]] char address_class() const;
  /// RFC 1918 private (10/8, 172.16/12, 192.168/16), i.e. non-routable
  /// from the public internet.
  [[nodiscard]] bool is_private() const;
  /// The classful network prefix (what ENV groups unnamed machines by):
  /// class A -> /8, class B -> /16, class C -> /24.
  [[nodiscard]] Ipv4 classful_network() const;
  /// Same classful network as `other`.
  [[nodiscard]] bool same_classful_network(Ipv4 other) const;

  friend constexpr bool operator==(Ipv4 a, Ipv4 b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(Ipv4 a, Ipv4 b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(Ipv4 a, Ipv4 b) { return a.value_ < b.value_; }

 private:
  std::uint32_t value_ = 0;
};

}  // namespace envnws::simnet
