// Max-min fair bandwidth allocation (progressive filling).
//
// This is the heart of the fluid traffic model: given capacitated
// resources and flows that each consume a set of resources, compute the
// max-min fair rate vector. It reproduces exactly the phenomena the ENV
// thresholds key on — two flows crossing a hub each get half the medium;
// flows on distinct switch ports do not interact; a 10 Mbps uplink caps
// everything behind it.
#pragma once

#include <cstdint>
#include <vector>

namespace envnws::simnet {

struct FairShareProblem {
  /// capacity[r] = bits/s available on resource r.
  std::vector<double> capacities;
  /// flows[f] = the (deduplicated) resource indices flow f consumes.
  std::vector<std::vector<std::uint32_t>> flows;
};

/// Returns the max-min fair rate of every flow. Flows that use no
/// resources get an infinite rate (the caller treats them as local).
std::vector<double> solve_max_min(const FairShareProblem& problem);

}  // namespace envnws::simnet
