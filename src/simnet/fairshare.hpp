// Max-min fair bandwidth allocation (progressive filling).
//
// This is the heart of the fluid traffic model: given capacitated
// resources and flows that each consume a set of resources, compute the
// max-min fair rate vector. It reproduces exactly the phenomena the ENV
// thresholds key on — two flows crossing a hub each get half the medium;
// flows on distinct switch ports do not interact; a 10 Mbps uplink caps
// everything behind it.
#pragma once

#include <cstdint>
#include <vector>

namespace envnws::simnet {

struct FairShareProblem {
  /// capacity[r] = bits/s available on resource r.
  std::vector<double> capacities;
  /// flows[f] = the (deduplicated) resource indices flow f consumes.
  std::vector<std::vector<std::uint32_t>> flows;
};

/// Returns the max-min fair rate of every flow. Flows that use no
/// resources get an infinite rate (the caller treats them as local).
std::vector<double> solve_max_min(const FairShareProblem& problem);

/// One (resource, weight) term of a weighted flow: the flow consumes
/// `weight * rate` bits/s of the resource. The lv08 TCP model expresses
/// ack cross-traffic this way: weight 1.0 on the forward path, 0.05 on
/// the reverse path (1.05 where the two coincide on half-duplex media).
struct WeightedUse {
  std::uint32_t resource = 0;
  double weight = 1.0;
};

struct WeightedFairShareProblem {
  std::vector<double> capacities;
  /// flows[f] = deduplicated (resource, weight) terms of flow f.
  std::vector<std::vector<WeightedUse>> flows;
};

/// Weighted progressive filling. With all weights 1.0 this computes the
/// same allocation as `solve_max_min` (kept separate so the unweighted
/// hot path stays bit-identical to the historical solver).
std::vector<double> solve_max_min_weighted(const WeightedFairShareProblem& problem);

}  // namespace envnws::simnet
