#include "simnet/background.hpp"

#include <algorithm>
#include <memory>

namespace envnws::simnet {

CrossTraffic::CrossTraffic(Network& net, CrossTrafficSpec spec)
    : net_(net), spec_(spec), rng_(spec.seed) {}

void CrossTraffic::start() {
  if (running_) return;
  running_ = true;
  tick();
}

void CrossTraffic::tick() {
  if (!running_) return;
  double gap = spec_.period_s;
  if (spec_.spread > 0.0) {
    gap = rng_.uniform(spec_.period_s * std::max(0.0, 1.0 - spec_.spread),
                       spec_.period_s * (1.0 + spec_.spread));
  }
  net_.schedule_after(gap, [this] {
    if (!running_) return;
    // Classic on/off source: the next burst is scheduled only after the
    // current one drained. An oversubscribed medium therefore backs the
    // source off instead of piling up unbounded concurrent flows.
    const auto flow = net_.start_flow(
        spec_.src, spec_.dst, spec_.burst_bytes,
        [this](const FlowResult&) { tick(); }, FlowOptions{false, "background"});
    if (flow.ok()) {
      ++bursts_;
    } else {
      tick();  // endpoints unreachable right now: try again later
    }
  });
}

std::vector<std::unique_ptr<CrossTraffic>> make_background_load(
    Network& net, const std::vector<NodeId>& hosts, double intensity, std::uint64_t seed) {
  std::vector<std::unique_ptr<CrossTraffic>> generators;
  if (hosts.size() < 2 || intensity <= 0.0) return generators;
  Rng rng(seed);
  // One generator per host, towards a random distinct peer.
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    std::size_t peer = rng.next_below(hosts.size() - 1);
    if (peer >= i) ++peer;
    CrossTrafficSpec spec;
    spec.src = hosts[i];
    spec.dst = hosts[peer];
    spec.burst_bytes = 2 * 1024 * 1024;
    // A 2 MiB burst takes ~0.17 s at 100 Mbps: scale the period so the
    // duty cycle is roughly `intensity` per generator.
    spec.period_s = std::max(0.05, 0.17 / intensity);
    spec.spread = 0.6;
    spec.seed = rng.next_u64();
    generators.push_back(std::make_unique<CrossTraffic>(net, spec));
  }
  return generators;
}

std::vector<std::unique_ptr<CrossTraffic>> attach_background(Network& net,
                                                             const BackgroundSpec& spec) {
  std::vector<std::unique_ptr<CrossTraffic>> generators;
  const std::vector<NodeId> hosts = net.topology().hosts();
  if (hosts.size() < 2 || !spec.active()) return generators;
  Rng rng(spec.seed);
  for (int i = 0; i < spec.flows; ++i) {
    const std::size_t src = rng.next_below(hosts.size());
    std::size_t peer = rng.next_below(hosts.size() - 1);
    if (peer >= src) ++peer;
    CrossTrafficSpec traffic;
    traffic.src = hosts[src];
    traffic.dst = hosts[peer];
    traffic.burst_bytes = 2 * 1024 * 1024;
    // Same duty-cycle scaling as make_background_load: a 2 MiB burst
    // takes ~0.17 s at 100 Mbps.
    traffic.period_s = std::max(0.05, 0.17 / std::max(0.01, spec.intensity));
    traffic.spread = 0.6;
    traffic.seed = rng.next_u64();
    generators.push_back(std::make_unique<CrossTraffic>(net, traffic));
    generators.back()->start();
  }
  return generators;
}

}  // namespace envnws::simnet
