// Pluggable link model: protocol corrections applied on top of the
// nominal topology capacities.
//
// The default ("ideal") model is bit-identical to the historical
// behavior: flows share nominal link capacities max-min fairly and
// latency is pure propagation. Three corrections can be layered on top,
// in any combination:
//
//   tcp-lv08  SimGrid's empirically-validated TCP model: only ~97% of
//             nominal bandwidth is usable by a TCP payload, first-byte
//             latency is multiplied by 13.01 (slow start), and every
//             flow injects a 0.05-weight cross-traffic stream on its
//             reverse path (ack contention), which turns the fair-share
//             problem into a weighted one.
//   lossy     Per-link loss/corruption percentages (the cn3-simulator's
//             pct_loss / pct_cksum knobs). A lost or corrupted segment
//             is retransmitted, so the goodput of a link is its capacity
//             divided by the expected number of (re)transmissions:
//             effective = nominal * (1 - loss) * (1 - cksum).
//   wifi      Shared-medium zones: every switch becomes a wireless
//             access point whose attached stations all contend for ONE
//             medium (capacity = fastest attached link), like a hub but
//             keeping full-duplex point-to-point links elsewhere.
//
// The spec travels inside `Topology`, so every Network built from a
// scenario — including the per-zone replicas api::Session clones for
// concurrent mapping — inherits the same model, and the MapCache
// platform fingerprint naturally covers it.
#pragma once

#include <cstdint>
#include <string>

namespace envnws::simnet {

struct LinkModelSpec {
  // --- tcp-lv08 ---
  bool tcp = false;
  /// Fraction of nominal bandwidth a TCP payload can use (lv08: 0.97).
  double usable_fraction = 0.97;
  /// Slow-start first-byte latency multiplier (lv08: 13.01).
  double latency_factor = 13.01;
  /// Weight of the reverse-path cross-traffic stream each flow injects
  /// into the fair-share problem (lv08: 0.05).
  double cross_traffic_share = 0.05;

  // --- lossy ---
  double loss_pct = 0.0;   ///< segment loss percentage in [0, 100)
  double cksum_pct = 0.0;  ///< checksum-corruption percentage in [0, 100)

  // --- wifi ---
  bool wifi = false;

  [[nodiscard]] static LinkModelSpec ideal() { return {}; }
  [[nodiscard]] bool is_ideal() const {
    return !tcp && !wifi && loss_pct == 0.0 && cksum_pct == 0.0;
  }
  [[nodiscard]] bool lossy() const { return loss_pct > 0.0 || cksum_pct > 0.0; }
  /// Cross-traffic back-flows active (turns rate computation weighted).
  [[nodiscard]] bool weighted() const { return tcp && cross_traffic_share > 0.0; }

  /// Expected (re)transmissions per delivered segment when a fraction
  /// `loss_pct`% of segments is dropped and `cksum_pct`% of the rest is
  /// corrupted: 1 / ((1 - loss)(1 - cksum)).
  [[nodiscard]] static double retransmission_factor(double loss_pct, double cksum_pct);

  /// Bandwidth a payload can extract from a `nominal_bps` medium under
  /// this model. Identity (same bits) for the ideal model.
  [[nodiscard]] double effective_capacity(double nominal_bps) const;
  /// First-byte latency for a bulk transfer over a `nominal_s` path.
  /// Identity for the ideal model.
  [[nodiscard]] double effective_latency(double nominal_s) const;

  /// Canonical spec-decorator prefix ("" for ideal), e.g.
  /// "tcp-lv08:lossy:p=2%:wifi:". Prepending it to a base scenario spec
  /// reproduces this model through `ScenarioSpec::parse`.
  [[nodiscard]] std::string decorator_prefix() const;
  /// Stable identity string for cache keys ("ideal" when no correction
  /// is active).
  [[nodiscard]] std::string fingerprint() const;
};

/// Deterministic background cross-traffic attached to a topology (the
/// `bg:<flows>` decorator). Generators are created by every Network
/// built from the topology, so replicas replay identical load.
struct BackgroundSpec {
  int flows = 0;          ///< number of on/off generators (0 = none)
  double intensity = 0.3; ///< approximate duty cycle per generator
  std::uint64_t seed = 1; ///< generator placement + burst timing seed

  [[nodiscard]] bool active() const { return flows > 0; }
  [[nodiscard]] std::string decorator_prefix() const;
};

}  // namespace envnws::simnet
