// The discrete-event network engine.
//
// Combines the static Topology with routing, a deterministic event queue
// and a max-min fair fluid traffic model. Everything the rest of the
// repository does — ENV probes, NWS sensor measurements, token passing,
// background cross-traffic — happens through this class, in simulated
// time, so concurrent activities contend for bandwidth exactly as they
// would on the wire.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/result.hpp"
#include "common/rng.hpp"
#include "simnet/event_queue.hpp"
#include "simnet/routing.hpp"
#include "simnet/topology.hpp"
#include "simnet/types.hpp"

namespace envnws::simnet {

class CrossTraffic;

struct NetworkOptions {
  /// Multiplicative jitter applied by `measurement_jitter()`; probes use
  /// it to model measurement noise without disturbing the fluid model.
  double measurement_jitter_sigma = 0.0;
  std::uint64_t seed = 42;
};

struct FlowResult {
  FlowId id;
  NodeId src;
  NodeId dst;
  std::int64_t bytes = 0;
  SimTime start_time = 0.0;
  SimTime end_time = 0.0;
  /// end - start, including forward latency and (if acked) the ack's
  /// return latency — i.e. what a user-level timed transfer observes.
  [[nodiscard]] double duration() const { return end_time - start_time; }
};

using FlowCallback = std::function<void(const FlowResult&)>;

struct FlowOptions {
  /// Completion is reported only after an acknowledgment crosses back
  /// (how both ENV and the NWS bandwidth sensor time their transfers).
  bool ack = true;
  /// Accounting tag: "env-probe", "nws-bandwidth", "app", ...
  std::string purpose = "app";
};

struct TracerouteHop {
  NodeId node;
  /// Address in the TTL-expired reply; "*" when the router keeps silent.
  std::string reported_ip;
  /// Reverse-DNS name; empty when resolution fails.
  std::string reported_name;
  bool responded = true;
};

struct PurposeStats {
  std::uint64_t flow_count = 0;
  std::int64_t bytes = 0;
};

struct NetStats {
  std::map<std::string, PurposeStats> by_purpose;
  std::uint64_t flows_started = 0;
  std::uint64_t flows_completed = 0;
  std::uint64_t messages_sent = 0;

  [[nodiscard]] std::int64_t total_bytes() const;
};

class Network {
 public:
  explicit Network(Topology topology, NetworkOptions options = {});
  ~Network();
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] const Topology& topology() const { return topo_; }
  /// The topology's link model (ideal unless the scenario was decorated).
  [[nodiscard]] const LinkModelSpec& link_model() const { return topo_.link_model(); }
  [[nodiscard]] Topology& topology_mut() { return topo_; }
  [[nodiscard]] RouteTable& routes() { return routes_; }
  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] const NetStats& stats() const { return stats_; }
  /// Construction options, so a replica can be built measurement-faithful
  /// (api::Session clones the platform per zone for concurrent mapping).
  [[nodiscard]] const NetworkOptions& options() const { return options_; }

  // --- event scheduling ---
  EventHandle schedule_at(SimTime t, EventFn fn);
  EventHandle schedule_after(double delay, EventFn fn);
  void cancel(EventHandle handle);

  // --- simulation control ---
  /// Run a single event. False when the queue is drained.
  bool step();
  /// Run until the queue drains.
  void run();
  /// Run all events with time <= t, then set the clock to t.
  void run_until(SimTime t);

  // --- bulk data (fluid flows) ---
  Result<FlowId> start_flow(NodeId src, NodeId dst, std::int64_t bytes, FlowCallback on_done,
                            FlowOptions options = {});
  [[nodiscard]] std::size_t active_flow_count() const { return active_order_.size(); }

  // --- small control messages (latency-bound, no contention) ---
  Status send_message(NodeId src, NodeId dst, std::int64_t bytes,
                      std::function<void()> on_delivered, const std::string& purpose = "control");
  /// One-way delivery delay a message would experience right now.
  [[nodiscard]] Result<double> message_delay(NodeId src, NodeId dst,
                                             std::int64_t bytes) const;

  // --- reachability / diagnostics ---
  [[nodiscard]] bool can_communicate(NodeId a, NodeId b) const;
  [[nodiscard]] Status check_communicate(NodeId a, NodeId b) const;
  Result<std::vector<TracerouteHop>> traceroute(NodeId src, NodeId dst) const;

  // --- ground truth (tests & validator only; tools must not call) ---
  [[nodiscard]] Result<double> ground_truth_bandwidth(NodeId src, NodeId dst) const;
  [[nodiscard]] Result<double> ground_truth_latency(NodeId src, NodeId dst) const;
  /// Fluid-model resource indices the (src -> dst) route consumes; two
  /// experiments collide iff their resource sets intersect.
  [[nodiscard]] Result<std::vector<std::uint32_t>> path_resources(NodeId src, NodeId dst) const;
  /// Capacities of all fluid-model resources (indexable by the values
  /// returned from path_resources).
  [[nodiscard]] const std::vector<double>& resource_capacities() const {
    return resource_capacity_;
  }
  /// Steady-state rate the model predicts for each of `pairs` when all
  /// of them transfer simultaneously (no latency, no event queue): the
  /// fair-share solve over effective capacities, weighted when the
  /// model injects cross-traffic. This is the calibration surface — the
  /// number a paced bulk transfer's measured bandwidth should match.
  [[nodiscard]] Result<std::vector<double>> predicted_rates(
      const std::vector<std::pair<NodeId, NodeId>>& pairs) const;

  // --- host state (sensors read these) ---
  [[nodiscard]] double cpu_load(NodeId host, SimTime t) const;
  /// Fraction of CPU a fresh process would obtain (NWS "availability").
  [[nodiscard]] double cpu_availability(NodeId host, SimTime t) const;
  [[nodiscard]] double memory_free_mb(NodeId host, SimTime t) const;
  [[nodiscard]] double disk_free_mb(NodeId host, SimTime t) const;

  // --- failure injection ---
  void set_host_up(NodeId host, bool is_up);
  [[nodiscard]] bool host_up(NodeId host) const { return topo_.node(host).up; }

  /// Multiplicative measurement noise factor (1.0 when jitter disabled).
  double measurement_jitter();

 private:
  struct FlowState {
    FlowId id;
    NodeId src;
    NodeId dst;
    double total_bits = 0.0;
    double remaining_bits = 0.0;
    std::vector<std::uint32_t> resources;
    /// Reverse-path resources the lv08 ack cross-traffic loads (empty
    /// unless the model is weighted).
    std::vector<std::uint32_t> cross_resources;
    double fwd_latency = 0.0;
    double rev_latency = 0.0;
    bool ack = true;
    double rate_bps = 0.0;
    SimTime last_settle = 0.0;
    SimTime start_time = 0.0;
    bool active = false;
    bool done = false;
    EventHandle completion_event = 0;
    bool completion_scheduled = false;
    FlowCallback on_done;
    std::string purpose;
  };

  void build_resources();
  [[nodiscard]] Result<std::vector<std::uint32_t>> resources_for_path(const Path& path) const;
  void activate_flow(FlowId id);
  void finish_flow(FlowId id);
  void settle_flows();
  void recompute_rates();

  Topology topo_;
  NetworkOptions options_;
  RouteTable routes_;
  EventQueue queue_;
  SimTime now_ = 0.0;
  Rng jitter_rng_;
  NetStats stats_;

  std::vector<double> resource_capacity_;
  // Per link: resource index for each direction (equal when half-duplex).
  std::vector<std::uint32_t> link_res_ab_;
  std::vector<std::uint32_t> link_res_ba_;
  // Per node: hub collision-domain resource (UINT32_MAX when not a hub).
  std::vector<std::uint32_t> hub_res_;

  std::vector<FlowState> flows_;
  std::vector<FlowId> active_order_;  ///< active flows, insertion order
  /// Generators for the topology's background spec (owned so replicas
  /// replay identical load; empty without a `bg:` decorator).
  std::vector<std::unique_ptr<CrossTraffic>> background_;
};

}  // namespace envnws::simnet
