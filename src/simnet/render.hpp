// ASCII rendering of the ground-truth physical topology (used by the
// Fig. 1(a) bench and the examples). The effective/structural views have
// their own renderers in the env library.
#pragma once

#include <string>

#include "simnet/topology.hpp"

namespace envnws::simnet {

/// Tree-style dump rooted at the edge router (or node 0 when unset).
/// Cycles are broken with "(already shown)" back-references so parallel
/// links (e.g. the asymmetric giga path) stay visible.
[[nodiscard]] std::string render_physical(const Topology& topo);

/// One line per link: endpoints, per-direction capacity, latency.
[[nodiscard]] std::string render_link_table(const Topology& topo);

}  // namespace envnws::simnet
