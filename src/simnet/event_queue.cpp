#include "simnet/event_queue.hpp"

#include <cassert>

namespace envnws::simnet {

EventHandle EventQueue::schedule_at(SimTime t, EventFn fn) {
  const EventHandle handle = next_seq_++;
  heap_.push(Key{t, handle});
  live_.emplace(handle, std::move(fn));
  return handle;
}

void EventQueue::cancel(EventHandle handle) { live_.erase(handle); }

SimTime EventQueue::next_time() const {
  assert(!heap_.empty());
  return heap_.top().time;
}

bool EventQueue::pop(SimTime& time_out, EventFn& fn_out) {
  while (!heap_.empty()) {
    const Key key = heap_.top();
    heap_.pop();
    const auto it = live_.find(key.seq);
    if (it == live_.end()) continue;  // cancelled
    time_out = key.time;
    fn_out = std::move(it->second);
    live_.erase(it);
    return true;
  }
  return false;
}

}  // namespace envnws::simnet
