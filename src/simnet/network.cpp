#include "simnet/network.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <set>

#include "common/log.hpp"
#include "simnet/background.hpp"
#include "simnet/fairshare.hpp"

namespace envnws::simnet {

namespace {
constexpr std::uint32_t kNoResource = std::numeric_limits<std::uint32_t>::max();

/// Collapse forward (weight 1.0) and ack cross-traffic (weight `share`)
/// resource sets into deduplicated weighted terms; a resource on both
/// paths (half-duplex media) carries the summed weight.
std::vector<WeightedUse> weighted_uses(const std::vector<std::uint32_t>& forward,
                                       const std::vector<std::uint32_t>& reverse, double share) {
  std::map<std::uint32_t, double> weights;
  for (const std::uint32_t r : forward) weights[r] += 1.0;
  for (const std::uint32_t r : reverse) weights[r] += share;
  std::vector<WeightedUse> uses;
  uses.reserve(weights.size());
  for (const auto& [resource, weight] : weights) uses.push_back(WeightedUse{resource, weight});
  return uses;
}
}

std::int64_t NetStats::total_bytes() const {
  std::int64_t total = 0;
  for (const auto& [purpose, stats] : by_purpose) total += stats.bytes;
  return total;
}

Network::Network(Topology topology, NetworkOptions options)
    : topo_(std::move(topology)),
      options_(options),
      routes_(topo_),
      jitter_rng_(options.seed) {
  if (const Status status = topo_.validate(); !status.ok()) {
    ENVNWS_LOG(error, "simnet") << "invalid topology: " << status.error().to_string();
    assert(false && "invalid topology");
  }
  build_resources();
  if (topo_.background().active()) background_ = attach_background(*this, topo_.background());
}

Network::~Network() = default;

void Network::build_resources() {
  const LinkModelSpec& model = topo_.link_model();
  link_res_ab_.assign(topo_.link_count(), kNoResource);
  link_res_ba_.assign(topo_.link_count(), kNoResource);
  hub_res_.assign(topo_.node_count(), kNoResource);

  for (const Link& link : topo_.links()) {
    if (link.half_duplex) {
      const auto res = static_cast<std::uint32_t>(resource_capacity_.size());
      resource_capacity_.push_back(model.effective_capacity(std::max(link.bw_ab_bps, link.bw_ba_bps)));
      link_res_ab_[link.id.index()] = res;
      link_res_ba_[link.id.index()] = res;
    } else {
      const auto res_ab = static_cast<std::uint32_t>(resource_capacity_.size());
      resource_capacity_.push_back(model.effective_capacity(link.bw_ab_bps));
      const auto res_ba = static_cast<std::uint32_t>(resource_capacity_.size());
      resource_capacity_.push_back(model.effective_capacity(link.bw_ba_bps));
      link_res_ab_[link.id.index()] = res_ab;
      link_res_ba_[link.id.index()] = res_ba;
    }
  }
  for (const Node& node : topo_.nodes()) {
    if (node.kind == NodeKind::hub) {
      const auto res = static_cast<std::uint32_t>(resource_capacity_.size());
      resource_capacity_.push_back(model.effective_capacity(node.hub_capacity_bps));
      hub_res_[node.id.index()] = res;
    } else if (model.wifi && node.kind == NodeKind::switch_) {
      // Wifi zones: the switch becomes an access point whose attached
      // stations all contend for one shared medium, capped at the
      // fastest attached link. Reusing the hub resource slot makes
      // resources_for_path pick the medium up with no extra plumbing.
      double medium = 0.0;
      for (const LinkId link_id : node.links) {
        const Link& link = topo_.link(link_id);
        medium = std::max(medium, std::max(link.bw_ab_bps, link.bw_ba_bps));
      }
      if (medium > 0.0) {
        const auto res = static_cast<std::uint32_t>(resource_capacity_.size());
        resource_capacity_.push_back(model.effective_capacity(medium));
        hub_res_[node.id.index()] = res;
      }
    }
  }
}

EventHandle Network::schedule_at(SimTime t, EventFn fn) {
  assert(t >= now_);
  return queue_.schedule_at(t, std::move(fn));
}

EventHandle Network::schedule_after(double delay, EventFn fn) {
  return schedule_at(now_ + std::max(0.0, delay), std::move(fn));
}

void Network::cancel(EventHandle handle) { queue_.cancel(handle); }

bool Network::step() {
  SimTime t = 0.0;
  EventFn fn;
  if (!queue_.pop(t, fn)) return false;
  now_ = std::max(now_, t);
  fn();
  return true;
}

void Network::run() {
  while (step()) {
  }
}

void Network::run_until(SimTime t) {
  while (!queue_.empty() && queue_.next_time() <= t) step();
  now_ = std::max(now_, t);
}

bool Network::can_communicate(NodeId a, NodeId b) const {
  return check_communicate(a, b).ok();
}

Status Network::check_communicate(NodeId a, NodeId b) const {
  const Node& na = topo_.node(a);
  const Node& nb = topo_.node(b);
  if (!na.up) return make_error(ErrorCode::host_down, na.name + " is down");
  if (!nb.up) return make_error(ErrorCode::host_down, nb.name + " is down");
  if (na.is_host() && nb.is_host()) {
    bool share_zone = false;
    for (const auto& zone : na.zones) {
      if (nb.zones.count(zone) > 0) {
        share_zone = true;
        break;
      }
    }
    if (!share_zone) {
      return make_error(ErrorCode::blocked_by_firewall,
                        na.name + " and " + nb.name + " live in disjoint firewall zones");
    }
  }
  return {};
}

Result<std::vector<std::uint32_t>> Network::resources_for_path(const Path& path) const {
  std::set<std::uint32_t> resources;
  for (const Hop& hop : path.hops) {
    const Link& link = topo_.link(hop.link);
    resources.insert(hop.from == link.a ? link_res_ab_[hop.link.index()]
                                        : link_res_ba_[hop.link.index()]);
    if (hub_res_[hop.to.index()] != kNoResource) resources.insert(hub_res_[hop.to.index()]);
  }
  return std::vector<std::uint32_t>(resources.begin(), resources.end());
}

Result<FlowId> Network::start_flow(NodeId src, NodeId dst, std::int64_t bytes,
                                   FlowCallback on_done, FlowOptions options) {
  if (const Status status = check_communicate(src, dst); !status.ok()) return status.error();
  auto path = routes_.path(src, dst);
  if (!path.ok()) return path.error();
  auto resources = resources_for_path(path.value());
  if (!resources.ok()) return resources.error();

  FlowState flow;
  flow.id = FlowId(static_cast<FlowId::underlying_type>(flows_.size()));
  flow.src = src;
  flow.dst = dst;
  flow.total_bits = static_cast<double>(bytes) * 8.0;
  flow.remaining_bits = flow.total_bits;
  const LinkModelSpec& model = topo_.link_model();
  flow.resources = std::move(resources.value());
  flow.fwd_latency = model.effective_latency(path.value().total_latency(topo_));
  // The ack travels the reverse path (may differ under asymmetric routes).
  if (options.ack || model.weighted()) {
    const auto reverse = routes_.path(dst, src);
    const double rev_latency =
        reverse.ok() ? model.effective_latency(reverse.value().total_latency(topo_))
                     : flow.fwd_latency;
    if (options.ack) flow.rev_latency = rev_latency;
    // lv08 cross-traffic: the flow's ack stream loads the reverse path
    // with `cross_traffic_share` of its rate.
    if (model.weighted() && reverse.ok()) {
      if (auto rev_resources = resources_for_path(reverse.value()); rev_resources.ok()) {
        flow.cross_resources = std::move(rev_resources.value());
      }
    }
  }
  flow.ack = options.ack;
  flow.start_time = now_;
  flow.on_done = std::move(on_done);
  flow.purpose = options.purpose;

  const FlowId id = flow.id;
  flows_.push_back(std::move(flow));
  ++stats_.flows_started;
  auto& purpose_stats = stats_.by_purpose[flows_.back().purpose];
  ++purpose_stats.flow_count;
  purpose_stats.bytes += bytes;

  schedule_after(flows_[id.index()].fwd_latency, [this, id] { activate_flow(id); });
  return id;
}

void Network::activate_flow(FlowId id) {
  FlowState& flow = flows_[id.index()];
  assert(!flow.active && !flow.done);
  settle_flows();
  flow.active = true;
  flow.last_settle = now_;
  active_order_.push_back(id);
  recompute_rates();
}

void Network::settle_flows() {
  for (const FlowId id : active_order_) {
    FlowState& flow = flows_[id.index()];
    const double elapsed = now_ - flow.last_settle;
    if (elapsed > 0.0 && std::isfinite(flow.rate_bps)) {
      flow.remaining_bits = std::max(0.0, flow.remaining_bits - flow.rate_bps * elapsed);
    } else if (elapsed > 0.0) {
      flow.remaining_bits = 0.0;
    }
    flow.last_settle = now_;
  }
}

void Network::recompute_rates() {
  const LinkModelSpec& model = topo_.link_model();
  std::vector<double> rates;
  if (model.weighted()) {
    WeightedFairShareProblem problem;
    problem.capacities = resource_capacity_;
    problem.flows.reserve(active_order_.size());
    for (const FlowId id : active_order_) {
      const FlowState& flow = flows_[id.index()];
      problem.flows.push_back(
          weighted_uses(flow.resources, flow.cross_resources, model.cross_traffic_share));
    }
    rates = solve_max_min_weighted(problem);
  } else {
    FairShareProblem problem;
    problem.capacities = resource_capacity_;
    problem.flows.reserve(active_order_.size());
    for (const FlowId id : active_order_) {
      problem.flows.push_back(flows_[id.index()].resources);
    }
    rates = solve_max_min(problem);
  }

  for (std::size_t i = 0; i < active_order_.size(); ++i) {
    const FlowId id = active_order_[i];
    FlowState& flow = flows_[id.index()];
    flow.rate_bps = rates[i];
    if (flow.completion_scheduled) {
      queue_.cancel(flow.completion_event);
      flow.completion_scheduled = false;
    }
    double remaining_time = 0.0;
    if (flow.remaining_bits > 0.0) {
      remaining_time = std::isfinite(flow.rate_bps) ? flow.remaining_bits / flow.rate_bps : 0.0;
    }
    flow.completion_event = schedule_after(remaining_time, [this, id] { finish_flow(id); });
    flow.completion_scheduled = true;
  }
}

void Network::finish_flow(FlowId id) {
  FlowState& flow = flows_[id.index()];
  assert(flow.active && !flow.done);
  settle_flows();
  flow.active = false;
  flow.done = true;
  flow.completion_scheduled = false;
  flow.remaining_bits = 0.0;
  active_order_.erase(std::find(active_order_.begin(), active_order_.end(), id));
  recompute_rates();
  ++stats_.flows_completed;

  const double callback_delay = flow.ack ? flow.rev_latency : 0.0;
  schedule_after(callback_delay, [this, id] {
    FlowState& finished = flows_[id.index()];
    if (!finished.on_done) return;
    FlowResult result;
    result.id = finished.id;
    result.src = finished.src;
    result.dst = finished.dst;
    result.bytes = static_cast<std::int64_t>(finished.total_bits / 8.0);
    result.start_time = finished.start_time;
    result.end_time = now_;
    // Move the callback out so captured state is released afterwards.
    FlowCallback cb = std::move(finished.on_done);
    finished.on_done = nullptr;
    cb(result);
  });
}

Status Network::send_message(NodeId src, NodeId dst, std::int64_t bytes,
                             std::function<void()> on_delivered, const std::string& purpose) {
  if (const Status status = check_communicate(src, dst); !status.ok()) return status.error();
  const auto delay = message_delay(src, dst, bytes);
  if (!delay.ok()) return delay.error();
  ++stats_.messages_sent;
  auto& purpose_stats = stats_.by_purpose[purpose];
  ++purpose_stats.flow_count;
  purpose_stats.bytes += bytes;
  schedule_after(delay.value(), [this, dst, cb = std::move(on_delivered)] {
    // A message addressed to a host that died in flight is dropped; the
    // sender's own timeout logic is responsible for noticing.
    if (!topo_.node(dst).up) return;
    if (cb) cb();
  });
  return {};
}

Result<double> Network::message_delay(NodeId src, NodeId dst, std::int64_t bytes) const {
  const auto path = routes_.path(src, dst);
  if (!path.ok()) return path.error();
  const double latency = path.value().total_latency(topo_);
  const double bottleneck = path.value().bottleneck_bandwidth(topo_);
  const double transmission =
      bottleneck > 0.0 && std::isfinite(bottleneck)
          ? static_cast<double>(bytes) * 8.0 / bottleneck
          : 0.0;
  return latency + transmission;
}

Result<std::vector<TracerouteHop>> Network::traceroute(NodeId src, NodeId dst) const {
  const Node& source = topo_.node(src);
  const Node& target = topo_.node(dst);
  if (!source.up) return make_error(ErrorCode::host_down, source.name + " is down");
  if (target.is_host()) {
    if (const Status status = check_communicate(src, dst); !status.ok()) return status.error();
  }
  const auto path = routes_.path(src, dst);
  if (!path.ok()) return path.error();

  std::vector<TracerouteHop> hops;
  for (const Hop& hop : path.value().hops) {
    const Node& node = topo_.node(hop.to);
    if (!node.ip_visible()) continue;  // hubs and switches are L2-invisible
    TracerouteHop entry;
    entry.node = node.id;
    if (node.kind == NodeKind::router && !node.router.responds_to_traceroute) {
      entry.responded = false;
      entry.reported_ip = "*";
      hops.push_back(entry);
      continue;
    }
    Ipv4 reported = node.ip;
    std::string reported_fqdn = node.fqdn;
    if (node.kind == NodeKind::router && node.router.reported_address.has_value()) {
      reported = *node.router.reported_address;
    }
    // A multi-homed host (firewall gateway) is seen through the interface
    // facing the prober: report the identity whose zone the source shares.
    if (node.is_host() && source.is_host() && !node.aliases.empty()) {
      const bool primary_visible = [&] {
        // The primary identity is usable when the source shares a zone
        // that is not claimed by any alias (alias zones are secondary).
        std::set<std::string> alias_zones;
        for (const auto& alias : node.aliases) alias_zones.insert(alias.zone);
        for (const auto& zone : source.zones) {
          if (node.zones.count(zone) > 0 && alias_zones.count(zone) == 0) return true;
        }
        return false;
      }();
      if (!primary_visible) {
        for (const auto& alias : node.aliases) {
          if (source.zones.count(alias.zone) > 0) {
            reported = alias.ip;
            reported_fqdn = alias.fqdn;
            break;
          }
        }
      }
    }
    entry.reported_ip = reported.to_string();
    const bool resolvable =
        node.kind == NodeKind::router ? node.router.has_hostname : !reported_fqdn.empty();
    entry.reported_name = resolvable ? reported_fqdn : "";
    hops.push_back(entry);
  }
  return hops;
}

Result<double> Network::ground_truth_bandwidth(NodeId src, NodeId dst) const {
  const auto path = routes_.path(src, dst);
  if (!path.ok()) return path.error();
  // A single flow's rate is the path's effective bottleneck: the wifi
  // medium (= fastest attached link) never undercuts a lone flow and
  // cross-traffic back-flows are non-binding without contention, so the
  // link-model capacity correction is the whole story.
  return topo_.link_model().effective_capacity(path.value().bottleneck_bandwidth(topo_));
}

Result<double> Network::ground_truth_latency(NodeId src, NodeId dst) const {
  const auto path = routes_.path(src, dst);
  if (!path.ok()) return path.error();
  return path.value().total_latency(topo_);
}

Result<std::vector<std::uint32_t>> Network::path_resources(NodeId src, NodeId dst) const {
  const auto path = routes_.path(src, dst);
  if (!path.ok()) return path.error();
  return resources_for_path(path.value());
}

Result<std::vector<double>> Network::predicted_rates(
    const std::vector<std::pair<NodeId, NodeId>>& pairs) const {
  const LinkModelSpec& model = topo_.link_model();
  std::vector<std::vector<std::uint32_t>> forward(pairs.size());
  std::vector<std::vector<std::uint32_t>> reverse(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    auto fwd = path_resources(pairs[i].first, pairs[i].second);
    if (!fwd.ok()) return fwd.error();
    forward[i] = std::move(fwd.value());
    if (model.weighted()) {
      auto rev = path_resources(pairs[i].second, pairs[i].first);
      if (!rev.ok()) return rev.error();
      reverse[i] = std::move(rev.value());
    }
  }
  if (model.weighted()) {
    WeightedFairShareProblem problem;
    problem.capacities = resource_capacity_;
    problem.flows.reserve(pairs.size());
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      problem.flows.push_back(weighted_uses(forward[i], reverse[i], model.cross_traffic_share));
    }
    return solve_max_min_weighted(problem);
  }
  FairShareProblem problem;
  problem.capacities = resource_capacity_;
  problem.flows = std::move(forward);
  return solve_max_min(problem);
}

double Network::cpu_load(NodeId host, SimTime t) const {
  return topo_.node(host).cpu_load.at(t);
}

double Network::cpu_availability(NodeId host, SimTime t) const {
  // NWS reports the CPU share a newly started process would obtain; with
  // `load` runnable processes already competing, that is 1 / (1 + load).
  return 1.0 / (1.0 + cpu_load(host, t));
}

double Network::memory_free_mb(NodeId host, SimTime t) const {
  const Node& node = topo_.node(host);
  const double used_fraction = std::clamp(node.memory_used_fraction.at(t), 0.0, 1.0);
  return node.memory_total_mb * (1.0 - used_fraction);
}

double Network::disk_free_mb(NodeId host, SimTime t) const {
  const Node& node = topo_.node(host);
  const double used_fraction = std::clamp(node.disk_used_fraction.at(t), 0.0, 1.0);
  return node.disk_total_mb * (1.0 - used_fraction);
}

void Network::set_host_up(NodeId host, bool is_up) { topo_.node_mut(host).up = is_up; }

double Network::measurement_jitter() {
  if (options_.measurement_jitter_sigma <= 0.0) return 1.0;
  const double factor = 1.0 + options_.measurement_jitter_sigma * jitter_rng_.normal();
  return std::max(0.05, factor);
}

}  // namespace envnws::simnet
