// Core identifier and enum vocabulary of the network simulator.
#pragma once

#include <cstdint>

#include "common/ids.hpp"

namespace envnws::simnet {

struct NodeIdTag {};
struct LinkIdTag {};
struct FlowIdTag {};
struct ResourceIdTag {};

using NodeId = Id<NodeIdTag>;
using LinkId = Id<LinkIdTag>;
using FlowId = Id<FlowIdTag>;
/// A capacity-constrained element of the fluid model (a link direction,
/// a half-duplex medium, or a hub collision domain).
using ResourceId = Id<ResourceIdTag>;

enum class NodeKind {
  host,     ///< runs applications / sensors; traffic endpoint
  hub,      ///< layer-1/2 shared medium: ONE collision domain for all ports
  switch_,  ///< layer-2 switched: per-port full-duplex, line-rate backplane
  router,   ///< layer-3 device: IP-visible hop, may answer traceroute
};

[[nodiscard]] constexpr const char* to_string(NodeKind kind) {
  switch (kind) {
    case NodeKind::host: return "host";
    case NodeKind::hub: return "hub";
    case NodeKind::switch_: return "switch";
    case NodeKind::router: return "router";
  }
  return "?";
}

/// Simulated time in seconds.
using SimTime = double;

}  // namespace envnws::simnet
