#include "simnet/address.hpp"

#include <cstdio>

#include "common/strings.hpp"

namespace envnws::simnet {

Result<Ipv4> Ipv4::parse(std::string_view text) {
  const auto parts = strings::split(text, '.');
  if (parts.size() != 4) {
    return make_error(ErrorCode::invalid_argument,
                      "not a dotted quad: '" + std::string(text) + "'");
  }
  std::uint32_t value = 0;
  for (const auto& part : parts) {
    if (part.empty() || part.size() > 3) {
      return make_error(ErrorCode::invalid_argument,
                        "bad octet in '" + std::string(text) + "'");
    }
    int octet = 0;
    for (char c : part) {
      if (c < '0' || c > '9') {
        return make_error(ErrorCode::invalid_argument,
                          "bad octet in '" + std::string(text) + "'");
      }
      octet = octet * 10 + (c - '0');
    }
    if (octet > 255) {
      return make_error(ErrorCode::invalid_argument,
                        "octet out of range in '" + std::string(text) + "'");
    }
    value = (value << 8) | static_cast<std::uint32_t>(octet);
  }
  return Ipv4(value);
}

std::string Ipv4::to_string() const {
  char buffer[20];
  std::snprintf(buffer, sizeof(buffer), "%u.%u.%u.%u", (value_ >> 24) & 0xff,
                (value_ >> 16) & 0xff, (value_ >> 8) & 0xff, value_ & 0xff);
  return buffer;
}

char Ipv4::address_class() const {
  const std::uint32_t top = value_ >> 24;
  if (top < 128) return 'A';
  if (top < 192) return 'B';
  if (top < 224) return 'C';
  if (top < 240) return 'D';
  return 'E';
}

bool Ipv4::is_private() const {
  const std::uint32_t a = value_ >> 24;
  const std::uint32_t b = (value_ >> 16) & 0xff;
  if (a == 10) return true;
  if (a == 172 && b >= 16 && b <= 31) return true;
  if (a == 192 && b == 168) return true;
  return false;
}

Ipv4 Ipv4::classful_network() const {
  switch (address_class()) {
    case 'A': return Ipv4(value_ & 0xff000000u);
    case 'B': return Ipv4(value_ & 0xffff0000u);
    default: return Ipv4(value_ & 0xffffff00u);
  }
}

bool Ipv4::same_classful_network(Ipv4 other) const {
  return classful_network() == other.classful_network();
}

}  // namespace envnws::simnet
