// Synchronous user-level measurement sessions.
//
// ProbeSession is the only interface ENV has to the platform: it can time
// a transfer, time several *concurrent* transfers, and measure small-
// message round trips — exactly the observations available to an
// unprivileged user process. Each experiment advances simulated time and
// is followed by a configurable stabilization gap (the paper lets the
// network settle between experiments).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "simnet/network.hpp"

namespace envnws::simnet {

struct ProbeOptions {
  std::string purpose = "probe";
  /// Idle time inserted after every experiment so flows from one
  /// experiment never overlap the next.
  double stabilization_gap_s = 2.0;
};

struct TransferSpec {
  NodeId src;
  NodeId dst;
  std::int64_t bytes = 0;
};

struct TransferOutcome {
  NodeId src;
  NodeId dst;
  std::int64_t bytes = 0;
  bool ok = false;
  Error error{};
  double duration_s = 0.0;
  double bandwidth_bps = 0.0;
};

class ProbeSession {
 public:
  explicit ProbeSession(Network& net, ProbeOptions options = {});

  /// Time one transfer with the network otherwise idle.
  TransferOutcome single(NodeId src, NodeId dst, std::int64_t bytes);
  /// Start all transfers at the same instant and time each to completion.
  std::vector<TransferOutcome> concurrent(const std::vector<TransferSpec>& specs);
  /// Small-message round-trip time (the NWS latency experiment).
  Result<double> rtt(NodeId a, NodeId b, std::int64_t bytes = 4);
  /// TCP connect-disconnect time, modelled as 1.5 RTT (3-way handshake).
  Result<double> connect_time(NodeId a, NodeId b);

  [[nodiscard]] std::uint64_t experiment_count() const { return experiments_; }
  [[nodiscard]] std::int64_t bytes_sent() const { return bytes_sent_; }
  /// Total simulated time consumed by this session's experiments + gaps.
  [[nodiscard]] double busy_time_s() const { return busy_time_; }

 private:
  void finish_experiment(double started_at);

  Network& net_;
  ProbeOptions options_;
  std::uint64_t experiments_ = 0;
  std::int64_t bytes_sent_ = 0;
  double busy_time_ = 0.0;
};

}  // namespace envnws::simnet
