#include "simnet/link_model.hpp"

#include <sstream>

namespace envnws::simnet {

double LinkModelSpec::retransmission_factor(double loss_pct, double cksum_pct) {
  const double delivered = (1.0 - loss_pct / 100.0) * (1.0 - cksum_pct / 100.0);
  return delivered > 0.0 ? 1.0 / delivered : 0.0;
}

double LinkModelSpec::effective_capacity(double nominal_bps) const {
  // The ideal fast path returns the input untouched so capacities stay
  // bit-identical to the historical pipeline (not merely numerically
  // equal after a *1.0 round trip).
  double bps = nominal_bps;
  if (tcp) bps *= usable_fraction;
  if (lossy()) bps *= (1.0 - loss_pct / 100.0) * (1.0 - cksum_pct / 100.0);
  return bps;
}

double LinkModelSpec::effective_latency(double nominal_s) const {
  return tcp ? nominal_s * latency_factor : nominal_s;
}

std::string LinkModelSpec::decorator_prefix() const {
  // Canonical order: tcp-lv08, lossy, wifi. Decorators commute, so any
  // parse order renders the same prefix and `parse(to_string())`
  // round-trips.
  std::ostringstream out;
  if (tcp) out << "tcp-lv08:";
  if (lossy()) {
    out << "lossy:p=" << loss_pct << "%:";
    if (cksum_pct > 0.0) out << "c=" << cksum_pct << "%:";
  }
  if (wifi) out << "wifi:";
  return out.str();
}

std::string LinkModelSpec::fingerprint() const {
  if (is_ideal()) return "ideal";
  return decorator_prefix();
}

std::string BackgroundSpec::decorator_prefix() const {
  if (!active()) return "";
  std::ostringstream out;
  out << "bg:" << flows << ":";
  return out.str();
}

}  // namespace envnws::simnet
