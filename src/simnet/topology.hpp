// Static description of the simulated platform: hosts, hubs, switches,
// routers, links, firewall zones and VLANs.
//
// The topology is *ground truth*: ENV and NWS never read it directly; they
// only observe it through probes. Tests and the deployment validator do
// read it, to check that what the tools inferred matches reality.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "simnet/address.hpp"
#include "simnet/link_model.hpp"
#include "simnet/types.hpp"

namespace envnws::simnet {

/// Deterministic synthetic load signal: base + diurnal-style sinusoid +
/// bucketed value-noise. Evaluating at the same instant always returns the
/// same value regardless of call order, which keeps sensors reproducible.
struct LoadModel {
  double base = 0.2;          ///< steady load (e.g. 0.2 runnable processes)
  double amplitude = 0.0;     ///< sinusoid amplitude
  double period_s = 3600.0;   ///< sinusoid period
  double phase = 0.0;         ///< sinusoid phase [radians]
  double noise_sigma = 0.0;   ///< stddev of additive bucketed noise
  double noise_bucket_s = 10.0;
  std::uint64_t seed = 1;

  /// Load value at simulated time `t` (clamped at 0).
  [[nodiscard]] double at(double t) const;
};

/// How a router behaves when a traceroute probe expires at it.
struct RouterPolicy {
  /// Paper §4.3 "Dropped traceroute": many routers never answer.
  bool responds_to_traceroute = true;
  /// Paper §3.2: routers "can return different addresses". When set, TTL
  /// replies carry this address instead of the router's primary one.
  std::optional<Ipv4> reported_address;
  /// Paper §4.3 "Machines without hostname": reverse DNS may fail.
  bool has_hostname = true;
};

/// A secondary identity of a multi-homed machine (e.g. a firewall gateway
/// that exists as popc.ens-lyon.fr on the public side and
/// popc0.popc.private on the private side).
struct HostAlias {
  std::string fqdn;
  Ipv4 ip;
  std::string zone;  ///< firewall zone this identity belongs to
};

struct Node {
  NodeId id;
  NodeKind kind = NodeKind::host;
  std::string name;  ///< short name ("canaria"); unique within the topology
  std::string fqdn;  ///< resolvable full name; empty => reverse DNS fails
  Ipv4 ip;           ///< primary address (zero for hubs/switches)
  RouterPolicy router;
  /// Hubs only: capacity of the shared medium (all ports contend for it).
  double hub_capacity_bps = 0.0;
  std::vector<LinkId> links;

  // --- host-only fields ---
  std::set<std::string> zones{"default"};  ///< firewall zones (hosts)
  std::vector<HostAlias> aliases;          ///< extra identities (gateways)
  int vlan = 0;
  std::map<std::string, std::string> properties;  ///< ENV "extra info" phase
  LoadModel cpu_load;
  double memory_total_mb = 1024.0;
  LoadModel memory_used_fraction{0.3, 0.0, 3600.0, 0.0, 0.0, 10.0, 2};
  double disk_total_mb = 20000.0;
  LoadModel disk_used_fraction{0.5, 0.0, 86400.0, 0.0, 0.0, 60.0, 3};
  bool up = true;  ///< failure-injection flag

  [[nodiscard]] bool is_host() const { return kind == NodeKind::host; }
  [[nodiscard]] bool ip_visible() const {
    return kind == NodeKind::router || (kind == NodeKind::host && !ip.is_zero());
  }
};

struct Link {
  LinkId id;
  NodeId a;
  NodeId b;
  /// Per-direction capacities; unequal values model asymmetric media.
  double bw_ab_bps = 0.0;
  double bw_ba_bps = 0.0;
  double latency_s = 0.0;  ///< one-way propagation latency
  /// Half-duplex media: both directions contend for ONE capacity
  /// (automatically true for any link with a hub endpoint).
  bool half_duplex = false;
  /// Per-direction routing weights; Dijkstra minimizes their sum. Unequal
  /// weights on parallel links produce asymmetric *routes* (paper §4.3).
  double weight_ab = 1.0;
  double weight_ba = 1.0;
  std::string label;
};

/// Builder + query interface. Construct with the add_*/connect calls, then
/// hand to `Network`, which freezes it.
class Topology {
 public:
  // --- construction ---
  NodeId add_host(const std::string& name, const std::string& fqdn, Ipv4 ip);
  NodeId add_hub(const std::string& name, double capacity_bps);
  NodeId add_switch(const std::string& name);
  NodeId add_router(const std::string& name, const std::string& fqdn, Ipv4 ip,
                    RouterPolicy policy = {});

  /// Symmetric full-duplex link.
  LinkId connect(NodeId a, NodeId b, double bw_bps, double latency_s,
                 const std::string& label = "");
  /// Fully general link.
  LinkId connect_directional(NodeId a, NodeId b, double bw_ab_bps, double bw_ba_bps,
                             double latency_s, const std::string& label = "");

  // --- host decoration ---
  void set_zones(NodeId host, std::set<std::string> zones);
  void add_alias(NodeId host, HostAlias alias);
  void set_vlan(NodeId host, int vlan);
  void set_property(NodeId host, const std::string& key, const std::string& value);
  void set_cpu_load(NodeId host, LoadModel model);
  void set_routing_weight(LinkId link, double weight_ab, double weight_ba);

  /// Mark the router every outbound path leaves through; traceroutes to
  /// "external" destinations stop there (it is the root of ENV's
  /// structural tree).
  void set_edge_router(NodeId router) { edge_router_ = router; }
  [[nodiscard]] NodeId edge_router() const { return edge_router_; }

  /// Link model applied by every Network built from this topology (the
  /// registry's `tcp-lv08:`/`lossy:`/`wifi:` decorators set it; the
  /// default is the bit-identical ideal model). Traveling with the
  /// topology means per-zone replica networks and the MapCache platform
  /// fingerprint inherit the model for free.
  void set_link_model(LinkModelSpec model) { link_model_ = model; }
  [[nodiscard]] const LinkModelSpec& link_model() const { return link_model_; }

  /// Deterministic background cross-traffic (the `bg:<flows>`
  /// decorator); every Network built from this topology attaches the
  /// same seeded generator set.
  void set_background(BackgroundSpec background) { background_ = background; }
  [[nodiscard]] const BackgroundSpec& background() const { return background_; }

  // --- queries ---
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] const Node& node(NodeId id) const { return nodes_.at(id.index()); }
  [[nodiscard]] Node& node_mut(NodeId id) { return nodes_.at(id.index()); }
  [[nodiscard]] const Link& link(LinkId id) const { return links_.at(id.index()); }
  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<Link>& links() const { return links_; }

  [[nodiscard]] Result<NodeId> find_by_name(const std::string& name) const;
  /// Looks up hosts by primary fqdn or any alias fqdn.
  [[nodiscard]] Result<NodeId> find_host_by_fqdn(const std::string& fqdn) const;
  [[nodiscard]] std::vector<NodeId> hosts() const;
  [[nodiscard]] std::vector<NodeId> hosts_in_zone(const std::string& zone) const;
  /// All firewall zones mentioned by any host.
  [[nodiscard]] std::vector<std::string> zones() const;
  /// Hosts whose zone set intersects both `za` and `zb` (firewall gateways).
  [[nodiscard]] std::vector<NodeId> gateways_between(const std::string& za,
                                                     const std::string& zb) const;
  /// The capacity of the given link in the `from` -> `to` direction.
  [[nodiscard]] double capacity(LinkId id, NodeId from) const;
  [[nodiscard]] double routing_weight(LinkId id, NodeId from) const;
  /// Other endpoint of `id` relative to `from`.
  [[nodiscard]] NodeId peer(LinkId id, NodeId from) const;

  /// Sanity checks (positive capacities, names unique, ...). Call before
  /// simulation; returns the first problem found.
  [[nodiscard]] Status validate() const;

 private:
  NodeId add_node(NodeKind kind, const std::string& name, const std::string& fqdn, Ipv4 ip);

  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::map<std::string, NodeId> by_name_;
  /// Host lookup by primary or alias fqdn. Maintained by add_host /
  /// add_alias; first registration wins, matching the old linear scan's
  /// node-order tie-break. Without it every zone-local name resolution
  /// (the names ARE fqdns) walked all nodes — O(n²) string compares for
  /// one 10k-host mapping pass.
  std::map<std::string, NodeId> host_by_fqdn_;
  NodeId edge_router_ = NodeId::invalid();
  LinkModelSpec link_model_;
  BackgroundSpec background_;
};

}  // namespace envnws::simnet
