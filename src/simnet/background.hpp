// Background cross-traffic generators.
//
// The paper's §4.3 ("Reliability and accuracy") warns that ENV results
// "may be corrupted if the network load evolves greatly (increasing or
// decreasing) between tests". These generators create that load: on/off
// bursts of bulk transfers between host pairs, with deterministic or
// seeded-random timing, sharing bandwidth with whatever the mapper or
// the NWS is measuring.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "simnet/network.hpp"

namespace envnws::simnet {

struct CrossTrafficSpec {
  NodeId src;
  NodeId dst;
  /// Bytes per burst (one flow per burst).
  std::int64_t burst_bytes = 4 * 1024 * 1024;
  /// Mean time between burst starts.
  double period_s = 10.0;
  /// 0 = strictly periodic; otherwise each gap is drawn uniformly from
  /// [period * (1 - spread), period * (1 + spread)].
  double spread = 0.5;
  std::uint64_t seed = 1;
};

/// Drives one background flow pattern. Start/stop at will; every flow is
/// tagged "background" in the network's purpose accounting.
class CrossTraffic {
 public:
  CrossTraffic(Network& net, CrossTrafficSpec spec);

  void start();
  void stop() { running_ = false; }
  [[nodiscard]] std::uint64_t bursts_sent() const { return bursts_; }

 private:
  void tick();

  Network& net_;
  CrossTrafficSpec spec_;
  Rng rng_;
  bool running_ = false;
  std::uint64_t bursts_ = 0;
};

/// Convenience: saturating load among random host pairs of a topology.
/// `intensity` scales the duty cycle: 0 = none, 1 = roughly one active
/// burst per generator at all times. Returns one generator per pair.
std::vector<std::unique_ptr<CrossTraffic>> make_background_load(
    Network& net, const std::vector<NodeId>& hosts, double intensity, std::uint64_t seed);

/// Build and start the generator set for a topology-level `bg:<flows>`
/// spec: `spec.flows` seeded on/off sources between random host pairs,
/// already running (their first bursts are queued). Called by the
/// Network constructor, so every replica of the topology carries the
/// exact same load schedule.
std::vector<std::unique_ptr<CrossTraffic>> attach_background(Network& net,
                                                             const BackgroundSpec& spec);

}  // namespace envnws::simnet
