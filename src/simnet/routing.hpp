// Static routing over the topology graph.
//
// Routes minimize the sum of per-direction link weights (defaulting to 1
// per hop), with deterministic tie-breaking. Because weights are
// *directional*, giving a slow uplink a small forward weight and a large
// reverse weight reproduces the asymmetric routes of the ENS-Lyon network
// (paper §4.3) without any special-case machinery. Explicit per-pair
// overrides are also supported for tests.
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "common/result.hpp"
#include "simnet/topology.hpp"
#include "simnet/types.hpp"

namespace envnws::simnet {

/// One step of a path: traverse `link` from `from` to `to`.
struct Hop {
  LinkId link;
  NodeId from;
  NodeId to;
};

struct Path {
  NodeId src;
  NodeId dst;
  std::vector<Hop> hops;

  [[nodiscard]] bool empty() const { return hops.empty(); }
  /// All nodes visited, starting with src and ending with dst.
  [[nodiscard]] std::vector<NodeId> nodes() const;
  [[nodiscard]] double total_latency(const Topology& topo) const;
  /// Capacity of the narrowest traversed element, including hub media.
  [[nodiscard]] double bottleneck_bandwidth(const Topology& topo) const;
};

class RouteTable {
 public:
  explicit RouteTable(const Topology& topo);

  /// Shortest path honoring directional weights; Error if unreachable.
  [[nodiscard]] Result<Path> path(NodeId src, NodeId dst) const;

  /// Force the route for (src, dst) to the given link sequence (validated
  /// to be a connected walk from src to dst).
  Status set_override(NodeId src, NodeId dst, const std::vector<LinkId>& links);

 private:
  void build_from(NodeId src) const;

  const Topology& topo_;
  /// Cached predecessor trees the table may hold at once. Trees are
  /// built lazily per source and evicted least-recently-used beyond
  /// this bound: a 10k-node topology where every host traceroutes once
  /// (ENV phase 1c) would otherwise accumulate O(V²) predecessor
  /// entries — gigabytes — while each tree is typically consulted for
  /// a handful of paths right after it is built.
  static constexpr std::size_t kMaxCachedSources = 128;
  // Lazily-built Dijkstra predecessor trees, one per source.
  mutable std::vector<bool> built_;
  // pred_[src][node] = hop taken to reach `node` from `src`.
  mutable std::vector<std::vector<Hop>> pred_;
  // LRU bookkeeping of the built trees.
  mutable std::vector<std::uint64_t> last_used_;
  mutable std::uint64_t use_clock_ = 0;
  mutable std::size_t built_count_ = 0;
  std::map<std::pair<NodeId, NodeId>, Path> overrides_;
};

}  // namespace envnws::simnet
