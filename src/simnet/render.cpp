#include "simnet/render.hpp"

#include <set>
#include <sstream>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace envnws::simnet {

namespace {

std::string node_label(const Node& node) {
  std::ostringstream out;
  out << node.name << " [" << to_string(node.kind);
  if (!node.ip.is_zero()) out << " " << node.ip.to_string();
  if (node.kind == NodeKind::hub) {
    out << " " << strings::format_double(units::to_mbps(node.hub_capacity_bps), 0) << " Mbps";
  }
  if (node.is_host() && !node.zones.empty()) {
    out << " zones:" << strings::join({node.zones.begin(), node.zones.end()}, "+");
  }
  out << "]";
  return out.str();
}

void render_subtree(const Topology& topo, NodeId node, LinkId via, std::set<std::uint32_t>& seen,
                    const std::string& indent, std::ostringstream& out) {
  out << indent;
  if (via.valid()) {
    const Link& link = topo.link(via);
    out << "+- (";
    if (link.bw_ab_bps == link.bw_ba_bps) {
      out << strings::format_double(units::to_mbps(link.bw_ab_bps), 0) << " Mbps";
    } else {
      out << strings::format_double(units::to_mbps(link.bw_ab_bps), 0) << "/"
          << strings::format_double(units::to_mbps(link.bw_ba_bps), 0) << " Mbps";
    }
    if (!link.label.empty()) out << " " << link.label;
    out << ") ";
  }
  if (seen.count(node.value()) > 0) {
    out << topo.node(node).name << " (already shown)\n";
    return;
  }
  seen.insert(node.value());
  out << node_label(topo.node(node)) << "\n";
  const std::string child_indent = indent + (via.valid() ? "|  " : "");
  for (const LinkId lid : topo.node(node).links) {
    if (lid == via) continue;
    render_subtree(topo, topo.peer(lid, node), lid, seen, child_indent, out);
  }
}

}  // namespace

std::string render_physical(const Topology& topo) {
  std::ostringstream out;
  if (topo.node_count() == 0) return "(empty topology)\n";
  const NodeId root = topo.edge_router().valid() ? topo.edge_router() : NodeId(0);
  std::set<std::uint32_t> seen;
  render_subtree(topo, root, LinkId::invalid(), seen, "", out);
  // Disconnected pieces (should not happen in valid scenarios, but render
  // honestly if they do).
  for (const Node& node : topo.nodes()) {
    if (seen.count(node.id.value()) == 0) {
      out << "(disconnected) ";
      render_subtree(topo, node.id, LinkId::invalid(), seen, "", out);
    }
  }
  return out.str();
}

std::string render_link_table(const Topology& topo) {
  Table table({"link", "a", "b", "a->b Mbps", "b->a Mbps", "latency us", "duplex"});
  for (const Link& link : topo.links()) {
    table.add_row({link.label.empty() ? std::to_string(link.id.value()) : link.label,
                   topo.node(link.a).name, topo.node(link.b).name,
                   strings::format_double(units::to_mbps(link.bw_ab_bps), 1),
                   strings::format_double(units::to_mbps(link.bw_ba_bps), 1),
                   strings::format_double(link.latency_s * 1e6, 0),
                   link.half_duplex ? "half" : "full"});
  }
  return table.to_string();
}

}  // namespace envnws::simnet
