// Ready-made platform descriptions.
//
// `ens_lyon()` is the paper's evaluation network (Fig. 1(a)): two 100 Mbps
// hubs joined across a 10 Mbps bottleneck with an asymmetric return route,
// a firewalled private domain reachable only through dual-homed gateways,
// a shared hub (myri) and a switched cluster (sci) behind them. The other
// builders produce synthetic families used by tests, property sweeps and
// the threshold-ablation bench.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "simnet/topology.hpp"

namespace envnws::simnet {

/// Ground-truth record of one LAN segment, used to score ENV's inference.
struct GroundTruthNet {
  enum class Kind { shared, switched };
  Kind kind = Kind::shared;
  std::vector<std::string> member_names;  ///< short host names
  double local_bw_bps = 0.0;
};

struct Scenario {
  std::string name;
  std::string description;
  Topology topology;
  /// Suggested ENV master host (short name).
  std::string master;
  /// Per-firewall-zone traceroute target (short node name). Zones not
  /// listed use the topology's edge router.
  std::map<std::string, std::string> zone_traceroute_target;
  /// Ground truth segments for accuracy scoring (synthetic families).
  std::vector<GroundTruthNet> ground_truth;

  /// Node id of a scenario host by short name. A missing name is a
  /// `not_found` error naming the scenario and the host — not a crash.
  [[nodiscard]] Result<NodeId> id(const std::string& short_name) const {
    auto found = topology.find_by_name(short_name);
    if (!found.ok()) {
      return make_error(ErrorCode::not_found,
                        "scenario '" + name + "' has no node named '" + short_name + "'");
    }
    return found.value();
  }
};

/// The ENS-Lyon network of paper Fig. 1(a). See file-top comment.
Scenario ens_lyon();

/// `n` hosts on one shared hub (half-duplex medium of `hub_bw_bps`).
Scenario star_hub(int n, double hub_bw_bps, double latency_s = 50e-6);

/// `n` hosts on one switch with full-duplex `port_bw_bps` ports.
Scenario star_switch(int n, double port_bw_bps, double latency_s = 50e-6);

/// Two switched clusters joined by a bottleneck link of `bottleneck_bps`;
/// classic dumbbell used in collision / aggregation experiments.
Scenario dumbbell(int left, int right, double port_bw_bps, double bottleneck_bps,
                  double wan_latency_s = 5e-3);

/// Master + two clusters, with a transversal cluster1<->cluster2 link the
/// master-centric ENV methodology cannot observe (paper §4.3, the
/// "master/slave paradigm" information-loss figure).
Scenario two_cluster_transversal(int per_cluster, double port_bw_bps,
                                 double transversal_bps);

/// One physical switch carved into `vlan_count` VLANs joined by a router:
/// the logical (effective) topology differs from the physical one (§3.1).
Scenario vlan_lab(int hosts_per_vlan, int vlan_count, double port_bw_bps);

/// A WAN "constellation of LANs": `sites` sites, each a LAN (alternating
/// hub/switch) behind a site router, all joined by slow WAN links.
Scenario wan_constellation(int sites, int hosts_per_site, double lan_bw_bps,
                           double wan_bw_bps, double wan_latency_s = 10e-3);

/// `zone_count` firewalled private domains behind one public backbone —
/// the ens_lyon firewall shape, scaled. Each private zone `zoneK.private`
/// hides `hosts_per_zone` hosts behind a dual-homed gateway (public
/// identity `gwK.corp.example`); the zones alternate between shared hubs
/// (even K) and switches (odd K). Since each zone is an independent ENV
/// run merged only at the end, this is the natural workload for
/// concurrent zone mapping: zone_count + 1 zones in total.
Scenario multi_firewall(int zone_count, int hosts_per_zone, double lan_bw_bps,
                        double public_bw_bps);

/// Canonical k-ary fat-tree (k even): k pods of (k/2) edge switches with
/// (k/2) hosts each, aggregation and core tiers as routers so the pod
/// structure is traceroute-visible. k^3/4 hosts, all links at `bw_bps`.
Scenario fat_tree(int k, double bw_bps);

/// 3-D torus of routers, one host per router, wrap-around links in every
/// dimension of size > 2. A platform of lone machines: every host is its
/// own structural leaf, nothing to classify — the opposite extreme from
/// the LAN-heavy families.
Scenario torus3d(int x, int y, int z, double bw_bps);

struct RandomLanParams {
  int segment_count = 4;           ///< LAN segments hanging off the backbone
  int min_hosts_per_segment = 2;
  int max_hosts_per_segment = 6;
  double backbone_bw_bps = 1e9;
  /// Candidate segment speeds (picked uniformly).
  std::vector<double> segment_bw_bps{10e6, 33e6, 100e6};
  double shared_probability = 0.5;  ///< hub vs switch per segment
};

/// Randomized LAN with recorded ground truth, for property tests and the
/// threshold-ablation bench.
Scenario random_lan(std::uint64_t seed, const RandomLanParams& params = {});

}  // namespace envnws::simnet
