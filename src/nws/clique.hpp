// NWS measurement cliques: token-ring mutual exclusion for network
// experiments (paper §2.3 and Wolski/Gaidioz/Tourancheau, HPDC'00).
//
// Hosts connected by a common physical medium are grouped into a clique;
// only the member currently holding the clique token may launch network
// experiments, so measurements never collide on a link and never observe
// each other's traffic. Token loss (a member dying while holding it) is
// recovered by a watchdog: after a silence period, the lowest-ranked
// alive member wins the leader election and regenerates the token with a
// higher generation number; stale tokens are discarded.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/units.hpp"
#include "nws/hostlocks.hpp"
#include "nws/memory.hpp"
#include "nws/series.hpp"
#include "simnet/network.hpp"

namespace envnws::nws {

/// "Given n computers, there is n x (n-1) links to test": every ordered
/// member pair, in member order. The canonical clique schedule — shared
/// by the simulated token ring (Clique) and the monitor daemon's cycle
/// scheduler, which rotates through the same list over real engines.
template <class Node>
[[nodiscard]] std::vector<std::pair<Node, Node>> ordered_experiment_pairs(
    const std::vector<Node>& members) {
  std::vector<std::pair<Node, Node>> pairs;
  for (const Node& a : members) {
    for (const Node& b : members) {
      if (!(a == b)) pairs.emplace_back(a, b);
    }
  }
  return pairs;
}

struct CliqueSpec {
  std::string name;
  std::vector<simnet::NodeId> members;
  /// Idle time between two consecutive experiments of this clique.
  double period_s = 10.0;
  std::int64_t bandwidth_probe_bytes = units::kib(64);
  bool measure_connect_time = true;
  /// Experiments to cycle through; empty means every ordered member pair
  /// ("given n computers, there is n x (n-1) links to test").
  std::vector<std::pair<simnet::NodeId, simnet::NodeId>> pairs;
  /// Silence (in periods) after which the token is declared lost.
  double regeneration_periods = 6.0;
  /// Extension (paper conclusion): number of tokens circulating
  /// concurrently. More than 1 is only safe on switched segments AND
  /// with a HostLockService guarding the endpoints.
  std::size_t parallel_tokens = 1;
};

class Clique {
 public:
  /// `locks` (optional) enables host-level locking around experiments —
  /// the paper-conclusion extension; nullptr keeps the classic protocol.
  Clique(simnet::Network& net, CliqueSpec spec, MemoryServer& memory,
         HostLockService* locks = nullptr);

  /// Inject the initial token and arm the loss watchdog.
  void start();
  void stop();

  [[nodiscard]] const CliqueSpec& spec() const { return spec_; }
  [[nodiscard]] const std::string& name() const { return spec_.name; }
  [[nodiscard]] std::uint64_t experiments_run() const { return experiments_; }
  [[nodiscard]] std::uint64_t token_passes() const { return token_passes_; }
  [[nodiscard]] std::uint64_t regenerations() const { return regenerations_; }
  [[nodiscard]] std::uint64_t lock_waits() const { return lock_waits_; }
  /// Ordered experiment pairs (resolved from the spec).
  [[nodiscard]] const std::vector<std::pair<simnet::NodeId, simnet::NodeId>>& pairs() const {
    return pairs_;
  }
  /// Expected wall-clock for one full cycle over all pairs.
  [[nodiscard]] double expected_cycle_time() const;

 private:
  struct Token {
    std::size_t schedule_index = 0;
    std::uint64_t generation = 0;
  };

  void deliver_token(Token token, simnet::NodeId holder);
  void run_experiment(Token token, simnet::NodeId holder);
  void finish_experiment(Token token, simnet::NodeId holder, bool release_locks,
                         simnet::NodeId src, simnet::NodeId dst);
  void pass_token(Token token, simnet::NodeId from);
  void arm_watchdog();
  void release_all_locks();
  void store(simnet::NodeId reporter, const SeriesKey& key, double value);

  simnet::Network& net_;
  CliqueSpec spec_;
  MemoryServer& memory_;
  HostLockService* locks_ = nullptr;
  std::vector<std::pair<simnet::NodeId, simnet::NodeId>> pairs_;
  /// Endpoint pairs currently held via the lock service (released on
  /// completion; force-released when the watchdog regenerates).
  std::vector<std::pair<simnet::NodeId, simnet::NodeId>> held_locks_;
  bool running_ = false;
  std::uint64_t generation_ = 0;
  double last_token_activity_ = 0.0;
  std::size_t last_known_index_ = 0;
  std::uint64_t experiments_ = 0;
  std::uint64_t token_passes_ = 0;
  std::uint64_t regenerations_ = 0;
  std::uint64_t lock_waits_ = 0;
};

}  // namespace envnws::nws
