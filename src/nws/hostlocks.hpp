// Host-level measurement locks — the extension the paper's conclusion
// asks for: "It makes sure that only one pair of hosts from a given
// group will conduct an experiment at a given time. But on a switched
// network, more than one experiment may be authorized if the hosts
// involved in each experiments are different. That is to say that a
// possibility to lock hosts (and not networks) is still needed."
//
// The service is shared by every clique of an NWS instance: an
// experiment may start only after acquiring both endpoints. Cliques that
// would collide always share an endpoint in practice (a representative
// belongs to both the local and the inter clique), so host locks also
// serialize cross-clique interference — and on switched segments several
// disjoint-host experiments can now run concurrently.
#pragma once

#include <cstdint>
#include <vector>

#include "simnet/types.hpp"

namespace envnws::nws {

class HostLockService {
 public:
  /// Atomically acquire both endpoints; false (and no change) if either
  /// is already held.
  bool try_acquire(simnet::NodeId a, simnet::NodeId b);
  void release(simnet::NodeId a, simnet::NodeId b);
  [[nodiscard]] bool is_locked(simnet::NodeId host) const;

  [[nodiscard]] std::uint64_t acquisitions() const { return acquisitions_; }
  /// Denied attempts: how often an experiment had to wait for a host.
  [[nodiscard]] std::uint64_t conflicts() const { return conflicts_; }

 private:
  void ensure(simnet::NodeId host);

  std::vector<bool> locked_;
  std::uint64_t acquisitions_ = 0;
  std::uint64_t conflicts_ = 0;
};

}  // namespace envnws::nws
