#include "nws/sensors.hpp"

namespace envnws::nws {

namespace {
constexpr std::int64_t kStoreBytes = 64;
}

HostSensor::HostSensor(simnet::Network& net, simnet::NodeId host, MemoryServer& memory,
                       double period_s)
    : net_(net),
      host_(host),
      memory_(memory),
      period_s_(period_s),
      host_name_(net.topology().node(host).name) {}

void HostSensor::start() {
  running_ = true;
  tick();
}

void HostSensor::tick() {
  if (!running_) return;
  net_.schedule_after(period_s_, [this] {
    if (!running_) return;
    if (net_.host_up(host_)) {
      const double now = net_.now();
      const double jitter = net_.measurement_jitter();
      const auto ship = [this](ResourceKind kind, double value) {
        net_.send_message(
            host_, memory_.host(), kStoreBytes,
            [this, kind, value, at = net_.now()] {
              memory_.store(SeriesKey{kind, host_name_, ""}, at, value);
            },
            "nws-store");
      };
      ship(ResourceKind::cpu, net_.cpu_availability(host_, now) * jitter);
      ship(ResourceKind::memory, net_.memory_free_mb(host_, now));
      ship(ResourceKind::disk, net_.disk_free_mb(host_, now));
      readings_ += 3;
    }
    tick();
  });
}

UncoordinatedProbe::UncoordinatedProbe(simnet::Network& net, simnet::NodeId src,
                                       simnet::NodeId dst, MemoryServer& memory,
                                       double period_s, std::int64_t probe_bytes)
    : net_(net),
      src_(src),
      dst_(dst),
      memory_(memory),
      period_s_(period_s),
      probe_bytes_(probe_bytes) {}

void UncoordinatedProbe::start() {
  running_ = true;
  tick();
}

void UncoordinatedProbe::tick() {
  if (!running_) return;
  net_.schedule_after(period_s_, [this] {
    if (!running_) return;
    const std::string src_name = net_.topology().node(src_).name;
    const std::string dst_name = net_.topology().node(dst_).name;
    net_.start_flow(
        src_, dst_, probe_bytes_,
        [this, src_name, dst_name](const simnet::FlowResult& result) {
          const double duration = result.duration() * net_.measurement_jitter();
          const double bw =
              duration > 0.0 ? static_cast<double>(result.bytes) * 8.0 / duration : 0.0;
          memory_.store(SeriesKey{ResourceKind::bandwidth, src_name, dst_name}, net_.now(),
                        bw);
          ++experiments_;
        },
        simnet::FlowOptions{true, "nws-uncoordinated"});
    tick();
  });
}

}  // namespace envnws::nws
