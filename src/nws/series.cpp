#include "nws/series.hpp"

namespace envnws::nws {

const char* to_string(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::bandwidth: return "bandwidth";
    case ResourceKind::latency: return "latency";
    case ResourceKind::connect_time: return "connectTime";
    case ResourceKind::cpu: return "availableCpu";
    case ResourceKind::memory: return "freeMemory";
    case ResourceKind::disk: return "freeDisk";
  }
  return "?";
}

bool is_network_resource(ResourceKind kind) {
  return kind == ResourceKind::bandwidth || kind == ResourceKind::latency ||
         kind == ResourceKind::connect_time;
}

Result<ResourceKind> resource_from_string(const std::string& text) {
  for (const ResourceKind kind :
       {ResourceKind::bandwidth, ResourceKind::latency, ResourceKind::connect_time,
        ResourceKind::cpu, ResourceKind::memory, ResourceKind::disk}) {
    if (text == to_string(kind)) return kind;
  }
  return make_error(ErrorCode::protocol, "unknown resource '" + text + "'");
}

std::string SeriesKey::to_string() const {
  std::string out = envnws::nws::to_string(resource);
  out += ':';
  out += src;
  if (!dst.empty()) {
    out += "->";
    out += dst;
  }
  return out;
}

void TimeSeries::add(double time, double value) {
  data_.push_back(Measurement{time, value});
  while (data_.size() > capacity_) data_.pop_front();
}

std::vector<double> TimeSeries::values() const {
  std::vector<double> out;
  out.reserve(data_.size());
  for (const auto& m : data_) out.push_back(m.value);
  return out;
}

double TimeSeries::mean_period() const {
  if (data_.size() < 2) return 0.0;
  return (data_.back().time - data_.front().time) / static_cast<double>(data_.size() - 1);
}

}  // namespace envnws::nws
