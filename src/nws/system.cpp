#include "nws/system.hpp"

#include <algorithm>
#include <cassert>

namespace envnws::nws {

using simnet::NodeId;

namespace {
constexpr std::int64_t kControlBytes = 64;
constexpr std::int64_t kPerMeasurementBytes = 16;
constexpr std::uint64_t kMaxQuerySteps = 20'000'000;
}  // namespace

NwsSystem::NwsSystem(simnet::Network& net, SystemConfig config)
    : net_(net), config_(std::move(config)) {
  assert(!config_.nameserver_host.empty());
  nameserver_ = std::make_unique<NameServer>(node(config_.nameserver_host));
  if (config_.enable_host_locks) locks_ = std::make_unique<HostLockService>();
  forecaster_host_ =
      config_.forecaster_host.empty() ? nameserver_->host() : node(config_.forecaster_host);
  if (config_.memory_hosts.empty()) config_.memory_hosts = {config_.nameserver_host};
  for (const auto& host : config_.memory_hosts) {
    memories_.push_back(std::make_unique<MemoryServer>("memory@" + host, node(host),
                                                       config_.series_capacity));
  }
}

NwsSystem::~NwsSystem() { stop(); }

NodeId NwsSystem::node(const std::string& name) const {
  const auto id = net_.topology().find_by_name(name);
  assert(id.ok() && "unknown host name in NWS configuration");
  return id.value();
}

MemoryServer& NwsSystem::memory_for_clique(const std::vector<simnet::NodeId>& members) {
  std::vector<MemoryServer*> reachable;
  for (const auto& memory : memories_) {
    const bool all_reach = std::all_of(
        members.begin(), members.end(),
        [&](simnet::NodeId member) { return net_.can_communicate(member, memory->host()); });
    if (all_reach) reachable.push_back(memory.get());
  }
  if (reachable.empty()) reachable.push_back(memories_.front().get());
  MemoryServer& memory = *reachable[next_memory_ % reachable.size()];
  ++next_memory_;
  return memory;
}

Clique& NwsSystem::add_clique(const CliqueSpec& spec) {
  MemoryServer& memory = memory_for_clique(spec.members);
  cliques_.push_back(std::make_unique<Clique>(net_, spec, memory, locks_.get()));
  Clique& clique = *cliques_.back();
  // Register the clique's series with the name server (simulated
  // registration traffic: one control message per series).
  for (const auto& [src, dst] : clique.pairs()) {
    const std::string src_name = net_.topology().node(src).name;
    const std::string dst_name = net_.topology().node(dst).name;
    for (const ResourceKind kind :
         {ResourceKind::bandwidth, ResourceKind::latency, ResourceKind::connect_time}) {
      nameserver_->register_series(SeriesKey{kind, src_name, dst_name}, memory.name());
    }
    net_.send_message(src, nameserver_->host(), kControlBytes, nullptr, "nws-register");
  }
  if (started_) clique.start();
  return clique;
}

void NwsSystem::add_host_sensor(const std::string& host_name) {
  MemoryServer& memory = *memories_.front();
  const NodeId host = node(host_name);
  sensors_.push_back(
      std::make_unique<HostSensor>(net_, host, memory, config_.host_sensor_period_s));
  for (const ResourceKind kind :
       {ResourceKind::cpu, ResourceKind::memory, ResourceKind::disk}) {
    nameserver_->register_series(SeriesKey{kind, host_name, ""}, memory.name());
  }
  net_.send_message(host, nameserver_->host(), kControlBytes, nullptr, "nws-register");
  if (started_) sensors_.back()->start();
}

UncoordinatedProbe& NwsSystem::add_uncoordinated_probe(const std::string& src,
                                                       const std::string& dst,
                                                       double period_s) {
  MemoryServer& memory = *memories_.front();
  probes_.push_back(
      std::make_unique<UncoordinatedProbe>(net_, node(src), node(dst), memory, period_s));
  if (started_) probes_.back()->start();
  return *probes_.back();
}

void NwsSystem::start() {
  if (started_) return;
  started_ = true;
  nameserver_->register_process(
      ProcessInfo{ProcessKind::nameserver, "nameserver", nameserver_->host()});
  nameserver_->register_process(
      ProcessInfo{ProcessKind::forecaster, "forecaster", forecaster_host_});
  for (const auto& memory : memories_) {
    nameserver_->register_process(ProcessInfo{ProcessKind::memory, memory->name(),
                                              memory->host()});
  }
  for (auto& clique : cliques_) clique->start();
  for (auto& sensor : sensors_) sensor->start();
  for (auto& probe : probes_) probe->start();
}

void NwsSystem::stop() {
  for (auto& clique : cliques_) clique->stop();
  for (auto& sensor : sensors_) sensor->stop();
  for (auto& probe : probes_) probe->stop();
}

const TimeSeries* NwsSystem::find_series(const SeriesKey& key) const {
  for (const auto& memory : memories_) {
    if (const TimeSeries* series = memory->find(key)) return series;
  }
  return nullptr;
}

std::vector<SeriesKey> NwsSystem::all_series_keys() const {
  std::vector<SeriesKey> keys;
  for (const auto& memory : memories_) {
    for (const auto& [key, series] : memory->series()) keys.push_back(key);
  }
  return keys;
}

std::uint64_t NwsSystem::total_measurements() const {
  std::uint64_t total = 0;
  for (const auto& memory : memories_) total += memory->stored_count();
  return total;
}

AdaptiveForecaster& NwsSystem::forecaster_state(const SeriesKey& key,
                                                const TimeSeries& series) {
  auto [it, inserted] = forecaster_cache_.try_emplace(key);
  auto& [forecaster, consumed] = it->second;
  // Replay measurements the forecaster has not seen yet. When the ring
  // buffer dropped old entries, restart from what remains.
  if (consumed > series.size()) {
    it->second.first = AdaptiveForecaster{};
    consumed = 0;
  }
  for (std::size_t i = consumed; i < series.size(); ++i) {
    forecaster.observe(series.at(i).value);
  }
  consumed = series.size();
  return forecaster;
}

Result<QueryReply> NwsSystem::query(const std::string& client_host, const SeriesKey& key) {
  const NodeId client = node(client_host);
  const double started_at = net_.now();

  // Step 2 happens server-side: resolve the memory for this series.
  const auto memory_name = nameserver_->locate_memory(key);
  if (!memory_name.ok()) return memory_name.error();
  MemoryServer* memory = nullptr;
  for (const auto& candidate : memories_) {
    if (candidate->name() == memory_name.value()) memory = candidate.get();
  }
  if (memory == nullptr) {
    return make_error(ErrorCode::internal, "registered memory not running");
  }

  struct QueryState {
    bool done = false;
    Result<QueryReply> reply = make_error(ErrorCode::timeout, "query did not complete");
  };
  // Shared state: callbacks may fire after this function returned (e.g.
  // when the query times out), so nothing on this stack is captured by
  // reference.
  auto st = std::make_shared<QueryState>();
  NwsSystem* self = this;

  // Step 1: client -> forecaster.
  const Status sent = net_.send_message(
      client, forecaster_host_, kControlBytes,
      [self, st, memory, key, client, started_at] {
        // Step 2: forecaster <-> name server.
        self->net_.send_message(
            self->forecaster_host_, self->nameserver_->host(), kControlBytes,
            [self, st, memory, key, client, started_at] {
              self->net_.send_message(
                  self->nameserver_->host(), self->forecaster_host_, kControlBytes,
                  [self, st, memory, key, client, started_at] {
                    // Step 3: forecaster <-> memory.
                    self->net_.send_message(
                        self->forecaster_host_, memory->host(), kControlBytes,
                        [self, st, memory, key, client, started_at] {
                          const TimeSeries* series = memory->find(key);
                          const std::int64_t payload =
                              kControlBytes +
                              kPerMeasurementBytes *
                                  static_cast<std::int64_t>(
                                      series != nullptr ? series->size() : 0);
                          self->net_.send_message(
                              memory->host(), self->forecaster_host_, payload,
                              [self, st, series, key, client, started_at] {
                                if (series == nullptr || series->empty()) {
                                  st->reply = make_error(
                                      ErrorCode::not_found,
                                      "no measurements yet for " + key.to_string());
                                  st->done = true;
                                  return;
                                }
                                QueryReply result;
                                result.forecast =
                                    self->forecaster_state(key, *series).forecast();
                                result.last_measurement = series->latest().value;
                                // Step 4: forecaster -> client.
                                self->net_.send_message(
                                    self->forecaster_host_, client, kControlBytes,
                                    [self, st, result, started_at]() mutable {
                                      result.query_latency_s = self->net_.now() - started_at;
                                      st->reply = result;
                                      st->done = true;
                                    });
                              });
                        });
                  });
            });
      });
  if (!sent.ok()) return sent.error();

  // Give up after a generous simulated-time budget (a lost control
  // message would otherwise stall the caller forever).
  net_.schedule_after(120.0, [st] { st->done = true; });
  std::uint64_t steps = 0;
  while (!st->done && steps < kMaxQuerySteps && net_.step()) ++steps;
  return st->reply;
}

}  // namespace envnws::nws
