// Host sensors and uncoordinated network probes.
//
// HostSensor reproduces the NWS CPU / memory / disk monitors: periodic
// local readings shipped to a memory server. UncoordinatedProbe is the
// *anti-pattern* the clique protocol exists to prevent — an independent
// periodic bandwidth experiment with no mutual exclusion — kept so the
// collision bench can demonstrate why cliques matter.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"
#include "nws/memory.hpp"
#include "nws/series.hpp"
#include "simnet/network.hpp"

namespace envnws::nws {

class HostSensor {
 public:
  HostSensor(simnet::Network& net, simnet::NodeId host, MemoryServer& memory,
             double period_s = 10.0);

  void start();
  void stop() { running_ = false; }
  [[nodiscard]] simnet::NodeId host() const { return host_; }
  [[nodiscard]] std::uint64_t readings() const { return readings_; }

 private:
  void tick();

  simnet::Network& net_;
  simnet::NodeId host_;
  MemoryServer& memory_;
  double period_s_;
  bool running_ = false;
  std::uint64_t readings_ = 0;
  std::string host_name_;
};

class UncoordinatedProbe {
 public:
  UncoordinatedProbe(simnet::Network& net, simnet::NodeId src, simnet::NodeId dst,
                     MemoryServer& memory, double period_s,
                     std::int64_t probe_bytes = units::kib(64));

  void start();
  void stop() { running_ = false; }
  [[nodiscard]] std::uint64_t experiments() const { return experiments_; }

 private:
  void tick();

  simnet::Network& net_;
  simnet::NodeId src_;
  simnet::NodeId dst_;
  MemoryServer& memory_;
  double period_s_;
  std::int64_t probe_bytes_;
  bool running_ = false;
  std::uint64_t experiments_ = 0;
};

}  // namespace envnws::nws
