#include "nws/nameserver.hpp"

namespace envnws::nws {

const char* to_string(ProcessKind kind) {
  switch (kind) {
    case ProcessKind::nameserver: return "nameserver";
    case ProcessKind::memory: return "memory";
    case ProcessKind::sensor: return "sensor";
    case ProcessKind::forecaster: return "forecaster";
  }
  return "?";
}

void NameServer::register_process(const ProcessInfo& info) {
  processes_.push_back(info);
  ++registrations_;
}

void NameServer::register_series(const SeriesKey& key, const std::string& memory_name) {
  series_to_memory_[key] = memory_name;
  ++registrations_;
}

Result<std::string> NameServer::locate_memory(const SeriesKey& key) const {
  const auto it = series_to_memory_.find(key);
  if (it == series_to_memory_.end()) {
    return make_error(ErrorCode::not_found, "no memory registered for " + key.to_string());
  }
  return it->second;
}

std::vector<SeriesKey> NameServer::known_series() const {
  std::vector<SeriesKey> keys;
  keys.reserve(series_to_memory_.size());
  for (const auto& [key, memory] : series_to_memory_) keys.push_back(key);
  return keys;
}

}  // namespace envnws::nws
