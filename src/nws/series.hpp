// Measurement time series and series naming.
//
// Every NWS measurement stream — one per (resource, source, destination)
// triple — is a bounded, append-only sequence of timestamped values held
// by a memory server (paper §2.1: "Memory servers store the results on
// disk for further use"; this reproduction keeps them in memory).
#pragma once

#include <cstddef>
#include <deque>
#include <string>
#include <vector>

#include "common/result.hpp"

namespace envnws::nws {

enum class ResourceKind {
  bandwidth,     ///< large-message throughput, bit/s (64 KiB probes)
  latency,       ///< small-message round-trip time, seconds
  connect_time,  ///< TCP connect-disconnect time, seconds
  cpu,           ///< fraction of CPU a fresh process would get
  memory,        ///< free memory, MB
  disk,          ///< free disk, MB
};

[[nodiscard]] const char* to_string(ResourceKind kind);
[[nodiscard]] bool is_network_resource(ResourceKind kind);
/// Inverse of to_string(); `protocol` error on unknown resource names
/// (shared by the memory-dump parser and the monitor wire protocol).
[[nodiscard]] Result<ResourceKind> resource_from_string(const std::string& text);

/// Identity of one measurement stream. Host resources leave `dst` empty.
struct SeriesKey {
  ResourceKind resource = ResourceKind::bandwidth;
  std::string src;
  std::string dst;

  [[nodiscard]] std::string to_string() const;
  friend bool operator==(const SeriesKey& a, const SeriesKey& b) {
    return a.resource == b.resource && a.src == b.src && a.dst == b.dst;
  }
  friend bool operator<(const SeriesKey& a, const SeriesKey& b) {
    if (a.resource != b.resource) return a.resource < b.resource;
    if (a.src != b.src) return a.src < b.src;
    return a.dst < b.dst;
  }
};

struct Measurement {
  double time = 0.0;
  double value = 0.0;
};

/// Bounded measurement history (drop-oldest).
class TimeSeries {
 public:
  explicit TimeSeries(std::size_t capacity = 512) : capacity_(capacity) {}

  void add(double time, double value);
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }
  [[nodiscard]] const Measurement& at(std::size_t i) const { return data_[i]; }
  [[nodiscard]] const Measurement& latest() const { return data_.back(); }
  [[nodiscard]] std::vector<double> values() const;
  /// Mean inter-measurement spacing (the achieved measurement period).
  [[nodiscard]] double mean_period() const;

 private:
  std::size_t capacity_;
  std::deque<Measurement> data_;
};

}  // namespace envnws::nws
