#include "nws/clique.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace envnws::nws {

using simnet::NodeId;

namespace {
constexpr std::int64_t kTokenBytes = 32;
constexpr std::int64_t kStoreBytes = 64;
constexpr std::int64_t kLatencyProbeBytes = 4;  // "a 4 byte TCP socket transfer"
}  // namespace

Clique::Clique(simnet::Network& net, CliqueSpec spec, MemoryServer& memory,
               HostLockService* locks)
    : net_(net), spec_(std::move(spec)), memory_(memory), locks_(locks) {
  if (!spec_.pairs.empty()) {
    pairs_ = spec_.pairs;
  } else {
    pairs_ = ordered_experiment_pairs(spec_.members);
  }
  if (spec_.parallel_tokens < 1) spec_.parallel_tokens = 1;
  // Parallel tokens without host locks would let experiments of this
  // clique collide with each other; refuse silently down to 1.
  if (locks_ == nullptr) spec_.parallel_tokens = 1;
}

double Clique::expected_cycle_time() const {
  return spec_.period_s * static_cast<double>(pairs_.size());
}

void Clique::start() {
  if (pairs_.empty()) return;
  running_ = true;
  last_token_activity_ = net_.now();
  ++generation_;
  // Inject the tokens, spread across the schedule. The classic protocol
  // uses exactly one; the host-lock extension may circulate several on a
  // switched segment (disjoint-host experiments are independent there).
  const std::size_t tokens = std::min(spec_.parallel_tokens, pairs_.size());
  for (std::size_t t = 0; t < tokens; ++t) {
    const std::size_t index = t * pairs_.size() / tokens;
    Token token{index, generation_};
    deliver_token(token, pairs_[index].first);
  }
  arm_watchdog();
}

void Clique::stop() {
  running_ = false;
  release_all_locks();
}

void Clique::release_all_locks() {
  if (locks_ == nullptr) return;
  for (const auto& [a, b] : held_locks_) locks_->release(a, b);
  held_locks_.clear();
}

void Clique::store(NodeId reporter, const SeriesKey& key, double value) {
  // The sensor ships the result to its memory server; storage happens at
  // message delivery. Results from a reporter that dies in flight are
  // dropped by the network, like the real system's lost TCP connection.
  const double measured_at = net_.now();
  net_.send_message(
      reporter, memory_.host(), kStoreBytes,
      [this, key, value, measured_at] { memory_.store(key, measured_at, value); },
      "nws-store");
}

void Clique::deliver_token(Token token, NodeId holder) {
  if (!running_ || token.generation != generation_) return;  // stale token
  last_token_activity_ = net_.now();
  last_known_index_ = token.schedule_index;
  if (!net_.host_up(holder)) return;  // holder died: watchdog will recover
  // Pace the clique: one experiment per period.
  net_.schedule_after(spec_.period_s, [this, token, holder] {
    if (!running_ || token.generation != generation_) return;
    run_experiment(token, holder);
  });
}

void Clique::finish_experiment(Token token, NodeId holder, bool release_locks, NodeId src,
                               NodeId dst) {
  if (release_locks && locks_ != nullptr) {
    locks_->release(src, dst);
    const auto it = std::find(held_locks_.begin(), held_locks_.end(), std::make_pair(src, dst));
    if (it != held_locks_.end()) held_locks_.erase(it);
  }
  pass_token(token, holder);
}

void Clique::run_experiment(Token token, NodeId holder) {
  const auto [src, dst] = pairs_[token.schedule_index % pairs_.size()];
  if (!net_.host_up(src) || !net_.host_up(dst)) {
    pass_token(token, holder);  // skip the unmeasurable pair
    return;
  }
  // Extension: host-level locking. Both endpoints must be free before
  // the experiment may start; a busy endpoint defers the token briefly.
  if (locks_ != nullptr) {
    if (!locks_->try_acquire(src, dst)) {
      ++lock_waits_;
      net_.schedule_after(spec_.period_s * 0.25, [this, token, holder] {
        if (!running_ || token.generation != generation_) return;
        run_experiment(token, holder);
      });
      return;
    }
    held_locks_.emplace_back(src, dst);
  }
  const std::string src_name = net_.topology().node(src).name;
  const std::string dst_name = net_.topology().node(dst).name;

  // --- latency: 4-byte round trip -------------------------------------
  const double rtt_start = net_.now();
  const Status sent = net_.send_message(
      src, dst, kLatencyProbeBytes,
      [this, token, holder, src, dst, src_name, dst_name, rtt_start] {
        net_.send_message(
            dst, src, kLatencyProbeBytes,
            [this, token, holder, src, dst, src_name, dst_name, rtt_start] {
              const double rtt = (net_.now() - rtt_start) * net_.measurement_jitter();
              store(src, SeriesKey{ResourceKind::latency, src_name, dst_name}, rtt);
              if (spec_.measure_connect_time) {
                // TCP connect ~ 1.5 RTT (3-way handshake).
                store(src, SeriesKey{ResourceKind::connect_time, src_name, dst_name},
                      1.5 * rtt);
              }
              // --- bandwidth: timed 64 KiB transfer ---------------------
              const auto flow = net_.start_flow(
                  src, dst, spec_.bandwidth_probe_bytes,
                  [this, token, holder, src, dst, src_name,
                   dst_name](const simnet::FlowResult& result) {
                    const double duration = result.duration() * net_.measurement_jitter();
                    const double bw =
                        duration > 0.0 ? static_cast<double>(result.bytes) * 8.0 / duration
                                       : 0.0;
                    store(result.src, SeriesKey{ResourceKind::bandwidth, src_name, dst_name},
                          bw);
                    ++experiments_;
                    finish_experiment(token, result.src, true, src, dst);
                  },
                  simnet::FlowOptions{true, "nws-bandwidth"});
              if (!flow.ok()) finish_experiment(token, holder, true, src, dst);
            },
            "nws-latency");
      },
      "nws-latency");
  if (!sent.ok()) finish_experiment(token, holder, true, src, dst);
}

void Clique::pass_token(Token token, NodeId from) {
  if (!running_ || token.generation != generation_) return;
  // Choose the next experiment whose endpoints are alive (handing the
  // token to a dead member would lose it); fall back to alive-source
  // pairs so the schedule resumes when the peer recovers.
  Token next{token.schedule_index, token.generation};
  NodeId next_holder = NodeId::invalid();
  for (std::size_t i = 1; i <= pairs_.size(); ++i) {
    const std::size_t idx = (token.schedule_index + i) % pairs_.size();
    if (net_.host_up(pairs_[idx].first) && net_.host_up(pairs_[idx].second)) {
      next.schedule_index = idx;
      next_holder = pairs_[idx].first;
      break;
    }
  }
  if (!next_holder.valid()) {
    for (std::size_t i = 1; i <= pairs_.size(); ++i) {
      const std::size_t idx = (token.schedule_index + i) % pairs_.size();
      if (net_.host_up(pairs_[idx].first)) {
        next.schedule_index = idx;
        next_holder = pairs_[idx].first;
        break;
      }
    }
  }
  if (!next_holder.valid()) return;  // nobody alive; the watchdog waits
  ++token_passes_;
  if (next_holder == from) {
    deliver_token(next, next_holder);
    return;
  }
  const Status sent = net_.send_message(
      from, next_holder, kTokenBytes,
      [this, next, next_holder] { deliver_token(next, next_holder); }, "nws-token");
  // An undeliverable token (dead sender/receiver) is simply lost; the
  // watchdog below regenerates it after the silence threshold.
  (void)sent;
}

void Clique::arm_watchdog() {
  const double check_every = spec_.period_s * spec_.regeneration_periods;
  net_.schedule_after(check_every, [this, check_every] {
    if (!running_) return;
    if (net_.now() - last_token_activity_ >= check_every) {
      // Token lost. Leader election: the lowest-ranked alive member
      // regenerates it (every member runs the same watchdog; the ranking
      // makes the outcome unique).
      NodeId leader = NodeId::invalid();
      for (const NodeId member : spec_.members) {
        if (net_.host_up(member)) {
          leader = member;
          break;
        }
      }
      if (leader.valid()) {
        ++regenerations_;
        ++generation_;
        // A lost token may have died mid-experiment with endpoints
        // locked: regeneration force-releases everything this clique
        // held, or the locks would leak forever.
        release_all_locks();
        ENVNWS_LOG(info, "nws") << "clique " << spec_.name << ": token regenerated by "
                                << net_.topology().node(leader).name;
        // Resume the schedule at the first pair whose source is alive,
        // starting from where the ring stopped.
        Token token{last_known_index_, generation_};
        for (std::size_t i = 0; i < pairs_.size(); ++i) {
          const std::size_t idx = (last_known_index_ + i) % pairs_.size();
          if (net_.host_up(pairs_[idx].first)) {
            token.schedule_index = idx;
            break;
          }
        }
        deliver_token(token, pairs_[token.schedule_index].first);
      }
    }
    arm_watchdog();
  });
}

}  // namespace envnws::nws
