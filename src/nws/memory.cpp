#include "nws/memory.hpp"

#include <cstdio>
#include <sstream>

#include "common/strings.hpp"

namespace envnws::nws {

void MemoryServer::store(const SeriesKey& key, double time, double value) {
  auto [it, inserted] = series_.try_emplace(key, TimeSeries(series_capacity_));
  it->second.add(time, value);
  ++stored_count_;
}

const TimeSeries* MemoryServer::find(const SeriesKey& key) const {
  const auto it = series_.find(key);
  return it == series_.end() ? nullptr : &it->second;
}

std::string MemoryServer::dump() const {
  std::ostringstream out;
  out << "# nws memory dump: " << name_ << "\n";
  for (const auto& [key, series] : series_) {
    out << "series " << to_string(key.resource) << " " << key.src << " "
        << (key.dst.empty() ? "-" : key.dst) << "\n";
    for (std::size_t i = 0; i < series.size(); ++i) {
      char line[64];
      std::snprintf(line, sizeof(line), "%.9g %.9g\n", series.at(i).time,
                    series.at(i).value);
      out << line;
    }
  }
  return out.str();
}

Status MemoryServer::restore(const std::string& text) {
  const SeriesKey* current = nullptr;
  SeriesKey scratch;
  for (const auto& raw_line : strings::split(text, '\n')) {
    const std::string line = strings::trim(raw_line);
    if (line.empty() || line.front() == '#') continue;
    if (strings::starts_with(line, "series ")) {
      const auto fields = strings::split_nonempty(line, ' ');
      if (fields.size() != 4) {
        return make_error(ErrorCode::protocol, "malformed series header: " + line);
      }
      const auto resource = resource_from_string(fields[1]);
      if (!resource.ok()) return resource.error();
      scratch = SeriesKey{resource.value(), fields[2], fields[3] == "-" ? "" : fields[3]};
      current = &scratch;
      continue;
    }
    if (current == nullptr) {
      return make_error(ErrorCode::protocol, "measurement before any series header");
    }
    double time = 0.0;
    double value = 0.0;
    if (std::sscanf(line.c_str(), "%lf %lf", &time, &value) != 2) {
      return make_error(ErrorCode::protocol, "malformed measurement line: " + line);
    }
    store(*current, time, value);
  }
  return {};
}

}  // namespace envnws::nws
