// NWS name server: the directory every other process registers with
// (paper §2.1: "keeps a directory of the system, allowing each part to
// localize other existing servers").
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "nws/series.hpp"
#include "simnet/types.hpp"

namespace envnws::nws {

enum class ProcessKind { nameserver, memory, sensor, forecaster };

[[nodiscard]] const char* to_string(ProcessKind kind);

struct ProcessInfo {
  ProcessKind kind = ProcessKind::sensor;
  std::string name;
  simnet::NodeId host;
};

class NameServer {
 public:
  explicit NameServer(simnet::NodeId host) : host_(host) {}

  [[nodiscard]] simnet::NodeId host() const { return host_; }

  void register_process(const ProcessInfo& info);
  /// Bind a measurement series to the memory server that stores it.
  void register_series(const SeriesKey& key, const std::string& memory_name);
  [[nodiscard]] Result<std::string> locate_memory(const SeriesKey& key) const;
  [[nodiscard]] const std::vector<ProcessInfo>& processes() const { return processes_; }
  [[nodiscard]] std::vector<SeriesKey> known_series() const;
  [[nodiscard]] std::uint64_t registration_count() const { return registrations_; }

 private:
  simnet::NodeId host_;
  std::vector<ProcessInfo> processes_;
  std::map<SeriesKey, std::string> series_to_memory_;
  std::uint64_t registrations_ = 0;
};

}  // namespace envnws::nws
