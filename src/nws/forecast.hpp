// The NWS statistical forecasting battery.
//
// The NWS forecaster (paper §2.1; Wolski et al., FGCS 15(5-6)) runs a
// family of cheap predictors over each measurement series in parallel,
// tracks every predictor's cumulative error, and answers each query with
// the prediction of the currently most accurate one ("dynamic predictor
// selection"). This module reproduces that design: a battery of
// incremental O(1)-per-update predictors and an adaptive selector that
// reports both the forecast and the winner's error estimate.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

namespace envnws::nws {

/// Incremental one-step-ahead predictor.
class Predictor {
 public:
  virtual ~Predictor() = default;
  [[nodiscard]] virtual const std::string& name() const = 0;
  /// Prediction for the *next* value (call before update()).
  [[nodiscard]] virtual double predict() const = 0;
  /// Feed the actual next value.
  virtual void update(double value) = 0;
};

// --- the battery --------------------------------------------------------

std::unique_ptr<Predictor> make_last_value();
std::unique_ptr<Predictor> make_running_mean();
std::unique_ptr<Predictor> make_sliding_mean(std::size_t window);
std::unique_ptr<Predictor> make_sliding_median(std::size_t window);
/// Sliding mean over the window with the given fraction trimmed per side.
std::unique_ptr<Predictor> make_trimmed_mean(std::size_t window, double trim_fraction);
std::unique_ptr<Predictor> make_exponential_smoothing(double gain);
/// Exponential smoothing whose gain adapts to the observed error
/// (the NWS "adaptive" gradient predictor).
std::unique_ptr<Predictor> make_adaptive_smoothing(double initial_gain);
/// Last value plus momentum (difference of the last two observations).
std::unique_ptr<Predictor> make_momentum();

/// The default NWS-style predictor set.
std::vector<std::unique_ptr<Predictor>> default_battery();

// --- dynamic predictor selection ----------------------------------------

struct Forecast {
  double value = 0.0;
  /// Error estimate: the winner's mean absolute error so far.
  double mae = 0.0;
  /// Root-mean-square error of the winner.
  double rmse = 0.0;
  std::string winner;
  std::size_t samples = 0;
};

class AdaptiveForecaster {
 public:
  /// Uses default_battery() when `battery` is empty.
  explicit AdaptiveForecaster(std::vector<std::unique_ptr<Predictor>> battery = {});

  /// Feed the next observed value (updates every predictor's error).
  void observe(double value);
  /// Forecast the next value using the minimum-MSE predictor so far.
  [[nodiscard]] Forecast forecast() const;
  /// Cumulative mean absolute error of each predictor (for the bench).
  [[nodiscard]] std::vector<std::pair<std::string, double>> predictor_errors() const;
  [[nodiscard]] std::size_t observations() const { return count_; }

 private:
  struct Tracked {
    std::unique_ptr<Predictor> predictor;
    double sum_abs_error = 0.0;
    double sum_sq_error = 0.0;
  };
  std::vector<Tracked> battery_;
  std::size_t count_ = 0;
};

}  // namespace envnws::nws
