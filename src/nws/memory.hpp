// NWS memory server: bounded storage for measurement series, with the
// text dump/restore the real system's on-disk persistence provided
// (paper §2.1: memories "store the results on disk for further use").
#pragma once

#include <map>
#include <string>

#include "common/result.hpp"
#include "nws/series.hpp"
#include "simnet/types.hpp"

namespace envnws::nws {

class MemoryServer {
 public:
  MemoryServer(std::string name, simnet::NodeId host, std::size_t series_capacity = 512)
      : name_(std::move(name)), host_(host), series_capacity_(series_capacity) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] simnet::NodeId host() const { return host_; }

  void store(const SeriesKey& key, double time, double value);
  [[nodiscard]] const TimeSeries* find(const SeriesKey& key) const;
  [[nodiscard]] const std::map<SeriesKey, TimeSeries>& series() const { return series_; }
  [[nodiscard]] std::uint64_t stored_count() const { return stored_count_; }

  /// Serialize every series to the line-oriented on-disk format:
  ///   series <resource> <src> <dst>\n followed by "<time> <value>" lines.
  [[nodiscard]] std::string dump() const;
  /// Restore a dump (appends to existing series).
  Status restore(const std::string& text);

 private:
  std::string name_;
  simnet::NodeId host_;
  std::size_t series_capacity_;
  std::map<SeriesKey, TimeSeries> series_;
  std::uint64_t stored_count_ = 0;
};

}  // namespace envnws::nws
