// NwsSystem: a complete Network Weather Service instance bound to a
// simulated platform — one name server, one forecaster, memory servers,
// host sensors and measurement cliques (paper §2.1's four server kinds).
//
// Queries follow the paper's Fig.-1 message flow: the client asks the
// forecaster (step 1), the forecaster locates the memory via the name
// server (step 2), fetches the measurement history (step 3), applies the
// statistical battery and answers (step 4). Every hop is a simulated
// message, so query latency is as real as the measurements.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "nws/clique.hpp"
#include "nws/forecast.hpp"
#include "nws/memory.hpp"
#include "nws/nameserver.hpp"
#include "nws/sensors.hpp"
#include "nws/series.hpp"
#include "simnet/network.hpp"

namespace envnws::nws {

struct SystemConfig {
  std::string nameserver_host;
  std::string forecaster_host;
  /// Hosts running memory servers; cliques are assigned round-robin.
  std::vector<std::string> memory_hosts;
  double host_sensor_period_s = 10.0;
  std::size_t series_capacity = 512;
  /// Extension (paper conclusion): guard experiments with host-level
  /// locks shared across all cliques.
  bool enable_host_locks = false;
};

struct QueryReply {
  Forecast forecast;
  double last_measurement = 0.0;
  double query_latency_s = 0.0;  ///< client-observed round trip
};

class NwsSystem {
 public:
  NwsSystem(simnet::Network& net, SystemConfig config);
  ~NwsSystem();
  NwsSystem(const NwsSystem&) = delete;
  NwsSystem& operator=(const NwsSystem&) = delete;

  /// Create a measurement clique (before or after start()).
  Clique& add_clique(const CliqueSpec& spec);
  /// Start CPU/memory/disk monitoring on a host.
  void add_host_sensor(const std::string& host_name);
  /// Anti-pattern probe for the collision experiments.
  UncoordinatedProbe& add_uncoordinated_probe(const std::string& src, const std::string& dst,
                                              double period_s);

  /// Register everything with the name server and start all activity.
  void start();
  void stop();

  /// Issue a forecast query from `client_host` and run the simulation
  /// until the reply arrives.
  Result<QueryReply> query(const std::string& client_host, const SeriesKey& key);

  // --- introspection (tests, benches, validator) ---
  [[nodiscard]] const NameServer& nameserver() const { return *nameserver_; }
  [[nodiscard]] const HostLockService* host_locks() const { return locks_.get(); }
  [[nodiscard]] const std::vector<std::unique_ptr<Clique>>& cliques() const { return cliques_; }
  [[nodiscard]] const TimeSeries* find_series(const SeriesKey& key) const;
  [[nodiscard]] std::vector<SeriesKey> all_series_keys() const;
  [[nodiscard]] std::uint64_t total_measurements() const;
  [[nodiscard]] simnet::Network& network() { return net_; }

 private:
  [[nodiscard]] simnet::NodeId node(const std::string& name) const;
  /// Memory server for a new clique: round-robin over the configured
  /// hosts, restricted to those every member can actually reach (a
  /// firewalled zone must store to its own site's memory).
  MemoryServer& memory_for_clique(const std::vector<simnet::NodeId>& members);
  /// Forecaster-side per-series state, replayed from memory on demand.
  AdaptiveForecaster& forecaster_state(const SeriesKey& key, const TimeSeries& series);

  simnet::Network& net_;
  SystemConfig config_;
  std::unique_ptr<NameServer> nameserver_;
  std::unique_ptr<HostLockService> locks_;
  simnet::NodeId forecaster_host_;
  std::vector<std::unique_ptr<MemoryServer>> memories_;
  std::vector<std::unique_ptr<Clique>> cliques_;
  std::vector<std::unique_ptr<HostSensor>> sensors_;
  std::vector<std::unique_ptr<UncoordinatedProbe>> probes_;
  std::map<SeriesKey, std::pair<AdaptiveForecaster, std::size_t>> forecaster_cache_;
  std::size_t next_memory_ = 0;
  bool started_ = false;
};

}  // namespace envnws::nws
