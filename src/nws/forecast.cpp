#include "nws/forecast.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/stats.hpp"

namespace envnws::nws {

namespace {

class LastValue final : public Predictor {
 public:
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] double predict() const override { return last_; }
  void update(double value) override { last_ = value; }

 private:
  std::string name_ = "last";
  double last_ = 0.0;
};

class RunningMean final : public Predictor {
 public:
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] double predict() const override { return count_ > 0 ? sum_ / count_ : 0.0; }
  void update(double value) override {
    sum_ += value;
    count_ += 1.0;
  }

 private:
  std::string name_ = "mean";
  double sum_ = 0.0;
  double count_ = 0.0;
};

class SlidingMean final : public Predictor {
 public:
  explicit SlidingMean(std::size_t window)
      : name_("mean_w" + std::to_string(window)), window_(window) {}
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] double predict() const override {
    return values_.empty() ? 0.0 : sum_ / static_cast<double>(values_.size());
  }
  void update(double value) override {
    values_.push_back(value);
    sum_ += value;
    if (values_.size() > window_) {
      sum_ -= values_.front();
      values_.pop_front();
    }
  }

 private:
  std::string name_;
  std::size_t window_;
  std::deque<double> values_;
  double sum_ = 0.0;
};

class SlidingMedian final : public Predictor {
 public:
  explicit SlidingMedian(std::size_t window)
      : name_("median_w" + std::to_string(window)), window_(window) {}
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] double predict() const override {
    if (values_.empty()) return 0.0;
    std::vector<double> copy(values_.begin(), values_.end());
    return stats::median(copy);
  }
  void update(double value) override {
    values_.push_back(value);
    if (values_.size() > window_) values_.pop_front();
  }

 private:
  std::string name_;
  std::size_t window_;
  std::deque<double> values_;
};

class TrimmedMean final : public Predictor {
 public:
  TrimmedMean(std::size_t window, double trim_fraction)
      : name_("trimmed_w" + std::to_string(window)),
        window_(window),
        trim_fraction_(trim_fraction) {}
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] double predict() const override {
    if (values_.empty()) return 0.0;
    std::vector<double> copy(values_.begin(), values_.end());
    return stats::trimmed_mean(copy, trim_fraction_);
  }
  void update(double value) override {
    values_.push_back(value);
    if (values_.size() > window_) values_.pop_front();
  }

 private:
  std::string name_;
  std::size_t window_;
  double trim_fraction_;
  std::deque<double> values_;
};

class ExponentialSmoothing final : public Predictor {
 public:
  explicit ExponentialSmoothing(double gain)
      : name_("expsmooth_g" + std::to_string(gain).substr(0, 4)), gain_(gain) {}
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] double predict() const override { return state_; }
  void update(double value) override {
    if (!primed_) {
      state_ = value;
      primed_ = true;
      return;
    }
    state_ = gain_ * value + (1.0 - gain_) * state_;
  }

 private:
  std::string name_;
  double gain_;
  double state_ = 0.0;
  bool primed_ = false;
};

/// Gain follows the sign of the error trend: when recent predictions lag
/// the signal, the gain grows (track faster); when they overshoot noisy
/// samples, it shrinks (smooth harder).
class AdaptiveSmoothing final : public Predictor {
 public:
  explicit AdaptiveSmoothing(double initial_gain)
      : name_("adaptsmooth"), gain_(initial_gain) {}
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] double predict() const override { return state_; }
  void update(double value) override {
    if (!primed_) {
      state_ = value;
      primed_ = true;
      return;
    }
    const double error = value - state_;
    // Same-sign consecutive errors mean the smoother is lagging.
    if (error * last_error_ > 0.0) {
      gain_ = std::min(0.95, gain_ * 1.1);
    } else {
      gain_ = std::max(0.05, gain_ * 0.9);
    }
    last_error_ = error;
    state_ += gain_ * error;
  }

 private:
  std::string name_;
  double gain_;
  double state_ = 0.0;
  double last_error_ = 0.0;
  bool primed_ = false;
};

class Momentum final : public Predictor {
 public:
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] double predict() const override { return last_ + (last_ - previous_); }
  void update(double value) override {
    previous_ = primed_ ? last_ : value;
    last_ = value;
    primed_ = true;
  }

 private:
  std::string name_ = "momentum";
  double last_ = 0.0;
  double previous_ = 0.0;
  bool primed_ = false;
};

}  // namespace

std::unique_ptr<Predictor> make_last_value() { return std::make_unique<LastValue>(); }
std::unique_ptr<Predictor> make_running_mean() { return std::make_unique<RunningMean>(); }
std::unique_ptr<Predictor> make_sliding_mean(std::size_t window) {
  return std::make_unique<SlidingMean>(window);
}
std::unique_ptr<Predictor> make_sliding_median(std::size_t window) {
  return std::make_unique<SlidingMedian>(window);
}
std::unique_ptr<Predictor> make_trimmed_mean(std::size_t window, double trim_fraction) {
  return std::make_unique<TrimmedMean>(window, trim_fraction);
}
std::unique_ptr<Predictor> make_exponential_smoothing(double gain) {
  return std::make_unique<ExponentialSmoothing>(gain);
}
std::unique_ptr<Predictor> make_adaptive_smoothing(double initial_gain) {
  return std::make_unique<AdaptiveSmoothing>(initial_gain);
}
std::unique_ptr<Predictor> make_momentum() { return std::make_unique<Momentum>(); }

std::vector<std::unique_ptr<Predictor>> default_battery() {
  std::vector<std::unique_ptr<Predictor>> battery;
  battery.push_back(make_last_value());
  battery.push_back(make_running_mean());
  battery.push_back(make_sliding_mean(5));
  battery.push_back(make_sliding_mean(21));
  battery.push_back(make_sliding_mean(51));
  battery.push_back(make_sliding_median(5));
  battery.push_back(make_sliding_median(21));
  battery.push_back(make_sliding_median(51));
  battery.push_back(make_trimmed_mean(31, 0.1));
  battery.push_back(make_exponential_smoothing(0.05));
  battery.push_back(make_exponential_smoothing(0.2));
  battery.push_back(make_exponential_smoothing(0.5));
  battery.push_back(make_exponential_smoothing(0.9));
  battery.push_back(make_adaptive_smoothing(0.3));
  battery.push_back(make_momentum());
  return battery;
}

AdaptiveForecaster::AdaptiveForecaster(std::vector<std::unique_ptr<Predictor>> battery) {
  if (battery.empty()) battery = default_battery();
  for (auto& predictor : battery) {
    battery_.push_back(Tracked{std::move(predictor), 0.0, 0.0});
  }
}

void AdaptiveForecaster::observe(double value) {
  for (auto& tracked : battery_) {
    if (count_ > 0) {
      const double error = tracked.predictor->predict() - value;
      tracked.sum_abs_error += std::abs(error);
      tracked.sum_sq_error += error * error;
    }
    tracked.predictor->update(value);
  }
  ++count_;
}

Forecast AdaptiveForecaster::forecast() const {
  Forecast out;
  out.samples = count_;
  if (battery_.empty()) return out;
  const Tracked* best = &battery_.front();
  for (const auto& tracked : battery_) {
    if (tracked.sum_sq_error < best->sum_sq_error) best = &tracked;
  }
  out.value = best->predictor->predict();
  out.winner = best->predictor->name();
  const double denom = count_ > 1 ? static_cast<double>(count_ - 1) : 1.0;
  out.mae = best->sum_abs_error / denom;
  out.rmse = std::sqrt(best->sum_sq_error / denom);
  return out;
}

std::vector<std::pair<std::string, double>> AdaptiveForecaster::predictor_errors() const {
  std::vector<std::pair<std::string, double>> out;
  const double denom = count_ > 1 ? static_cast<double>(count_ - 1) : 1.0;
  for (const auto& tracked : battery_) {
    out.emplace_back(tracked.predictor->name(), tracked.sum_abs_error / denom);
  }
  return out;
}

}  // namespace envnws::nws
