#include "nws/hostlocks.hpp"

#include <algorithm>

namespace envnws::nws {

void HostLockService::ensure(simnet::NodeId host) {
  if (host.index() >= locked_.size()) locked_.resize(host.index() + 1, false);
}

bool HostLockService::try_acquire(simnet::NodeId a, simnet::NodeId b) {
  ensure(a);
  ensure(b);
  if (locked_[a.index()] || locked_[b.index()]) {
    ++conflicts_;
    return false;
  }
  locked_[a.index()] = true;
  locked_[b.index()] = true;
  ++acquisitions_;
  return true;
}

void HostLockService::release(simnet::NodeId a, simnet::NodeId b) {
  ensure(a);
  ensure(b);
  locked_[a.index()] = false;
  locked_[b.index()] = false;
}

bool HostLockService::is_locked(simnet::NodeId host) const {
  return host.index() < locked_.size() && locked_[host.index()];
}

}  // namespace envnws::nws
