// Probe traces: record and replay the observation stream of an ENV run.
//
// The ENV mapper is defined entirely by the probe experiments it issues
// (probe_engine.hpp), so that stream IS the mapping: serialize it once
// and every mapping run becomes a durable, replayable artifact. A
// `RecordingProbeEngine` wraps any `ProbeEngine` and writes each
// experiment — kind, endpoints, outcome, cumulative engine stats — to a
// versioned text trace (`ENVTRACE 1`, grammar in docs/TESTING.md); a
// `TraceProbeEngine` plays such a trace back without touching the
// platform at all, so a `MapResult` obtained from a trace is
// bit-identical to the one the recorded run produced (tier-1 golden
// traces under tests/data/traces/ assert exactly that). Strict replay
// turns any out-of-trace request into a sticky violation — the mapper
// folds probe errors into warnings, so callers (api::Session) must check
// `violation()` after mapping to fail loudly instead of silently
// accepting a half-replayed view; lenient replay falls back to a
// delegate engine instead.
//
// This is the validation substrate for real-hardware backends: a
// TCP-based engine can be checked offline against traces recorded from
// the simulator (or vice versa) before it ever probes a live network.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "env/probe_engine.hpp"

namespace envnws::env {

/// One recorded engine call: the request, its outcome(s), and the inner
/// engine's cumulative stats right after it — replaying the stats at the
/// same boundaries keeps per-zone MapStats (computed by diffing
/// `ProbeEngine::stats()` around each zone) bit-identical.
struct TraceRecord {
  enum class Kind { lookup, traceroute, bandwidth, concurrent };

  /// One request/result pair. Plain experiments carry exactly one entry;
  /// a concurrent batch carries one per transfer, in request order.
  struct Entry {
    std::string from;  ///< lookup: hostname; others: source host
    std::string to;    ///< traceroute: target; bandwidth: sink; lookup: unused
    bool ok = true;
    Error error;                 ///< when !ok
    double bandwidth_bps = 0.0;  ///< bandwidth / concurrent outcomes
    HostIdentity identity;       ///< lookup outcome
    std::vector<TraceHop> hops;  ///< traceroute outcome
  };

  Kind kind = Kind::lookup;
  std::vector<Entry> entries;
  ProbeStats stats_after;

  /// "bandwidth m -> h0", "concurrent[2] m -> h0, m -> h1" — the request
  /// summary used by divergence diagnostics.
  [[nodiscard]] std::string describe() const;
};

[[nodiscard]] const char* to_string(TraceRecord::Kind kind);

/// A parsed probe trace: the in-memory form of one ENVTRACE document.
struct ProbeTrace {
  static constexpr int kFormatVersion = 1;

  std::vector<TraceRecord> records;
  /// Where the trace came from, for diagnostics ("<memory>" when parsed
  /// from text).
  std::string source = "<memory>";

  static Result<ProbeTrace> parse(const std::string& text, std::string source = "<memory>");
  /// `not_found` when the file does not exist; `protocol` when it exists
  /// but is not a version-1 ENVTRACE document.
  static Result<ProbeTrace> load(const std::string& path);

  /// Serialized ENVTRACE document; `parse(t.to_string())` round-trips.
  [[nodiscard]] std::string to_string() const;
  Status save(const std::string& path) const;
};

/// Per-zone trace file of a concurrent (map_threads > 1) recording:
/// zone k of a recording rooted at `path` lives at `path + ".zone" + k`.
[[nodiscard]] std::string zone_trace_path(const std::string& path, std::size_t zone_index);

/// Decorator that records every experiment the wrapped engine performs.
/// The trace accumulates in memory (`trace()`) and, when opened on a
/// path, is also appended to disk record by record (flushed after each,
/// so a crashed run still leaves a usable prefix).
class RecordingProbeEngine final : public ProbeEngine {
 public:
  /// Record in memory only.
  explicit RecordingProbeEngine(std::unique_ptr<ProbeEngine> inner);
  /// Record to `path` (truncating any previous trace) as well as in
  /// memory. Fails when the file cannot be created.
  static Result<std::unique_ptr<RecordingProbeEngine>> open(std::unique_ptr<ProbeEngine> inner,
                                                           const std::string& path);

  Result<HostIdentity> lookup(const std::string& hostname) override;
  Result<std::vector<TraceHop>> traceroute(const std::string& from,
                                           const std::string& target) override;
  Result<double> bandwidth(const std::string& from, const std::string& to) override;
  std::vector<Result<double>> concurrent_bandwidth(
      const std::vector<BandwidthRequest>& requests) override;
  /// Recording is a serialization point: the trace stores one record per
  /// experiment, with the inner engine's cumulative stats after EACH —
  /// so the batch runs as the canonical sequential loop and the recorded
  /// trace is byte-identical whether the mapping was batched or not.
  /// That is exactly why golden traces replay batched runs unchanged.
  std::vector<ProbeExperimentOutcome> run_batch(const std::vector<ProbeExperiment>& experiments,
                                                std::size_t workers) override;
  [[nodiscard]] ProbeStats stats() const override;

  /// Everything recorded so far.
  [[nodiscard]] const ProbeTrace& trace() const { return trace_; }
  /// Recording is best-effort: a write failure (disk full) never fails
  /// the experiment itself. The first such error is kept here and also
  /// reported through the handler, once.
  [[nodiscard]] const std::optional<Error>& write_error() const { return write_error_; }
  RecordingProbeEngine& set_error_handler(std::function<void(const Error&)> handler);

 private:
  void append(TraceRecord record);

  std::unique_ptr<ProbeEngine> inner_;
  ProbeTrace trace_;
  std::optional<std::ofstream> out_;
  std::optional<Error> write_error_;
  std::function<void(const Error&)> on_error_;
};

/// Engine that replays a recorded trace instead of probing anything.
///
/// Requests must arrive in recorded order (the mapper's schedule is
/// deterministic, so a matching run replays exactly). In strict mode the
/// first out-of-trace request — wrong kind, wrong endpoints, or any
/// request past the end of the trace — becomes a sticky violation: it is
/// returned as the error of that and every later experiment, kept in
/// `violation()`, and reported once through the violation handler. In
/// lenient mode such requests fall through to the delegate engine (the
/// trace cursor does not advance) and replay resumes where it matched.
class TraceProbeEngine final : public ProbeEngine {
 public:
  enum class Mode { strict, lenient };

  TraceProbeEngine(ProbeTrace trace, Mode mode = Mode::strict,
                   std::unique_ptr<ProbeEngine> delegate = nullptr);

  Result<HostIdentity> lookup(const std::string& hostname) override;
  Result<std::vector<TraceHop>> traceroute(const std::string& from,
                                           const std::string& target) override;
  Result<double> bandwidth(const std::string& from, const std::string& to) override;
  std::vector<Result<double>> concurrent_bandwidth(
      const std::vector<BandwidthRequest>& requests) override;
  /// Replays the batch as the canonical sequential loop: traces hold the
  /// canonical experiment order (see RecordingProbeEngine::run_batch),
  /// so matching records one by one in batch order replays a batched
  /// mapping exactly like a sequential one.
  std::vector<ProbeExperimentOutcome> run_batch(const std::vector<ProbeExperiment>& experiments,
                                                std::size_t workers) override;
  /// The recorded cumulative stats as of the last replayed experiment
  /// (plus the delegate's own stats in lenient mode).
  [[nodiscard]] ProbeStats stats() const override;

  /// Experiments replayed so far == index of the next trace record.
  [[nodiscard]] std::size_t position() const { return next_; }
  /// First out-of-trace request (strict mode), with the offending
  /// experiment index in the message. Mappers downgrade probe errors to
  /// warnings, so callers MUST check this after mapping.
  [[nodiscard]] const std::optional<Error>& violation() const { return violation_; }
  TraceProbeEngine& set_violation_handler(std::function<void(const Error&)> handler);

 private:
  /// nullptr when the request has to go out-of-trace (exhausted or
  /// diverged); `mismatch` then carries the would-be error.
  const TraceRecord* match(TraceRecord::Kind kind, const std::string& summary, Error& mismatch);
  Error violate(Error error);

  ProbeTrace trace_;
  Mode mode_;
  std::unique_ptr<ProbeEngine> delegate_;
  std::size_t next_ = 0;
  ProbeStats replayed_stats_;
  std::optional<Error> violation_;
  std::function<void(const Error&)> on_violation_;
};

}  // namespace envnws::env
