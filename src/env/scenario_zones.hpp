// Deriving ENV run configurations from a simulated scenario.
//
// A real operator would write the per-zone host lists by hand; for the
// simulated platforms these helpers enumerate them from the scenario:
// one ZoneSpec per firewall zone (the global master's zone first, since
// it provides the deployment viewpoint) and one alias group per
// dual-homed gateway (the merge input the paper says the user supplies).
#pragma once

#include <vector>

#include "common/result.hpp"
#include "env/mapper.hpp"
#include "gridml/merge.hpp"
#include "simnet/scenario.hpp"

namespace envnws::env {

/// Fails with `not_found` when the scenario names a master or traceroute
/// target that does not exist in its topology.
[[nodiscard]] Result<std::vector<ZoneSpec>> zones_from_scenario(
    const simnet::Scenario& scenario);

[[nodiscard]] std::vector<gridml::AliasGroup> gateway_aliases_from_scenario(
    const simnet::Scenario& scenario);

}  // namespace envnws::env
