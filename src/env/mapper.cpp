#include "env/mapper.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <future>
#include <limits>
#include <map>
#include <numeric>
#include <optional>
#include <set>
#include <sstream>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/thread_pool.hpp"
#include "env/batch_schedule.hpp"
#include "env/env_tree.hpp"
#include "simnet/address.hpp"

namespace envnws::env {

namespace {

/// SITE key for a machine: the trailing `labels` DNS labels of the fqdn;
/// when reverse DNS failed, the classful IP network (paper §4.3,
/// "Machines without hostname").
std::string site_key(const HostIdentity& identity, int labels) {
  if (!identity.fqdn.empty()) {
    const auto parts = strings::split_nonempty(identity.fqdn, '.');
    if (parts.size() < 2) return identity.fqdn;
    // Always drop at least the host label itself ("h0.lan" -> "lan").
    const auto take = std::min<std::size_t>(static_cast<std::size_t>(labels),
                                            parts.size() - 1);
    std::vector<std::string> tail(parts.end() - static_cast<std::ptrdiff_t>(take),
                                  parts.end());
    return strings::join(tail, ".");
  }
  if (const auto ip = simnet::Ipv4::parse(identity.ip); ip.ok()) {
    return ip.value().classful_network().to_string();
  }
  return "unknown";
}

std::string site_label_from_domain(const std::string& domain) {
  std::string label = strings::to_lower(domain);
  for (char& c : label) {
    if (c == '.') c = '-';
  }
  std::transform(label.begin(), label.end(), label.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return label;
}

/// Union-find over cluster member indices (pairwise dependence classes).
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

double median_of(std::vector<double> values) {
  return stats::median(values);
}

/// FNV-1a of a label: stable per-node seed material for the sampling
/// Rng, so the sampled experiment stream depends only on (sample_seed,
/// node label) — never on zone order or thread timing.
std::uint64_t fnv1a64(const std::string& text) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

Error null_engine_error(const ZoneSpec& spec) {
  return make_error(ErrorCode::internal,
                    "zone engine factory returned no engine for zone '" + spec.zone_name + "'");
}

/// Wall-clock of running jobs of the given durations, in order, over
/// `workers` concurrent slots (list scheduling: each job starts on the
/// slot that frees up first). With one worker this is exactly the sum, so
/// sequential and concurrent mapping share one duration formula.
double schedule_makespan(const std::vector<double>& durations, std::size_t workers) {
  if (workers == 0) workers = 1;
  std::vector<double> free_at(std::min(workers, std::max<std::size_t>(durations.size(), 1)), 0.0);
  for (const double duration : durations) {
    auto slot = std::min_element(free_at.begin(), free_at.end());
    *slot += duration;
  }
  return *std::max_element(free_at.begin(), free_at.end());
}

}  // namespace

double MapResult::batched_duration_s() const {
  double floor = 0.0;
  for (const auto& zone : zones) floor = std::max(floor, zone.batched_duration_s());
  return std::max(stats.duration_s - batch.saved_s(), floor);
}

std::string MapResult::canonical(const std::string& name) const {
  if (const gridml::Machine* machine = grid.find_machine(name)) return machine->name;
  return name;
}

std::string MapResult::identity_digest() const {
  const auto full = [](double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    return std::string(buffer);
  };
  const auto digest_stats = [&full](std::ostringstream& out, const MapStats& stats) {
    out << "stats: " << stats.experiments << ' ' << stats.bytes_sent << ' '
        << full(stats.duration_s) << '\n';
  };
  std::ostringstream out;
  out << "master: " << master_fqdn << '\n';
  for (const auto& warning : warnings) out << "warning: " << warning << '\n';
  digest_stats(out, stats);
  out << grid.to_string() << render_effective(root);
  for (const auto& zone : zones) {
    out << "zone: " << zone.spec.zone_name << " master " << zone.master_fqdn << '\n';
    digest_stats(out, zone.stats);
    out << render_effective(zone.root);
  }
  return out.str();
}

Mapper::Mapper(ProbeEngine& engine, MapperOptions options)
    : engine_(&engine), options_(options) {}

Mapper::Mapper(ZoneEngineFactory zone_engines, MapperOptions options)
    : zone_engines_(std::move(zone_engines)), options_(options) {
  assert(zone_engines_ != nullptr);
}

Mapper& Mapper::set_progress(std::function<void(const ZoneProgress&)> progress) {
  progress_ = std::move(progress);
  return *this;
}

Mapper& Mapper::set_batch_progress(std::function<void(const BatchProgress&)> progress) {
  batch_progress_ = std::move(progress);
  return *this;
}

void Mapper::report(const ZoneProgress& progress) const {
  if (!progress_) return;
  std::lock_guard<std::mutex> lock(progress_mutex_);
  progress_(progress);
}

void Mapper::report(const BatchProgress& progress) const {
  if (!batch_progress_) return;
  std::lock_guard<std::mutex> lock(progress_mutex_);
  batch_progress_(progress);
}

std::vector<ProbeExperimentOutcome> Mapper::run_phase_batch(
    ProbeEngine& engine, const BatchContext& ctx, const std::string& stage,
    const std::string& label, const std::vector<ProbeExperiment>& experiments,
    bool credit_makespan, double* makespan_out) const {
  if (experiments.empty()) {
    if (makespan_out != nullptr) *makespan_out = 0.0;
    return {};
  }
  const auto workers = static_cast<std::size_t>(std::max(options_.probe_jobs, 1));
  // Batch events only when batching can matter (see BatchProgress).
  const bool announce = workers > 1 && experiments.size() >= 2;
  BatchProgress progress;
  progress.zone_index = ctx.zone_index;
  if (ctx.zone_name != nullptr) progress.zone_name = *ctx.zone_name;
  progress.stage = stage;
  progress.label = label;
  progress.experiments = experiments.size();
  progress.workers = workers;
  if (announce) report(progress);

  auto outcomes =
      options_.virtual_scheduler != nullptr
          ? run_batch_virtual(engine, experiments, workers, *options_.virtual_scheduler)
          : engine.run_batch(experiments, workers);
  std::vector<double> durations;
  durations.reserve(outcomes.size());
  double sequential_s = 0.0;
  for (const auto& outcome : outcomes) {
    durations.push_back(outcome.duration_s);
    sequential_s += outcome.duration_s;
  }
  const double makespan_s = batch_makespan(experiments, durations, workers);
  if (makespan_out != nullptr) *makespan_out = makespan_s;
  if (ctx.stats != nullptr) {
    ++ctx.stats->batches;
    ctx.stats->batched_experiments += experiments.size();
    ctx.stats->sequential_s += sequential_s;
    if (credit_makespan) ctx.stats->makespan_s += makespan_s;
  }
  if (announce) {
    progress.phase = BatchProgress::Phase::finished;
    progress.sequential_s = sequential_s;
    progress.makespan_s = makespan_s;
    report(progress);
  }
  return outcomes;
}

std::vector<EnvNetwork> Mapper::refine(ProbeEngine& engine, const BatchContext& ctx,
                                       const std::vector<MachineInfo>& all,
                                       const std::vector<std::size_t>& machines,
                                       const MachineInfo& master, const std::string& label,
                                       const std::string& label_ip,
                                       std::vector<std::string>& warnings) const {
  // Split the node's machines into the master (not measurable from
  // itself) and the measurable members.
  std::vector<std::size_t> members;
  bool contains_master = false;
  for (const std::size_t idx : machines) {
    if (all[idx].is_master) {
      contains_master = true;
    } else {
      members.push_back(idx);
    }
  }

  // Phases 2a-2c issue their experiments through ProbeEngine::run_batch
  // in the CANONICAL order — exactly the sequence the sequential
  // schedule would have used — so the experiment stream, every recorded
  // trace and the MapResult are bit-identical for any probe_jobs value;
  // only the modeled schedule cost (BatchStats) changes.

  // ---- phase 2a: host-to-host bandwidth -------------------------------
  // All experiments pivot on the master, so none of them may overlap:
  // the batch degenerates to the sequential schedule (the endpoint
  // constraint in batch_makespan guarantees it), but keeps the uniform
  // batch path for engines, traces and events.
  std::map<std::size_t, double> bw;
  std::map<std::size_t, double> reverse_bw;
  {
    std::vector<ProbeExperiment> experiments;
    for (const std::size_t idx : members) {
      experiments.push_back(ProbeExperiment::single(master.given_name, all[idx].given_name));
      // Extension (§4.3 future work): probe the reverse direction too, so
      // asymmetric routes become visible in the effective view.
      if (options_.bidirectional_probes) {
        experiments.push_back(ProbeExperiment::single(all[idx].given_name, master.given_name));
      }
    }
    const auto outcomes = run_phase_batch(engine, ctx, "host-bw", label, experiments,
                                          /*credit_makespan=*/true, nullptr);
    std::size_t at = 0;
    for (const std::size_t idx : members) {
      const Result<double>& measured = outcomes[at++].results.front();
      if (measured.ok()) {
        bw[idx] = measured.value();
      } else {
        warnings.push_back("bandwidth " + master.fqdn + " -> " + all[idx].fqdn +
                           " failed: " + measured.error().to_string());
        bw[idx] = 0.0;
      }
      if (options_.bidirectional_probes) {
        const Result<double>& back = outcomes[at++].results.front();
        reverse_bw[idx] = back.ok() ? back.value() : 0.0;
      }
    }
  }
  // Group members whose bandwidth to the master is within the x3 ratio.
  std::vector<std::size_t> ordered = members;
  std::sort(ordered.begin(), ordered.end(), [&](std::size_t a, std::size_t b) {
    if (bw[a] != bw[b]) return bw[a] > bw[b];
    return all[a].fqdn < all[b].fqdn;  // deterministic
  });
  std::vector<std::vector<std::size_t>> groups;
  for (const std::size_t idx : ordered) {
    if (!groups.empty()) {
      const double group_max = bw[groups.back().front()];
      if (bw[idx] > 0.0 && group_max / bw[idx] <= options_.bw_split_ratio) {
        groups.back().push_back(idx);
        continue;
      }
    }
    groups.push_back({idx});
  }
  if (groups.empty()) groups.push_back({});  // master-only node

  // ---- phase 2b: pairwise host bandwidth ------------------------------
  // All groups' experiments are issued as ONE batch in canonical order —
  // group by group, i<j within each group, exactly the sequence the
  // sequential schedule uses, so the experiment stream and every
  // recorded trace stay bit-identical. Every experiment sends two
  // concurrent transfers from the master, so WITHIN a group nothing can
  // overlap; ACROSS groups a multi-homed master serves each group
  // through the adapter facing it, and tagging the transfers with that
  // adapter (`via`) is what lets the merged batch credit the overlap.
  // On a single-homed master all tags collapse and the batch degenerates
  // to the sequential schedule exactly as before.

  // The master's adapter addresses, primary first.
  std::vector<std::string> master_adapters;
  if (!master.identity.ip.empty()) master_adapters.push_back(master.identity.ip);
  for (const auto& extra : master.identity.extra_ips) master_adapters.push_back(extra);
  const auto group_via = [&](const std::vector<std::size_t>& group) -> std::string {
    if (master_adapters.size() < 2 || group.empty()) return "";
    // The adapter facing the group: the master address on the classful
    // network of the group's members; unknown -> the primary adapter,
    // so unmatched groups still serialize against each other.
    const auto member_net = simnet::Ipv4::parse(all[group.front()].identity.ip);
    if (member_net.ok()) {
      for (const auto& addr : master_adapters) {
        const auto parsed = simnet::Ipv4::parse(addr);
        if (parsed.ok() && parsed.value().same_classful_network(member_net.value())) return addr;
      }
    }
    return master_adapters.front();
  };

  // When a group's full pairwise count exceeds MapperOptions::
  // max_pairwise, only per-bucket representatives run the full protocol
  // (see options.hpp): the group is bucketed by its 2a bandwidth
  // signature, confident members inherit their nearest representative's
  // placement transitively, and the rest escalate to one direct
  // member-vs-representative probe each. An escalation IS an ordinary
  // pairwise experiment, so verdict processing below is uniform.
  struct PairProbe {
    std::size_t group;  ///< index into `groups`
    std::size_t i, j;   ///< member positions within the group
  };
  std::vector<ProbeExperiment> experiments;
  std::vector<PairProbe> probes;
  std::vector<UnionFind> components;
  components.reserve(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const auto& group = groups[g];
    components.emplace_back(group.size());
    if (group.size() < 2) continue;
    const std::string via = group_via(group);
    const auto pair_experiment = [&](std::size_t i, std::size_t j) {
      experiments.push_back(ProbeExperiment::concurrent(
          {BandwidthRequest{master.given_name, all[group[i]].given_name, via},
           BandwidthRequest{master.given_name, all[group[j]].given_name, via}}));
      probes.push_back(PairProbe{g, i, j});
    };
    const std::uint64_t full_pairs =
        static_cast<std::uint64_t>(group.size()) * (group.size() - 1) / 2;
    if (options_.max_pairwise <= 0 ||
        full_pairs <= static_cast<std::uint64_t>(options_.max_pairwise)) {
      for (std::size_t i = 0; i < group.size(); ++i) {
        for (std::size_t j = i + 1; j < group.size(); ++j) pair_experiment(i, j);
      }
      continue;
    }

    // --- sampled interrogation of this group ---
    // Signature buckets: the group is ordered by descending 2a
    // bandwidth, so buckets are runs within the square of the
    // confidence ratio of their leader. A zero-bandwidth member can
    // neither be inferred nor usefully probed: it stays a singleton,
    // exactly the verdict the full protocol reaches (a 0-bandwidth
    // member never measures as dependent).
    const double confidence = std::max(1.0, options_.sample_confidence_ratio);
    const double bucket_ratio = confidence * confidence;
    std::vector<std::vector<std::size_t>> buckets;
    std::size_t zero_members = 0;
    for (std::size_t i = 0; i < group.size(); ++i) {
      const double value = bw[group[i]];
      if (value <= 0.0) {
        ++zero_members;
        continue;
      }
      if (!buckets.empty() && bw[group[buckets.back().front()]] / value <= bucket_ratio) {
        buckets.back().push_back(i);
      } else {
        buckets.push_back({i});
      }
    }

    // Representative budget: the largest k with k*(k-1)/2 experiments
    // inside max_pairwise, floored at one representative per bucket
    // (the bucket count is bounded by the signature geometry — the
    // group spans at most bw_split_ratio — never by the group size).
    std::size_t rep_budget = 2;
    while ((rep_budget + 1) * rep_budget / 2 <=
           static_cast<std::uint64_t>(options_.max_pairwise)) {
      ++rep_budget;
    }
    std::vector<char> is_rep(group.size(), 0);
    for (const auto& bucket : buckets) is_rep[bucket.front()] = 1;  // bucket leaders
    std::size_t rep_count = buckets.size();
    // Extra representative slots go round-robin over the buckets, each
    // picked deterministically from the sampling seed.
    Rng rng(options_.sample_seed ^ fnv1a64(label));
    while (rep_count < rep_budget) {
      bool placed = false;
      for (const auto& bucket : buckets) {
        if (rep_count >= rep_budget) break;
        std::vector<std::size_t> candidates;
        for (const std::size_t i : bucket) {
          if (!is_rep[i]) candidates.push_back(i);
        }
        if (candidates.empty()) continue;
        is_rep[candidates[rng.next_below(candidates.size())]] = 1;
        ++rep_count;
        placed = true;
      }
      if (!placed) break;
    }

    // Full pairwise protocol among the representatives, canonical order.
    std::vector<std::size_t> reps;
    for (std::size_t i = 0; i < group.size(); ++i) {
      if (is_rep[i]) reps.push_back(i);
    }
    for (std::size_t a = 0; a < reps.size(); ++a) {
      for (std::size_t b = a + 1; b < reps.size(); ++b) pair_experiment(reps[a], reps[b]);
    }

    // Transitive inference + escalation for everyone else: a member
    // whose bandwidth sits within the confidence ratio of its bucket's
    // nearest representative inherits that representative's placement
    // without a probe; the rest get one direct pairwise check each.
    std::size_t inferred = 0;
    std::size_t escalated = 0;
    for (const auto& bucket : buckets) {
      for (const std::size_t m : bucket) {
        if (is_rep[m]) continue;
        std::size_t nearest = bucket.front();
        double nearest_ratio = std::numeric_limits<double>::infinity();
        for (const std::size_t r : bucket) {
          if (!is_rep[r]) continue;
          const double lo = std::min(bw[group[m]], bw[group[r]]);
          const double hi = std::max(bw[group[m]], bw[group[r]]);
          const double ratio = lo > 0.0 ? hi / lo : std::numeric_limits<double>::infinity();
          if (ratio < nearest_ratio) {
            nearest_ratio = ratio;
            nearest = r;
          }
        }
        if (nearest_ratio <= confidence) {
          components[g].unite(m, nearest);
          ++inferred;
        } else {
          pair_experiment(std::min(m, nearest), std::max(m, nearest));
          ++escalated;
        }
      }
    }
    if (ctx.sampling != nullptr) {
      ++ctx.sampling->sampled_groups;
      ctx.sampling->representatives += reps.size();
      ctx.sampling->inferred_members += inferred + zero_members;
      ctx.sampling->escalated_members += escalated;
    }
  }

  const auto outcomes = run_phase_batch(engine, ctx, "pairwise", label, experiments,
                                        /*credit_makespan=*/true, nullptr);
  for (std::size_t p = 0; p < probes.size(); ++p) {
    const auto& [g, i, j] = probes[p];
    const auto& group = groups[g];
    const auto& paired = outcomes[p].results;
    if (!paired[0].ok() || !paired[1].ok()) {
      warnings.push_back("pairwise test " + all[group[i]].fqdn + "/" +
                         all[group[j]].fqdn + " failed");
      continue;
    }
    const double ratio_i =
        paired[0].value() > 0.0 ? bw[group[i]] / paired[0].value() : 0.0;
    const double ratio_j =
        paired[1].value() > 0.0 ? bw[group[j]] / paired[1].value() : 0.0;
    // Dependent (keep together) when either transfer slowed down by
    // at least the threshold factor while paired.
    if (ratio_i >= options_.pairwise_independence_ratio ||
        ratio_j >= options_.pairwise_independence_ratio) {
      components[g].unite(i, j);
    }
  }
  std::vector<std::vector<std::size_t>> clusters;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const auto& group = groups[g];
    if (group.empty()) {
      clusters.push_back({});
      continue;
    }
    std::map<std::size_t, std::vector<std::size_t>> by_root;
    for (std::size_t i = 0; i < group.size(); ++i) {
      by_root[components[g].find(i)].push_back(group[i]);
    }
    for (auto& [root, cluster_members] : by_root) clusters.push_back(cluster_members);
  }

  // The master lives in the first cluster of its node (or its own).
  std::size_t master_cluster = clusters.size();
  if (contains_master) {
    if (clusters.empty() || (clusters.size() == 1 && clusters[0].empty())) {
      clusters.assign(1, {});
      master_cluster = 0;
    } else {
      master_cluster = 0;
    }
  }

  // ---- phases 2c + 2d per cluster --------------------------------------
  std::vector<EnvNetwork> networks;
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    const auto& cluster = clusters[c];
    EnvNetwork net;
    net.label = clusters.size() > 1 ? label + "#" + std::to_string(c + 1) : label;
    net.label_ip = label_ip;
    for (const std::size_t idx : cluster) net.machines.push_back(all[idx].fqdn);
    const bool has_master = contains_master && c == master_cluster;
    if (has_master) net.machines.push_back(master.fqdn);
    std::sort(net.machines.begin(), net.machines.end());

    std::vector<double> member_bws;
    for (const std::size_t idx : cluster) member_bws.push_back(bw[idx]);
    net.base_bw_bps = median_of(member_bws);
    if (options_.bidirectional_probes && !cluster.empty()) {
      std::vector<double> member_reverse;
      for (const std::size_t idx : cluster) member_reverse.push_back(reverse_bw[idx]);
      net.base_reverse_bw_bps = median_of(member_reverse);
      const double lo = std::min(net.base_bw_bps, net.base_reverse_bw_bps);
      const double hi = std::max(net.base_bw_bps, net.base_reverse_bw_bps);
      net.route_asymmetric = lo > 0.0 && hi / lo >= options_.asymmetry_ratio;
    }

    // Lone machine (and no master next to it): no LAN to characterize.
    if (cluster.size() + (has_master ? 1 : 0) < 2) {
      net.kind = NetKind::structural;
      networks.push_back(std::move(net));
      continue;
    }

    // ---- phase 2c: internal host bandwidth ----------------------------
    // This is THE batchable phase: member<->member transfers with
    // disjoint endpoint pairs do not share a switch port, so on a
    // switched segment they could genuinely run `probe_jobs` at a time.
    // Whether the segment IS switched is only established by phase 2d
    // below, so the makespan credit is deferred until that verdict.
    std::vector<ProbeExperiment> experiments;
    const std::uint64_t full_internal =
        static_cast<std::uint64_t>(cluster.size()) * (cluster.size() - 1) / 2;
    if (options_.max_pairwise <= 0 ||
        full_internal <= static_cast<std::uint64_t>(options_.max_pairwise)) {
      for (std::size_t i = 0; i < cluster.size(); ++i) {
        for (std::size_t j = i + 1; j < cluster.size(); ++j) {
          experiments.push_back(
              ProbeExperiment::single(all[cluster[i]].given_name, all[cluster[j]].given_name));
        }
      }
    } else {
      // Sampled internal interrogation: max_pairwise distinct member
      // pairs, drawn deterministically from the sampling seed (pair
      // count >> sample size, so rejection sampling converges fast) and
      // issued in ascending pair-index order — a canonical-order
      // subsequence of the full enumeration. The median below is then
      // over the sample instead of every pair.
      Rng rng(options_.sample_seed ^ fnv1a64(net.label) ^ 0x9e3779b97f4a7c15ULL);
      std::set<std::uint64_t> picked;
      while (picked.size() < static_cast<std::size_t>(options_.max_pairwise)) {
        picked.insert(rng.next_below(full_internal));
      }
      for (const std::uint64_t pair_index : picked) {
        std::uint64_t remaining = pair_index;
        std::size_t i = 0;
        while (remaining >= cluster.size() - 1 - i) {
          remaining -= cluster.size() - 1 - i;
          ++i;
        }
        const std::size_t j = i + 1 + static_cast<std::size_t>(remaining);
        experiments.push_back(
            ProbeExperiment::single(all[cluster[i]].given_name, all[cluster[j]].given_name));
      }
      if (ctx.sampling != nullptr) {
        ++ctx.sampling->sampled_clusters;
        ctx.sampling->sampled_internal_pairs += picked.size();
      }
    }
    double internal_makespan_s = 0.0;
    const auto outcomes = run_phase_batch(engine, ctx, "internal", net.label, experiments,
                                          /*credit_makespan=*/false, &internal_makespan_s);
    double internal_sequential_s = 0.0;
    std::vector<double> internal;
    for (const auto& outcome : outcomes) {
      internal_sequential_s += outcome.duration_s;
      const Result<double>& measured = outcome.results.front();
      if (measured.ok()) internal.push_back(measured.value());
    }
    if (internal.empty() && has_master && !cluster.empty()) {
      // Master + one member: the master->member bandwidth IS the local one.
      internal.push_back(bw[cluster.front()]);
    }
    net.base_local_bw_bps = median_of(internal);

    // ---- phase 2d: jammed bandwidth ------------------------------------
    std::vector<double> ratios;
    for (int rep = 0; rep < options_.jam_repetitions; ++rep) {
      // Rotate the measured member A; pick the jamming pair among the
      // remaining machines of the cluster (falling back to A itself as
      // the jam source for two-machine clusters: A->B while master->A).
      const std::size_t a = cluster[static_cast<std::size_t>(rep) % cluster.size()];
      std::string jam_from;
      std::string jam_to;
      std::vector<std::size_t> others;
      for (const std::size_t idx : cluster) {
        if (idx != a) others.push_back(idx);
      }
      if (others.size() >= 2) {
        jam_from = all[others[static_cast<std::size_t>(rep) % others.size()]].given_name;
        jam_to = all[others[(static_cast<std::size_t>(rep) + 1) % others.size()]].given_name;
      } else if (others.size() == 1) {
        jam_from = all[a].given_name;
        jam_to = all[others[0]].given_name;
      } else if (has_master) {
        jam_from = all[a].given_name;
        jam_to = master.given_name;
      } else {
        break;  // single machine: no jam experiment possible
      }
      const auto outcome = engine.concurrent_bandwidth(
          {BandwidthRequest{master.given_name, all[a].given_name, {}},
           BandwidthRequest{jam_from, jam_to, {}}});
      if (!outcome[0].ok()) {
        warnings.push_back("jam test on " + net.label + " failed");
        continue;
      }
      const double base = bw[a];
      if (base > 0.0) ratios.push_back(outcome[0].value() / base);
    }
    if (ratios.empty()) {
      net.kind = NetKind::inconclusive;
    } else {
      const double avg = stats::mean(ratios);
      if (avg < options_.jam_shared_max) {
        net.kind = NetKind::shared;
      } else if (avg > options_.jam_switched_min) {
        net.kind = NetKind::switched;
      } else {
        net.kind = NetKind::inconclusive;  // "data gathering stops"
      }
    }
    // The deferred phase-2c credit: only a segment whose jam verdict
    // came out switched has ENV's own evidence that the disjoint
    // internal transfers would not have contended; on a shared (or
    // inconclusive) medium the batched schedule buys nothing.
    if (ctx.stats != nullptr) {
      ctx.stats->makespan_s +=
          net.kind == NetKind::switched ? internal_makespan_s : internal_sequential_s;
    }
    networks.push_back(std::move(net));
  }
  return networks;
}

EnvNetwork Mapper::convert(ProbeEngine& engine, const BatchContext& ctx,
                           const StructuralNode& node, const std::vector<MachineInfo>& all,
                           const MachineInfo& master, std::vector<std::string>& warnings,
                           bool is_root) const {
  // Indices of the machines attached directly to this structural node.
  std::vector<std::size_t> attached;
  for (const auto& fqdn : node.machines) {
    for (std::size_t i = 0; i < all.size(); ++i) {
      if (all[i].fqdn == fqdn) {
        attached.push_back(i);
        break;
      }
    }
  }

  std::vector<EnvNetwork> clusters;
  if (!attached.empty()) {
    clusters = refine(engine, ctx, all, attached, master, node.display(), node.ip, warnings);
  }

  std::vector<EnvNetwork> child_networks;
  for (const auto& child : node.children) {
    EnvNetwork converted = convert(engine, ctx, child, all, master, warnings, false);
    // The attachment point may itself be a mapped machine (a gateway):
    // record it so the merge and the planner can nest correctly.
    if (converted.gateway.empty()) {
      for (const auto& machine : all) {
        if (machine.identity.ip == child.ip || machine.fqdn == child.name) {
          converted.gateway = machine.fqdn;
          break;
        }
      }
    }
    child_networks.push_back(std::move(converted));
  }

  // Collapse: a structural node with exactly one cluster and no children
  // IS that cluster ("some routers are suppressed from the effective
  // network view"); a machine-less chain node collapses into its only
  // child, keeping the deeper (more specific) label.
  if (!is_root && clusters.size() == 1 && child_networks.empty()) {
    return std::move(clusters.front());
  }
  if (!is_root && clusters.empty() && child_networks.size() == 1) {
    return std::move(child_networks.front());
  }

  EnvNetwork out;
  out.kind = NetKind::structural;
  out.label = node.display();
  out.label_ip = node.ip;
  for (auto& cluster : clusters) out.children.push_back(std::move(cluster));
  for (auto& child : child_networks) out.children.push_back(std::move(child));
  return out;
}

Result<ZoneMapResult> Mapper::map_zone(const ZoneSpec& spec, std::size_t zone_index) {
  if (engine_ != nullptr) return map_zone_with(*engine_, spec, zone_index);
  auto engine = zone_engines_(spec, zone_index);
  if (engine == nullptr) return null_engine_error(spec);
  return map_zone_with(*engine, spec, zone_index);
}

Result<ZoneMapResult> Mapper::map_zone_with(ProbeEngine& engine, const ZoneSpec& spec,
                                            std::size_t zone_index) const {
  if (spec.hostnames.empty()) {
    return make_error(ErrorCode::invalid_argument, "zone has no hosts");
  }
  const ProbeStats before = engine.stats();
  ZoneMapResult result;
  result.spec = spec;

  // ---- phase 1a/1b: lookup + properties --------------------------------
  std::vector<MachineInfo> machines;
  for (const auto& hostname : spec.hostnames) {
    const auto identity = engine.lookup(hostname);
    if (!identity.ok()) {
      result.warnings.push_back("lookup failed for '" + hostname +
                                "': " + identity.error().to_string());
      continue;
    }
    MachineInfo info;
    info.given_name = hostname;
    info.identity = identity.value();
    info.fqdn = info.identity.fqdn.empty() ? info.identity.ip : info.identity.fqdn;
    info.is_master = (hostname == spec.master);
    machines.push_back(std::move(info));
  }
  const auto master_it = std::find_if(machines.begin(), machines.end(),
                                      [](const MachineInfo& m) { return m.is_master; });
  if (master_it == machines.end()) {
    return make_error(ErrorCode::invalid_argument,
                      "master '" + spec.master + "' is not among the mapped hosts");
  }
  const MachineInfo master = *master_it;
  result.master_fqdn = master.fqdn;

  // SITE grouping.
  std::map<std::string, gridml::Site> sites;
  for (const auto& machine : machines) {
    const std::string domain = site_key(machine.identity, options_.site_domain_labels);
    auto [it, inserted] = sites.try_emplace(domain);
    if (inserted) {
      it->second.domain = domain;
      it->second.label = site_label_from_domain(domain);
    }
    gridml::Machine entry;
    entry.name = machine.fqdn;
    entry.ip = machine.identity.ip;
    // Short alias: first label of the fqdn, as the paper's listings do.
    const auto labels = strings::split_nonempty(machine.fqdn, '.');
    if (labels.size() > 1) entry.aliases.push_back(labels.front());
    for (const auto& [key, value] : machine.identity.properties) {
      entry.properties.push_back(gridml::Property{key, value, ""});
    }
    it->second.machines.push_back(std::move(entry));
  }
  for (auto& [domain, site] : sites) result.grid.sites.push_back(std::move(site));

  // ---- phase 1c: structural topology -----------------------------------
  std::vector<HostTrace> traces;
  for (const auto& machine : machines) {
    HostTrace trace;
    trace.fqdn = machine.fqdn;
    const auto hops = engine.traceroute(machine.given_name, spec.traceroute_target);
    if (hops.ok()) {
      trace.hops = hops.value();
    } else {
      result.warnings.push_back("traceroute from " + machine.fqdn +
                                " failed: " + hops.error().to_string());
    }
    traces.push_back(std::move(trace));
  }
  result.structural = build_structural_tree(traces);

  // ---- phase 2: master-dependent refinements ---------------------------
  BatchContext ctx;
  ctx.zone_index = zone_index;
  ctx.zone_name = &spec.zone_name;
  ctx.stats = &result.batch;
  ctx.sampling = &result.sampling;
  result.root = convert(engine, ctx, result.structural, machines, master, result.warnings, true);

  result.grid.networks.push_back(result.root.to_gridml());

  const ProbeStats after = engine.stats();
  result.stats.experiments = after.experiments - before.experiments;
  result.stats.bytes_sent = after.bytes_sent - before.bytes_sent;
  result.stats.duration_s = after.busy_time_s - before.busy_time_s;
  return result;
}

namespace {

/// Deepest mutable network with exactly the given machine set.
EnvNetwork* find_matching(EnvNetwork& root, const std::set<std::string>& machine_set) {
  for (auto& child : root.children) {
    if (EnvNetwork* hit = find_matching(child, machine_set)) return hit;
  }
  if (!root.machines.empty() &&
      std::set<std::string>(root.machines.begin(), root.machines.end()) == machine_set) {
    return &root;
  }
  return nullptr;
}

EnvNetwork* find_network_with_member(EnvNetwork& root, const std::string& machine) {
  for (auto& child : root.children) {
    if (EnvNetwork* hit = find_network_with_member(child, machine)) return hit;
  }
  if (std::find(root.machines.begin(), root.machines.end(), machine) != root.machines.end()) {
    return &root;
  }
  return nullptr;
}

/// Fold one secondary-zone network (and its subtree) into the merged view.
void merge_network(EnvNetwork& merged_root, const EnvNetwork& incoming,
                   std::vector<std::string>& warnings) {
  if (incoming.kind == NetKind::structural && incoming.machines.empty()) {
    for (const auto& child : incoming.children) {
      merge_network(merged_root, child, warnings);
    }
    return;
  }
  const std::set<std::string> machine_set(incoming.machines.begin(), incoming.machines.end());
  if (EnvNetwork* existing = find_matching(merged_root, machine_set)) {
    // Both zones observed this segment. The zone that measured the higher
    // bandwidth had the unobstructed (local) viewpoint: its shared /
    // switched verdict and local bandwidth win; the primary zone's
    // base_bw is kept because the deployment viewpoint is the primary
    // master (this is how the paper can report hub2 as a 100 Mbps hub
    // reached through a 10 Mbps bottleneck).
    if (incoming.base_bw_bps > existing->base_bw_bps) {
      existing->kind = incoming.kind;
      if (incoming.base_local_bw_bps > 0.0) {
        existing->base_local_bw_bps = incoming.base_local_bw_bps;
      }
    } else if (existing->kind == NetKind::structural || existing->kind == NetKind::inconclusive) {
      existing->kind = incoming.kind;
    }
    if (existing->base_local_bw_bps == 0.0) {
      existing->base_local_bw_bps = incoming.base_local_bw_bps;
    }
    for (const auto& child : incoming.children) {
      merge_network(merged_root, child, warnings);
    }
    return;
  }
  // New segment: hang it under the network containing its gateway.
  EnvNetwork* parent = nullptr;
  if (!incoming.gateway.empty()) {
    parent = find_network_with_member(merged_root, incoming.gateway);
  }
  if (parent == nullptr) {
    if (!incoming.gateway.empty()) {
      warnings.push_back("gateway " + incoming.gateway +
                         " of segment '" + incoming.label + "' not in merged view; "
                         "attaching at root");
    }
    parent = &merged_root;
  }
  parent->children.push_back(incoming);
}

}  // namespace

std::vector<Result<ZoneMapResult>> Mapper::map_zones(const std::vector<ZoneSpec>& specs) {
  const auto run_zone = [this](ProbeEngine& engine, const ZoneSpec& spec,
                               std::size_t index) -> Result<ZoneMapResult> {
    report(ZoneProgress{ZoneProgress::Phase::started, index, spec.zone_name,
                        std::to_string(spec.hostnames.size()) + " host(s), master " + spec.master});
    auto zone = map_zone_with(engine, spec, index);
    if (zone.ok()) {
      report(ZoneProgress{ZoneProgress::Phase::finished, index, spec.zone_name,
                          std::to_string(zone.value().stats.experiments) + " experiments, " +
                              strings::format_double(zone.value().stats.duration_s / 60.0, 1) +
                              " min"});
    } else {
      report(ZoneProgress{ZoneProgress::Phase::failed, index, spec.zone_name,
                          zone.error().to_string()});
    }
    return zone;
  };
  // Resolve this zone's engine (shared or per-zone) and map it; a
  // factory returning nullptr fails the zone like any other error —
  // including the Phase::failed progress report.
  const auto run_indexed = [this, &specs, &run_zone](std::size_t i) -> Result<ZoneMapResult> {
    if (engine_ != nullptr) return run_zone(*engine_, specs[i], i);
    auto engine = zone_engines_(specs[i], i);
    if (engine == nullptr) {
      const Error error = null_engine_error(specs[i]);
      report(ZoneProgress{ZoneProgress::Phase::failed, i, specs[i].zone_name, error.to_string()});
      return error;
    }
    return run_zone(*engine, specs[i], i);
  };

  std::vector<std::optional<Result<ZoneMapResult>>> slots(specs.size());
  const std::size_t workers =
      zone_engines_ == nullptr
          ? 1
          : std::min<std::size_t>(std::max(options_.map_threads, 1), specs.size());
  if (workers > 1) {
    ThreadPool pool(workers, options_.virtual_scheduler);
    pool.parallel_for(specs.size(), [&](std::size_t i) { slots[i] = run_indexed(i); });
  } else {
    for (std::size_t i = 0; i < specs.size(); ++i) slots[i] = run_indexed(i);
  }

  std::vector<Result<ZoneMapResult>> results;
  results.reserve(slots.size());
  for (auto& slot : slots) results.push_back(std::move(*slot));
  return results;
}

Result<MapResult> Mapper::map(const std::vector<ZoneSpec>& specs,
                              const std::vector<gridml::AliasGroup>& gateway_aliases) {
  if (specs.empty()) {
    return make_error(ErrorCode::invalid_argument, "no zones to map");
  }
  auto zone_results = map_zones(specs);

  // The merge — and error reporting — happens in spec order regardless of
  // zone completion order, so the result is identical for any map_threads.
  MapResult result;
  std::vector<gridml::GridDoc> docs;
  std::vector<double> zone_durations;
  for (auto& zone : zone_results) {
    if (!zone.ok()) return zone.error();
    result.stats.experiments += zone.value().stats.experiments;
    result.stats.bytes_sent += zone.value().stats.bytes_sent;
    result.batch += zone.value().batch;
    result.sampling += zone.value().sampling;
    zone_durations.push_back(zone.value().stats.duration_s);
    for (const auto& warning : zone.value().warnings) result.warnings.push_back(warning);
    docs.push_back(zone.value().grid);
    // The NETWORK tree is re-assembled below from the EnvNetworks; keep
    // only SITE information in the documents fed to the generic merge.
    docs.back().networks.clear();
    result.zones.push_back(std::move(zone.value()));
  }
  const std::size_t workers =
      zone_engines_ == nullptr ? 1 : static_cast<std::size_t>(std::max(options_.map_threads, 1));
  result.stats.duration_s = schedule_makespan(zone_durations, workers);

  auto merged = gridml::merge(docs, gateway_aliases);
  if (!merged.ok()) return merged.error();
  result.grid = std::move(merged.value());

  const auto canon = [&result](const std::string& name) { return result.canonical(name); };
  result.master_fqdn = canon(result.zones.front().master_fqdn);

  // Canonicalize every zone tree, then fold secondaries into the primary.
  result.root = result.zones.front().root;
  canonicalize(result.root, canon);
  for (std::size_t z = 1; z < result.zones.size(); ++z) {
    EnvNetwork incoming = result.zones[z].root;
    canonicalize(incoming, canon);
    merge_network(result.root, incoming, result.warnings);
  }
  result.grid.networks.push_back(result.root.to_gridml());
  return result;
}

}  // namespace envnws::env
