#include "env/cost_model.hpp"

namespace envnws::env {

MappingCost naive_full_mapping_cost(int hosts) {
  const auto n = static_cast<std::uint64_t>(hosts);
  if (n < 2) return {};
  const std::uint64_t links = n * (n - 1);  // the network is not symmetric
  const std::uint64_t link_pairs = links * (links - 1) / 2;
  // Per pair: one baseline observation + one joint observation.
  return MappingCost{links + 2 * link_pairs};
}

MappingCost env_worst_case_cost(int hosts, int jam_repetitions) {
  const auto n = static_cast<std::uint64_t>(hosts);
  if (n < 2) return {};
  const std::uint64_t slaves = n - 1;
  const std::uint64_t pairs = slaves * (slaves - 1) / 2;
  return MappingCost{slaves + pairs + pairs + static_cast<std::uint64_t>(jam_repetitions)};
}

}  // namespace envnws::env
