// ProbeEngine implementation backed by the simnet simulator.
#pragma once

#include "env/options.hpp"
#include "env/probe_engine.hpp"
#include "simnet/network.hpp"
#include "simnet/probe.hpp"

namespace envnws::env {

class SimProbeEngine final : public ProbeEngine {
 public:
  SimProbeEngine(simnet::Network& net, const MapperOptions& options);

  Result<HostIdentity> lookup(const std::string& hostname) override;
  Result<std::vector<TraceHop>> traceroute(const std::string& from,
                                           const std::string& target) override;
  Result<double> bandwidth(const std::string& from, const std::string& to) override;
  std::vector<Result<double>> concurrent_bandwidth(
      const std::vector<BandwidthRequest>& requests) override;
  /// Runs the batch as the canonical sequential loop: the simulator is
  /// single-threaded and measures every experiment with the network
  /// otherwise idle, so batch concurrency is modeled by the mapper's
  /// schedule (env/batch_schedule.hpp), never simulated — which is what
  /// keeps the MapResult bit-identical for every probe_jobs value.
  std::vector<ProbeExperimentOutcome> run_batch(const std::vector<ProbeExperiment>& experiments,
                                                std::size_t workers) override;
  [[nodiscard]] ProbeStats stats() const override;

 private:
  /// Resolve by short name, primary fqdn or alias fqdn.
  Result<simnet::NodeId> resolve(const std::string& hostname) const;

  simnet::Network& net_;
  MapperOptions options_;
  simnet::ProbeSession session_;
};

}  // namespace envnws::env
