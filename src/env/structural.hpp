// Structural topology: the traceroute tree (paper §4.2.1.3, Fig. 2).
//
// Every mapped host traceroutes towards a well-known target (an external
// destination, or the zone gateway inside a firewalled zone). The portion
// of each path inside the mapped network is folded into a tree rooted at
// the target side: hosts using the same route out are clustered together
// as leaves of the same branch.
#pragma once

#include <string>
#include <vector>

#include "env/probe_engine.hpp"

namespace envnws::env {

struct HostTrace {
  std::string fqdn;            ///< machine being mapped
  std::vector<TraceHop> hops;  ///< from the host towards the target
};

struct StructuralNode {
  std::string ip;    ///< hop address ("" only for a synthetic root)
  std::string name;  ///< resolved hop name, may be empty
  /// Machines whose route enters the network exactly here.
  std::vector<std::string> machines;
  std::vector<StructuralNode> children;

  [[nodiscard]] std::string display() const { return name.empty() ? ip : name; }
  [[nodiscard]] std::size_t machine_count() const;
};

/// Fold the per-host hop lists into the structural tree. Non-responding
/// hops ("*") are skipped — paper §4.3 "Dropped traceroute": clusters are
/// still split correctly later, from bandwidth measures. The final hop of
/// each trace (the common target) becomes the root.
[[nodiscard]] StructuralNode build_structural_tree(const std::vector<HostTrace>& traces);

/// ASCII rendering in the style of paper Fig. 2.
[[nodiscard]] std::string render_structural(const StructuralNode& root);

}  // namespace envnws::env
