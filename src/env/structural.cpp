#include "env/structural.hpp"

#include <algorithm>
#include <sstream>

namespace envnws::env {

std::size_t StructuralNode::machine_count() const {
  std::size_t count = machines.size();
  for (const auto& child : children) count += child.machine_count();
  return count;
}

StructuralNode build_structural_tree(const std::vector<HostTrace>& traces) {
  StructuralNode root;

  // The root is the common target: the last responding hop of any trace.
  for (const auto& trace : traces) {
    for (auto it = trace.hops.rbegin(); it != trace.hops.rend(); ++it) {
      if (it->responded) {
        root.ip = it->ip;
        root.name = it->name;
        break;
      }
    }
    if (!root.ip.empty()) break;
  }

  for (const auto& trace : traces) {
    // Usable hops, outermost (target) first, silent routers dropped.
    std::vector<const TraceHop*> path;
    for (auto it = trace.hops.rbegin(); it != trace.hops.rend(); ++it) {
      if (it->responded) path.push_back(&*it);
    }
    // Drop the target itself (it is the root, not a branch).
    if (!path.empty() && path.front()->ip == root.ip) path.erase(path.begin());

    StructuralNode* cursor = &root;
    for (const TraceHop* hop : path) {
      auto child = std::find_if(cursor->children.begin(), cursor->children.end(),
                                [hop](const StructuralNode& n) { return n.ip == hop->ip; });
      if (child == cursor->children.end()) {
        StructuralNode fresh;
        fresh.ip = hop->ip;
        fresh.name = hop->name;
        cursor->children.push_back(std::move(fresh));
        cursor = &cursor->children.back();
      } else {
        if (child->name.empty()) child->name = hop->name;
        cursor = &*child;
      }
    }
    cursor->machines.push_back(trace.fqdn);
  }
  return root;
}

namespace {
void render_node(const StructuralNode& node, const std::string& indent,
                 std::ostringstream& out) {
  out << indent << node.display();
  if (!node.name.empty() && node.ip != node.name && !node.ip.empty()) {
    out << " [" << node.ip << "]";
  }
  out << "\n";
  for (const auto& machine : node.machines) {
    out << indent << "  - " << machine << "\n";
  }
  for (const auto& child : node.children) render_node(child, indent + "  ", out);
}
}  // namespace

std::string render_structural(const StructuralNode& root) {
  std::ostringstream out;
  render_node(root, "", out);
  return out.str();
}

}  // namespace envnws::env
