// The probe agent: an NWS-style sensor process for SocketProbeEngine.
//
// One agent runs per mapped host (Wolski's NWS deploys exactly such
// long-lived sensor daemons). It answers the wire protocol of
// env/probe_wire.hpp on a TCP listener:
//
//   HELLO  -> the host's identity (fqdn, ip, inventory properties)
//   PING   -> PONG echo (the engine times RTT trains client-side)
//   BWXFER -> run one bulk transfer TO another agent: the agent dials
//             the peer, streams `bytes` of payload through a BULK
//             frame, and relays the peer's timing verdict back
//   STATS  -> the agent's own cumulative experiment counters
//   BULK   -> the receiving half of a transfer: sink the payload, time
//             it, reply BULK-OK with the elapsed seconds
//
// Determinism for offline-first validation: with `fixed_rate_bps > 0`
// the receiving agent REPORTS `bytes * 8 * streams / rate` seconds
// instead of the measured wall time (`streams` is the engine-declared
// number of transfers sharing the sending NIC, so concurrent probes see
// source fair-share contention exactly like a real adapter) — the
// transferred bytes still cross a real TCP connection, only the
// reported timing is modeled, which is what makes loopback mapping
// digests reproducible across runs and probe_jobs values. With
// `pace = true` the agent additionally sleeps so the wall time tracks
// the reported time, giving the loopback bench honest wall-clock
// behavior. `fixed_rate_bps == 0` is the real mode: measured wall time.
//
// The class is embeddable (the loopback test fixture spawns N agents
// in-process on ephemeral ports); `examples/probe_agent` wraps it as a
// standalone daemon.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.hpp"
#include "env/probe_engine.hpp"
#include "env/probe_wire.hpp"

namespace envnws::env {

struct ProbeAgentConfig {
  std::string name;  ///< the roster host name this agent serves
  std::string fqdn;  ///< HELLO identity; empty models failed reverse DNS
  std::string ip = "127.0.0.1";
  std::map<std::string, std::string> properties;  ///< HELLO inventory

  std::string listen_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; real port via ProbeAgent::port()

  /// > 0: deterministic reported transfer timing (see file comment).
  double fixed_rate_bps = 0.0;
  /// Fraction of `fixed_rate_bps` a payload actually extracts (lv08 TCP
  /// correction: 0.97). Applied to the deterministic reported timing
  /// only, so a fleet paced this way produces golden traces whose
  /// bandwidths a tcp-lv08 simnet model should predict — the
  /// calibration contract's "real" side. 1.0 = plain pacing.
  double usable_fraction = 1.0;
  /// Sleep so wall time matches the deterministic reported time.
  bool pace = false;
  /// Bound on every frame/bulk I/O operation the agent performs.
  double io_timeout_s = 30.0;
};

class ProbeAgent {
 public:
  explicit ProbeAgent(ProbeAgentConfig config);
  ~ProbeAgent();
  ProbeAgent(const ProbeAgent&) = delete;
  ProbeAgent& operator=(const ProbeAgent&) = delete;

  /// Bind, listen and start serving on a background thread.
  Status start();
  /// Stop serving: wakes every in-flight connection and joins all
  /// threads. Idempotent; also called by the destructor.
  void stop();

  [[nodiscard]] const ProbeAgentConfig& config() const { return config_; }
  /// The bound port (the ephemeral one when config().port was 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] bool running() const;

  /// Cumulative counters of the experiments THIS agent sourced
  /// (BWXFER) — the same numbers the STATS frame serves.
  [[nodiscard]] ProbeStats stats() const;

 private:
  void accept_loop();
  void serve_connection(std::size_t slot);
  /// Handle one control message; returns the reply payload.
  std::string handle(const wire::WireMessage& message, wire::TcpSocket& socket,
                     wire::FrameBuffer& buffer);
  std::string handle_bwxfer(const wire::WireMessage& message);
  std::string handle_bulk(const wire::WireMessage& message, wire::TcpSocket& socket,
                          wire::FrameBuffer& buffer);

  ProbeAgentConfig config_;
  wire::TcpListener listener_;
  std::uint16_t port_ = 0;
  std::thread acceptor_;
  mutable std::mutex mutex_;  ///< guards conns_, stats_, stopping_
  bool running_ = false;
  bool stopping_ = false;
  /// Per-connection slots: the socket (so stop() can shut it down) and
  /// its serving thread. Slots are never erased while running — conns_
  /// is bounded by the connections one mapping opens.
  struct Connection {
    wire::TcpSocket socket;
    std::thread thread;
    bool done = false;
  };
  std::vector<std::unique_ptr<Connection>> conns_;
  ProbeStats stats_;
};

}  // namespace envnws::env
