// Deterministic fault injection for probe streams.
//
// Failure paths of the mapper — lookups that never resolve, bandwidth
// probes that time out, jam tests that collapse — are hard to reach from
// well-formed scenarios. `FaultInjectingProbeEngine` wraps any
// `ProbeEngine` and perturbs or fails selected experiments according to
// a `FaultSpec`, a compact rule string (grammar in docs/TESTING.md):
//
//     fault-rules := rule { "," rule }
//     rule        := kind selector "=" action
//     kind        := "lookup" | "trace" | "bw" | "cbw" | "any"
//     selector    := "#" N       -- exactly the Nth experiment (0-based)
//                  | "%" N       -- every Nth experiment (the N-1st, 2N-1st, ...)
//                  | "*"         -- every experiment
//     action      := "fail" [":" error-code]   -- default code: timeout
//                  | "scale" ":" factor        -- bw/cbw only: multiply results
//
// Experiment counting is per kind for the kind-specific rules and global
// for "any", always 0-based in call order. Counters live in the engine
// instance: concurrent zone mapping builds one engine per zone, so
// counting is per zone there — the deterministic choice (a shared
// counter across concurrently-probed zones would make fault placement
// depend on thread interleaving). A failed experiment never reaches the
// wrapped engine (no probe traffic, no stats), exactly like a real
// timeout that sends bytes into a black hole.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "env/probe_engine.hpp"

namespace envnws::env {

struct FaultRule {
  enum class Kind { lookup, traceroute, bandwidth, concurrent, any };
  enum class Select { index, every, all };
  enum class Action { fail, scale };

  Kind kind = Kind::any;
  Select select = Select::all;
  std::uint64_t n = 0;  ///< the index for "#N", the period for "%N"
  Action action = Action::fail;
  ErrorCode fail_code = ErrorCode::timeout;
  double factor = 1.0;

  /// Canonical rule text ("bw#3=fail:timeout").
  [[nodiscard]] std::string to_string() const;
  /// Does the rule select the `count`-th experiment of its kind?
  [[nodiscard]] bool selects(std::uint64_t count) const;
};

struct FaultSpec {
  std::vector<FaultRule> rules;

  /// Parse a rule list; `invalid_argument` on malformed rules (including
  /// scale actions on non-bandwidth kinds). The empty string is the
  /// empty spec.
  static Result<FaultSpec> parse(const std::string& text);
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] bool empty() const { return rules.empty(); }
};

class FaultInjectingProbeEngine final : public ProbeEngine {
 public:
  FaultInjectingProbeEngine(std::unique_ptr<ProbeEngine> inner, FaultSpec spec);

  Result<HostIdentity> lookup(const std::string& hostname) override;
  Result<std::vector<TraceHop>> traceroute(const std::string& from,
                                           const std::string& target) override;
  Result<double> bandwidth(const std::string& from, const std::string& to) override;
  std::vector<Result<double>> concurrent_bandwidth(
      const std::vector<BandwidthRequest>& requests) override;
  /// Runs the batch as the canonical sequential loop so the per-kind and
  /// global experiment counters advance in CANONICAL batch order — fault
  /// placement ("bw#3") selects the same experiment whether the mapping
  /// was batched or not, never an arrival-order accident.
  std::vector<ProbeExperimentOutcome> run_batch(const std::vector<ProbeExperiment>& experiments,
                                                std::size_t workers) override;
  [[nodiscard]] ProbeStats stats() const override;

  /// Experiments failed or perturbed so far.
  [[nodiscard]] std::uint64_t injected() const { return injected_; }

 private:
  /// First matching rule for this call (per-kind and global counters
  /// advance as a side effect), nullptr when the call passes through.
  const FaultRule* match(FaultRule::Kind kind);
  [[nodiscard]] Error injected_error(const FaultRule& rule, const std::string& summary) const;

  std::unique_ptr<ProbeEngine> inner_;
  FaultSpec spec_;
  std::uint64_t count_global_ = 0;
  std::uint64_t count_kind_[4] = {0, 0, 0, 0};
  std::uint64_t injected_ = 0;
};

}  // namespace envnws::env
