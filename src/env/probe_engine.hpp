// The observation interface ENV is allowed to use.
//
// Everything the mapper learns about the platform flows through this
// interface: name lookups, traceroutes, and timed (possibly concurrent)
// transfers — i.e. strictly user-level observations, no SNMP, no raw
// sockets (paper §3.5). `SimProbeEngine` backs it with the simulator;
// tests also implement it with scripted traces.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.hpp"

namespace envnws::env {

struct HostIdentity {
  std::string fqdn;  ///< empty when reverse DNS fails
  std::string ip;
  std::map<std::string, std::string> properties;
};

struct TraceHop {
  std::string ip;    ///< "*" when the hop did not respond
  std::string name;  ///< empty when unresolvable
  bool responded = true;
};

struct BandwidthRequest {
  std::string from;
  std::string to;
};

struct ProbeStats {
  std::uint64_t experiments = 0;
  std::int64_t bytes_sent = 0;
  double busy_time_s = 0.0;
};

class ProbeEngine {
 public:
  virtual ~ProbeEngine() = default;

  /// Resolve a user-supplied hostname to the identity visible from the
  /// probing zone, plus inventory properties (ENV phase 4.2.1.2).
  virtual Result<HostIdentity> lookup(const std::string& hostname) = 0;
  /// Hops from `from` towards `target` (target included as last hop).
  virtual Result<std::vector<TraceHop>> traceroute(const std::string& from,
                                                   const std::string& target) = 0;
  /// Achieved bandwidth (bit/s) of one timed transfer, network otherwise idle.
  virtual Result<double> bandwidth(const std::string& from, const std::string& to) = 0;
  /// Achieved bandwidths of transfers started at the same instant.
  virtual std::vector<Result<double>> concurrent_bandwidth(
      const std::vector<BandwidthRequest>& requests) = 0;

  [[nodiscard]] virtual ProbeStats stats() const = 0;
};

}  // namespace envnws::env
