// The observation interface ENV is allowed to use.
//
// Everything the mapper learns about the platform flows through this
// interface: name lookups, traceroutes, and timed (possibly concurrent)
// transfers — i.e. strictly user-level observations, no SNMP, no raw
// sockets (paper §3.5). `SimProbeEngine` backs it with the simulator;
// tests also implement it with scripted traces.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.hpp"

namespace envnws::env {

struct HostIdentity {
  std::string fqdn;  ///< empty when reverse DNS fails
  std::string ip;
  std::map<std::string, std::string> properties;
  /// Addresses of the host's OTHER network adapters (a dual-homed
  /// firewall gateway answers with the identity it was asked about and
  /// lists the rest here). Purely schedule-model information: it feeds
  /// the multi-homed-master overlap credit in env/batch_schedule and is
  /// deliberately NOT part of the trace format — a replayed engine
  /// reports none, which only forfeits makespan credit, never changes
  /// the experiment stream or the digest.
  std::vector<std::string> extra_ips;
};

struct TraceHop {
  std::string ip;    ///< "*" when the hop did not respond
  std::string name;  ///< empty when unresolvable
  bool responded = true;
};

struct BandwidthRequest {
  std::string from;
  std::string to;
  /// Source-NIC qualifier for the endpoint-disjointness rule ("" = the
  /// host's only adapter). Two transfers leaving one multi-homed host
  /// through DIFFERENT adapters do not share a network interface, so
  /// tagging them with distinct `via` addresses lets the batch schedule
  /// overlap them. Engines ignore it when measuring (the route is the
  /// platform's business), and it is never serialized into traces —
  /// it exists only for env/batch_schedule's bookkeeping.
  std::string via;
};

/// One experiment of a probe batch: either a single timed transfer
/// (phase 2a/2c style) or one concurrent-transfer experiment whose
/// transfers are timed together (phase 2b style).
struct ProbeExperiment {
  enum class Kind { bandwidth, concurrent };
  Kind kind = Kind::bandwidth;
  /// Exactly one transfer for `bandwidth`, two or more for `concurrent`.
  std::vector<BandwidthRequest> transfers;

  static ProbeExperiment single(std::string from, std::string to) {
    return ProbeExperiment{Kind::bandwidth,
                           {BandwidthRequest{std::move(from), std::move(to), {}}}};
  }
  static ProbeExperiment concurrent(std::vector<BandwidthRequest> transfers) {
    return ProbeExperiment{Kind::concurrent, std::move(transfers)};
  }
};

/// Outcome of one batch experiment; `results` parallels `transfers`.
struct ProbeExperimentOutcome {
  std::vector<Result<double>> results;
  /// Engine busy time this experiment consumed (transfer + settle gap);
  /// the mapper's schedule model list-schedules these durations.
  double duration_s = 0.0;
};

struct ProbeStats {
  std::uint64_t experiments = 0;
  std::int64_t bytes_sent = 0;
  double busy_time_s = 0.0;
};

class ProbeEngine {
 public:
  virtual ~ProbeEngine() = default;

  /// Resolve a user-supplied hostname to the identity visible from the
  /// probing zone, plus inventory properties (ENV phase 4.2.1.2).
  virtual Result<HostIdentity> lookup(const std::string& hostname) = 0;
  /// Hops from `from` towards `target` (target included as last hop).
  virtual Result<std::vector<TraceHop>> traceroute(const std::string& from,
                                                   const std::string& target) = 0;
  /// Achieved bandwidth (bit/s) of one timed transfer, network otherwise idle.
  virtual Result<double> bandwidth(const std::string& from, const std::string& to) = 0;
  /// Achieved bandwidths of transfers started at the same instant.
  virtual std::vector<Result<double>> concurrent_bandwidth(
      const std::vector<BandwidthRequest>& requests) = 0;

  /// Run a batch of experiments the caller asserts to be mutually
  /// independent wherever their endpoint sets are disjoint (the mapper
  /// only builds batches it has that evidence for, e.g. member pairs of
  /// one segment). The CONTRACT every implementation must honour:
  ///
  ///  - Results come back indexed by the batch's canonical order (the
  ///    order of `experiments`), never by completion order.
  ///  - An engine MAY overlap experiments, at most `workers` in flight,
  ///    but ONLY experiments whose endpoint sets are disjoint; anything
  ///    sharing an endpoint must execute in canonical order.
  ///  - An engine without real concurrency (the default implementation,
  ///    the simulator, the trace engines) runs the batch as a plain
  ///    sequential loop in canonical order — which is why a batched
  ///    mapping issues the byte-identical experiment stream, and records
  ///    the byte-identical probe trace, as a sequential one.
  ///
  /// The default implementation is that sequential loop over the
  /// virtuals above, timing each experiment via `stats()` diffs.
  virtual std::vector<ProbeExperimentOutcome> run_batch(
      const std::vector<ProbeExperiment>& experiments, std::size_t workers);

  [[nodiscard]] virtual ProbeStats stats() const = 0;
};

}  // namespace envnws::env
