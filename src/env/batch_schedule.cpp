#include "env/batch_schedule.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "testing/virtual_scheduler.hpp"

namespace envnws::env {

std::vector<std::string> experiment_endpoints(const ProbeExperiment& experiment) {
  std::vector<std::string> endpoints;
  endpoints.reserve(experiment.transfers.size() * 2);
  for (const auto& transfer : experiment.transfers) {
    // A `via`-qualified source occupies one specific adapter of a
    // multi-homed host, not the whole host: "master%140.77.12.51" and
    // "master%192.168.81.51" are distinct endpoints, which is what lets
    // phase 2b overlap pairwise experiments of different groups when the
    // master has a NIC per group. '%' cannot occur in a hostname, so the
    // qualified name can never collide with a real endpoint.
    endpoints.push_back(transfer.via.empty() ? transfer.from
                                             : transfer.from + '%' + transfer.via);
    endpoints.push_back(transfer.to);
  }
  return endpoints;
}

BatchDispatcher::BatchDispatcher(const std::vector<ProbeExperiment>& experiments)
    : started_(experiments.size(), false),
      finished_(experiments.size(), false),
      unstarted_(experiments.size()) {
  endpoints_.reserve(experiments.size());
  for (const auto& experiment : experiments) {
    endpoints_.push_back(experiment_endpoints(experiment));
  }
}

std::vector<std::size_t> BatchDispatcher::startable() const {
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    if (started_[i]) continue;
    bool blocked = false;
    for (const auto& endpoint : endpoints_[i]) {
      const auto it = busy_.find(endpoint);
      if (it != busy_.end() && it->second > 0) {
        blocked = true;
        break;
      }
    }
    if (!blocked) ready.push_back(i);
  }
  return ready;
}

void BatchDispatcher::start(std::size_t index) {
  if (index >= endpoints_.size()) {
    violate("start of experiment " + std::to_string(index) + " outside the batch");
    return;
  }
  if (started_[index]) {
    violate("experiment " + std::to_string(index) + " started twice");
    return;
  }
  // An endpoint can only ever be used by one experiment at a time —
  // judged against OTHER in-flight experiments before this one claims
  // anything, so an experiment reusing an endpoint across its own
  // transfers (a bidirectional concurrent pair) is not a conflict.
  for (const auto& endpoint : endpoints_[index]) {
    const auto it = busy_.find(endpoint);
    if (it != busy_.end() && it->second > 0) {
      violate("experiment " + std::to_string(index) + " started while endpoint '" + endpoint +
              "' is in flight");
      break;
    }
  }
  for (const auto& endpoint : endpoints_[index]) ++busy_[endpoint];
  started_[index] = true;
  --unstarted_;
  ++in_flight_;
}

void BatchDispatcher::finish(std::size_t index) {
  if (index >= endpoints_.size() || !started_[index] || finished_[index]) {
    violate("finish of experiment " + std::to_string(index) + " that is not in flight");
    return;
  }
  for (const auto& endpoint : endpoints_[index]) --busy_[endpoint];
  finished_[index] = true;
  --in_flight_;
}

void BatchDispatcher::violate(std::string message) {
  if (!violation_.has_value()) {
    violation_ = make_error(ErrorCode::internal, "batch dispatch violation: " + std::move(message));
  }
}

double batch_makespan(const std::vector<ProbeExperiment>& experiments,
                      const std::vector<double>& durations, std::size_t workers) {
  assert(experiments.size() == durations.size());
  if (experiments.empty()) return 0.0;
  if (workers <= 1) {
    double sum = 0.0;
    for (const double duration : durations) sum += duration;
    return sum;
  }

  struct Running {
    double ends_at = 0.0;
    std::size_t index = 0;
  };
  BatchDispatcher dispatcher(experiments);
  std::vector<bool> started(experiments.size(), false);
  std::vector<Running> running;
  double now = 0.0;
  double makespan = 0.0;

  while (!dispatcher.all_finished()) {
    // Fill free slots with the first startable experiment, re-queried
    // after every start (starting one experiment blocks its endpoint
    // sharers for this pass).
    while (running.size() < workers) {
      const auto ready = dispatcher.startable();
      if (ready.empty()) break;
      const std::size_t index = ready.front();
      dispatcher.start(index);
      started[index] = true;
      running.push_back(Running{now + durations[index], index});
    }
    if (running.empty()) {
      // Nothing in flight and nothing startable would be a conflict
      // bookkeeping bug; bail out to the sequential sum of the rest.
      double sum = now;
      for (std::size_t i = 0; i < experiments.size(); ++i) {
        if (!started[i]) sum += durations[i];
      }
      return std::max(makespan, sum);
    }
    // Advance to the earliest completion and retire everything due.
    double next = std::numeric_limits<double>::infinity();
    for (const auto& run : running) next = std::min(next, run.ends_at);
    now = next;
    makespan = std::max(makespan, now);
    for (auto it = running.begin(); it != running.end();) {
      if (it->ends_at <= now) {
        dispatcher.finish(it->index);
        it = running.erase(it);
      } else {
        ++it;
      }
    }
  }
  return makespan;
}

std::vector<ProbeExperimentOutcome> run_batch_virtual(
    ProbeEngine& engine, const std::vector<ProbeExperiment>& experiments, std::size_t workers,
    testing::VirtualScheduler& scheduler, const VirtualBatchOptions& options) {
  // Measure in canonical order first: the engine sees exactly the
  // sequential experiment stream (trace replays match, digests stay
  // jobs-invariant) and the dispatch below permutes only the schedule.
  const std::vector<ProbeExperimentOutcome> measured = engine.run_batch(experiments, 1);
  if (measured.size() != experiments.size()) {
    scheduler.report_fault(make_error(
        ErrorCode::internal, "engine returned " + std::to_string(measured.size()) +
                                 " outcomes for a batch of " + std::to_string(experiments.size())));
    return measured;
  }
  workers = std::max<std::size_t>(workers, 1);

  const auto label_of = [&](const char* verb, std::size_t i) {
    std::string label = std::string(verb) + " #" + std::to_string(i);
    if (!experiments[i].transfers.empty()) {
      label += " " + experiments[i].transfers.front().from + "->" +
               experiments[i].transfers.front().to;
    }
    return label;
  };

  BatchDispatcher dispatcher(experiments);
  std::vector<ProbeExperimentOutcome> outcomes(experiments.size());
  std::vector<std::size_t> in_flight;
  std::size_t completion_slot = 0;  // only the injected bug uses this

  while (!dispatcher.all_finished()) {
    // The ready events: dispatch a startable experiment onto a free
    // worker, or complete an in-flight one. `id` encodes start (index)
    // vs finish (size + index).
    testing::DecisionPoint point;
    point.point = "batch";
    if (in_flight.size() < workers) {
      for (const std::size_t i : dispatcher.startable()) {
        point.ready.push_back(testing::ReadyTask{i, label_of("start", i)});
      }
    }
    for (const std::size_t i : in_flight) {
      point.ready.push_back(testing::ReadyTask{experiments.size() + i, label_of("finish", i)});
    }
    if (point.ready.empty()) {
      scheduler.report_fault(make_error(
          ErrorCode::internal,
          "batch dispatch deadlock: nothing startable and nothing in flight with " +
              std::to_string(experiments.size() - completion_slot) + " experiments unfinished"));
      break;
    }
    const testing::ReadyTask& event = point.ready[scheduler.pick(point)];
    if (event.id < experiments.size()) {
      dispatcher.start(event.id);
      in_flight.push_back(event.id);
    } else {
      const std::size_t index = event.id - experiments.size();
      dispatcher.finish(index);
      in_flight.erase(std::find(in_flight.begin(), in_flight.end(), index));
      // Canonical reassembly: the outcome lands in the experiment's own
      // slot no matter when it completed — the contract every concurrent
      // engine must honour. The injected bug is its classic violation.
      const std::size_t slot =
          options.inject_completion_order_bug ? completion_slot : index;
      ++completion_slot;
      outcomes[slot] = measured[index];
    }
    if (!dispatcher.health().ok()) {
      scheduler.report_fault(dispatcher.health().error());
      break;
    }
  }
  return outcomes;
}

}  // namespace envnws::env
