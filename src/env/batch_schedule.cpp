#include "env/batch_schedule.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <map>
#include <string>

namespace envnws::env {

std::vector<std::string> experiment_endpoints(const ProbeExperiment& experiment) {
  std::vector<std::string> endpoints;
  endpoints.reserve(experiment.transfers.size() * 2);
  for (const auto& transfer : experiment.transfers) {
    endpoints.push_back(transfer.from);
    endpoints.push_back(transfer.to);
  }
  return endpoints;
}

double batch_makespan(const std::vector<ProbeExperiment>& experiments,
                      const std::vector<double>& durations, std::size_t workers) {
  assert(experiments.size() == durations.size());
  if (experiments.empty()) return 0.0;
  if (workers <= 1) {
    double sum = 0.0;
    for (const double duration : durations) sum += duration;
    return sum;
  }

  struct Running {
    double ends_at = 0.0;
    std::size_t index = 0;
  };
  std::vector<bool> done(experiments.size(), false);
  std::vector<Running> running;
  // Endpoint -> number of in-flight experiments using it (an endpoint
  // can only ever be used by one experiment at a time, but a multiset
  // keeps the bookkeeping trivially correct for duplicate names inside
  // one experiment's own transfer list).
  std::map<std::string, int> busy;
  std::size_t remaining = experiments.size();
  double now = 0.0;
  double makespan = 0.0;

  const auto is_startable = [&](std::size_t i) {
    for (const auto& endpoint : experiment_endpoints(experiments[i])) {
      const auto it = busy.find(endpoint);
      if (it != busy.end() && it->second > 0) return false;
    }
    return true;
  };
  const auto start = [&](std::size_t i) {
    for (const auto& endpoint : experiment_endpoints(experiments[i])) ++busy[endpoint];
    running.push_back(Running{now + durations[i], i});
    done[i] = true;
    --remaining;
  };

  while (remaining > 0 || !running.empty()) {
    // Fill free slots with the first startable experiments, in
    // canonical order (later experiments may overtake a blocked one —
    // their mutual disjointness is exactly what the batch asserts).
    for (std::size_t i = 0; i < experiments.size() && running.size() < workers; ++i) {
      if (!done[i] && is_startable(i)) start(i);
    }
    if (running.empty()) {
      // Nothing in flight and nothing startable would be a conflict
      // bookkeeping bug; bail out to the sequential sum of the rest.
      double sum = now;
      for (std::size_t i = 0; i < experiments.size(); ++i) {
        if (!done[i]) sum += durations[i];
      }
      return std::max(makespan, sum);
    }
    // Advance to the earliest completion and retire everything due.
    double next = std::numeric_limits<double>::infinity();
    for (const auto& run : running) next = std::min(next, run.ends_at);
    now = next;
    makespan = std::max(makespan, now);
    for (auto it = running.begin(); it != running.end();) {
      if (it->ends_at <= now) {
        for (const auto& endpoint : experiment_endpoints(experiments[it->index])) {
          --busy[endpoint];
        }
        it = running.erase(it);
      } else {
        ++it;
      }
    }
  }
  return makespan;
}

}  // namespace envnws::env
