// ProbeEngine backed by real TCP sockets and probe agents.
//
// The first backend that actually interrogates a network instead of a
// model of one: every mapped host runs a `env::ProbeAgent` (an
// NWS-style sensor process), the engine finds them through an
// `AgentRoster` (`<host> <ipv4>:<port>` per line) and drives the wire
// protocol of env/probe_wire.hpp:
//
//   lookup      -> HELLO to the host's agent (identity + inventory)
//   traceroute  -> synthesized direct route to the target (user-level
//                  TCP agents cannot run TTL games; the structural
//                  phase degenerates to one flat segment that phases
//                  2a-2d then refine — see docs/SOCKET_ENGINE.md)
//   bandwidth   -> BWXFER: the source agent streams a timed bulk
//                  transfer to the sink agent and relays its verdict
//   concurrent  -> the same transfers started together on parallel
//                  control connections, with the engine-declared
//                  `streams` count modeling source-NIC fair share
//   ping_rtt    -> PING/PONG train, RTT timed engine-side (extra
//                  latency experiment, not part of the mapper's stream)
//
// This is also the first engine whose `run_batch` is genuinely
// concurrent: endpoint-disjoint experiments of one batch are dispatched
// onto up to `workers` simultaneous agent connections — the greedy
// schedule `env/batch_schedule.hpp` models, realized. The canonical
// contract holds: results return in batch order, experiments sharing an
// endpoint never overlap, and the engine's cumulative stats are folded
// in canonical order AFTER the batch, so the MapResult (and its
// identity_digest) is bit-identical for every `workers` value whenever
// the agents report deterministic timings (ProbeAgentConfig::
// fixed_rate_bps — the offline-first validation mode).
//
// Every failure is a `Result`: a dead agent is `unreachable`, a silent
// one `timeout` (all socket operations carry the bounded timeouts of
// `SocketEngineOptions`), malformed replies are `protocol` — the mapper
// downgrades them to per-host warnings exactly like simulator probe
// failures, so an agent dying mid-mapping degrades the map instead of
// hanging it.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "env/options.hpp"
#include "env/probe_engine.hpp"
#include "env/probe_wire.hpp"

namespace envnws::env {

struct SocketEngineOptions {
  double connect_timeout_s = 5.0;   ///< dialing an agent
  double frame_timeout_s = 10.0;    ///< control-frame round trips (HELLO/PING/STATS)
  double transfer_timeout_s = 60.0; ///< full BWXFER completion bound
  /// Global bound on idle pooled connections, across ALL hosts: when a
  /// released connection would exceed it, the least-recently-used idle
  /// connection anywhere in the pool is closed. A monitord driving
  /// thousands of agents thus holds at most this many idle sockets,
  /// while a small fleet still reuses every connection. Minimum 1 (a
  /// released connection always pools; eviction happens afterwards).
  std::size_t max_idle_sockets = 32;
};

class SocketProbeEngine final : public ProbeEngine {
 public:
  SocketProbeEngine(wire::AgentRoster roster, const MapperOptions& options,
                    SocketEngineOptions socket_options = {});
  ~SocketProbeEngine() override;

  Result<HostIdentity> lookup(const std::string& hostname) override;
  Result<std::vector<TraceHop>> traceroute(const std::string& from,
                                           const std::string& target) override;
  Result<double> bandwidth(const std::string& from, const std::string& to) override;
  std::vector<Result<double>> concurrent_bandwidth(
      const std::vector<BandwidthRequest>& requests) override;
  /// Genuinely concurrent (see file comment): up to `workers` agent
  /// connections in flight, endpoint-disjoint experiments only, results
  /// and stats in canonical order.
  std::vector<ProbeExperimentOutcome> run_batch(const std::vector<ProbeExperiment>& experiments,
                                                std::size_t workers) override;
  [[nodiscard]] ProbeStats stats() const override;

  /// Median RTT (seconds) of a PING train against the host's agent.
  Result<double> ping_rtt(const std::string& host, int train = 8);
  /// The agent's own cumulative counters (STATS frame).
  Result<ProbeStats> agent_stats(const std::string& host);

  /// Schedule-exploration seam: when set, each free batch worker asks
  /// the scheduler which startable experiment to take ("socket"
  /// decision point, serialized under the batch mutex) instead of
  /// canonical-first. The engine never permutes RESULT order — outcomes
  /// and stats stay canonical regardless — which is exactly what the
  /// harness asserts. The scheduler must outlive every run_batch call;
  /// null restores the production greedy rule.
  void set_virtual_scheduler(testing::VirtualScheduler* scheduler) { scheduler_ = scheduler; }

  [[nodiscard]] const wire::AgentRoster& roster() const { return roster_; }
  /// Idle pooled connections right now, across every host — always
  /// <= SocketEngineOptions::max_idle_sockets (the LRU bound).
  [[nodiscard]] std::size_t idle_sockets() const;

 private:
  /// One pooled control connection to an agent.
  struct AgentConn {
    wire::TcpSocket socket;
    wire::FrameBuffer buffer;
    bool reused = false;  ///< came out of the pool (may be stale)
    /// Release serial, stamped when the connection enters the pool; the
    /// global LRU eviction closes the smallest stamp first.
    std::uint64_t released_at = 0;
  };
  /// What one experiment did to the engine's stats; applied in
  /// canonical order so totals are order-independent bit for bit.
  struct StatsDelta {
    std::uint64_t experiments = 0;
    std::int64_t bytes = 0;
    double busy_s = 0.0;
  };
  struct Measured {
    Result<double> bandwidth_bps;
    double seconds = 0.0;
    std::int64_t bytes = 0;
    Measured() : bandwidth_bps(make_error(ErrorCode::internal, "not measured")) {}
  };

  [[nodiscard]] Result<wire::AgentEndpoint> resolve(const std::string& host) const;
  /// Pop an idle connection to `host` or dial a fresh one.
  Result<std::unique_ptr<AgentConn>> acquire(const std::string& host);
  /// Return a healthy connection to the pool (broken ones are dropped
  /// by simply not releasing them).
  void release(const std::string& host, std::unique_ptr<AgentConn> conn);
  /// Discard every idle connection to `host` (stale-pool flush).
  void drop_pool(const std::string& host);
  /// One frame round trip on a pooled connection. A socket-level
  /// failure on a REUSED connection (closed while idling in the pool)
  /// is retried once on a fresh dial before it is reported.
  Result<wire::WireMessage> round_trip(const std::string& host, const wire::WireMessage& request,
                                       double timeout_s);

  /// One transfer, no stats side effects (pure measurement).
  Measured measure(const BandwidthRequest& request, int streams);
  /// Run one whole experiment (single or concurrent), returning its
  /// outcome and stats delta without touching stats_.
  void run_experiment(const ProbeExperiment& experiment, ProbeExperimentOutcome& outcome,
                      StatsDelta& delta);
  void apply(const StatsDelta& delta);

  wire::AgentRoster roster_;
  MapperOptions options_;
  SocketEngineOptions socket_options_;
  testing::VirtualScheduler* scheduler_ = nullptr;  ///< batch-dispatch seam

  mutable std::mutex mutex_;  ///< pool_, identities_, stats_, idle/stamp counters
  std::map<std::string, std::vector<std::unique_ptr<AgentConn>>> pool_;
  std::uint64_t release_serial_ = 0;  ///< monotonic LRU clock
  std::size_t idle_count_ = 0;        ///< connections across pool_ (== sum of sizes)
  std::map<std::string, HostIdentity> identities_;  ///< HELLO cache
  ProbeStats stats_;
};

}  // namespace envnws::env
