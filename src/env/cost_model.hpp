// Experiment-count cost models (paper §4.3, "Master/Slave paradigm").
//
// The paper argues a complete pairwise mapping cannot scale: n(n-1)
// directed links must each be measured, and every *pair* of links must be
// tested for interference (baseline + joint observation). At half a
// minute per experiment — the network must stabilize between experiments —
// "the whole process would last about 50 days for 20 hosts". ENV instead
// spends O(n^2) experiments with a small constant. These functions make
// both models explicit so the bench can regenerate the claim.
#pragma once

#include <cstdint>

namespace envnws::env {

struct MappingCost {
  std::uint64_t experiments = 0;

  [[nodiscard]] double seconds(double per_experiment_s = 30.0) const {
    return static_cast<double>(experiments) * per_experiment_s;
  }
  [[nodiscard]] double days(double per_experiment_s = 30.0) const {
    return seconds(per_experiment_s) / 86400.0;
  }
};

/// The naive complete mapping: every directed link measured, then every
/// unordered pair of links tested for interference with one baseline and
/// one joint experiment.
[[nodiscard]] MappingCost naive_full_mapping_cost(int hosts);

/// Analytic ENV cost for a single flat cluster of n-1 slaves: n-1 host
/// probes + C(n-1,2) pairwise + C(n-1,2) internal + 5 jam repetitions.
/// Real runs (tree-structured clusters) do strictly better; the bench
/// reports measured counts next to this bound.
[[nodiscard]] MappingCost env_worst_case_cost(int hosts, int jam_repetitions = 5);

}  // namespace envnws::env
