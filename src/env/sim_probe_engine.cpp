#include "env/sim_probe_engine.hpp"

namespace envnws::env {

using simnet::NodeId;

SimProbeEngine::SimProbeEngine(simnet::Network& net, const MapperOptions& options)
    : net_(net),
      options_(options),
      session_(net, simnet::ProbeOptions{options.purpose, options.stabilization_gap_s}) {}

Result<NodeId> SimProbeEngine::resolve(const std::string& hostname) const {
  if (auto by_name = net_.topology().find_by_name(hostname); by_name.ok()) {
    return by_name.value();
  }
  return net_.topology().find_host_by_fqdn(hostname);
}

Result<HostIdentity> SimProbeEngine::lookup(const std::string& hostname) {
  const auto node_id = resolve(hostname);
  if (!node_id.ok()) return node_id.error();
  const simnet::Node& node = net_.topology().node(node_id.value());

  HostIdentity identity;
  identity.properties = node.properties;
  // Answer with the identity that was asked about: querying a gateway by
  // its private alias must yield the private fqdn/ip, like the real DNS
  // view from inside the private zone would.
  identity.fqdn = node.fqdn;
  identity.ip = node.ip.is_zero() ? "" : node.ip.to_string();
  for (const auto& alias : node.aliases) {
    if (alias.fqdn == hostname) {
      identity.fqdn = alias.fqdn;
      identity.ip = alias.ip.to_string();
      break;
    }
  }
  // The other adapters of a multi-homed host (primary first, then the
  // aliases, minus whichever identity answered) — the schedule model's
  // multi-homing signal, see HostIdentity::extra_ips.
  if (!node.aliases.empty()) {
    const std::string primary = node.ip.is_zero() ? "" : node.ip.to_string();
    if (!primary.empty() && primary != identity.ip) identity.extra_ips.push_back(primary);
    for (const auto& alias : node.aliases) {
      const std::string addr = alias.ip.to_string();
      if (addr != identity.ip) identity.extra_ips.push_back(addr);
    }
  }
  return identity;
}

Result<std::vector<TraceHop>> SimProbeEngine::traceroute(const std::string& from,
                                                         const std::string& target) {
  const auto src = resolve(from);
  if (!src.ok()) return src.error();
  const auto dst = resolve(target);
  if (!dst.ok()) return dst.error();
  const auto hops = net_.traceroute(src.value(), dst.value());
  if (!hops.ok()) return hops.error();
  std::vector<TraceHop> out;
  out.reserve(hops.value().size());
  for (const auto& hop : hops.value()) {
    out.push_back(TraceHop{hop.reported_ip, hop.reported_name, hop.responded});
  }
  return out;
}

Result<double> SimProbeEngine::bandwidth(const std::string& from, const std::string& to) {
  const auto src = resolve(from);
  if (!src.ok()) return src.error();
  const auto dst = resolve(to);
  if (!dst.ok()) return dst.error();
  const auto outcome = session_.single(src.value(), dst.value(), options_.probe_bytes);
  if (!outcome.ok) return outcome.error;
  return outcome.bandwidth_bps;
}

std::vector<Result<double>> SimProbeEngine::concurrent_bandwidth(
    const std::vector<BandwidthRequest>& requests) {
  std::vector<Result<double>> results;
  results.reserve(requests.size());
  std::vector<simnet::TransferSpec> specs;
  std::vector<std::size_t> spec_to_result;
  for (const auto& request : requests) {
    const auto src = resolve(request.from);
    const auto dst = src.ok() ? resolve(request.to) : src;
    if (!src.ok() || !dst.ok()) {
      results.push_back((!src.ok() ? src : dst).error());
      continue;
    }
    specs.push_back(simnet::TransferSpec{src.value(), dst.value(), options_.probe_bytes});
    spec_to_result.push_back(results.size());
    results.push_back(make_error(ErrorCode::internal, "pending"));
  }
  const auto outcomes = session_.concurrent(specs);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    results[spec_to_result[i]] =
        outcomes[i].ok ? Result<double>(outcomes[i].bandwidth_bps)
                       : Result<double>(outcomes[i].error);
  }
  return results;
}

std::vector<ProbeExperimentOutcome> SimProbeEngine::run_batch(
    const std::vector<ProbeExperiment>& experiments, std::size_t /*workers*/) {
  // See the header: sequential by design; workers == 1 keeps the base
  // implementation an explicit serialization point.
  return ProbeEngine::run_batch(experiments, 1);
}

ProbeStats SimProbeEngine::stats() const {
  return ProbeStats{session_.experiment_count(), session_.bytes_sent(),
                    session_.busy_time_s()};
}

}  // namespace envnws::env
