#include "env/probe_wire.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "common/parse.hpp"
#include "common/strings.hpp"

namespace envnws::env::wire {

namespace {

using Clock = std::chrono::steady_clock;

Error protocol_error(std::string message) {
  return make_error(ErrorCode::protocol, std::move(message));
}

/// Seconds left before `deadline` (clamped at 0).
double remaining_s(Clock::time_point deadline) {
  const auto left = std::chrono::duration<double>(deadline - Clock::now()).count();
  return left > 0.0 ? left : 0.0;
}

Clock::time_point deadline_after(double timeout_s) {
  return Clock::now() + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(timeout_s > 0.0 ? timeout_s : 0.0));
}

/// poll() one fd for the given events within the deadline. Returns true
/// when ready, false on timeout, an error on poll failure.
Result<bool> wait_ready(int fd, short events, Clock::time_point deadline) {
  while (true) {
    const double left = remaining_s(deadline);
    struct pollfd pfd {};
    pfd.fd = fd;
    pfd.events = events;
    const int timeout_ms = static_cast<int>(left * 1000.0) + (left > 0.0 ? 1 : 0);
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready > 0) return true;
    if (ready == 0) return false;
    if (errno == EINTR) continue;
    return make_error(ErrorCode::internal, std::string("poll failed: ") + std::strerror(errno));
  }
}

Status set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return make_error(ErrorCode::internal,
                      std::string("cannot set socket non-blocking: ") + std::strerror(errno));
  }
  return {};
}

Result<struct sockaddr_in> make_address(const std::string& ipv4, std::uint16_t port) {
  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, ipv4.c_str(), &addr.sin_addr) != 1) {
    return make_error(ErrorCode::invalid_argument, "bad IPv4 address '" + ipv4 + "'");
  }
  return addr;
}

bool needs_escape(unsigned char c) {
  return c <= 0x20 || c == 0x7f || c == '%' || c == '=' || c == ',' || c == ':';
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

// --- frames -----------------------------------------------------------------

std::string encode_frame(const std::string& payload) {
  std::string frame;
  frame.reserve(kMagic.size() + 12 + payload.size());
  frame += kMagic;
  frame += std::to_string(payload.size());
  frame += '\n';
  frame += payload;
  return frame;
}

void FrameBuffer::feed(const char* data, std::size_t size) {
  buffer_.append(data, size);
}

Result<std::optional<std::string>> FrameBuffer::next() {
  if (poisoned_.has_value()) return *poisoned_;
  const auto poison = [this](Error error) -> Result<std::optional<std::string>> {
    poisoned_ = std::move(error);
    return *poisoned_;
  };
  // Magic check on whatever prefix has arrived: diverging early beats
  // buffering a hostile stream while waiting for a newline.
  const std::size_t check = std::min(buffer_.size(), kMagic.size());
  if (std::string_view(buffer_).substr(0, check) != kMagic.substr(0, check)) {
    return poison(protocol_error("bad frame magic (expected 'ENVP ')"));
  }
  const auto newline = buffer_.find('\n');
  if (newline == std::string::npos) {
    if (buffer_.size() >= kMaxFrameHeader) {
      return poison(protocol_error("unterminated frame header"));
    }
    return std::optional<std::string>();  // need more bytes
  }
  if (newline >= kMaxFrameHeader) {
    return poison(protocol_error("oversized frame header"));
  }
  const std::string length_token = buffer_.substr(kMagic.size(), newline - kMagic.size());
  const auto length = parse::to_u64(length_token);
  if (!length.has_value()) {
    return poison(protocol_error("bad frame length '" + length_token + "'"));
  }
  if (*length > kMaxFramePayload) {
    return poison(protocol_error("oversized frame payload (" + length_token + " bytes, max " +
                                 std::to_string(kMaxFramePayload) + ")"));
  }
  const std::size_t total = newline + 1 + static_cast<std::size_t>(*length);
  if (buffer_.size() < total) return std::optional<std::string>();  // need more bytes
  std::string payload = buffer_.substr(newline + 1, static_cast<std::size_t>(*length));
  buffer_.erase(0, total);
  return std::optional<std::string>(std::move(payload));
}

std::string FrameBuffer::take_raw(std::size_t max) {
  const std::size_t take = std::min(max, buffer_.size());
  std::string out = buffer_.substr(0, take);
  buffer_.erase(0, take);
  return out;
}

// --- messages ---------------------------------------------------------------

std::string escape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const unsigned char c : value) {
    if (needs_escape(c)) {
      char buffer[4];
      std::snprintf(buffer, sizeof(buffer), "%%%02X", c);
      out += buffer;
    } else {
      out += static_cast<char>(c);
    }
  }
  return out;
}

Result<std::string> unescape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (std::size_t i = 0; i < value.size(); ++i) {
    if (value[i] != '%') {
      out += value[i];
      continue;
    }
    if (i + 2 >= value.size()) {
      return protocol_error("truncated %-escape in '" + value + "'");
    }
    const int hi = hex_digit(value[i + 1]);
    const int lo = hex_digit(value[i + 2]);
    if (hi < 0 || lo < 0) {
      return protocol_error("bad %-escape in '" + value + "'");
    }
    out += static_cast<char>(hi * 16 + lo);
    i += 2;
  }
  return out;
}

WireMessage& WireMessage::add(const std::string& key, const std::string& value) {
  fields.emplace_back(key, value);
  return *this;
}

WireMessage& WireMessage::add_u64(const std::string& key, std::uint64_t value) {
  return add(key, std::to_string(value));
}

WireMessage& WireMessage::add_f64(const std::string& key, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return add(key, buffer);
}

bool WireMessage::has(const std::string& key) const {
  for (const auto& [k, v] : fields) {
    if (k == key) return true;
  }
  return false;
}

std::string WireMessage::get(const std::string& key, const std::string& fallback) const {
  for (const auto& [k, v] : fields) {
    if (k == key) return v;
  }
  return fallback;
}

Result<double> WireMessage::f64(const std::string& key) const {
  if (!has(key)) return protocol_error(type + " frame carries no '" + key + "' field");
  const std::string text = get(key);
  if (const auto value = parse::to_double(text); value.has_value()) return *value;
  return protocol_error("bad numeric field " + key + "='" + text + "' in " + type + " frame");
}

Result<std::uint64_t> WireMessage::u64(const std::string& key) const {
  if (!has(key)) return protocol_error(type + " frame carries no '" + key + "' field");
  const std::string text = get(key);
  if (const auto value = parse::to_u64(text); value.has_value()) return *value;
  return protocol_error("bad numeric field " + key + "='" + text + "' in " + type + " frame");
}

std::string WireMessage::serialize() const {
  std::string out = type;
  for (const auto& [key, value] : fields) {
    out += ' ';
    out += key;
    out += '=';
    out += escape(value);
  }
  return out;
}

Result<WireMessage> WireMessage::parse(const std::string& payload) {
  if (payload.empty()) return protocol_error("empty frame payload");
  const auto tokens = strings::split(payload, ' ');
  WireMessage message;
  message.type = tokens.front();
  if (message.type.empty()) return protocol_error("frame payload starts with a separator");
  for (const char c : message.type) {
    const bool ok = (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '-';
    if (!ok) return protocol_error("bad frame type '" + message.type + "'");
  }
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    const auto eq = token.find('=');
    if (token.empty() || eq == std::string::npos || eq == 0) {
      return protocol_error("bad field token '" + token + "' in " + message.type + " frame");
    }
    auto value = unescape(token.substr(eq + 1));
    if (!value.ok()) return value.error();
    message.fields.emplace_back(token.substr(0, eq), std::move(value.value()));
  }
  return message;
}

std::string error_payload(const Error& error) {
  return WireMessage("ERR")
      .add("code", envnws::to_string(error.code))
      .add("msg", error.message)
      .serialize();
}

bool is_error(const WireMessage& message, Error& error) {
  if (message.type != "ERR") return false;
  const auto code = error_code_from_string(message.get("code"));
  error.code = code.value_or(ErrorCode::protocol);
  error.message = message.get("msg", "unspecified agent error");
  return true;
}

Result<WireMessage> expect_reply(Result<WireMessage> reply, std::string_view expected_type,
                                 std::string_view context) {
  if (!reply.ok()) return reply;
  Error carried;
  if (is_error(reply.value(), carried)) return carried;
  if (reply.value().type != expected_type) {
    return make_error(ErrorCode::protocol, "unexpected reply '" + reply.value().type + "' to " +
                                               std::string(context));
  }
  return reply;
}

// --- roster -----------------------------------------------------------------

Result<AgentRoster> AgentRoster::parse(const std::string& text, std::string source) {
  AgentRoster roster;
  roster.source = std::move(source);
  std::set<std::string> seen;
  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  const auto fail = [&](const std::string& what) {
    return make_error(ErrorCode::invalid_argument,
                      roster.source + ":" + std::to_string(line_number) + ": " + what);
  };
  while (std::getline(in, line)) {
    ++line_number;
    if (const auto hash = line.find('#'); hash != std::string::npos) line.erase(hash);
    const auto tokens = strings::split_nonempty(strings::trim(line), ' ');
    std::vector<std::string> flat;
    for (const auto& token : tokens) {
      // Tolerate tab-separated rosters too.
      for (const auto& piece : strings::split_nonempty(token, '\t')) flat.push_back(piece);
    }
    if (flat.empty()) continue;
    if (flat.size() == 1) return Result<AgentRoster>(fail("missing address (expected '<host> <ipv4>:<port>')"));
    if (flat.size() > 2) return Result<AgentRoster>(fail("trailing tokens after '<host> <ipv4>:<port>'"));
    AgentEndpoint endpoint;
    endpoint.host = flat[0];
    const std::string& location = flat[1];
    const auto colon = location.rfind(':');
    if (colon == std::string::npos) {
      return Result<AgentRoster>(fail("missing port in '" + location + "'"));
    }
    endpoint.address = location.substr(0, colon);
    const std::string port_token = location.substr(colon + 1);
    struct in_addr parsed_addr {};
    if (endpoint.address.empty() ||
        ::inet_pton(AF_INET, endpoint.address.c_str(), &parsed_addr) != 1) {
      return Result<AgentRoster>(fail("bad address '" + endpoint.address +
                                      "' (numeric IPv4 required)"));
    }
    const auto port = parse::to_u64(port_token);
    if (!port.has_value() || *port == 0 || *port > 65535) {
      return Result<AgentRoster>(fail("bad port '" + port_token + "' (expected 1..65535)"));
    }
    endpoint.port = static_cast<std::uint16_t>(*port);
    if (!seen.insert(endpoint.host).second) {
      return Result<AgentRoster>(fail("duplicate host '" + endpoint.host + "'"));
    }
    roster.agents.push_back(std::move(endpoint));
  }
  return roster;
}

Result<AgentRoster> AgentRoster::load(const std::string& path) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec) {
    return make_error(ErrorCode::not_found, "no agent roster at '" + path + "'");
  }
  std::ifstream in(path);
  std::ostringstream text;
  text << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return make_error(ErrorCode::internal, "cannot read agent roster '" + path + "'");
  }
  return parse(text.str(), path);
}

const AgentEndpoint* AgentRoster::find(const std::string& host) const {
  for (const auto& agent : agents) {
    if (agent.host == host) return &agent;
  }
  return nullptr;
}

std::string AgentRoster::to_string() const {
  std::ostringstream out;
  for (const auto& agent : agents) {
    out << agent.host << ' ' << agent.address << ':' << agent.port << '\n';
  }
  return out.str();
}

// --- sockets ----------------------------------------------------------------

TcpSocket::TcpSocket(int fd) : fd_(fd) {}

TcpSocket::TcpSocket(TcpSocket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

TcpSocket& TcpSocket::operator=(TcpSocket&& other) noexcept {
  if (this != &other) {
    close_fd();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

TcpSocket::~TcpSocket() { close_fd(); }

void TcpSocket::close_fd() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void TcpSocket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Result<TcpSocket> TcpSocket::dial(const std::string& ipv4, std::uint16_t port,
                                  double timeout_s) {
  const auto addr = make_address(ipv4, port);
  if (!addr.ok()) return addr.error();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return make_error(ErrorCode::internal,
                      std::string("cannot create socket: ") + std::strerror(errno));
  }
  TcpSocket socket(fd);
  if (auto status = set_nonblocking(fd); !status.ok()) return status.error();
  const int nodelay = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
  const auto deadline = deadline_after(timeout_s);
  struct sockaddr_in address = addr.value();
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&address), sizeof(address)) == 0) {
    return socket;
  }
  if (errno != EINPROGRESS) {
    return make_error(ErrorCode::unreachable, "connect to " + ipv4 + ":" +
                                                  std::to_string(port) + " failed: " +
                                                  std::strerror(errno));
  }
  auto ready = wait_ready(fd, POLLOUT, deadline);
  if (!ready.ok()) return ready.error();
  if (!ready.value()) {
    return make_error(ErrorCode::timeout, "connect to " + ipv4 + ":" + std::to_string(port) +
                                              " timed out");
  }
  int error = 0;
  socklen_t length = sizeof(error);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &error, &length) != 0 || error != 0) {
    return make_error(ErrorCode::unreachable,
                      "connect to " + ipv4 + ":" + std::to_string(port) +
                          " failed: " + std::strerror(error != 0 ? error : errno));
  }
  return socket;
}

Status TcpSocket::send_all(std::string_view data, double timeout_s) {
  if (fd_ < 0) return make_error(ErrorCode::internal, "send on closed socket");
  const auto deadline = deadline_after(timeout_s);
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t wrote =
        ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (wrote > 0) {
      sent += static_cast<std::size_t>(wrote);
      continue;
    }
    if (wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      auto ready = wait_ready(fd_, POLLOUT, deadline);
      if (!ready.ok()) return ready.error();
      if (!ready.value()) return make_error(ErrorCode::timeout, "send timed out");
      continue;
    }
    if (wrote < 0 && errno == EINTR) continue;
    return make_error(ErrorCode::unreachable,
                      std::string("send failed: ") + std::strerror(errno));
  }
  return {};
}

Result<std::size_t> TcpSocket::recv_some(char* out, std::size_t cap, double timeout_s) {
  if (fd_ < 0) return make_error(ErrorCode::internal, "recv on closed socket");
  const auto deadline = deadline_after(timeout_s);
  while (true) {
    const ssize_t got = ::recv(fd_, out, cap, 0);
    if (got > 0) return static_cast<std::size_t>(got);
    if (got == 0) return make_error(ErrorCode::unreachable, "connection closed by peer");
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      auto ready = wait_ready(fd_, POLLIN, deadline);
      if (!ready.ok()) return ready.error();
      if (!ready.value()) return make_error(ErrorCode::timeout, "recv timed out");
      continue;
    }
    if (errno == EINTR) continue;
    return make_error(ErrorCode::unreachable,
                      std::string("recv failed: ") + std::strerror(errno));
  }
}

Status TcpSocket::recv_exact(char* out, std::size_t size, double timeout_s) {
  const auto deadline = deadline_after(timeout_s);
  std::size_t received = 0;
  while (received < size) {
    auto got = recv_some(out + received, size - received, remaining_s(deadline));
    if (!got.ok()) return got.error();
    received += got.value();
  }
  return {};
}

TcpListener::TcpListener(TcpListener&& other) noexcept : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    close_fd();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

TcpListener::~TcpListener() { close_fd(); }

void TcpListener::close_fd() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<TcpListener> TcpListener::listen(const std::string& ipv4, std::uint16_t port) {
  const auto addr = make_address(ipv4, port);
  if (!addr.ok()) return addr.error();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return make_error(ErrorCode::internal,
                      std::string("cannot create socket: ") + std::strerror(errno));
  }
  TcpListener listener;
  listener.fd_ = fd;
  const int reuse = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  if (auto status = set_nonblocking(fd); !status.ok()) return status.error();
  struct sockaddr_in address = addr.value();
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&address), sizeof(address)) != 0) {
    return make_error(ErrorCode::internal, "cannot bind " + ipv4 + ":" + std::to_string(port) +
                                               ": " + std::strerror(errno));
  }
  if (::listen(fd, 64) != 0) {
    return make_error(ErrorCode::internal,
                      std::string("cannot listen: ") + std::strerror(errno));
  }
  struct sockaddr_in bound {};
  socklen_t length = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound), &length) != 0) {
    return make_error(ErrorCode::internal,
                      std::string("cannot read bound port: ") + std::strerror(errno));
  }
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

Result<TcpSocket> TcpListener::accept(double timeout_s) {
  if (fd_ < 0) return make_error(ErrorCode::internal, "accept on closed listener");
  const auto deadline = deadline_after(timeout_s);
  while (true) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      TcpSocket socket(fd);
      if (auto status = set_nonblocking(fd); !status.ok()) return status.error();
      const int nodelay = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
      return socket;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      auto ready = wait_ready(fd_, POLLIN, deadline);
      if (!ready.ok()) return ready.error();
      if (!ready.value()) return make_error(ErrorCode::timeout, "accept timed out");
      continue;
    }
    if (errno == EINTR) continue;
    return make_error(ErrorCode::internal,
                      std::string("accept failed: ") + std::strerror(errno));
  }
}

Status send_frame(TcpSocket& socket, const std::string& payload, double timeout_s) {
  return socket.send_all(encode_frame(payload), timeout_s);
}

Result<std::string> recv_frame(TcpSocket& socket, FrameBuffer& buffer, double timeout_s) {
  const auto deadline = deadline_after(timeout_s);
  while (true) {
    auto decoded = buffer.next();
    if (!decoded.ok()) return decoded.error();
    if (decoded.value().has_value()) return *decoded.value();
    char chunk[4096];
    auto got = socket.recv_some(chunk, sizeof(chunk), remaining_s(deadline));
    if (!got.ok()) return got.error();
    buffer.feed(chunk, got.value());
  }
}

Result<WireMessage> recv_message(TcpSocket& socket, FrameBuffer& buffer, double timeout_s) {
  auto payload = recv_frame(socket, buffer, timeout_s);
  if (!payload.ok()) return payload.error();
  return WireMessage::parse(payload.value());
}

}  // namespace envnws::env::wire
