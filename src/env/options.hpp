// Tunables of the ENV mapping methodology.
//
// The default values are the paper's experimentally-determined thresholds
// (§4.2.2). They are deliberately injectable: the threshold-ablation bench
// sweeps them to show where the paper's choices sit relative to the
// correct-classification plateau, and §4.3 warns they "may be specific to
// platform characteristics like the media type".
#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"

namespace envnws::testing {
class VirtualScheduler;
}  // namespace envnws::testing

namespace envnws::env {

struct MapperOptions {
  /// §4.2.2.1 — split a cluster when two hosts' bandwidths to the master
  /// differ by more than this factor.
  double bw_split_ratio = 3.0;
  /// §4.2.2.2 — A is independent of B when
  /// Bandwidth(MA) / Bandwidth_paired(MA) stays below this.
  double pairwise_independence_ratio = 1.25;
  /// §4.2.2.4 — average jammed/base ratio below this means shared...
  double jam_shared_max = 0.7;
  /// ...above this means switched; in between the data is inconclusive
  /// and ENV stops gathering for the cluster.
  double jam_switched_min = 0.9;
  /// §4.2.2.4 — "this measure is repeated 5 times".
  int jam_repetitions = 5;

  /// Payload of each bandwidth probe.
  std::int64_t probe_bytes = units::mib(1);
  /// Settle time after each experiment (the reason the paper budgets
  /// half a minute per experiment for the naive approach).
  double stabilization_gap_s = 2.0;
  /// Number of trailing DNS labels that constitute a SITE domain
  /// ("moby.cri2000.ens-lyon.fr" -> "ens-lyon.fr" with the default 2).
  int site_domain_labels = 2;
  /// Accounting tag attached to every probe flow.
  std::string purpose = "env-probe";

  // --- extension: bidirectional probing (paper §4.3 lists asymmetric
  // route detection as undone future work: "Since ENV bandwidth tests
  // are conducted in only one way, the system cannot detect such
  // problems. Solving this ... is still to do.") ---
  /// Also measure host->master bandwidth in phase 2a (doubles the
  /// host-bandwidth experiment count) and record the reverse medians.
  bool bidirectional_probes = false;
  /// Flag a network as route-asymmetric when forward and reverse base
  /// bandwidths differ by at least this factor.
  double asymmetry_ratio = 1.5;

  // --- extension: concurrent zone mapping (paper §4.2: each zone is an
  // independent ENV run; §4.3 merges the per-zone views only at the end,
  // so the runs can execute at the same time — one ENV instance per
  // firewall side instead of one after the other) ---
  /// Number of zones probed concurrently. Requires a per-zone engine
  /// (Mapper's zone-engine-factory constructor); ignored — mapping stays
  /// sequential — when the Mapper wraps a single shared ProbeEngine.
  /// Does not affect the mapping result, only how long it takes: the
  /// merged view is bit-identical for any thread count.
  int map_threads = 1;

  // --- extension: batched within-zone probe schedule (the experiments
  // of phases 2a-2c are issued through ProbeEngine::run_batch; disjoint
  // member pairs of one segment may overlap — see env/batch_schedule.hpp
  // and docs/ARCHITECTURE.md) ---
  /// Concurrent probe slots the batch schedule may use inside one zone.
  /// 1 = the paper's strictly sequential schedule. Like map_threads this
  /// never changes WHAT is measured — the experiment stream, the
  /// MapResult and its identity_digest() are bit-identical for any
  /// value — only the modeled schedule makespan (MapResult::batch)
  /// and, for batch-capable engines, the real wall-clock.
  int probe_jobs = 1;

  // --- extension: hierarchical sampled interrogation (the O(n²) wall:
  // phase 2b runs one experiment per member pair and 2c one per internal
  // pair, so a 10,000-host segment would need ~5x10^7 experiments; the
  // paper stops at tens of hosts for exactly this reason) ---
  /// Per-group / per-cluster pairwise experiment budget. 0 (the default)
  /// is the paper's full interrogation — bit-identical experiment
  /// stream and digest to every committed golden trace. When > 0, any
  /// phase-2b group (or 2c cluster) whose full pairwise count exceeds
  /// the budget switches to the sampled pipeline: members are bucketed
  /// by their phase-2a bandwidth signature (already measured — no extra
  /// probes), the full pairwise protocol runs only between per-bucket
  /// representatives, the remaining members inherit their nearest
  /// representative's placement transitively, and only members whose
  /// signature sits too far from every representative of their bucket
  /// escalate to one direct probe each. Experiment counts then grow
  /// ~O(n + k²) per segment instead of O(n²).
  int max_pairwise = 0;
  /// Seed of the deterministic representative / internal-pair sampling.
  /// Same zone + same seed ⇒ same representatives, same experiment
  /// stream, same identity_digest() — the sampled-mode stability
  /// contract tests and the map cache key on.
  std::uint64_t sample_seed = 1;
  /// Confidence threshold of the transitive inference: a member's
  /// placement is trusted when its 2a bandwidth is within this factor
  /// of its assigned representative's; signature buckets span at most
  /// the square of it. Members beyond the factor escalate to a direct
  /// pairwise probe against the representative.
  double sample_confidence_ratio = 1.25;

  // --- extension: deterministic schedule exploration (src/testing/) ---
  /// When set, every concurrency decision the mapper would leave to the
  /// OS — which zone's task a pool worker runs next, which experiment of
  /// a batch dispatches or completes first — is asked of this scheduler
  /// instead, so a test can replay or enumerate interleavings. The
  /// scheduler must outlive the mapping run. Null (the default) means
  /// real threads and real dispatch; production code never sets this.
  testing::VirtualScheduler* virtual_scheduler = nullptr;
};

}  // namespace envnws::env
