#include "env/fault_probe_engine.hpp"

#include <sstream>

#include "common/parse.hpp"
#include "common/strings.hpp"

namespace envnws::env {

namespace {

const char* kind_name(FaultRule::Kind kind) {
  switch (kind) {
    case FaultRule::Kind::lookup: return "lookup";
    case FaultRule::Kind::traceroute: return "trace";
    case FaultRule::Kind::bandwidth: return "bw";
    case FaultRule::Kind::concurrent: return "cbw";
    case FaultRule::Kind::any: return "any";
  }
  return "unknown";
}

Result<FaultRule::Kind> kind_from_string(const std::string& text) {
  for (const FaultRule::Kind kind :
       {FaultRule::Kind::lookup, FaultRule::Kind::traceroute, FaultRule::Kind::bandwidth,
        FaultRule::Kind::concurrent, FaultRule::Kind::any}) {
    if (text == kind_name(kind)) return kind;
  }
  return make_error(ErrorCode::invalid_argument,
                    "unknown fault kind '" + text + "' (expected lookup/trace/bw/cbw/any)");
}

Result<std::uint64_t> parse_count(const std::string& text, const std::string& rule) {
  // parse::to_u64 rejects non-numeric, negative (stoull would silently
  // wrap "-1" to 2^64-1) and out-of-range counts alike — all of them
  // must surface as a parse error, never select a nonsense experiment
  // or throw out of FaultSpec::parse.
  if (const auto value = parse::to_u64(text); value.has_value()) return *value;
  return make_error(ErrorCode::invalid_argument,
                    "bad selector count in fault rule '" + rule + "'");
}

}  // namespace

std::string FaultRule::to_string() const {
  std::ostringstream out;
  out << kind_name(kind);
  switch (select) {
    case Select::index: out << '#' << n; break;
    case Select::every: out << '%' << n; break;
    case Select::all: out << '*'; break;
  }
  out << '=';
  if (action == Action::fail) {
    out << "fail:" << envnws::to_string(fail_code);
  } else {
    out << "scale:" << factor;
  }
  return out.str();
}

bool FaultRule::selects(std::uint64_t count) const {
  switch (select) {
    case Select::index: return count == n;
    case Select::every: return n > 0 && (count + 1) % n == 0;
    case Select::all: return true;
  }
  return false;
}

Result<FaultSpec> FaultSpec::parse(const std::string& text) {
  FaultSpec spec;
  const std::string trimmed = strings::trim(text);
  if (trimmed.empty()) return spec;
  for (const auto& piece : strings::split(trimmed, ',')) {
    const std::string rule_text = strings::trim(piece);
    const auto eq = rule_text.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= rule_text.size()) {
      return make_error(ErrorCode::invalid_argument,
                        "fault rule '" + rule_text + "' is not <kind><selector>=<action>");
    }
    const std::string head = rule_text.substr(0, eq);
    const std::string action_text = rule_text.substr(eq + 1);

    FaultRule rule;
    const auto selector_at = head.find_first_of("#%*");
    if (selector_at == std::string::npos) {
      return make_error(ErrorCode::invalid_argument,
                        "fault rule '" + rule_text + "' has no selector (#N, %N or *)");
    }
    auto kind = kind_from_string(head.substr(0, selector_at));
    if (!kind.ok()) return kind.error();
    rule.kind = kind.value();
    if (head[selector_at] == '*') {
      if (selector_at + 1 != head.size()) {
        return make_error(ErrorCode::invalid_argument,
                          "trailing characters after '*' in fault rule '" + rule_text + "'");
      }
      rule.select = FaultRule::Select::all;
    } else {
      rule.select = head[selector_at] == '#' ? FaultRule::Select::index : FaultRule::Select::every;
      auto count = parse_count(head.substr(selector_at + 1), rule_text);
      if (!count.ok()) return count.error();
      rule.n = count.value();
      if (rule.select == FaultRule::Select::every && rule.n == 0) {
        return make_error(ErrorCode::invalid_argument,
                          "fault rule '" + rule_text + "': period must be >= 1");
      }
    }

    if (action_text == "fail" || action_text.rfind("fail:", 0) == 0) {
      rule.action = FaultRule::Action::fail;
      if (action_text.size() > 5) {
        const auto code = error_code_from_string(action_text.substr(5));
        if (!code.has_value()) {
          return make_error(ErrorCode::invalid_argument,
                            "unknown error code in fault rule '" + rule_text + "'");
        }
        rule.fail_code = *code;
      }
    } else if (action_text.rfind("scale:", 0) == 0) {
      rule.action = FaultRule::Action::scale;
      if (rule.kind != FaultRule::Kind::bandwidth && rule.kind != FaultRule::Kind::concurrent) {
        return make_error(ErrorCode::invalid_argument,
                          "fault rule '" + rule_text + "': scale applies to bw/cbw only");
      }
      const auto factor = parse::to_double(action_text.substr(6));
      if (!factor.has_value() || *factor < 0.0) {
        return make_error(ErrorCode::invalid_argument,
                          "bad scale factor in fault rule '" + rule_text + "'");
      }
      rule.factor = *factor;
    } else {
      return make_error(ErrorCode::invalid_argument,
                        "unknown action '" + action_text + "' in fault rule '" + rule_text +
                            "' (expected fail[:<code>] or scale:<factor>)");
    }
    spec.rules.push_back(rule);
  }
  return spec;
}

std::string FaultSpec::to_string() const {
  std::vector<std::string> pieces;
  pieces.reserve(rules.size());
  for (const auto& rule : rules) pieces.push_back(rule.to_string());
  return strings::join(pieces, ",");
}

FaultInjectingProbeEngine::FaultInjectingProbeEngine(std::unique_ptr<ProbeEngine> inner,
                                                     FaultSpec spec)
    : inner_(std::move(inner)), spec_(std::move(spec)) {}

const FaultRule* FaultInjectingProbeEngine::match(FaultRule::Kind kind) {
  const std::uint64_t global = count_global_++;
  const std::uint64_t per_kind = count_kind_[static_cast<int>(kind)]++;
  for (const auto& rule : spec_.rules) {
    if (rule.kind == FaultRule::Kind::any) {
      if (rule.selects(global)) return &rule;
    } else if (rule.kind == kind && rule.selects(per_kind)) {
      return &rule;
    }
  }
  return nullptr;
}

Error FaultInjectingProbeEngine::injected_error(const FaultRule& rule,
                                                const std::string& summary) const {
  return make_error(rule.fail_code, "injected fault (" + rule.to_string() + "): " + summary);
}

Result<HostIdentity> FaultInjectingProbeEngine::lookup(const std::string& hostname) {
  if (const FaultRule* rule = match(FaultRule::Kind::lookup);
      rule != nullptr && rule->action == FaultRule::Action::fail) {
    ++injected_;
    return injected_error(*rule, "lookup " + hostname);
  }
  return inner_->lookup(hostname);
}

Result<std::vector<TraceHop>> FaultInjectingProbeEngine::traceroute(const std::string& from,
                                                                    const std::string& target) {
  if (const FaultRule* rule = match(FaultRule::Kind::traceroute);
      rule != nullptr && rule->action == FaultRule::Action::fail) {
    ++injected_;
    return injected_error(*rule, "traceroute " + from + " -> " + target);
  }
  return inner_->traceroute(from, target);
}

Result<double> FaultInjectingProbeEngine::bandwidth(const std::string& from,
                                                    const std::string& to) {
  const FaultRule* rule = match(FaultRule::Kind::bandwidth);
  if (rule != nullptr && rule->action == FaultRule::Action::fail) {
    ++injected_;
    return injected_error(*rule, "bandwidth " + from + " -> " + to);
  }
  auto result = inner_->bandwidth(from, to);
  if (rule != nullptr && result.ok()) {
    ++injected_;
    return result.value() * rule->factor;
  }
  return result;
}

std::vector<Result<double>> FaultInjectingProbeEngine::concurrent_bandwidth(
    const std::vector<BandwidthRequest>& requests) {
  const FaultRule* rule = match(FaultRule::Kind::concurrent);
  if (rule != nullptr && rule->action == FaultRule::Action::fail) {
    ++injected_;
    std::ostringstream summary;
    summary << "concurrent[" << requests.size() << ']';
    return std::vector<Result<double>>(requests.size(),
                                       Result<double>(injected_error(*rule, summary.str())));
  }
  auto results = inner_->concurrent_bandwidth(requests);
  if (rule != nullptr) {
    ++injected_;
    for (auto& result : results) {
      if (result.ok()) result = Result<double>(result.value() * rule->factor);
    }
  }
  return results;
}

std::vector<ProbeExperimentOutcome> FaultInjectingProbeEngine::run_batch(
    const std::vector<ProbeExperiment>& experiments, std::size_t /*workers*/) {
  // Canonical sequential loop (see header): counters are keyed on the
  // canonical experiment index.
  return ProbeEngine::run_batch(experiments, 1);
}

ProbeStats FaultInjectingProbeEngine::stats() const { return inner_->stats(); }

}  // namespace envnws::env
