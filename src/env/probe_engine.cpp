#include "env/probe_engine.hpp"

namespace envnws::env {

std::vector<ProbeExperimentOutcome> ProbeEngine::run_batch(
    const std::vector<ProbeExperiment>& experiments, std::size_t /*workers*/) {
  std::vector<ProbeExperimentOutcome> outcomes;
  outcomes.reserve(experiments.size());
  for (const auto& experiment : experiments) {
    const double before = stats().busy_time_s;
    ProbeExperimentOutcome outcome;
    if (experiment.transfers.empty()) {
      outcome.results.push_back(Result<double>(
          make_error(ErrorCode::invalid_argument, "batch experiment carries no transfers")));
    } else if (experiment.kind == ProbeExperiment::Kind::bandwidth) {
      outcome.results.push_back(
          bandwidth(experiment.transfers.front().from, experiment.transfers.front().to));
    } else {
      outcome.results = concurrent_bandwidth(experiment.transfers);
    }
    outcome.duration_s = stats().busy_time_s - before;
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

}  // namespace envnws::env
