#include "env/trace_probe_engine.hpp"

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "common/parse.hpp"
#include "common/strings.hpp"

namespace envnws::env {

namespace {

/// Full-precision double formatting: replayed bandwidths must be
/// bit-identical to the recorded ones (17 significant digits round-trip
/// IEEE doubles exactly).
std::string full(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

// Trace tokens are space-separated, so strings are percent-escaped:
// '%', whitespace, '|' (hop field separator) and '=' (property
// separator) encode as %XX. The empty string — legal for e.g. a failed
// reverse DNS fqdn — encodes as the otherwise-unproducible token "%e".
constexpr const char* kEmptyToken = "%e";

bool needs_escape(char c) {
  return c == '%' || c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '|' || c == '=';
}

std::string escape(const std::string& text) {
  if (text.empty()) return kEmptyToken;
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (needs_escape(c)) {
      char buffer[4];
      std::snprintf(buffer, sizeof(buffer), "%%%02X", static_cast<unsigned char>(c));
      out += buffer;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

Result<std::string> unescape(const std::string& token) {
  if (token == kEmptyToken) return std::string();
  std::string out;
  out.reserve(token.size());
  for (std::size_t i = 0; i < token.size(); ++i) {
    if (token[i] != '%') {
      out.push_back(token[i]);
      continue;
    }
    if (i + 2 >= token.size()) {
      return make_error(ErrorCode::protocol, "truncated %-escape in trace token '" + token + "'");
    }
    const auto hex = [](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'a' && c <= 'f') return c - 'a' + 10;
      if (c >= 'A' && c <= 'F') return c - 'A' + 10;
      return -1;
    };
    const int hi = hex(token[i + 1]);
    const int lo = hex(token[i + 2]);
    if (hi < 0 || lo < 0) {
      return make_error(ErrorCode::protocol, "bad %-escape in trace token '" + token + "'");
    }
    out.push_back(static_cast<char>(hi * 16 + lo));
    i += 2;
  }
  return out;
}

Result<double> parse_double(const std::string& text, const std::string& what) {
  if (const auto value = parse::to_double(text); value.has_value()) return *value;
  return make_error(ErrorCode::protocol, "bad " + what + " '" + text + "' in probe trace");
}

Result<std::uint64_t> parse_u64(const std::string& text, const std::string& what) {
  if (const auto value = parse::to_u64(text); value.has_value()) return *value;
  return make_error(ErrorCode::protocol, "bad " + what + " '" + text + "' in probe trace");
}

Result<std::int64_t> parse_i64(const std::string& text, const std::string& what) {
  if (const auto value = parse::to_i64(text); value.has_value()) return *value;
  return make_error(ErrorCode::protocol, "bad " + what + " '" + text + "' in probe trace");
}

/// "err <code> <message>" suffix shared by every record kind.
void write_error_tokens(std::ostringstream& out, const Error& error) {
  out << "err " << envnws::to_string(error.code) << ' ' << escape(error.message);
}

Status read_error_tokens(const std::vector<std::string>& tokens, std::size_t at, Error& out) {
  if (at + 1 >= tokens.size()) {
    return make_error(ErrorCode::protocol, "truncated error outcome in probe trace record");
  }
  const auto code = error_code_from_string(tokens[at]);
  if (!code.has_value()) {
    return make_error(ErrorCode::protocol, "unknown error code '" + tokens[at] + "' in probe trace");
  }
  auto message = unescape(tokens[at + 1]);
  if (!message.ok()) return message.error();
  out = Error{*code, std::move(message.value())};
  return {};
}

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> tokens;
  std::string token;
  while (in >> token) tokens.push_back(std::move(token));
  return tokens;
}

std::string serialize_record(const TraceRecord& record) {
  std::ostringstream out;
  switch (record.kind) {
    case TraceRecord::Kind::lookup: {
      const auto& entry = record.entries.front();
      out << "L " << escape(entry.from) << ' ';
      if (entry.ok) {
        out << "ok " << escape(entry.identity.fqdn) << ' ' << escape(entry.identity.ip);
        for (const auto& [key, value] : entry.identity.properties) {
          out << ' ' << escape(key) << '=' << escape(value);
        }
      } else {
        write_error_tokens(out, entry.error);
      }
      break;
    }
    case TraceRecord::Kind::traceroute: {
      const auto& entry = record.entries.front();
      out << "T " << escape(entry.from) << ' ' << escape(entry.to) << ' ';
      if (entry.ok) {
        out << "ok";
        for (const auto& hop : entry.hops) {
          out << ' ' << escape(hop.ip) << '|' << escape(hop.name) << '|' << (hop.responded ? 1 : 0);
        }
      } else {
        write_error_tokens(out, entry.error);
      }
      break;
    }
    case TraceRecord::Kind::bandwidth: {
      const auto& entry = record.entries.front();
      out << "B " << escape(entry.from) << ' ' << escape(entry.to) << ' ';
      if (entry.ok) {
        out << "ok " << full(entry.bandwidth_bps);
      } else {
        write_error_tokens(out, entry.error);
      }
      break;
    }
    case TraceRecord::Kind::concurrent: {
      out << "C " << record.entries.size();
      for (const auto& entry : record.entries) {
        out << ' ' << escape(entry.from) << ' ' << escape(entry.to) << ' ';
        if (entry.ok) {
          out << "ok " << full(entry.bandwidth_bps);
        } else {
          write_error_tokens(out, entry.error);
        }
      }
      break;
    }
  }
  out << "\nS " << record.stats_after.experiments << ' ' << record.stats_after.bytes_sent << ' '
      << full(record.stats_after.busy_time_s) << '\n';
  return out.str();
}

/// Parse one L/T/B/C line into a record (without its stats, which arrive
/// on the following S line).
Result<TraceRecord> parse_record_line(const std::vector<std::string>& tokens) {
  TraceRecord record;
  const std::string& tag = tokens.front();
  const auto entry_outcome = [&](TraceRecord::Entry& entry, std::size_t at,
                                 std::size_t* consumed) -> Status {
    if (at >= tokens.size()) {
      return make_error(ErrorCode::protocol, "truncated probe trace record");
    }
    if (tokens[at] == "err") {
      entry.ok = false;
      if (auto status = read_error_tokens(tokens, at + 1, entry.error); !status.ok()) {
        return status;
      }
      *consumed = 3;
      return {};
    }
    if (tokens[at] != "ok") {
      return make_error(ErrorCode::protocol,
                        "expected 'ok' or 'err' in probe trace record, got '" + tokens[at] + "'");
    }
    entry.ok = true;
    *consumed = 1;
    return {};
  };

  if (tag == "L") {
    record.kind = TraceRecord::Kind::lookup;
    if (tokens.size() < 3) return make_error(ErrorCode::protocol, "truncated lookup trace record");
    TraceRecord::Entry entry;
    auto from = unescape(tokens[1]);
    if (!from.ok()) return from.error();
    entry.from = std::move(from.value());
    std::size_t consumed = 0;
    if (auto status = entry_outcome(entry, 2, &consumed); !status.ok()) return status.error();
    if (entry.ok) {
      if (tokens.size() < 5) {
        return make_error(ErrorCode::protocol, "truncated lookup trace record");
      }
      auto fqdn = unescape(tokens[3]);
      auto ip = unescape(tokens[4]);
      if (!fqdn.ok()) return fqdn.error();
      if (!ip.ok()) return ip.error();
      entry.identity.fqdn = std::move(fqdn.value());
      entry.identity.ip = std::move(ip.value());
      for (std::size_t i = 5; i < tokens.size(); ++i) {
        const auto eq = tokens[i].find('=');
        if (eq == std::string::npos) {
          return make_error(ErrorCode::protocol,
                            "bad property token '" + tokens[i] + "' in lookup trace record");
        }
        auto key = unescape(tokens[i].substr(0, eq));
        auto value = unescape(tokens[i].substr(eq + 1));
        if (!key.ok()) return key.error();
        if (!value.ok()) return value.error();
        entry.identity.properties[key.value()] = value.value();
      }
    }
    record.entries.push_back(std::move(entry));
    return record;
  }
  if (tag == "T") {
    record.kind = TraceRecord::Kind::traceroute;
    if (tokens.size() < 4) {
      return make_error(ErrorCode::protocol, "truncated traceroute trace record");
    }
    TraceRecord::Entry entry;
    auto from = unescape(tokens[1]);
    auto to = unescape(tokens[2]);
    if (!from.ok()) return from.error();
    if (!to.ok()) return to.error();
    entry.from = std::move(from.value());
    entry.to = std::move(to.value());
    std::size_t consumed = 0;
    if (auto status = entry_outcome(entry, 3, &consumed); !status.ok()) return status.error();
    if (entry.ok) {
      for (std::size_t i = 4; i < tokens.size(); ++i) {
        const auto fields = strings::split(tokens[i], '|');
        if (fields.size() != 3 || (fields[2] != "0" && fields[2] != "1")) {
          return make_error(ErrorCode::protocol,
                            "bad hop token '" + tokens[i] + "' in traceroute trace record");
        }
        auto ip = unescape(fields[0]);
        auto name = unescape(fields[1]);
        if (!ip.ok()) return ip.error();
        if (!name.ok()) return name.error();
        entry.hops.push_back(TraceHop{std::move(ip.value()), std::move(name.value()),
                                      fields[2] == "1"});
      }
    }
    record.entries.push_back(std::move(entry));
    return record;
  }
  if (tag == "B") {
    record.kind = TraceRecord::Kind::bandwidth;
    if (tokens.size() < 4) {
      return make_error(ErrorCode::protocol, "truncated bandwidth trace record");
    }
    TraceRecord::Entry entry;
    auto from = unescape(tokens[1]);
    auto to = unescape(tokens[2]);
    if (!from.ok()) return from.error();
    if (!to.ok()) return to.error();
    entry.from = std::move(from.value());
    entry.to = std::move(to.value());
    std::size_t consumed = 0;
    if (auto status = entry_outcome(entry, 3, &consumed); !status.ok()) return status.error();
    if (entry.ok) {
      if (tokens.size() != 5) {
        return make_error(ErrorCode::protocol, "truncated bandwidth trace record");
      }
      auto bps = parse_double(tokens[4], "bandwidth");
      if (!bps.ok()) return bps.error();
      entry.bandwidth_bps = bps.value();
    }
    record.entries.push_back(std::move(entry));
    return record;
  }
  if (tag == "C") {
    record.kind = TraceRecord::Kind::concurrent;
    if (tokens.size() < 2) {
      return make_error(ErrorCode::protocol, "truncated concurrent trace record");
    }
    auto count = parse_u64(tokens[1], "batch size");
    if (!count.ok()) return count.error();
    std::size_t at = 2;
    for (std::uint64_t i = 0; i < count.value(); ++i) {
      if (at + 2 > tokens.size()) {
        return make_error(ErrorCode::protocol, "truncated concurrent trace record");
      }
      TraceRecord::Entry entry;
      auto from = unescape(tokens[at]);
      auto to = unescape(tokens[at + 1]);
      if (!from.ok()) return from.error();
      if (!to.ok()) return to.error();
      entry.from = std::move(from.value());
      entry.to = std::move(to.value());
      at += 2;
      if (at >= tokens.size()) {
        return make_error(ErrorCode::protocol, "truncated concurrent trace record");
      }
      if (tokens[at] == "ok") {
        if (at + 1 >= tokens.size()) {
          return make_error(ErrorCode::protocol, "truncated concurrent trace record");
        }
        auto bps = parse_double(tokens[at + 1], "bandwidth");
        if (!bps.ok()) return bps.error();
        entry.bandwidth_bps = bps.value();
        at += 2;
      } else if (tokens[at] == "err") {
        entry.ok = false;
        if (auto status = read_error_tokens(tokens, at + 1, entry.error); !status.ok()) {
          return status.error();
        }
        at += 3;
      } else {
        return make_error(ErrorCode::protocol,
                          "expected 'ok' or 'err' in concurrent trace record, got '" + tokens[at] +
                              "'");
      }
      record.entries.push_back(std::move(entry));
    }
    if (at != tokens.size()) {
      return make_error(ErrorCode::protocol, "trailing tokens in concurrent trace record");
    }
    return record;
  }
  return make_error(ErrorCode::protocol, "unknown probe trace record tag '" + tag + "'");
}

}  // namespace

const char* to_string(TraceRecord::Kind kind) {
  switch (kind) {
    case TraceRecord::Kind::lookup: return "lookup";
    case TraceRecord::Kind::traceroute: return "traceroute";
    case TraceRecord::Kind::bandwidth: return "bandwidth";
    case TraceRecord::Kind::concurrent: return "concurrent";
  }
  return "unknown";
}

std::string TraceRecord::describe() const {
  std::ostringstream out;
  out << env::to_string(kind);
  if (kind == Kind::concurrent) out << '[' << entries.size() << ']';
  for (std::size_t i = 0; i < entries.size(); ++i) {
    out << (i == 0 ? " " : ", ") << entries[i].from;
    if (kind != Kind::lookup) out << " -> " << entries[i].to;
  }
  return out.str();
}

std::string zone_trace_path(const std::string& path, std::size_t zone_index) {
  return path + ".zone" + std::to_string(zone_index);
}

Result<ProbeTrace> ProbeTrace::parse(const std::string& text, std::string source) {
  ProbeTrace trace;
  trace.source = std::move(source);
  std::optional<TraceRecord> pending;
  bool saw_header = false;
  for (const auto& raw_line : strings::split(text, '\n')) {
    const std::string line = strings::trim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    if (!saw_header) {
      if (line != "ENVTRACE " + std::to_string(kFormatVersion)) {
        return make_error(ErrorCode::protocol,
                          "'" + trace.source + "' is not a version-" +
                              std::to_string(kFormatVersion) + " ENVTRACE document");
      }
      saw_header = true;
      continue;
    }
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    if (tokens.front() == "S") {
      if (!pending.has_value()) {
        return make_error(ErrorCode::protocol,
                          "'" + trace.source + "': stats line without a preceding record");
      }
      if (tokens.size() != 4) {
        return make_error(ErrorCode::protocol, "'" + trace.source + "': malformed stats line");
      }
      auto experiments = parse_u64(tokens[1], "experiments");
      auto bytes = parse_i64(tokens[2], "bytes-sent");
      auto busy = parse_double(tokens[3], "busy-time");
      if (!experiments.ok()) return experiments.error();
      if (!bytes.ok()) return bytes.error();
      if (!busy.ok()) return busy.error();
      pending->stats_after =
          ProbeStats{experiments.value(), bytes.value(), busy.value()};
      trace.records.push_back(std::move(*pending));
      pending.reset();
      continue;
    }
    if (pending.has_value()) {
      return make_error(ErrorCode::protocol,
                        "'" + trace.source + "': record without a stats line (experiment " +
                            std::to_string(trace.records.size()) + ")");
    }
    auto record = parse_record_line(tokens);
    if (!record.ok()) {
      return make_error(record.error().code,
                        "'" + trace.source + "': " + record.error().message);
    }
    pending = std::move(record.value());
  }
  if (!saw_header) {
    return make_error(ErrorCode::protocol,
                      "'" + trace.source + "' is not a version-" + std::to_string(kFormatVersion) +
                          " ENVTRACE document");
  }
  if (pending.has_value()) {
    return make_error(ErrorCode::protocol,
                      "'" + trace.source + "': trace ends mid-record (experiment " +
                          std::to_string(trace.records.size()) + " has no stats line)");
  }
  return trace;
}

Result<ProbeTrace> ProbeTrace::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    // Only a genuinely absent file is not_found; an existing-but-
    // unreadable one (permissions) must not be mistaken for a miss.
    std::error_code ec;
    if (std::filesystem::exists(path, ec) && !ec) {
      return make_error(ErrorCode::internal, "cannot read probe trace '" + path + "'");
    }
    return make_error(ErrorCode::not_found, "no probe trace at '" + path + "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse(text.str(), path);
}

std::string ProbeTrace::to_string() const {
  std::ostringstream out;
  out << "ENVTRACE " << kFormatVersion << '\n';
  for (const auto& record : records) out << serialize_record(record);
  return out.str();
}

Status ProbeTrace::save(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return make_error(ErrorCode::internal, "cannot write probe trace '" + path + "'");
  }
  out << to_string();
  out.close();
  if (!out) {
    return make_error(ErrorCode::internal, "short write on probe trace '" + path + "'");
  }
  return {};
}

// --- RecordingProbeEngine ---------------------------------------------------

RecordingProbeEngine::RecordingProbeEngine(std::unique_ptr<ProbeEngine> inner)
    : inner_(std::move(inner)) {}

Result<std::unique_ptr<RecordingProbeEngine>> RecordingProbeEngine::open(
    std::unique_ptr<ProbeEngine> inner, const std::string& path) {
  auto engine = std::make_unique<RecordingProbeEngine>(std::move(inner));
  engine->trace_.source = path;
  engine->out_.emplace(path, std::ios::trunc);
  if (!*engine->out_) {
    return make_error(ErrorCode::internal, "cannot create probe trace '" + path + "'");
  }
  *engine->out_ << "ENVTRACE " << ProbeTrace::kFormatVersion << '\n';
  engine->out_->flush();
  return engine;
}

RecordingProbeEngine& RecordingProbeEngine::set_error_handler(
    std::function<void(const Error&)> handler) {
  on_error_ = std::move(handler);
  return *this;
}

void RecordingProbeEngine::append(TraceRecord record) {
  record.stats_after = inner_->stats();
  if (out_.has_value() && !write_error_.has_value()) {
    *out_ << serialize_record(record);
    out_->flush();
    if (!*out_) {
      write_error_ = make_error(ErrorCode::internal,
                                "short write on probe trace '" + trace_.source + "' (experiment " +
                                    std::to_string(trace_.records.size()) + ")");
      if (on_error_) on_error_(*write_error_);
    }
  }
  trace_.records.push_back(std::move(record));
}

Result<HostIdentity> RecordingProbeEngine::lookup(const std::string& hostname) {
  auto result = inner_->lookup(hostname);
  TraceRecord record;
  record.kind = TraceRecord::Kind::lookup;
  TraceRecord::Entry entry;
  entry.from = hostname;
  if (result.ok()) {
    entry.identity = result.value();
  } else {
    entry.ok = false;
    entry.error = result.error();
  }
  record.entries.push_back(std::move(entry));
  append(std::move(record));
  return result;
}

Result<std::vector<TraceHop>> RecordingProbeEngine::traceroute(const std::string& from,
                                                               const std::string& target) {
  auto result = inner_->traceroute(from, target);
  TraceRecord record;
  record.kind = TraceRecord::Kind::traceroute;
  TraceRecord::Entry entry;
  entry.from = from;
  entry.to = target;
  if (result.ok()) {
    entry.hops = result.value();
  } else {
    entry.ok = false;
    entry.error = result.error();
  }
  record.entries.push_back(std::move(entry));
  append(std::move(record));
  return result;
}

Result<double> RecordingProbeEngine::bandwidth(const std::string& from, const std::string& to) {
  auto result = inner_->bandwidth(from, to);
  TraceRecord record;
  record.kind = TraceRecord::Kind::bandwidth;
  TraceRecord::Entry entry;
  entry.from = from;
  entry.to = to;
  if (result.ok()) {
    entry.bandwidth_bps = result.value();
  } else {
    entry.ok = false;
    entry.error = result.error();
  }
  record.entries.push_back(std::move(entry));
  append(std::move(record));
  return result;
}

std::vector<Result<double>> RecordingProbeEngine::concurrent_bandwidth(
    const std::vector<BandwidthRequest>& requests) {
  auto results = inner_->concurrent_bandwidth(requests);
  TraceRecord record;
  record.kind = TraceRecord::Kind::concurrent;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    TraceRecord::Entry entry;
    entry.from = requests[i].from;
    entry.to = requests[i].to;
    if (i < results.size() && results[i].ok()) {
      entry.bandwidth_bps = results[i].value();
    } else if (i < results.size()) {
      entry.ok = false;
      entry.error = results[i].error();
    } else {
      // A misbehaving engine returned fewer results than requests:
      // record an error, never a fabricated successful 0-bps transfer.
      entry.ok = false;
      entry.error = make_error(ErrorCode::internal,
                               "engine returned no result for this concurrent request");
    }
    record.entries.push_back(std::move(entry));
  }
  append(std::move(record));
  return results;
}

std::vector<ProbeExperimentOutcome> RecordingProbeEngine::run_batch(
    const std::vector<ProbeExperiment>& experiments, std::size_t /*workers*/) {
  // Canonical sequential loop (see header): each experiment routes
  // through the recording bandwidth()/concurrent_bandwidth() overrides,
  // appending one record with exact per-experiment stats boundaries.
  return ProbeEngine::run_batch(experiments, 1);
}

ProbeStats RecordingProbeEngine::stats() const { return inner_->stats(); }

// --- TraceProbeEngine -------------------------------------------------------

TraceProbeEngine::TraceProbeEngine(ProbeTrace trace, Mode mode,
                                   std::unique_ptr<ProbeEngine> delegate)
    : trace_(std::move(trace)), mode_(mode), delegate_(std::move(delegate)) {}

TraceProbeEngine& TraceProbeEngine::set_violation_handler(
    std::function<void(const Error&)> handler) {
  on_violation_ = std::move(handler);
  return *this;
}

Error TraceProbeEngine::violate(Error error) {
  if (!violation_.has_value()) {
    violation_ = error;
    if (on_violation_) on_violation_(error);
  }
  return *violation_;  // sticky: every later experiment reports the first
}

const TraceRecord* TraceProbeEngine::match(TraceRecord::Kind kind, const std::string& summary,
                                           Error& mismatch) {
  if (mode_ == Mode::strict && violation_.has_value()) {
    mismatch = *violation_;
    return nullptr;
  }
  if (next_ >= trace_.records.size()) {
    mismatch = make_error(ErrorCode::protocol,
                          "probe trace '" + trace_.source + "' exhausted at experiment " +
                              std::to_string(next_) + ": " + summary +
                              " requested beyond the trace end");
    return nullptr;
  }
  const TraceRecord& record = trace_.records[next_];
  if (record.kind != kind) {
    mismatch = make_error(ErrorCode::protocol,
                          "probe trace '" + trace_.source + "' diverged at experiment " +
                              std::to_string(next_) + ": trace holds " + record.describe() +
                              ", caller requested " + summary);
    return nullptr;
  }
  return &record;
}

Result<HostIdentity> TraceProbeEngine::lookup(const std::string& hostname) {
  Error mismatch;
  const TraceRecord* record = match(TraceRecord::Kind::lookup, "lookup " + hostname, mismatch);
  if (record != nullptr && record->entries.front().from != hostname) {
    mismatch = make_error(ErrorCode::protocol,
                          "probe trace '" + trace_.source + "' diverged at experiment " +
                              std::to_string(next_) + ": trace holds " + record->describe() +
                              ", caller requested lookup " + hostname);
    record = nullptr;
  }
  if (record == nullptr) {
    if (mode_ == Mode::lenient && delegate_ != nullptr) return delegate_->lookup(hostname);
    if (mode_ == Mode::lenient) return mismatch;
    return violate(mismatch);
  }
  ++next_;
  replayed_stats_ = record->stats_after;
  const auto& entry = record->entries.front();
  if (!entry.ok) return entry.error;
  return entry.identity;
}

Result<std::vector<TraceHop>> TraceProbeEngine::traceroute(const std::string& from,
                                                           const std::string& target) {
  Error mismatch;
  const TraceRecord* record =
      match(TraceRecord::Kind::traceroute, "traceroute " + from + " -> " + target, mismatch);
  if (record != nullptr &&
      (record->entries.front().from != from || record->entries.front().to != target)) {
    mismatch = make_error(ErrorCode::protocol,
                          "probe trace '" + trace_.source + "' diverged at experiment " +
                              std::to_string(next_) + ": trace holds " + record->describe() +
                              ", caller requested traceroute " + from + " -> " + target);
    record = nullptr;
  }
  if (record == nullptr) {
    if (mode_ == Mode::lenient && delegate_ != nullptr) return delegate_->traceroute(from, target);
    if (mode_ == Mode::lenient) return mismatch;
    return violate(mismatch);
  }
  ++next_;
  replayed_stats_ = record->stats_after;
  const auto& entry = record->entries.front();
  if (!entry.ok) return entry.error;
  return entry.hops;
}

Result<double> TraceProbeEngine::bandwidth(const std::string& from, const std::string& to) {
  Error mismatch;
  const TraceRecord* record =
      match(TraceRecord::Kind::bandwidth, "bandwidth " + from + " -> " + to, mismatch);
  if (record != nullptr &&
      (record->entries.front().from != from || record->entries.front().to != to)) {
    mismatch = make_error(ErrorCode::protocol,
                          "probe trace '" + trace_.source + "' diverged at experiment " +
                              std::to_string(next_) + ": trace holds " + record->describe() +
                              ", caller requested bandwidth " + from + " -> " + to);
    record = nullptr;
  }
  if (record == nullptr) {
    if (mode_ == Mode::lenient && delegate_ != nullptr) return delegate_->bandwidth(from, to);
    if (mode_ == Mode::lenient) return mismatch;
    return violate(mismatch);
  }
  ++next_;
  replayed_stats_ = record->stats_after;
  const auto& entry = record->entries.front();
  if (!entry.ok) return entry.error;
  return entry.bandwidth_bps;
}

std::vector<Result<double>> TraceProbeEngine::concurrent_bandwidth(
    const std::vector<BandwidthRequest>& requests) {
  std::ostringstream summary;
  summary << "concurrent[" << requests.size() << ']';
  for (std::size_t i = 0; i < requests.size(); ++i) {
    summary << (i == 0 ? " " : ", ") << requests[i].from << " -> " << requests[i].to;
  }
  Error mismatch;
  const TraceRecord* record = match(TraceRecord::Kind::concurrent, summary.str(), mismatch);
  if (record != nullptr) {
    bool matches = record->entries.size() == requests.size();
    for (std::size_t i = 0; matches && i < requests.size(); ++i) {
      matches = record->entries[i].from == requests[i].from &&
                record->entries[i].to == requests[i].to;
    }
    if (!matches) {
      mismatch = make_error(ErrorCode::protocol,
                            "probe trace '" + trace_.source + "' diverged at experiment " +
                                std::to_string(next_) + ": trace holds " + record->describe() +
                                ", caller requested " + summary.str());
      record = nullptr;
    }
  }
  if (record == nullptr) {
    if (mode_ == Mode::lenient && delegate_ != nullptr) {
      return delegate_->concurrent_bandwidth(requests);
    }
    const Error error = mode_ == Mode::lenient ? mismatch : violate(mismatch);
    return std::vector<Result<double>>(requests.size(), Result<double>(error));
  }
  ++next_;
  replayed_stats_ = record->stats_after;
  std::vector<Result<double>> results;
  results.reserve(record->entries.size());
  for (const auto& entry : record->entries) {
    if (entry.ok) {
      results.push_back(entry.bandwidth_bps);
    } else {
      results.push_back(entry.error);
    }
  }
  return results;
}

std::vector<ProbeExperimentOutcome> TraceProbeEngine::run_batch(
    const std::vector<ProbeExperiment>& experiments, std::size_t /*workers*/) {
  // Canonical sequential loop (see header): every experiment must match
  // the next trace record, in order, exactly as it was recorded.
  return ProbeEngine::run_batch(experiments, 1);
}

ProbeStats TraceProbeEngine::stats() const {
  ProbeStats stats = replayed_stats_;
  if (delegate_ != nullptr) {
    // Lenient fallbacks probed live: fold the delegate's cost on top of
    // the replayed one (approximate by design; strict mode is exact).
    const ProbeStats live = delegate_->stats();
    stats.experiments += live.experiments;
    stats.bytes_sent += live.bytes_sent;
    stats.busy_time_s += live.busy_time_s;
  }
  return stats;
}

}  // namespace envnws::env
