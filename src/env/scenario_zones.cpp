#include "env/scenario_zones.hpp"

#include <algorithm>

namespace envnws::env {

using simnet::NodeId;

namespace {

/// Identity of `host` as seen from inside `zone`: the matching alias
/// fqdn for dual-homed gateways, else the primary fqdn.
std::string zone_local_name(const simnet::Node& host, const std::string& zone) {
  for (const auto& alias : host.aliases) {
    if (alias.zone == zone) return alias.fqdn;
  }
  return host.fqdn.empty() ? host.name : host.fqdn;
}

}  // namespace

Result<std::vector<ZoneSpec>> zones_from_scenario(const simnet::Scenario& scenario) {
  const simnet::Topology& topo = scenario.topology;
  const auto master_id = scenario.id(scenario.master);
  if (!master_id.ok()) return master_id.error();
  const simnet::Node& master_node = topo.node(master_id.value());

  // Zones ordered with the master's first (it becomes the primary zone).
  std::vector<std::string> zones = topo.zones();
  std::stable_sort(zones.begin(), zones.end(),
                   [&](const std::string& a, const std::string& b) {
                     const bool a_master = master_node.zones.count(a) > 0;
                     const bool b_master = master_node.zones.count(b) > 0;
                     return a_master > b_master;
                   });

  std::vector<ZoneSpec> specs;
  for (const auto& zone : zones) {
    ZoneSpec spec;
    spec.zone_name = zone;
    for (const NodeId host_id : topo.hosts_in_zone(zone)) {
      spec.hostnames.push_back(zone_local_name(topo.node(host_id), zone));
    }
    if (spec.hostnames.empty()) continue;

    if (master_node.zones.count(zone) > 0) {
      spec.master = zone_local_name(master_node, zone);
    } else {
      // Prefer a dual-homed gateway as the zone master: it is the pivot
      // the results will be merged around.
      spec.master = spec.hostnames.front();
      for (const NodeId host_id : topo.hosts_in_zone(zone)) {
        if (!topo.node(host_id).aliases.empty()) {
          spec.master = zone_local_name(topo.node(host_id), zone);
          break;
        }
      }
    }

    const auto target_it = scenario.zone_traceroute_target.find(zone);
    if (target_it != scenario.zone_traceroute_target.end()) {
      const auto target_id = scenario.id(target_it->second);
      if (!target_id.ok()) {
        return make_error(ErrorCode::not_found, "zone '" + zone + "' traceroute target: " +
                                                    target_id.error().message);
      }
      const simnet::Node& target = topo.node(target_id.value());
      spec.traceroute_target =
          target.is_host() ? zone_local_name(target, zone) : target.name;
    } else if (topo.edge_router().valid()) {
      spec.traceroute_target = topo.node(topo.edge_router()).name;
    } else {
      spec.traceroute_target = spec.master;
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::vector<gridml::AliasGroup> gateway_aliases_from_scenario(
    const simnet::Scenario& scenario) {
  std::vector<gridml::AliasGroup> groups;
  for (const simnet::Node& node : scenario.topology.nodes()) {
    if (!node.is_host() || node.aliases.empty()) continue;
    gridml::AliasGroup group;
    group.push_back(node.fqdn.empty() ? node.name : node.fqdn);
    for (const auto& alias : node.aliases) group.push_back(alias.fqdn);
    groups.push_back(std::move(group));
  }
  return groups;
}

}  // namespace envnws::env
