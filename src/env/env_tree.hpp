// The Effective Network View tree.
//
// The result of an ENV run is a tree of "ENV networks": LAN segments
// classified as shared (hub-like) or switched, annotated with the
// bandwidth observed from the master (ENV_base_BW) and between members
// (ENV_base_local_BW), nested under the structural nodes that remain
// relevant. This is the data the NWS deployment planner consumes.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "gridml/model.hpp"

namespace envnws::env {

enum class NetKind {
  structural,    ///< routing skeleton node (or a lone machine: no LAN inferred)
  shared,        ///< hub / bus: one collision domain (paper: ENV_Shared)
  switched,      ///< per-port independence (paper: ENV_Switched)
  inconclusive,  ///< jam ratio between the two thresholds: ENV gives up
};

[[nodiscard]] const char* to_string(NetKind kind);

struct EnvNetwork {
  NetKind kind = NetKind::structural;
  std::string label;     ///< hop name, cluster tag, ...
  std::string label_ip;  ///< hop address when known
  double base_bw_bps = 0.0;        ///< master -> members (median)
  double base_local_bw_bps = 0.0;  ///< member <-> member (median)
  /// members -> master (median); 0 unless bidirectional probing was on
  /// (the asymmetric-routes extension, see MapperOptions).
  double base_reverse_bw_bps = 0.0;
  /// Forward/reverse disagreement beyond the configured ratio.
  bool route_asymmetric = false;
  /// Member machines (canonical fqdn); includes the master when it sits
  /// on this segment.
  std::vector<std::string> machines;
  /// Machine through which this network hangs off its parent ("" if the
  /// attachment point is a pure router).
  std::string gateway;
  std::vector<EnvNetwork> children;

  [[nodiscard]] std::vector<std::string> all_machines() const;
  /// Deepest network whose direct member list contains `machine`.
  [[nodiscard]] const EnvNetwork* find_containing(const std::string& machine) const;
  /// All networks (this + descendants) that are LAN segments
  /// (kind is shared / switched / inconclusive).
  [[nodiscard]] std::vector<const EnvNetwork*> lan_segments() const;
  /// Every distinct gateway machine named anywhere in the tree (the
  /// dual-homed hosts stitching levels/zones together).
  [[nodiscard]] std::vector<std::string> gateways() const;

  [[nodiscard]] gridml::NetworkNode to_gridml() const;
  /// Rebuild a view from published GridML. Fails with `protocol` when a
  /// bandwidth property (ENV_base_BW & friends) is not a number — a
  /// malformed published document must surface as a Result error, never
  /// as an exception out of the public API.
  static Result<EnvNetwork> from_gridml(const gridml::NetworkNode& node);
};

/// Rewrite every machine / gateway name through `canon` (used after a
/// firewall merge so both zones speak about the same canonical machines).
void canonicalize(EnvNetwork& network,
                  const std::function<std::string(const std::string&)>& canon);

/// ASCII rendering in the style of paper Fig. 1(b).
[[nodiscard]] std::string render_effective(const EnvNetwork& root);

}  // namespace envnws::env
