// The ENV mapper: orchestrates the full methodology of paper §4.2.
//
// Per firewall zone ("we launched ENV on both sides of popc0"):
//   1a. lookup        — hostnames -> identities, SITE grouping (FQDN
//                       domain, falling back to IP class per §4.3)
//   1b. properties    — host inventory capture
//   1c. structural    — traceroute tree towards the zone target
//   2a. host bw       — master->host bandwidths; split clusters at x3
//   2b. pairwise bw   — concurrent master transfers; split independents
//   2c. internal bw   — member<->member bandwidth (ENV_base_local_BW)
//   2d. jammed bw     — 5-repetition jam ratio; shared / switched verdict
// Zone results are then merged through the gateway alias groups (§4.3).
//
// Zones are independent until that merge, so with a ZoneEngineFactory the
// per-zone runs execute concurrently (MapperOptions::map_threads workers)
// and only the merge — performed in spec order on the calling thread —
// is sequential. MapStats::duration_s then reports the makespan of the
// concurrent schedule instead of the sum of the zone durations.
//
// WITHIN a zone, phases 2a-2c issue their experiments through
// ProbeEngine::run_batch in canonical (sequential-schedule) order;
// MapperOptions::probe_jobs sets how many endpoint-disjoint experiments
// the batch schedule may overlap. This never changes what is measured —
// the experiment stream and the MapResult are bit-identical for any
// probe_jobs — it changes the modeled probe cost (BatchStats, credited
// only on segments whose phase-2d verdict is switched; see
// env/batch_schedule.hpp and docs/ARCHITECTURE.md).
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "env/env_tree.hpp"
#include "env/options.hpp"
#include "env/probe_engine.hpp"
#include "env/structural.hpp"
#include "gridml/merge.hpp"
#include "gridml/model.hpp"

namespace envnws::env {

/// One ENV run: the machines that can all talk to each other, the
/// viewpoint host, and the traceroute target ("a well known external
/// destination", or the gateway when mapping inside a firewall).
struct ZoneSpec {
  std::string zone_name;
  std::vector<std::string> hostnames;  ///< zone-local names, master included
  std::string master;
  std::string traceroute_target;
};

struct MapStats {
  std::uint64_t experiments = 0;
  std::int64_t bytes_sent = 0;
  /// Probe time. For a merged MapResult this is the wall-clock of the
  /// whole map stage: the sum of the zone durations when zones ran
  /// sequentially, the schedule makespan when they ran concurrently —
  /// which is why there is deliberately no operator+= here.
  double duration_s = 0.0;
};

/// Modeled cost of the batched within-zone probe schedule (phases 2a-2c
/// issued through ProbeEngine::run_batch, list-scheduled over
/// MapperOptions::probe_jobs slots — see env/batch_schedule.hpp).
/// Deliberately NOT part of identity_digest(): the digest captures what
/// was measured, and these numbers describe how the measuring could be
/// scheduled — they vary with probe_jobs by design while the MapResult
/// itself stays bit-identical.
struct BatchStats {
  /// run_batch calls issued (one per refine phase per segment).
  std::uint64_t batches = 0;
  /// Experiments issued through those calls.
  std::uint64_t batched_experiments = 0;
  /// Back-to-back cost of the batched experiments (their share of
  /// MapStats::duration_s).
  double sequential_s = 0.0;
  /// List-scheduled cost over probe_jobs slots. Savings are only
  /// credited on segments whose phase-2d verdict came out `switched`
  /// (a shared medium would have serialized the transfers anyway), so
  /// makespan_s == sequential_s wherever the evidence is missing.
  double makespan_s = 0.0;

  /// sequential_s - makespan_s, i.e. the probe time the batched
  /// schedule saves relative to the paper's sequential one.
  [[nodiscard]] double saved_s() const { return sequential_s - makespan_s; }

  BatchStats& operator+=(const BatchStats& other) {
    batches += other.batches;
    batched_experiments += other.batched_experiments;
    sequential_s += other.sequential_s;
    makespan_s += other.makespan_s;
    return *this;
  }
};

/// Bookkeeping of the hierarchical sampled interrogation
/// (MapperOptions::max_pairwise > 0). Like BatchStats this is
/// deliberately NOT part of identity_digest(): for a fixed sample_seed
/// the sampled result itself is deterministic and digested; these
/// counters only describe how much probing the sampling avoided.
struct SampleStats {
  /// Phase-2b groups that exceeded the budget and were sampled.
  std::uint64_t sampled_groups = 0;
  /// Representatives that ran the full pairwise protocol.
  std::uint64_t representatives = 0;
  /// Members placed transitively without a probe of their own.
  std::uint64_t inferred_members = 0;
  /// Members whose inference confidence was too low: one direct probe each.
  std::uint64_t escalated_members = 0;
  /// Phase-2c clusters whose internal pairs were subsampled.
  std::uint64_t sampled_clusters = 0;
  /// Internal pairs actually measured in those clusters.
  std::uint64_t sampled_internal_pairs = 0;

  SampleStats& operator+=(const SampleStats& other) {
    sampled_groups += other.sampled_groups;
    representatives += other.representatives;
    inferred_members += other.inferred_members;
    escalated_members += other.escalated_members;
    sampled_clusters += other.sampled_clusters;
    sampled_internal_pairs += other.sampled_internal_pairs;
    return *this;
  }
};

struct ZoneMapResult {
  ZoneSpec spec;
  std::string master_fqdn;
  gridml::GridDoc grid;
  StructuralNode structural;
  EnvNetwork root;
  MapStats stats;
  BatchStats batch;
  SampleStats sampling;
  std::vector<std::string> warnings;

  /// Zone probe time under the batched schedule (== stats.duration_s
  /// when probe_jobs is 1 or nothing was batchable).
  [[nodiscard]] double batched_duration_s() const { return stats.duration_s - batch.saved_s(); }
};

struct MapResult {
  std::string master_fqdn;  ///< canonical name of the primary master
  gridml::GridDoc grid;     ///< merged sites + effective NETWORK tree
  EnvNetwork root;          ///< merged effective view
  MapStats stats;
  BatchStats batch;      ///< aggregated over zones (see BatchStats: not digested)
  SampleStats sampling;  ///< aggregated over zones (see SampleStats: not digested)
  std::vector<ZoneMapResult> zones;
  std::vector<std::string> warnings;

  /// Map-stage probe time under the batched schedule. Exact when zones
  /// ran sequentially (stats.duration_s is then the zone sum); with
  /// map_threads > 1 it is an estimate — the zone-level makespan would
  /// have to be re-scheduled over the shortened zones to be exact, so
  /// the subtraction is clamped below by the longest single zone's
  /// batched duration (no schedule beats its longest job) and by zero.
  [[nodiscard]] double batched_duration_s() const;

  /// Canonical machine name for any zone-local name or alias.
  [[nodiscard]] std::string canonical(const std::string& name) const;

  /// Everything observable about this result, rendered at full
  /// precision: master, warnings, grid XML, effective view, stats (17
  /// significant digits) and the per-zone trees. Two results are
  /// "bit-identical" — the guarantee the golden-trace suite, the replay
  /// verifier and the parallel-vs-sequential checks all assert — exactly
  /// when their digests compare equal, so there is ONE definition of
  /// that equality to keep in sync with new fields. The sole exception
  /// is `batch` (and batched_duration_s): schedule metadata that varies
  /// with probe_jobs by design, see BatchStats.
  [[nodiscard]] std::string identity_digest() const;
};

/// Builds the ProbeEngine one zone's ENV run observes the platform with.
/// Called once per zone; when `MapperOptions::map_threads > 1` the calls
/// (and the engines they return) run on thread-pool workers, so each call
/// must return an engine that is independent of every other zone's.
using ZoneEngineFactory =
    std::function<std::unique_ptr<ProbeEngine>(const ZoneSpec& spec, std::size_t zone_index)>;

/// Progress of one zone's ENV run, reported as it happens (the api layer
/// turns these into Observer events).
struct ZoneProgress {
  enum class Phase { started, finished, failed };
  Phase phase = Phase::started;
  std::size_t zone_index = 0;  ///< position in the ZoneSpec list
  std::string zone_name;
  std::string detail;  ///< stats summary / error text
};

/// Progress of one probe batch (the api layer turns these into
/// probe_batch_started / probe_batch_finished events). Reported only
/// when probe_jobs > 1 and the batch holds at least two experiments —
/// i.e. when batching can actually change the schedule — so the event
/// stream of a sequential (probe_jobs == 1) run is untouched.
struct BatchProgress {
  enum class Phase { started, finished };
  Phase phase = Phase::started;
  std::size_t zone_index = 0;
  std::string zone_name;
  std::string stage;    ///< "host-bw" (2a) / "pairwise" (2b) / "internal" (2c)
  std::string label;    ///< segment the batch probes
  std::size_t experiments = 0;
  std::size_t workers = 0;      ///< probe_jobs
  double sequential_s = 0.0;    ///< finished only: back-to-back cost
  double makespan_s = 0.0;      ///< finished only: list-scheduled cost
};

class Mapper {
 public:
  /// A mapper around one shared engine: zones are probed strictly
  /// sequentially (the engine is not assumed to be thread-safe).
  Mapper(ProbeEngine& engine, MapperOptions options = {});
  /// A mapper that builds one engine per zone; zones are probed
  /// concurrently across `options.map_threads` workers. Because every
  /// zone observes the platform through its own engine regardless of the
  /// thread count, the merged MapResult is identical for any
  /// `map_threads` value (deterministic engines assumed, e.g. a
  /// jitter-free SimProbeEngine).
  Mapper(ZoneEngineFactory zone_engines, MapperOptions options = {});

  /// Zone progress callback. Invoked from thread-pool workers when
  /// mapping runs concurrently, but never from two threads at once
  /// (deliveries are serialized by an internal mutex).
  Mapper& set_progress(std::function<void(const ZoneProgress&)> progress);
  /// Batch progress callback (same delivery guarantees; shares the
  /// serializing mutex with zone progress).
  Mapper& set_batch_progress(std::function<void(const BatchProgress&)> progress);

  /// Map one zone (one ENV execution). In per-zone-engine mode,
  /// `zone_index` is forwarded to the factory — pass the spec's real
  /// position when the factory distinguishes zones (e.g. per-zone
  /// scripted traces); it is ignored in shared-engine mode.
  Result<ZoneMapResult> map_zone(const ZoneSpec& spec, std::size_t zone_index = 0);

  /// Map every zone and merge. The first zone is the primary one (its
  /// master becomes the deployment viewpoint); `gateway_aliases` lists
  /// the identities of each dual-homed gateway, exactly the information
  /// the paper says the user must provide for the merge.
  Result<MapResult> map(const std::vector<ZoneSpec>& specs,
                        const std::vector<gridml::AliasGroup>& gateway_aliases = {});

 private:
  struct MachineInfo {
    std::string given_name;  ///< the name the caller supplied (probe key)
    std::string fqdn;        ///< display identity (ip when DNS fails)
    HostIdentity identity;
    bool is_master = false;
  };

  /// Per-zone context threaded through refine/convert: which zone the
  /// batches belong to (for progress events) and where their modeled
  /// cost accumulates.
  struct BatchContext {
    std::size_t zone_index = 0;
    const std::string* zone_name = nullptr;
    BatchStats* stats = nullptr;
    SampleStats* sampling = nullptr;
  };

  /// Issue one phase's experiments as a probe batch in canonical order
  /// and account/report its modeled schedule. `credit_makespan` false
  /// defers the makespan credit to the caller (phase 2c waits for the
  /// phase-2d verdict); the computed makespan is returned either way.
  std::vector<ProbeExperimentOutcome> run_phase_batch(
      ProbeEngine& engine, const BatchContext& ctx, const std::string& stage,
      const std::string& label, const std::vector<ProbeExperiment>& experiments,
      bool credit_makespan, double* makespan_out) const;

  /// Refine the machines attached to one structural node into classified
  /// EnvNetworks (phases 2a-2d). `machines` are indices into `all`.
  /// Pure per-zone work: touches only `engine` and its own arguments, so
  /// zones can run on concurrent workers with separate engines.
  std::vector<EnvNetwork> refine(ProbeEngine& engine, const BatchContext& ctx,
                                 const std::vector<MachineInfo>& all,
                                 const std::vector<std::size_t>& machines,
                                 const MachineInfo& master, const std::string& label,
                                 const std::string& label_ip,
                                 std::vector<std::string>& warnings) const;

  EnvNetwork convert(ProbeEngine& engine, const BatchContext& ctx, const StructuralNode& node,
                     const std::vector<MachineInfo>& all, const MachineInfo& master,
                     std::vector<std::string>& warnings, bool is_root) const;

  /// One full ENV run against an explicit engine (the per-zone body).
  Result<ZoneMapResult> map_zone_with(ProbeEngine& engine, const ZoneSpec& spec,
                                      std::size_t zone_index) const;

  /// Map every zone, sequentially or on a pool, preserving spec order.
  std::vector<Result<ZoneMapResult>> map_zones(const std::vector<ZoneSpec>& specs);

  void report(const ZoneProgress& progress) const;
  void report(const BatchProgress& progress) const;

  ProbeEngine* engine_ = nullptr;        ///< shared-engine mode
  ZoneEngineFactory zone_engines_;       ///< per-zone-engine mode
  MapperOptions options_;
  std::function<void(const ZoneProgress&)> progress_;
  std::function<void(const BatchProgress&)> batch_progress_;
  mutable std::mutex progress_mutex_;
};

}  // namespace envnws::env
