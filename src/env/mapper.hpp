// The ENV mapper: orchestrates the full methodology of paper §4.2.
//
// Per firewall zone ("we launched ENV on both sides of popc0"):
//   1a. lookup        — hostnames -> identities, SITE grouping (FQDN
//                       domain, falling back to IP class per §4.3)
//   1b. properties    — host inventory capture
//   1c. structural    — traceroute tree towards the zone target
//   2a. host bw       — master->host bandwidths; split clusters at x3
//   2b. pairwise bw   — concurrent master transfers; split independents
//   2c. internal bw   — member<->member bandwidth (ENV_base_local_BW)
//   2d. jammed bw     — 5-repetition jam ratio; shared / switched verdict
// Zone results are then merged through the gateway alias groups (§4.3).
#pragma once

#include <string>
#include <vector>

#include "common/result.hpp"
#include "env/env_tree.hpp"
#include "env/options.hpp"
#include "env/probe_engine.hpp"
#include "env/structural.hpp"
#include "gridml/merge.hpp"
#include "gridml/model.hpp"

namespace envnws::env {

/// One ENV run: the machines that can all talk to each other, the
/// viewpoint host, and the traceroute target ("a well known external
/// destination", or the gateway when mapping inside a firewall).
struct ZoneSpec {
  std::string zone_name;
  std::vector<std::string> hostnames;  ///< zone-local names, master included
  std::string master;
  std::string traceroute_target;
};

struct MapStats {
  std::uint64_t experiments = 0;
  std::int64_t bytes_sent = 0;
  double duration_s = 0.0;

  MapStats& operator+=(const MapStats& other);
};

struct ZoneMapResult {
  ZoneSpec spec;
  std::string master_fqdn;
  gridml::GridDoc grid;
  StructuralNode structural;
  EnvNetwork root;
  MapStats stats;
  std::vector<std::string> warnings;
};

struct MapResult {
  std::string master_fqdn;  ///< canonical name of the primary master
  gridml::GridDoc grid;     ///< merged sites + effective NETWORK tree
  EnvNetwork root;          ///< merged effective view
  MapStats stats;
  std::vector<ZoneMapResult> zones;
  std::vector<std::string> warnings;

  /// Canonical machine name for any zone-local name or alias.
  [[nodiscard]] std::string canonical(const std::string& name) const;
};

class Mapper {
 public:
  Mapper(ProbeEngine& engine, MapperOptions options = {});

  /// Map one zone (one ENV execution).
  Result<ZoneMapResult> map_zone(const ZoneSpec& spec);

  /// Map every zone and merge. The first zone is the primary one (its
  /// master becomes the deployment viewpoint); `gateway_aliases` lists
  /// the identities of each dual-homed gateway, exactly the information
  /// the paper says the user must provide for the merge.
  Result<MapResult> map(const std::vector<ZoneSpec>& specs,
                        const std::vector<gridml::AliasGroup>& gateway_aliases = {});

 private:
  struct MachineInfo {
    std::string given_name;  ///< the name the caller supplied (probe key)
    std::string fqdn;        ///< display identity (ip when DNS fails)
    HostIdentity identity;
    bool is_master = false;
  };

  /// Refine the machines attached to one structural node into classified
  /// EnvNetworks (phases 2a-2d). `machines` are indices into `all`.
  std::vector<EnvNetwork> refine(const std::vector<MachineInfo>& all,
                                 const std::vector<std::size_t>& machines,
                                 const MachineInfo& master, const std::string& label,
                                 const std::string& label_ip,
                                 std::vector<std::string>& warnings);

  EnvNetwork convert(const StructuralNode& node, const std::vector<MachineInfo>& all,
                     const MachineInfo& master, std::vector<std::string>& warnings,
                     bool is_root);

  ProbeEngine& engine_;
  MapperOptions options_;
};

}  // namespace envnws::env
