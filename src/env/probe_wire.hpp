// The probe-agent wire protocol (docs/SOCKET_ENGINE.md).
//
// `env::SocketProbeEngine` talks to long-lived probe agents — NWS-style
// sensor processes — over TCP using length-prefixed text frames:
//
//   "ENVP <payload-bytes>\n" <payload>
//
// The payload is one line: a TYPE token followed by `key=value` fields
// (values percent-escaped, so names and error messages survive spaces).
// Control frames are HELLO / PING / BWXFER / STATS (engine -> agent) and
// BULK (agent -> agent bulk transfer); replies are `<TYPE>-OK`, `PONG`
// or `ERR code=<ErrorCode> msg=<text>`.
//
// Everything here is deliberately exception-free and fuzz-safe: frame
// decoding (`FrameBuffer`) bounds the header and payload sizes before
// trusting them, every numeric field goes through `common/parse.hpp`,
// and malformed input of any kind comes back as a `Result` error — the
// robustness contract tests/env/socket_protocol_test.cpp hammers on.
//
// The agent roster (`AgentRoster`) is the operator-supplied "sensor
// directory": one `<host> <ipv4>:<port>` line per agent, hostnames being
// exactly the names the mapper probes with. Parsing rejects malformed
// lines with `<source>:<line>:` prefixed errors, mirroring the PR 4
// parse-hardening pattern.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.hpp"

namespace envnws::env::wire {

/// Frame magic: every frame starts with exactly "ENVP ".
inline constexpr std::string_view kMagic = "ENVP ";
/// Upper bound on one control-frame payload. Bulk transfer data is NOT
/// framed (it follows a BULK frame as raw bytes), so control frames can
/// stay small and a hostile length prefix is rejected cheaply.
inline constexpr std::size_t kMaxFramePayload = 64 * 1024;
/// Upper bound on the header ("ENVP <len>\n"); anything longer without a
/// newline cannot be a valid header.
inline constexpr std::size_t kMaxFrameHeader = 24;
/// Upper bound on one BULK transfer (defensive: probe payloads are MiB).
inline constexpr std::int64_t kMaxBulkBytes = std::int64_t(1) << 30;

/// Serialize one frame: header + payload.
[[nodiscard]] std::string encode_frame(const std::string& payload);

/// Incremental frame decoder over a received byte stream. Feed bytes as
/// they arrive; `next()` yields complete payloads. Pure memory — the
/// fuzz tests drive it without any socket.
class FrameBuffer {
 public:
  void feed(const char* data, std::size_t size);
  void feed(std::string_view data) { feed(data.data(), data.size()); }

  /// One decoded payload, `nullopt` when more bytes are needed, or a
  /// `protocol` error when the stream cannot be a frame (bad magic,
  /// junk or oversized length, unterminated header). After an error the
  /// stream is unrecoverable: the buffer stays poisoned and every later
  /// call returns the same error.
  Result<std::optional<std::string>> next();

  [[nodiscard]] std::size_t buffered() const { return buffer_.size(); }

  /// Extract up to `max` already-buffered bytes as raw data. Frames may
  /// be followed by unframed payload (BULK transfers); when the sender
  /// coalesces frame and payload into one TCP segment, the tail lands
  /// here and the bulk reader drains it before touching the socket.
  [[nodiscard]] std::string take_raw(std::size_t max);

 private:
  std::string buffer_;
  std::optional<Error> poisoned_;
};

/// One parsed control message: TYPE plus ordered key=value fields.
struct WireMessage {
  std::string type;
  std::vector<std::pair<std::string, std::string>> fields;

  WireMessage() = default;
  explicit WireMessage(std::string type_) : type(std::move(type_)) {}

  WireMessage& add(const std::string& key, const std::string& value);
  WireMessage& add_u64(const std::string& key, std::uint64_t value);
  WireMessage& add_f64(const std::string& key, double value);  ///< 17 significant digits

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback = {}) const;
  /// Numeric accessors: `protocol` errors naming the field on junk,
  /// missing values, or out-of-range magnitudes (via common/parse.hpp).
  [[nodiscard]] Result<double> f64(const std::string& key) const;
  [[nodiscard]] Result<std::uint64_t> u64(const std::string& key) const;

  /// `parse(serialize())` round-trips.
  [[nodiscard]] std::string serialize() const;
  static Result<WireMessage> parse(const std::string& payload);
};

/// Percent-escape a field value (space, %, =, comma, colon, control
/// bytes) so it survives the space-separated payload grammar.
[[nodiscard]] std::string escape(const std::string& value);
/// Inverse of escape(); `protocol` error on truncated or non-hex `%xx`.
[[nodiscard]] Result<std::string> unescape(const std::string& value);

/// Build an `ERR` reply frame payload.
[[nodiscard]] std::string error_payload(const Error& error);
/// True when the message is an `ERR` frame; fills `error` (unknown code
/// strings degrade to `protocol`).
[[nodiscard]] bool is_error(const WireMessage& message, Error& error);

/// Reply-type guard shared by every client of the protocol: passes the
/// reply through when it carries `expected_type`, converts `ERR` frames
/// into the error they carry, and reports any other type as a `protocol`
/// error naming the request (`context`) it answered.
[[nodiscard]] Result<WireMessage> expect_reply(Result<WireMessage> reply,
                                               std::string_view expected_type,
                                               std::string_view context);

// --- monitor frames ---------------------------------------------------------
//
// The monitoring daemon (src/monitor/, docs/MONITORD.md) serves query
// clients over the same framed protocol the probe agents speak:
//
//   SNAPSHOT                          -> SNAPSHOT-OK version= cycles= time=
//                                        pairs= measurements= failures=
//                                        drifting= remaps= digest=
//   QUERY resource= src= [dst=]       -> QUERY-OK value= mae= rmse= winner=
//                                        samples= latest= time= drifting=
//   SERIES resource= src= [dst=] [max=] -> SERIES-OK count= points=t:v,...
//
// SNAPSHOT and QUERY are answered entirely from the immutable published
// MonitorSnapshot (the RCU read path); SERIES reads one store shard.
// Unknown pairs answer `ERR code=not_found`; malformed requests
// `ERR code=protocol` — the same error surface as the probe agents.
inline constexpr std::string_view kSnapshotFrame = "SNAPSHOT";
inline constexpr std::string_view kQueryFrame = "QUERY";
inline constexpr std::string_view kSeriesFrame = "SERIES";

// --- agent roster -----------------------------------------------------------

struct AgentEndpoint {
  std::string host;     ///< the name the mapper probes with
  std::string address;  ///< numeric IPv4 ("127.0.0.1" for loopback fleets)
  std::uint16_t port = 0;
};

/// The roster file: `<host> <ipv4>:<port>` per line, `#` comments and
/// blank lines ignored. Order is preserved (it is the operator's
/// document); lookups go by host name.
struct AgentRoster {
  std::vector<AgentEndpoint> agents;
  std::string source = "<memory>";

  /// Malformed lines fail with `<source>:<line>: ...` errors: missing
  /// address or port, non-numeric address, junk/out-of-range port,
  /// duplicate host, trailing tokens.
  static Result<AgentRoster> parse(const std::string& text, std::string source = "<memory>");
  /// `not_found` when the file does not exist.
  static Result<AgentRoster> load(const std::string& path);

  [[nodiscard]] const AgentEndpoint* find(const std::string& host) const;
  [[nodiscard]] bool empty() const { return agents.empty(); }
  [[nodiscard]] std::string to_string() const;  ///< parse(to_string()) round-trips
};

// --- bounded socket I/O -----------------------------------------------------

/// Movable owner of one connected TCP socket (non-blocking; every
/// operation takes an explicit timeout). All errors are `Result`s:
/// `unreachable` for refused/reset/closed peers, `timeout` when the
/// deadline passes — the distinction the engine surfaces to the mapper.
class TcpSocket {
 public:
  TcpSocket() = default;
  explicit TcpSocket(int fd);
  TcpSocket(TcpSocket&& other) noexcept;
  TcpSocket& operator=(TcpSocket&& other) noexcept;
  TcpSocket(const TcpSocket&) = delete;
  TcpSocket& operator=(const TcpSocket&) = delete;
  ~TcpSocket();

  /// Connect to `ipv4:port` within `timeout_s`.
  static Result<TcpSocket> dial(const std::string& ipv4, std::uint16_t port, double timeout_s);

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }

  Status send_all(std::string_view data, double timeout_s);
  /// Up to `cap` bytes; an orderly peer close is an `unreachable` error
  /// ("connection closed"), since every protocol exchange here expects
  /// a reply.
  Result<std::size_t> recv_some(char* out, std::size_t cap, double timeout_s);
  /// Exactly `size` bytes or an error.
  Status recv_exact(char* out, std::size_t size, double timeout_s);

  /// Wake any thread blocked in send/recv on this socket (used by agent
  /// shutdown); the socket stays owned by its thread.
  void shutdown_both();
  void close_fd();

 private:
  int fd_ = -1;
};

/// Listening socket (the agent side). `port == 0` binds an ephemeral
/// port; `port()` reports the real one.
class TcpListener {
 public:
  TcpListener() = default;
  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;
  ~TcpListener();

  static Result<TcpListener> listen(const std::string& ipv4, std::uint16_t port);

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// One accepted connection; `timeout` error when none arrived in time
  /// (the accept loop polls so it can observe a stop flag).
  Result<TcpSocket> accept(double timeout_s);
  void close_fd();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Send one framed payload.
Status send_frame(TcpSocket& socket, const std::string& payload, double timeout_s);
/// Receive one framed payload through `buffer` (which carries any bytes
/// read beyond the frame into the next call).
Result<std::string> recv_frame(TcpSocket& socket, FrameBuffer& buffer, double timeout_s);
/// Receive one frame and parse it as a control message.
Result<WireMessage> recv_message(TcpSocket& socket, FrameBuffer& buffer, double timeout_s);

}  // namespace envnws::env::wire
