// Flat structure-of-arrays representation of the Effective Network View.
//
// `EnvNetwork` is the ergonomic pointer-chasing tree the mapper builds
// and the planner consumes. At paper scale (tens of hosts) that is
// fine; at the star-switch:10000 scale every whole-tree pass (render,
// machine census) walks thousands of heap-allocated child vectors. The
// arena stores the same tree as parallel columns indexed by a plain
// `std::size_t` handle in preorder, with first-child/next-sibling links
// and one shared machine-name pool, so traversals are sequential array
// scans and need no recursion.
//
// The arena is a *view-building* representation: convert with
// `EnvTreeArena::from_tree`, read it, and (when a mutable tree is
// needed again) convert back with `to_tree`. Round-tripping is
// lossless and order-preserving.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "env/env_tree.hpp"

namespace envnws::env {

class EnvTreeArena {
 public:
  /// Handle value meaning "no node" (no parent / no sibling / ...).
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Flatten `root` (and its whole subtree) in preorder. Index 0 is
  /// always the root of a non-empty arena.
  [[nodiscard]] static EnvTreeArena from_tree(const EnvNetwork& root);
  /// Rebuild the pointer tree; inverse of from_tree.
  [[nodiscard]] EnvNetwork to_tree() const;

  [[nodiscard]] std::size_t size() const { return kind_.size(); }
  [[nodiscard]] bool empty() const { return kind_.empty(); }
  /// Total machine names across all nodes (pool size).
  [[nodiscard]] std::size_t machine_count() const { return machine_pool_.size(); }

  // --- per-node columns ---
  [[nodiscard]] NetKind kind(std::size_t i) const { return kind_[i]; }
  [[nodiscard]] const std::string& label(std::size_t i) const { return label_[i]; }
  [[nodiscard]] const std::string& label_ip(std::size_t i) const { return label_ip_[i]; }
  [[nodiscard]] const std::string& gateway(std::size_t i) const { return gateway_[i]; }
  [[nodiscard]] double base_bw_bps(std::size_t i) const { return base_bw_bps_[i]; }
  [[nodiscard]] double base_local_bw_bps(std::size_t i) const { return base_local_bw_bps_[i]; }
  [[nodiscard]] double base_reverse_bw_bps(std::size_t i) const {
    return base_reverse_bw_bps_[i];
  }
  [[nodiscard]] bool route_asymmetric(std::size_t i) const { return route_asymmetric_[i] != 0; }
  [[nodiscard]] std::size_t parent(std::size_t i) const { return parent_[i]; }
  [[nodiscard]] std::size_t first_child(std::size_t i) const { return first_child_[i]; }
  [[nodiscard]] std::size_t next_sibling(std::size_t i) const { return next_sibling_[i]; }
  /// Depth of node `i` (root = 0); O(depth), follows parent links.
  [[nodiscard]] std::size_t depth(std::size_t i) const;

  /// Machine names of node `i` as a contiguous [begin, end) span into
  /// the shared pool.
  [[nodiscard]] const std::string* machines_begin(std::size_t i) const {
    return machine_pool_.data() + machines_begin_[i];
  }
  [[nodiscard]] const std::string* machines_end(std::size_t i) const {
    return machine_pool_.data() + machines_end_[i];
  }
  [[nodiscard]] std::size_t machine_count(std::size_t i) const {
    return machines_end_[i] - machines_begin_[i];
  }

  /// Preorder node indices — because from_tree emits preorder, this is
  /// simply 0..size(); kept explicit so callers don't depend on the
  /// construction order by accident.
  [[nodiscard]] std::vector<std::size_t> preorder() const;

 private:
  std::size_t add_node(const EnvNetwork& node, std::size_t parent);

  std::vector<NetKind> kind_;
  std::vector<std::string> label_;
  std::vector<std::string> label_ip_;
  std::vector<std::string> gateway_;
  std::vector<double> base_bw_bps_;
  std::vector<double> base_local_bw_bps_;
  std::vector<double> base_reverse_bw_bps_;
  std::vector<char> route_asymmetric_;  // vector<bool> has no data()
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> first_child_;
  std::vector<std::size_t> next_sibling_;
  std::vector<std::size_t> machines_begin_;
  std::vector<std::size_t> machines_end_;
  std::vector<std::string> machine_pool_;
};

/// ASCII rendering in the style of paper Fig. 1(b); byte-identical to
/// `render_effective(EnvNetwork)` on the equivalent tree, but iterative
/// over the flat columns.
[[nodiscard]] std::string render_effective(const EnvTreeArena& arena);

}  // namespace envnws::env
