#include "env/env_tree_arena.hpp"

#include <sstream>
#include <utility>

#include "common/strings.hpp"
#include "common/units.hpp"

namespace envnws::env {

std::size_t EnvTreeArena::add_node(const EnvNetwork& node, std::size_t parent) {
  const std::size_t index = kind_.size();
  kind_.push_back(node.kind);
  label_.push_back(node.label);
  label_ip_.push_back(node.label_ip);
  gateway_.push_back(node.gateway);
  base_bw_bps_.push_back(node.base_bw_bps);
  base_local_bw_bps_.push_back(node.base_local_bw_bps);
  base_reverse_bw_bps_.push_back(node.base_reverse_bw_bps);
  route_asymmetric_.push_back(node.route_asymmetric ? 1 : 0);
  parent_.push_back(parent);
  first_child_.push_back(npos);
  next_sibling_.push_back(npos);
  machines_begin_.push_back(machine_pool_.size());
  machine_pool_.insert(machine_pool_.end(), node.machines.begin(), node.machines.end());
  machines_end_.push_back(machine_pool_.size());
  return index;
}

EnvTreeArena EnvTreeArena::from_tree(const EnvNetwork& root) {
  EnvTreeArena arena;
  // Explicit stack, children pushed in reverse, so pop order is exactly
  // preorder — no recursion no matter how deep the structural chain is.
  struct Pending {
    const EnvNetwork* node;
    std::size_t parent;
  };
  std::vector<Pending> stack{{&root, npos}};
  std::vector<std::size_t> last_child;  // per arena node: its newest child
  while (!stack.empty()) {
    const Pending item = stack.back();
    stack.pop_back();
    const std::size_t index = arena.add_node(*item.node, item.parent);
    last_child.push_back(npos);
    if (item.parent != npos) {
      if (arena.first_child_[item.parent] == npos) {
        arena.first_child_[item.parent] = index;
      } else {
        arena.next_sibling_[last_child[item.parent]] = index;
      }
      last_child[item.parent] = index;
    }
    for (auto it = item.node->children.rbegin(); it != item.node->children.rend(); ++it) {
      stack.push_back({&*it, index});
    }
  }
  return arena;
}

EnvNetwork EnvTreeArena::to_tree() const {
  EnvNetwork root;
  if (empty()) return root;
  // Nodes arrive in preorder, so a node's parent is always materialized
  // before the node itself; track where each arena node landed.
  std::vector<EnvNetwork*> placed(size(), nullptr);
  for (std::size_t i = 0; i < size(); ++i) {
    EnvNetwork* target;
    if (parent_[i] == npos) {
      target = &root;
    } else {
      placed[parent_[i]]->children.emplace_back();
      target = &placed[parent_[i]]->children.back();
    }
    target->kind = kind_[i];
    target->label = label_[i];
    target->label_ip = label_ip_[i];
    target->gateway = gateway_[i];
    target->base_bw_bps = base_bw_bps_[i];
    target->base_local_bw_bps = base_local_bw_bps_[i];
    target->base_reverse_bw_bps = base_reverse_bw_bps_[i];
    target->route_asymmetric = route_asymmetric_[i] != 0;
    target->machines.assign(machines_begin(i), machines_end(i));
    placed[i] = target;
  }
  return root;
}

std::size_t EnvTreeArena::depth(std::size_t i) const {
  std::size_t d = 0;
  while (parent_[i] != npos) {
    i = parent_[i];
    ++d;
  }
  return d;
}

std::vector<std::size_t> EnvTreeArena::preorder() const {
  std::vector<std::size_t> order(size());
  for (std::size_t i = 0; i < size(); ++i) order[i] = i;
  return order;
}

std::string render_effective(const EnvTreeArena& arena) {
  std::ostringstream out;
  for (std::size_t i = 0; i < arena.size(); ++i) {
    const std::string indent(2 * arena.depth(i), ' ');
    out << indent;
    switch (arena.kind(i)) {
      case NetKind::structural:
        out << "* " << (arena.label(i).empty() ? "(net)" : arena.label(i));
        if (!arena.label_ip(i).empty() && arena.label_ip(i) != arena.label(i)) {
          out << " [" << arena.label_ip(i) << "]";
        }
        break;
      default:
        out << "+ " << (arena.label(i).empty() ? "(lan)" : arena.label(i)) << " <"
            << to_string(arena.kind(i)) << ">";
        if (arena.base_bw_bps(i) > 0.0) {
          out << " base=" << strings::format_double(units::to_mbps(arena.base_bw_bps(i)), 2)
              << "Mbps";
        }
        if (arena.base_local_bw_bps(i) > 0.0) {
          out << " local="
              << strings::format_double(units::to_mbps(arena.base_local_bw_bps(i)), 2)
              << "Mbps";
        }
        if (arena.base_reverse_bw_bps(i) > 0.0) {
          out << " reverse="
              << strings::format_double(units::to_mbps(arena.base_reverse_bw_bps(i)), 2)
              << "Mbps";
        }
        if (arena.route_asymmetric(i)) out << " [ASYMMETRIC ROUTE]";
        break;
    }
    if (!arena.gateway(i).empty()) out << " via " << arena.gateway(i);
    out << "\n";
    if (arena.machine_count(i) > 0) {
      out << indent << "    machines: ";
      for (const std::string* m = arena.machines_begin(i); m != arena.machines_end(i); ++m) {
        if (m != arena.machines_begin(i)) out << ", ";
        out << *m;
      }
      out << "\n";
    }
  }
  return out.str();
}

}  // namespace envnws::env
