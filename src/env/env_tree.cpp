#include "env/env_tree.hpp"

#include <algorithm>

#include "common/parse.hpp"
#include "common/strings.hpp"
#include "common/units.hpp"
#include "env/env_tree_arena.hpp"

namespace envnws::env {

const char* to_string(NetKind kind) {
  switch (kind) {
    case NetKind::structural: return "structural";
    case NetKind::shared: return "shared";
    case NetKind::switched: return "switched";
    case NetKind::inconclusive: return "inconclusive";
  }
  return "?";
}

std::vector<std::string> EnvNetwork::all_machines() const {
  std::vector<std::string> out = machines;
  for (const auto& child : children) {
    const auto nested = child.all_machines();
    out.insert(out.end(), nested.begin(), nested.end());
  }
  return out;
}

const EnvNetwork* EnvNetwork::find_containing(const std::string& machine) const {
  for (const auto& child : children) {
    if (const EnvNetwork* hit = child.find_containing(machine)) return hit;
  }
  if (std::find(machines.begin(), machines.end(), machine) != machines.end()) return this;
  return nullptr;
}

std::vector<const EnvNetwork*> EnvNetwork::lan_segments() const {
  std::vector<const EnvNetwork*> out;
  if (kind != NetKind::structural) out.push_back(this);
  for (const auto& child : children) {
    const auto nested = child.lan_segments();
    out.insert(out.end(), nested.begin(), nested.end());
  }
  return out;
}

std::vector<std::string> EnvNetwork::gateways() const {
  std::vector<std::string> out;
  if (!gateway.empty()) out.push_back(gateway);
  for (const auto& child : children) {
    for (auto& name : child.gateways()) {
      if (std::find(out.begin(), out.end(), name) == out.end()) out.push_back(name);
    }
  }
  return out;
}

namespace {

gridml::NetworkType gridml_type(NetKind kind) {
  switch (kind) {
    case NetKind::shared: return gridml::NetworkType::env_shared;
    case NetKind::switched: return gridml::NetworkType::env_switched;
    case NetKind::inconclusive: return gridml::NetworkType::env_inconclusive;
    case NetKind::structural: return gridml::NetworkType::structural;
  }
  return gridml::NetworkType::structural;
}

NetKind kind_from_gridml(gridml::NetworkType type) {
  switch (type) {
    case gridml::NetworkType::env_shared: return NetKind::shared;
    case gridml::NetworkType::env_switched: return NetKind::switched;
    case gridml::NetworkType::env_inconclusive: return NetKind::inconclusive;
    case gridml::NetworkType::structural: return NetKind::structural;
  }
  return NetKind::structural;
}

}  // namespace

gridml::NetworkNode EnvNetwork::to_gridml() const {
  gridml::NetworkNode node;
  node.type = gridml_type(kind);
  node.label_name = label;
  node.label_ip = label_ip;
  if (base_bw_bps > 0.0) {
    node.properties.push_back(gridml::Property{
        "ENV_base_BW", strings::format_double(units::to_mbps(base_bw_bps), 2), "Mbps"});
  }
  if (base_local_bw_bps > 0.0) {
    node.properties.push_back(gridml::Property{
        "ENV_base_local_BW", strings::format_double(units::to_mbps(base_local_bw_bps), 2),
        "Mbps"});
  }
  if (base_reverse_bw_bps > 0.0) {
    node.properties.push_back(gridml::Property{
        "ENV_base_reverse_BW",
        strings::format_double(units::to_mbps(base_reverse_bw_bps), 2), "Mbps"});
  }
  if (route_asymmetric) {
    node.properties.push_back(gridml::Property{"ENV_route_asymmetric", "true", ""});
  }
  if (!gateway.empty()) {
    node.properties.push_back(gridml::Property{"ENV_gateway", gateway, ""});
  }
  node.machine_names = machines;
  for (const auto& child : children) node.children.push_back(child.to_gridml());
  return node;
}

Result<EnvNetwork> EnvNetwork::from_gridml(const gridml::NetworkNode& node) {
  EnvNetwork network;
  network.kind = kind_from_gridml(node.type);
  network.label = node.label_name;
  network.label_ip = node.label_ip;
  // Guarded parse (common/parse.hpp): a published document with
  // "ENV_base_BW = garbage" used to throw a bare std::stod exception
  // through load_map_from_gridml and kill the process.
  const auto bandwidth_property = [&node](const char* name) -> Result<double> {
    const auto text = node.property(name);
    if (!text.has_value()) return 0.0;
    const auto mbps = parse::to_double(*text);
    if (!mbps.has_value()) {
      return make_error(ErrorCode::protocol,
                        std::string("bad ") + name + " '" + *text + "' in GridML network '" +
                            node.label_name + "'");
    }
    return units::mbps(*mbps);
  };
  const auto base = bandwidth_property("ENV_base_BW");
  if (!base.ok()) return base.error();
  network.base_bw_bps = base.value();
  const auto local = bandwidth_property("ENV_base_local_BW");
  if (!local.ok()) return local.error();
  network.base_local_bw_bps = local.value();
  const auto reverse = bandwidth_property("ENV_base_reverse_BW");
  if (!reverse.ok()) return reverse.error();
  network.base_reverse_bw_bps = reverse.value();
  network.route_asymmetric = node.property("ENV_route_asymmetric").has_value();
  if (const auto gw = node.property("ENV_gateway")) network.gateway = *gw;
  network.machines = node.machine_names;
  for (const auto& child : node.children) {
    auto nested = from_gridml(child);
    if (!nested.ok()) return nested.error();
    network.children.push_back(std::move(nested.value()));
  }
  return network;
}

void canonicalize(EnvNetwork& network,
                  const std::function<std::string(const std::string&)>& canon) {
  for (auto& machine : network.machines) machine = canon(machine);
  if (!network.gateway.empty()) network.gateway = canon(network.gateway);
  for (auto& child : network.children) canonicalize(child, canon);
}

std::string render_effective(const EnvNetwork& root) {
  // Flatten first, render the flat columns: one sequential pass instead
  // of a recursive descent re-allocating an indent string per level —
  // the rendering is digested for every zone, so at 10k machines this
  // sits on the mapping hot path.
  return render_effective(EnvTreeArena::from_tree(root));
}

}  // namespace envnws::env
