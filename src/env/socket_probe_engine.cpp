#include "env/socket_probe_engine.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <thread>

#include "common/stats.hpp"
#include "common/strings.hpp"
#include "env/batch_schedule.hpp"
#include "testing/virtual_scheduler.hpp"

namespace envnws::env {

namespace {

using Clock = std::chrono::steady_clock;

Error with_agent_context(const wire::AgentEndpoint& endpoint, Error error) {
  error.message = "probe agent '" + endpoint.host + "' (" + endpoint.address + ":" +
                  std::to_string(endpoint.port) + "): " + error.message;
  return error;
}

}  // namespace

SocketProbeEngine::SocketProbeEngine(wire::AgentRoster roster, const MapperOptions& options,
                                     SocketEngineOptions socket_options)
    : roster_(std::move(roster)), options_(options), socket_options_(socket_options) {}

SocketProbeEngine::~SocketProbeEngine() = default;

Result<wire::AgentEndpoint> SocketProbeEngine::resolve(const std::string& host) const {
  if (const wire::AgentEndpoint* endpoint = roster_.find(host)) return *endpoint;
  return make_error(ErrorCode::not_found,
                    "host '" + host + "' not in agent roster '" + roster_.source + "'");
}

Result<std::unique_ptr<SocketProbeEngine::AgentConn>> SocketProbeEngine::acquire(
    const std::string& host) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto pooled = pool_.find(host);
    if (pooled != pool_.end() && !pooled->second.empty()) {
      auto conn = std::move(pooled->second.back());
      pooled->second.pop_back();
      --idle_count_;
      conn->reused = true;
      return conn;
    }
  }
  auto endpoint = resolve(host);
  if (!endpoint.ok()) return endpoint.error();
  auto socket = wire::TcpSocket::dial(endpoint.value().address, endpoint.value().port,
                                      socket_options_.connect_timeout_s);
  if (!socket.ok()) return with_agent_context(endpoint.value(), socket.error());
  auto conn = std::make_unique<AgentConn>();
  conn->socket = std::move(socket.value());
  return conn;
}

void SocketProbeEngine::release(const std::string& host, std::unique_ptr<AgentConn> conn) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Global LRU bound, not a per-host quota: the connection just used is
  // always the hottest, so it pools unconditionally and the
  // least-recently-released idle connection anywhere pays for it. A
  // fleet of thousands of agents thus costs at most max_idle_sockets
  // idle fds, while hosts probed in a tight loop keep their connection.
  conn->reused = false;
  conn->released_at = ++release_serial_;
  pool_[host].push_back(std::move(conn));
  ++idle_count_;
  const std::size_t bound = std::max<std::size_t>(socket_options_.max_idle_sockets, 1);
  while (idle_count_ > bound) {
    auto oldest_host = pool_.end();
    std::size_t oldest_slot = 0;
    std::uint64_t oldest_stamp = ~std::uint64_t(0);
    for (auto it = pool_.begin(); it != pool_.end(); ++it) {
      for (std::size_t slot = 0; slot < it->second.size(); ++slot) {
        if (it->second[slot]->released_at < oldest_stamp) {
          oldest_stamp = it->second[slot]->released_at;
          oldest_host = it;
          oldest_slot = slot;
        }
      }
    }
    if (oldest_host == pool_.end()) break;  // unreachable: idle_count_ > 0
    oldest_host->second.erase(oldest_host->second.begin() +
                              static_cast<std::ptrdiff_t>(oldest_slot));
    if (oldest_host->second.empty()) pool_.erase(oldest_host);
    --idle_count_;
  }
}

void SocketProbeEngine::drop_pool(const std::string& host) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = pool_.find(host);
  if (it == pool_.end()) return;
  idle_count_ -= it->second.size();
  pool_.erase(it);
}

std::size_t SocketProbeEngine::idle_sockets() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return idle_count_;
}

Result<wire::WireMessage> SocketProbeEngine::round_trip(const std::string& host,
                                                        const wire::WireMessage& request,
                                                        double timeout_s) {
  auto endpoint = resolve(host);
  if (!endpoint.ok()) return endpoint.error();
  for (int attempt = 0; attempt < 2; ++attempt) {
    auto conn = acquire(host);
    if (!conn.ok()) return conn.error();
    const bool reused = conn.value()->reused;
    Error failure;
    if (auto sent = wire::send_frame(conn.value()->socket, request.serialize(),
                                     socket_options_.frame_timeout_s);
        !sent.ok()) {
      failure = sent.error();
    } else if (auto reply = wire::recv_message(conn.value()->socket, conn.value()->buffer,
                                               timeout_s);
               !reply.ok()) {
      failure = reply.error();
    } else {
      release(host, std::move(conn.value()));
      Error agent_error;
      if (wire::is_error(reply.value(), agent_error)) {
        return with_agent_context(endpoint.value(), agent_error);
      }
      return reply;
    }
    // A POOLED connection may have idled past the agent's own I/O
    // timeout and been closed server-side: that is staleness, not a
    // dead agent. Flush the host's pool (its siblings are equally old)
    // and redial once; failures on a fresh connection are real.
    if (reused && failure.code == ErrorCode::unreachable && attempt == 0) {
      drop_pool(host);
      continue;
    }
    return with_agent_context(endpoint.value(), failure);
  }
  return make_error(ErrorCode::internal, "round_trip retry loop fell through");
}

Result<HostIdentity> SocketProbeEngine::lookup(const std::string& hostname) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto cached = identities_.find(hostname);
    if (cached != identities_.end()) return cached->second;
  }
  auto reply = wire::expect_reply(round_trip(hostname,
                                             wire::WireMessage("HELLO").add("name", hostname),
                                             socket_options_.frame_timeout_s),
                                  "HELLO-OK", "HELLO");
  if (!reply.ok()) return reply.error();
  HostIdentity identity;
  identity.fqdn = reply.value().get("fqdn");
  identity.ip = reply.value().get("ip");
  for (const auto& pair : strings::split_nonempty(reply.value().get("props"), ',')) {
    const auto colon = pair.find(':');
    if (colon == std::string::npos) {
      return make_error(ErrorCode::protocol, "bad HELLO-OK property token '" + pair + "'");
    }
    auto key = wire::unescape(pair.substr(0, colon));
    auto value = wire::unescape(pair.substr(colon + 1));
    if (!key.ok()) return key.error();
    if (!value.ok()) return value.error();
    identity.properties[key.value()] = value.value();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  identities_[hostname] = identity;
  return identity;
}

Result<std::vector<TraceHop>> SocketProbeEngine::traceroute(const std::string& from,
                                                            const std::string& target) {
  // Only the viewpoint needs a live agent; user-level TCP agents cannot
  // play TTL games, so the route is reported as direct (the structural
  // tree degenerates to one flat segment — docs/SOCKET_ENGINE.md).
  if (auto source = resolve(from); !source.ok()) return source.error();
  TraceHop hop;
  hop.name = target;
  hop.responded = true;
  if (roster_.find(target) != nullptr) {
    if (auto identity = lookup(target); identity.ok()) {
      hop.ip = identity.value().ip;
      if (!identity.value().fqdn.empty()) hop.name = identity.value().fqdn;
    }
  }
  return std::vector<TraceHop>{hop};
}

SocketProbeEngine::Measured SocketProbeEngine::measure(const BandwidthRequest& request,
                                                       int streams) {
  Measured measured;
  auto source = resolve(request.from);
  if (!source.ok()) {
    measured.bandwidth_bps = source.error();
    return measured;
  }
  auto sink = resolve(request.to);
  if (!sink.ok()) {
    measured.bandwidth_bps = sink.error();
    return measured;
  }
  wire::WireMessage transfer("BWXFER");
  transfer.add("to", sink.value().address);
  transfer.add_u64("port", sink.value().port);
  transfer.add_u64("bytes", static_cast<std::uint64_t>(std::max<std::int64_t>(
                                options_.probe_bytes, 1)));
  transfer.add_u64("streams", static_cast<std::uint64_t>(std::max(streams, 1)));
  auto reply = wire::expect_reply(round_trip(request.from, transfer,
                                             socket_options_.transfer_timeout_s),
                                  "BWXFER-OK", "BWXFER");
  if (!reply.ok()) {
    measured.bandwidth_bps = reply.error();
    return measured;
  }
  auto bps = reply.value().f64("bps");
  auto seconds = reply.value().f64("seconds");
  if (!bps.ok()) {
    measured.bandwidth_bps = bps.error();
    return measured;
  }
  if (!seconds.ok()) {
    measured.bandwidth_bps = seconds.error();
    return measured;
  }
  if (!(bps.value() > 0.0) || !(seconds.value() > 0.0)) {
    measured.bandwidth_bps = Result<double>(
        make_error(ErrorCode::protocol, "BWXFER-OK reports a non-positive measurement"));
    return measured;
  }
  measured.bandwidth_bps = bps.value();
  measured.seconds = seconds.value();
  measured.bytes = std::max<std::int64_t>(options_.probe_bytes, 1);
  return measured;
}

void SocketProbeEngine::run_experiment(const ProbeExperiment& experiment,
                                       ProbeExperimentOutcome& outcome, StatsDelta& delta) {
  delta = StatsDelta{};
  outcome = ProbeExperimentOutcome{};
  if (experiment.transfers.empty()) {
    outcome.results.push_back(Result<double>(
        make_error(ErrorCode::invalid_argument, "batch experiment carries no transfers")));
    return;
  }
  delta.experiments = 1;
  if (experiment.kind == ProbeExperiment::Kind::bandwidth || experiment.transfers.size() == 1) {
    const Measured measured = measure(experiment.transfers.front(), 1);
    if (measured.bandwidth_bps.ok()) {
      delta.bytes += measured.bytes;
      delta.busy_s += measured.seconds;
    }
    outcome.results.push_back(measured.bandwidth_bps);
  } else {
    // Start every transfer of the experiment at (as close as sockets
    // allow) the same instant, each on its own control connection. The
    // engine-declared stream count — how many transfers of THIS
    // experiment share a source — lets fixed-rate agents model source
    // fair-share deterministically.
    std::vector<Measured> measurements(experiment.transfers.size());
    std::vector<std::thread> threads;
    threads.reserve(experiment.transfers.size());
    for (std::size_t i = 0; i < experiment.transfers.size(); ++i) {
      int streams = 0;
      for (const auto& other : experiment.transfers) {
        if (other.from == experiment.transfers[i].from) ++streams;
      }
      threads.emplace_back([this, &experiment, &measurements, i, streams] {
        measurements[i] = measure(experiment.transfers[i], streams);
      });
    }
    for (auto& thread : threads) thread.join();
    double longest_s = 0.0;
    for (const auto& measured : measurements) {
      if (measured.bandwidth_bps.ok()) {
        delta.bytes += measured.bytes;
        longest_s = std::max(longest_s, measured.seconds);
      }
      outcome.results.push_back(measured.bandwidth_bps);
    }
    delta.busy_s += longest_s;
  }
  // The paper's settle gap between experiments: really waited out here
  // (a live network needs to drain), and part of the experiment's busy
  // time like the simulator's accounting.
  if (options_.stabilization_gap_s > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(options_.stabilization_gap_s));
  }
  delta.busy_s += std::max(options_.stabilization_gap_s, 0.0);
  outcome.duration_s = delta.busy_s;
}

void SocketProbeEngine::apply(const StatsDelta& delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.experiments += delta.experiments;
  stats_.bytes_sent += delta.bytes;
  stats_.busy_time_s += delta.busy_s;
}

Result<double> SocketProbeEngine::bandwidth(const std::string& from, const std::string& to) {
  ProbeExperimentOutcome outcome;
  StatsDelta delta;
  run_experiment(ProbeExperiment::single(from, to), outcome, delta);
  apply(delta);
  return outcome.results.front();
}

std::vector<Result<double>> SocketProbeEngine::concurrent_bandwidth(
    const std::vector<BandwidthRequest>& requests) {
  ProbeExperimentOutcome outcome;
  StatsDelta delta;
  run_experiment(ProbeExperiment::concurrent(requests), outcome, delta);
  apply(delta);
  return outcome.results;
}

std::vector<ProbeExperimentOutcome> SocketProbeEngine::run_batch(
    const std::vector<ProbeExperiment>& experiments, std::size_t workers) {
  std::vector<ProbeExperimentOutcome> outcomes(experiments.size());
  std::vector<StatsDelta> deltas(experiments.size());
  workers = std::min(workers, experiments.size());
  if (workers <= 1) {
    for (std::size_t i = 0; i < experiments.size(); ++i) {
      run_experiment(experiments[i], outcomes[i], deltas[i]);
      apply(deltas[i]);
    }
    return outcomes;
  }

  // The realized batch schedule: the same greedy rule batch_makespan
  // models, on the same bookkeeping (BatchDispatcher) — whenever a
  // worker is free, the first not-yet-started experiment none of whose
  // endpoints is in flight starts (later experiments may overtake a
  // blocked one; their disjointness is what the batch asserts). Stats
  // are folded canonically afterwards, so the cumulative counters — and
  // with them MapStats and the identity digest — cannot depend on
  // completion order. With a virtual scheduler attached, "which
  // startable experiment does this free worker take" becomes the
  // scheduler's decision instead of canonical-first — the seam the
  // exploration harness and the agent-death tests drive. pick() runs
  // under schedule_mutex, so the scheduler sees a serialized decision
  // stream even with real worker threads.
  std::mutex schedule_mutex;
  std::condition_variable schedule_cv;
  BatchDispatcher dispatcher(experiments);

  const auto worker_loop = [&] {
    std::unique_lock<std::mutex> lock(schedule_mutex);
    while (!dispatcher.all_started()) {
      const auto ready = dispatcher.startable();
      if (ready.empty()) {
        // Everything pending conflicts with something in flight; wait
        // for a completion to free its endpoints.
        schedule_cv.wait(lock);
        continue;
      }
      std::size_t picked = ready.front();
      if (scheduler_ != nullptr) {
        testing::DecisionPoint point;
        point.point = "socket";
        point.ready.reserve(ready.size());
        for (const std::size_t i : ready) {
          std::string label = "experiment #" + std::to_string(i);
          if (!experiments[i].transfers.empty()) {
            label += " " + experiments[i].transfers.front().from + "->" +
                     experiments[i].transfers.front().to;
          }
          point.ready.push_back(testing::ReadyTask{i, std::move(label)});
        }
        picked = ready[scheduler_->pick(point)];
      }
      dispatcher.start(picked);
      lock.unlock();
      run_experiment(experiments[picked], outcomes[picked], deltas[picked]);
      lock.lock();
      dispatcher.finish(picked);
      schedule_cv.notify_all();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) threads.emplace_back(worker_loop);
  for (auto& thread : threads) thread.join();

  for (const auto& delta : deltas) apply(delta);
  return outcomes;
}

ProbeStats SocketProbeEngine::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

Result<double> SocketProbeEngine::ping_rtt(const std::string& host, int train) {
  std::vector<double> rtts;
  for (int seq = 0; seq < std::max(train, 1); ++seq) {
    const auto begin = Clock::now();
    auto reply = wire::expect_reply(
        round_trip(host, wire::WireMessage("PING").add_u64("seq", static_cast<std::uint64_t>(seq)),
                   socket_options_.frame_timeout_s),
        "PONG", "PING");
    if (!reply.ok()) return reply.error();
    auto echoed = reply.value().u64("seq");
    if (!echoed.ok()) return echoed.error();
    if (echoed.value() != static_cast<std::uint64_t>(seq)) {
      return make_error(ErrorCode::protocol, "PONG echoed the wrong sequence number");
    }
    rtts.push_back(std::chrono::duration<double>(Clock::now() - begin).count());
  }
  return stats::median(rtts);
}

Result<ProbeStats> SocketProbeEngine::agent_stats(const std::string& host) {
  auto reply = wire::expect_reply(
      round_trip(host, wire::WireMessage("STATS"), socket_options_.frame_timeout_s), "STATS-OK",
      "STATS");
  if (!reply.ok()) return reply.error();
  auto experiments = reply.value().u64("experiments");
  auto bytes = reply.value().u64("bytes");
  auto busy = reply.value().f64("busy");
  if (!experiments.ok()) return experiments.error();
  if (!bytes.ok()) return bytes.error();
  if (!busy.ok()) return busy.error();
  ProbeStats stats;
  stats.experiments = experiments.value();
  stats.bytes_sent = static_cast<std::int64_t>(bytes.value());
  stats.busy_time_s = busy.value();
  return stats;
}

}  // namespace envnws::env
