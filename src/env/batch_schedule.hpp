// The within-zone batch schedule model — and its single bookkeeping.
//
// PR 2 parallelized mapping ACROSS firewall zones; the experiments
// INSIDE a zone still execute one after another. On a switched segment,
// though, member<->member transfers with disjoint endpoint sets do not
// contend (phase 2d's verdict is exactly that observation), so a real
// probing backend can run `probe_jobs` of them at once. Everything that
// reasons about that overlap — the makespan model bench_mapping_cost
// plots, the genuinely concurrent dispatch in SocketProbeEngine::
// run_batch, and the schedule-exploration harness (src/testing/) that
// permutes dispatch interleavings — shares ONE definition of "may these
// two experiments overlap": the `BatchDispatcher` below. A divergence
// between model and realized schedule is therefore a compile error, not
// a latent race.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "env/probe_engine.hpp"

namespace envnws::testing {
class VirtualScheduler;
}  // namespace envnws::testing

namespace envnws::env {

/// The endpoint set of one experiment — the names whose network
/// adapters the experiment occupies. This is THE definition of "shares
/// an endpoint" for the disjointness rule: the schedule model below and
/// the realized schedule in SocketProbeEngine::run_batch must agree on
/// it, so both use this one helper. A transfer with a non-empty `via`
/// occupies only that adapter of its source ("host%addr"), so two
/// transfers leaving a multi-homed master through different NICs count
/// as disjoint and may overlap.
[[nodiscard]] std::vector<std::string> experiment_endpoints(const ProbeExperiment& experiment);

/// The endpoint-constrained dispatch bookkeeping of one batch: which
/// experiments have started/finished and which endpoints are in flight.
/// Callers (the makespan model, the socket engine's worker loop, the
/// virtual dispatcher) own WHEN to start and finish; the dispatcher
/// owns WHAT is legal and records the first violation of the contract —
/// starting a conflicting or already-started experiment, finishing one
/// that never started — instead of asserting, so the exploration
/// harness can surface an injected bug as a diagnosable error.
///
/// Not internally synchronized: concurrent users (the socket engine)
/// hold their own mutex around every call.
class BatchDispatcher {
 public:
  explicit BatchDispatcher(const std::vector<ProbeExperiment>& experiments);

  /// Experiments that may start NOW, in canonical order: not yet
  /// started and none of their endpoints in flight (later experiments
  /// may overtake a blocked one — their mutual disjointness is exactly
  /// what the batch asserts).
  [[nodiscard]] std::vector<std::size_t> startable() const;

  void start(std::size_t index);
  void finish(std::size_t index);

  [[nodiscard]] std::size_t size() const { return endpoints_.size(); }
  [[nodiscard]] bool all_started() const { return unstarted_ == 0; }
  [[nodiscard]] bool all_finished() const { return unstarted_ == 0 && in_flight_ == 0; }
  [[nodiscard]] std::size_t in_flight() const { return in_flight_; }
  [[nodiscard]] const std::vector<std::string>& endpoints_of(std::size_t index) const {
    return endpoints_[index];
  }

  /// First contract violation, if any (sticky).
  [[nodiscard]] Status health() const {
    return violation_.has_value() ? Status(*violation_) : Status();
  }

 private:
  void violate(std::string message);

  std::vector<std::vector<std::string>> endpoints_;
  std::vector<bool> started_;
  std::vector<bool> finished_;
  std::map<std::string, int> busy_;
  std::size_t unstarted_ = 0;
  std::size_t in_flight_ = 0;
  std::optional<Error> violation_;
};

/// Makespan of running `experiments[i]` (taking `durations[i]` seconds)
/// over `workers` concurrent slots. Greedy event-driven list scheduling
/// in canonical order: whenever a slot is free, the first startable
/// experiment (BatchDispatcher::startable) starts. Experiments sharing
/// an endpoint therefore serialize — a batch that all pivots on the
/// master (phase 2a/2b) degenerates to the sequential sum no matter how
/// many workers — and `workers <= 1` is exactly the sequential sum by
/// construction.
[[nodiscard]] double batch_makespan(const std::vector<ProbeExperiment>& experiments,
                                    const std::vector<double>& durations, std::size_t workers);

/// Tunables of run_batch_virtual. The injection flag exists ONLY for
/// the exploration harness's self-test: it plants the classic
/// "results indexed by completion order" bug so the test suite can
/// prove the explorer catches and shrinks exactly this class of defect.
/// Production callers always pass the default.
struct VirtualBatchOptions {
  bool inject_completion_order_bug = false;
};

/// The schedule-exploration seam of the batch executor: measure the
/// batch through the engine in canonical order (the run_batch contract
/// — the experiment stream, recorded traces and digests stay
/// bit-identical), then drive the REAL dispatch bookkeeping
/// (BatchDispatcher) through every decision the OS would normally make:
/// which startable experiment a free worker picks up, and which
/// in-flight experiment completes first. Both are `scheduler` choices,
/// so a test replays any interleaving from a `sched:` string and the
/// explorer enumerates them. Dispatch-invariant violations (conflict,
/// lost/duplicated experiment, deadlock, i.e. nothing startable and
/// nothing in flight while work remains) are reported as faults on the
/// scheduler; the returned outcomes are reassembled into canonical
/// slots exactly like SocketProbeEngine does — which is the property
/// the harness exists to check.
std::vector<ProbeExperimentOutcome> run_batch_virtual(
    ProbeEngine& engine, const std::vector<ProbeExperiment>& experiments, std::size_t workers,
    testing::VirtualScheduler& scheduler, const VirtualBatchOptions& options = {});

}  // namespace envnws::env
