// The within-zone batch schedule model.
//
// PR 2 parallelized mapping ACROSS firewall zones; the experiments
// INSIDE a zone still execute one after another. On a switched segment,
// though, member<->member transfers with disjoint endpoint sets do not
// contend (phase 2d's verdict is exactly that observation), so a real
// probing backend could run `probe_jobs` of them at once. The engines in
// this repo stay sequential — the simulator measures each experiment
// with the network otherwise idle, trace engines must preserve record
// order — so the mapper *models* the concurrent schedule instead: list
// scheduling of the measured per-experiment durations over `workers`
// slots, under the constraint that experiments sharing an endpoint
// never overlap. That model is what `bench_mapping_cost --jobs` plots
// and what a socket-backed `ProbeEngine::run_batch` would realize.
#pragma once

#include <cstddef>
#include <vector>

#include "env/probe_engine.hpp"

namespace envnws::env {

/// The endpoint set of one experiment — the names whose network
/// adapters the experiment occupies. This is THE definition of "shares
/// an endpoint" for the disjointness rule: the schedule model below and
/// the realized schedule in SocketProbeEngine::run_batch must agree on
/// it, so both use this one helper.
[[nodiscard]] std::vector<std::string> experiment_endpoints(const ProbeExperiment& experiment);

/// Makespan of running `experiments[i]` (taking `durations[i]` seconds)
/// over `workers` concurrent slots. Greedy event-driven list scheduling
/// in canonical order: whenever a slot is free, the first not-yet-run
/// experiment none of whose endpoints is currently in use starts.
/// Experiments sharing an endpoint therefore serialize — a batch that
/// all pivots on the master (phase 2a/2b) degenerates to the sequential
/// sum no matter how many workers — and `workers <= 1` is exactly the
/// sequential sum by construction.
[[nodiscard]] double batch_makespan(const std::vector<ProbeExperiment>& experiments,
                                    const std::vector<double>& durations, std::size_t workers);

}  // namespace envnws::env
