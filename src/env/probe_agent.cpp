#include "env/probe_agent.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <sstream>

namespace envnws::env {

namespace {

using Clock = std::chrono::steady_clock;

/// Deterministic bulk payload chunk (the bytes themselves carry no
/// information; the transfer's size and timing do).
const std::array<char, 64 * 1024>& payload_chunk() {
  static const std::array<char, 64 * 1024> chunk = [] {
    std::array<char, 64 * 1024> filled{};
    filled.fill('e');
    return filled;
  }();
  return chunk;
}

double elapsed_s(Clock::time_point since) {
  return std::chrono::duration<double>(Clock::now() - since).count();
}

void sleep_s(double seconds) {
  if (seconds > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
}

/// Serialize a property map as `k:v,k:v` with each key/value
/// individually escaped (the whole field is escaped once more by the
/// frame serializer; the engine unescapes the pieces after splitting).
std::string encode_properties(const std::map<std::string, std::string>& properties) {
  std::string out;
  for (const auto& [key, value] : properties) {
    if (!out.empty()) out += ',';
    out += wire::escape(key);
    out += ':';
    out += wire::escape(value);
  }
  return out;
}

}  // namespace

ProbeAgent::ProbeAgent(ProbeAgentConfig config) : config_(std::move(config)) {}

ProbeAgent::~ProbeAgent() { stop(); }

Status ProbeAgent::start() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (running_) return make_error(ErrorCode::invalid_argument, "probe agent already running");
    stopping_ = false;
  }
  auto listener = wire::TcpListener::listen(config_.listen_address, config_.port);
  if (!listener.ok()) return listener.error();
  listener_ = std::move(listener.value());
  port_ = listener_.port();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    running_ = true;
  }
  acceptor_ = std::thread([this] { accept_loop(); });
  return {};
}

void ProbeAgent::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_ && !acceptor_.joinable()) return;
    stopping_ = true;
    // shutdown() (not close) wakes threads blocked on these sockets;
    // each fd stays owned — and is eventually closed — by its serving
    // thread, under this mutex, so no fd is ever recycled under a
    // concurrent operation.
    for (auto& conn : conns_) conn->socket.shutdown_both();
  }
  // The acceptor polls with a short timeout and re-checks stopping_, so
  // it exits on its own; joining BEFORE closing the listener keeps the
  // listener fd from being closed under the acceptor's poll().
  if (acceptor_.joinable()) acceptor_.join();
  listener_.close_fd();
  // After the acceptor exits no new connections appear; join the rest.
  std::vector<std::unique_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    conns.swap(conns_);
    running_ = false;
  }
  for (auto& conn : conns) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

bool ProbeAgent::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

ProbeStats ProbeAgent::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void ProbeAgent::accept_loop() {
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return;
    }
    auto accepted = listener_.accept(0.25);
    if (!accepted.ok()) {
      if (accepted.error().code == ErrorCode::timeout) continue;
      return;  // listener closed (stop()) or fatal
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    auto conn = std::make_unique<Connection>();
    conn->socket = std::move(accepted.value());
    conns_.push_back(std::move(conn));
    const std::size_t slot = conns_.size() - 1;
    conns_.back()->thread = std::thread([this, slot] { serve_connection(slot); });
  }
}

void ProbeAgent::serve_connection(std::size_t slot) {
  Connection* conn = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    conn = conns_[slot].get();
  }
  wire::FrameBuffer buffer;
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) break;
    }
    auto payload = wire::recv_frame(conn->socket, buffer, config_.io_timeout_s);
    if (!payload.ok()) {
      // A malformed stream earns one diagnostic ERR before the
      // connection dies (the frame boundary is lost, so nothing more
      // can be parsed); closed/timed-out peers just end the session.
      if (payload.error().code == ErrorCode::protocol) {
        (void)wire::send_frame(conn->socket, wire::error_payload(payload.error()), 1.0);
      }
      break;
    }
    auto message = wire::WireMessage::parse(payload.value());
    std::string reply;
    if (!message.ok()) {
      // Frame boundaries survive a bad payload: report and keep serving.
      reply = wire::error_payload(message.error());
    } else {
      reply = handle(message.value(), conn->socket, buffer);
    }
    if (reply.empty()) break;  // handler already tore the stream down
    if (!wire::send_frame(conn->socket, reply, config_.io_timeout_s).ok()) break;
  }
  // Close under the mutex: stop() shutdown()s these sockets from
  // another thread, and fd_ must not change under it.
  std::lock_guard<std::mutex> lock(mutex_);
  conn->socket.close_fd();
  conn->done = true;
}

std::string ProbeAgent::handle(const wire::WireMessage& message, wire::TcpSocket& socket,
                               wire::FrameBuffer& buffer) {
  if (message.type == "HELLO") {
    wire::WireMessage reply("HELLO-OK");
    reply.add("name", config_.name);
    reply.add("fqdn", config_.fqdn);
    reply.add("ip", config_.ip);
    if (!config_.properties.empty()) reply.add("props", encode_properties(config_.properties));
    reply.add_f64("rate", config_.fixed_rate_bps);
    return reply.serialize();
  }
  if (message.type == "PING") {
    auto seq = message.u64("seq");
    if (!seq.ok()) return wire::error_payload(seq.error());
    return wire::WireMessage("PONG").add_u64("seq", seq.value()).serialize();
  }
  if (message.type == "STATS") {
    const ProbeStats stats = this->stats();
    wire::WireMessage reply("STATS-OK");
    reply.add_u64("experiments", stats.experiments);
    reply.add_u64("bytes", static_cast<std::uint64_t>(std::max<std::int64_t>(stats.bytes_sent, 0)));
    reply.add_f64("busy", stats.busy_time_s);
    return reply.serialize();
  }
  if (message.type == "BWXFER") return handle_bwxfer(message);
  if (message.type == "BULK") return handle_bulk(message, socket, buffer);
  return wire::error_payload(
      make_error(ErrorCode::protocol, "unknown frame type '" + message.type + "'"));
}

std::string ProbeAgent::handle_bwxfer(const wire::WireMessage& message) {
  const std::string to = message.get("to");
  auto port = message.u64("port");
  auto bytes = message.u64("bytes");
  auto streams = message.has("streams") ? message.u64("streams") : Result<std::uint64_t>(1);
  if (to.empty()) {
    return wire::error_payload(make_error(ErrorCode::protocol, "BWXFER carries no 'to' field"));
  }
  if (!port.ok()) return wire::error_payload(port.error());
  if (!bytes.ok()) return wire::error_payload(bytes.error());
  if (!streams.ok()) return wire::error_payload(streams.error());
  if (port.value() == 0 || port.value() > 65535) {
    return wire::error_payload(make_error(ErrorCode::protocol, "BWXFER port out of range"));
  }
  if (bytes.value() == 0 || bytes.value() > static_cast<std::uint64_t>(wire::kMaxBulkBytes)) {
    return wire::error_payload(make_error(ErrorCode::protocol, "BWXFER bytes out of range"));
  }
  if (streams.value() == 0 || streams.value() > 1024) {
    return wire::error_payload(make_error(ErrorCode::protocol, "BWXFER streams out of range"));
  }

  auto peer = wire::TcpSocket::dial(to, static_cast<std::uint16_t>(port.value()),
                                    config_.io_timeout_s);
  if (!peer.ok()) {
    Error error = peer.error();
    error.message = "peer " + to + ":" + std::to_string(port.value()) + ": " + error.message;
    return wire::error_payload(error);
  }
  wire::WireMessage bulk("BULK");
  bulk.add_u64("bytes", bytes.value());
  bulk.add_u64("streams", streams.value());
  if (auto sent = wire::send_frame(peer.value(), bulk.serialize(), config_.io_timeout_s);
      !sent.ok()) {
    return wire::error_payload(sent.error());
  }
  std::uint64_t left = bytes.value();
  const auto& chunk = payload_chunk();
  while (left > 0) {
    const std::size_t piece = static_cast<std::size_t>(
        std::min<std::uint64_t>(left, chunk.size()));
    if (auto sent = peer.value().send_all(std::string_view(chunk.data(), piece),
                                          config_.io_timeout_s);
        !sent.ok()) {
      return wire::error_payload(sent.error());
    }
    left -= piece;
  }
  wire::FrameBuffer peer_buffer;
  auto verdict = wire::recv_message(peer.value(), peer_buffer, config_.io_timeout_s);
  if (!verdict.ok()) return wire::error_payload(verdict.error());
  Error peer_error;
  if (wire::is_error(verdict.value(), peer_error)) return wire::error_payload(peer_error);
  if (verdict.value().type != "BULK-OK") {
    return wire::error_payload(make_error(
        ErrorCode::protocol, "unexpected peer reply '" + verdict.value().type + "' to BULK"));
  }
  auto seconds = verdict.value().f64("seconds");
  if (!seconds.ok()) return wire::error_payload(seconds.error());
  if (!(seconds.value() > 0.0)) {
    return wire::error_payload(make_error(ErrorCode::protocol, "BULK-OK seconds out of range"));
  }
  const double bps = static_cast<double>(bytes.value()) * 8.0 / seconds.value();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.experiments;
    stats_.bytes_sent += static_cast<std::int64_t>(bytes.value());
    stats_.busy_time_s += seconds.value();
  }
  wire::WireMessage reply("BWXFER-OK");
  reply.add_f64("bps", bps);
  reply.add_f64("seconds", seconds.value());
  reply.add_u64("bytes", bytes.value());
  return reply.serialize();
}

std::string ProbeAgent::handle_bulk(const wire::WireMessage& message, wire::TcpSocket& socket,
                                    wire::FrameBuffer& buffer) {
  auto bytes = message.u64("bytes");
  auto streams = message.has("streams") ? message.u64("streams") : Result<std::uint64_t>(1);
  if (!bytes.ok()) return wire::error_payload(bytes.error());
  if (!streams.ok()) return wire::error_payload(streams.error());
  if (bytes.value() == 0 || bytes.value() > static_cast<std::uint64_t>(wire::kMaxBulkBytes)) {
    return wire::error_payload(make_error(ErrorCode::protocol, "BULK bytes out of range"));
  }
  if (streams.value() == 0 || streams.value() > 1024) {
    return wire::error_payload(make_error(ErrorCode::protocol, "BULK streams out of range"));
  }
  const auto begin = Clock::now();
  // The payload follows the frame as raw bytes: drain whatever the
  // frame decoder already buffered, then sink the rest off the socket.
  std::uint64_t left = bytes.value();
  left -= buffer.take_raw(static_cast<std::size_t>(left)).size();
  std::array<char, 64 * 1024> sink;
  while (left > 0) {
    const std::size_t want =
        static_cast<std::size_t>(std::min<std::uint64_t>(left, sink.size()));
    auto got = socket.recv_some(sink.data(), want, config_.io_timeout_s);
    if (!got.ok()) return wire::error_payload(got.error());
    left -= got.value();
  }
  double seconds = std::max(elapsed_s(begin), 1e-9);
  if (config_.fixed_rate_bps > 0.0) {
    // A usable_fraction below 1.0 models TCP overhead (lv08: payload
    // extracts 97% of the raw rate), stretching the reported time.
    const double goodput_bps =
        config_.fixed_rate_bps * std::clamp(config_.usable_fraction, 1e-6, 1.0);
    const double modeled = static_cast<double>(bytes.value()) * 8.0 *
                           static_cast<double>(streams.value()) / goodput_bps;
    if (config_.pace) sleep_s(modeled - seconds);
    seconds = modeled;
  }
  wire::WireMessage reply("BULK-OK");
  reply.add_f64("seconds", seconds);
  reply.add_u64("bytes", bytes.value());
  return reply.serialize();
}

}  // namespace envnws::env
