// Compatibility wrappers: the original one-call pipeline entry points,
// now thin shims over the staged api::Session.
#include "core/autodeploy.hpp"

#include <sstream>
#include <utility>

#include "api/session.hpp"
#include "common/strings.hpp"

namespace envnws::core {

namespace {

api::SessionOptions to_session_options(const AutoDeployOptions& options) {
  api::SessionOptions session_options;
  session_options.mapper = options.mapper;
  session_options.planner = options.planner;
  session_options.manager = options.manager;
  session_options.validator = options.validator;
  return session_options;
}

Result<AutoDeployResult> harvest(api::Session& session, bool validated) {
  AutoDeployResult result;
  result.map = std::move(session.map_result());
  result.plan = std::move(session.plan_result());
  result.config_text = session.config_text();
  result.system = session.take_system();
  result.queries = session.take_queries();
  if (validated) result.validation = session.validation();
  return result;
}

}  // namespace

Result<AutoDeployResult> auto_deploy(simnet::Network& net, const simnet::Scenario& scenario,
                                     AutoDeployOptions options) {
  api::Session session(net, scenario, to_session_options(options));
  auto status = session.run_all(options.validate);
  if (!status.ok()) return status.error();
  return harvest(session, options.validate);
}

Result<AutoDeployResult> deploy_from_gridml(simnet::Network& net,
                                            const std::string& gridml_text,
                                            const std::string& master,
                                            AutoDeployOptions options) {
  api::Session session(net, to_session_options(options));
  auto loaded = session.load_map_from_gridml(gridml_text, master);
  if (!loaded.ok()) return loaded.error();
  auto status = session.run_all(options.validate);
  if (!status.ok()) return status.error();
  return harvest(session, options.validate);
}

std::string AutoDeployResult::render() const {
  std::ostringstream out;
  out << "=== ENV effective view (master: " << map.master_fqdn << ") ===\n";
  out << env::render_effective(map.root);
  out << "\nENV mapping cost: " << map.stats.experiments << " experiments, "
      << strings::format_double(static_cast<double>(map.stats.bytes_sent) / (1024.0 * 1024.0),
                                1)
      << " MiB injected, " << strings::format_double(map.stats.duration_s / 60.0, 1)
      << " simulated minutes\n";
  out << "\n=== deployment plan ===\n" << plan.render();
  out << "\n=== validation ===\n" << validation.render();
  return out.str();
}

}  // namespace envnws::core
