#include "core/autodeploy.hpp"

#include <algorithm>
#include <sstream>

#include "common/strings.hpp"
#include "common/units.hpp"
#include "env/scenario_zones.hpp"
#include "env/sim_probe_engine.hpp"

namespace envnws::core {

Result<AutoDeployResult> auto_deploy(simnet::Network& net, const simnet::Scenario& scenario,
                                     AutoDeployOptions options) {
  AutoDeployResult result;

  // --- phase 1: map the platform with ENV -------------------------------
  env::SimProbeEngine engine(net, options.mapper);
  env::Mapper mapper(engine, options.mapper);
  const auto zones = env::zones_from_scenario(scenario);
  const auto aliases = env::gateway_aliases_from_scenario(scenario);
  auto map = mapper.map(zones, aliases);
  if (!map.ok()) return map.error();
  result.map = std::move(map.value());

  // --- phase 2: deployment planning --------------------------------------
  auto plan = deploy::plan_deployment(result.map, options.planner);
  if (!plan.ok()) return plan.error();
  result.plan = std::move(plan.value());
  result.config_text = deploy::generate_config(result.plan);

  // --- phase 3: apply the plan -------------------------------------------
  auto system = deploy::apply_plan(result.plan, net, options.manager);
  if (!system.ok()) return system.error();
  result.system = std::move(system.value());
  result.queries = std::make_unique<deploy::QueryService>(*result.system, result.plan);

  // --- phase 4: verify the deployment constraints -------------------------
  if (options.validate) {
    options.validator.bandwidth_probe_bytes = options.manager.bandwidth_probe_bytes;
    result.validation = deploy::validate_plan(result.plan, net, options.validator);
  }
  return result;
}

Result<AutoDeployResult> deploy_from_gridml(simnet::Network& net,
                                            const std::string& gridml_text,
                                            const std::string& master,
                                            AutoDeployOptions options) {
  AutoDeployResult result;

  auto grid = gridml::GridDoc::parse(gridml_text);
  if (!grid.ok()) return grid.error();
  if (grid.value().networks.empty()) {
    return make_error(ErrorCode::invalid_argument,
                      "published GridML carries no NETWORK tree");
  }
  result.map.grid = std::move(grid.value());
  // The merged effective view is the last NETWORK element by convention
  // (Mapper::map appends it after the per-zone SITE data).
  result.map.root = env::EnvNetwork::from_gridml(result.map.grid.networks.back());
  result.map.master_fqdn = result.map.canonical(master);

  auto plan = deploy::plan_from_tree(result.map.root, result.map.master_fqdn,
                                     options.planner);
  if (!plan.ok()) return plan.error();
  result.plan = std::move(plan.value());
  // Without zone information, place one memory on the master and one on
  // each gateway of the published view (the site heads).
  for (const auto& gateway : result.map.root.gateways()) {
    if (std::find(result.plan.memory_hosts.begin(), result.plan.memory_hosts.end(),
                  gateway) == result.plan.memory_hosts.end()) {
      result.plan.memory_hosts.push_back(gateway);
    }
  }
  result.config_text = deploy::generate_config(result.plan);

  auto system = deploy::apply_plan(result.plan, net, options.manager);
  if (!system.ok()) return system.error();
  result.system = std::move(system.value());
  result.queries = std::make_unique<deploy::QueryService>(*result.system, result.plan);

  if (options.validate) {
    options.validator.bandwidth_probe_bytes = options.manager.bandwidth_probe_bytes;
    result.validation = deploy::validate_plan(result.plan, net, options.validator);
  }
  return result;
}

std::string AutoDeployResult::render() const {
  std::ostringstream out;
  out << "=== ENV effective view (master: " << map.master_fqdn << ") ===\n";
  out << env::render_effective(map.root);
  out << "\nENV mapping cost: " << map.stats.experiments << " experiments, "
      << strings::format_double(static_cast<double>(map.stats.bytes_sent) / (1024.0 * 1024.0),
                                1)
      << " MiB injected, " << strings::format_double(map.stats.duration_s / 60.0, 1)
      << " simulated minutes\n";
  out << "\n=== deployment plan ===\n" << plan.render();
  out << "\n=== validation ===\n" << validation.render();
  return out.str();
}

}  // namespace envnws::core
