// The end-to-end automatic deployment pipeline — what the paper's title
// promises: map the platform with ENV, derive an NWS deployment plan,
// apply it, and verify the four deployment constraints hold.
//
// These one-call entry points are compatibility wrappers over the staged
// api::Session (api/session.hpp), which is the surface to use when you
// need intermediate results, stage reuse, progress events, or a custom
// probe backend.
#pragma once

#include <memory>
#include <string>

#include "common/result.hpp"
#include "deploy/manager.hpp"
#include "deploy/plan.hpp"
#include "deploy/planner.hpp"
#include "deploy/query.hpp"
#include "deploy/validate.hpp"
#include "env/mapper.hpp"
#include "env/options.hpp"
#include "simnet/scenario.hpp"

namespace envnws::core {

struct AutoDeployOptions {
  env::MapperOptions mapper;
  deploy::PlannerOptions planner;
  deploy::ManagerOptions manager;
  deploy::ValidatorOptions validator;
  /// Run the constraint validator after applying the plan.
  bool validate = true;
};

struct AutoDeployResult {
  env::MapResult map;                            ///< the effective view
  deploy::DeploymentPlan plan;                   ///< the derived plan
  std::string config_text;                       ///< the shared manager config
  std::unique_ptr<nws::NwsSystem> system;        ///< the running NWS
  std::unique_ptr<deploy::QueryService> queries; ///< completeness layer
  deploy::ValidationReport validation;

  /// One-page report of everything that happened.
  [[nodiscard]] std::string render() const;
};

/// Map -> plan -> apply -> validate, on a simulated platform. Zones and
/// gateway aliases are derived from the scenario (the real-world operator
/// writes them by hand, §4.3).
Result<AutoDeployResult> auto_deploy(simnet::Network& net, const simnet::Scenario& scenario,
                                     AutoDeployOptions options = {});

/// Deploy from a *published* effective view without re-probing — the
/// workflow §4.3 proposes against ENV's bandwidth waste: "administrators
/// could publish the mapping of their network as reported by ENV, so
/// that any user can use it without redoing the mapping." Takes the
/// GridML text of a previous run (any `MapResult::grid.to_string()`),
/// plans from its NETWORK tree, applies and validates. Memory servers
/// are placed on the master and on every gateway named in the view.
Result<AutoDeployResult> deploy_from_gridml(simnet::Network& net,
                                            const std::string& gridml_text,
                                            const std::string& master,
                                            AutoDeployOptions options = {});

}  // namespace envnws::core
