// Minimal XML document model, writer and parser.
//
// GridML (the output format of ENV, paper §4) only uses elements and
// attributes — no mixed content, namespaces or CDATA — so this parser
// supports exactly that subset plus declarations, comments and the five
// predefined entities. It exists so the repository has no external
// dependencies; it is not a general-purpose XML library.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.hpp"

namespace envnws::gridml {

class XmlElement {
 public:
  XmlElement() = default;
  explicit XmlElement(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // Attributes keep insertion order (GridML output is diffed in tests).
  void set_attribute(const std::string& key, const std::string& value);
  [[nodiscard]] bool has_attribute(const std::string& key) const;
  [[nodiscard]] std::string attribute(const std::string& key,
                                      const std::string& fallback = "") const;
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>& attributes() const {
    return attributes_;
  }

  XmlElement& add_child(XmlElement child);
  [[nodiscard]] const std::vector<XmlElement>& children() const { return children_; }
  [[nodiscard]] std::vector<XmlElement>& children() { return children_; }
  /// First child with the given element name, or nullptr.
  [[nodiscard]] const XmlElement* first_child(const std::string& name) const;
  [[nodiscard]] std::vector<const XmlElement*> children_named(const std::string& name) const;

  /// Serialize with 2-space indentation and escaped attribute values.
  [[nodiscard]] std::string to_string(int indent = 0) const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> attributes_;
  std::vector<XmlElement> children_;
};

/// Parse a document; returns its root element. Accepts an optional
/// `<?xml ...?>` declaration and comments anywhere.
Result<XmlElement> parse_xml(const std::string& text);

/// Serialize with the standard declaration line prepended.
[[nodiscard]] std::string to_document_string(const XmlElement& root);

/// Escape &<>"' for use inside attribute values.
[[nodiscard]] std::string xml_escape(const std::string& text);

}  // namespace envnws::gridml
