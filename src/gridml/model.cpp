#include "gridml/model.hpp"

#include <algorithm>

namespace envnws::gridml {

bool Machine::answers_to(const std::string& any_name) const {
  if (name == any_name) return true;
  return std::find(aliases.begin(), aliases.end(), any_name) != aliases.end();
}

std::optional<std::string> Machine::property(const std::string& key) const {
  for (const auto& prop : properties) {
    if (prop.name == key) return prop.value;
  }
  return std::nullopt;
}

const char* to_string(NetworkType type) {
  switch (type) {
    case NetworkType::structural: return "Structural";
    case NetworkType::env_shared: return "ENV_Shared";
    case NetworkType::env_switched: return "ENV_Switched";
    case NetworkType::env_inconclusive: return "ENV_Inconclusive";
  }
  return "?";
}

Result<NetworkType> network_type_from_string(const std::string& text) {
  if (text == "Structural" || text.empty()) return NetworkType::structural;
  if (text == "ENV_Shared") return NetworkType::env_shared;
  if (text == "ENV_Switched") return NetworkType::env_switched;
  if (text == "ENV_Inconclusive") return NetworkType::env_inconclusive;
  return make_error(ErrorCode::protocol, "unknown NETWORK type '" + text + "'");
}

std::optional<std::string> NetworkNode::property(const std::string& key) const {
  for (const auto& prop : properties) {
    if (prop.name == key) return prop.value;
  }
  return std::nullopt;
}

std::vector<std::string> NetworkNode::all_machine_names() const {
  std::vector<std::string> out = machine_names;
  for (const auto& child : children) {
    const auto nested = child.all_machine_names();
    out.insert(out.end(), nested.begin(), nested.end());
  }
  return out;
}

const Machine* GridDoc::find_machine(const std::string& any_name) const {
  for (const auto& site : sites) {
    for (const auto& machine : site.machines) {
      if (machine.answers_to(any_name)) return &machine;
    }
  }
  return nullptr;
}

Machine* GridDoc::find_machine(const std::string& any_name) {
  return const_cast<Machine*>(std::as_const(*this).find_machine(any_name));
}

std::size_t GridDoc::machine_count() const {
  std::size_t count = 0;
  for (const auto& site : sites) count += site.machines.size();
  return count;
}

namespace {

XmlElement property_to_xml(const Property& prop) {
  XmlElement element("PROPERTY");
  element.set_attribute("name", prop.name);
  element.set_attribute("value", prop.value);
  if (!prop.units.empty()) element.set_attribute("units", prop.units);
  return element;
}

XmlElement machine_to_xml(const Machine& machine) {
  XmlElement element("MACHINE");
  XmlElement label("LABEL");
  if (!machine.ip.empty()) label.set_attribute("ip", machine.ip);
  label.set_attribute("name", machine.name);
  for (const auto& alias : machine.aliases) {
    XmlElement alias_el("ALIAS");
    alias_el.set_attribute("name", alias);
    label.add_child(std::move(alias_el));
  }
  element.add_child(std::move(label));
  for (const auto& prop : machine.properties) element.add_child(property_to_xml(prop));
  return element;
}

XmlElement network_to_xml(const NetworkNode& network) {
  XmlElement element("NETWORK");
  element.set_attribute("type", to_string(network.type));
  if (!network.label_name.empty() || !network.label_ip.empty()) {
    XmlElement label("LABEL");
    if (!network.label_ip.empty()) label.set_attribute("ip", network.label_ip);
    if (!network.label_name.empty()) label.set_attribute("name", network.label_name);
    element.add_child(std::move(label));
  }
  for (const auto& prop : network.properties) element.add_child(property_to_xml(prop));
  for (const auto& machine : network.machine_names) {
    XmlElement machine_el("MACHINE");
    machine_el.set_attribute("name", machine);
    element.add_child(std::move(machine_el));
  }
  for (const auto& child : network.children) element.add_child(network_to_xml(child));
  return element;
}

Property property_from_xml(const XmlElement& element) {
  return Property{element.attribute("name"), element.attribute("value"),
                  element.attribute("units")};
}

Result<Machine> machine_from_xml(const XmlElement& element) {
  Machine machine;
  const XmlElement* label = element.first_child("LABEL");
  if (label == nullptr) {
    // Reference-style MACHINE (inside NETWORK): only a name attribute.
    machine.name = element.attribute("name");
    if (machine.name.empty()) {
      return make_error(ErrorCode::protocol, "MACHINE without LABEL or name");
    }
    return machine;
  }
  machine.name = label->attribute("name");
  machine.ip = label->attribute("ip");
  for (const XmlElement* alias : label->children_named("ALIAS")) {
    machine.aliases.push_back(alias->attribute("name"));
  }
  for (const XmlElement* prop : element.children_named("PROPERTY")) {
    machine.properties.push_back(property_from_xml(*prop));
  }
  return machine;
}

Result<NetworkNode> network_from_xml(const XmlElement& element) {
  NetworkNode network;
  auto type = network_type_from_string(element.attribute("type"));
  if (!type.ok()) return type.error();
  network.type = type.value();
  if (const XmlElement* label = element.first_child("LABEL")) {
    network.label_name = label->attribute("name");
    network.label_ip = label->attribute("ip");
  }
  for (const XmlElement* prop : element.children_named("PROPERTY")) {
    network.properties.push_back(property_from_xml(*prop));
  }
  for (const XmlElement* machine : element.children_named("MACHINE")) {
    // Inside NETWORK, machines are references by name.
    const XmlElement* label = machine->first_child("LABEL");
    network.machine_names.push_back(label != nullptr ? label->attribute("name")
                                                     : machine->attribute("name"));
  }
  for (const XmlElement* child : element.children_named("NETWORK")) {
    auto parsed = network_from_xml(*child);
    if (!parsed.ok()) return parsed;
    network.children.push_back(std::move(parsed.value()));
  }
  return network;
}

}  // namespace

XmlElement GridDoc::to_xml() const {
  XmlElement root("GRID");
  if (!label.empty()) {
    XmlElement label_el("LABEL");
    label_el.set_attribute("name", label);
    root.add_child(std::move(label_el));
  }
  for (const auto& site : sites) {
    XmlElement site_el("SITE");
    site_el.set_attribute("domain", site.domain);
    if (!site.label.empty()) {
      XmlElement label_el("LABEL");
      label_el.set_attribute("name", site.label);
      site_el.add_child(std::move(label_el));
    }
    for (const auto& machine : site.machines) site_el.add_child(machine_to_xml(machine));
    root.add_child(std::move(site_el));
  }
  for (const auto& network : networks) root.add_child(network_to_xml(network));
  return root;
}

std::string GridDoc::to_string() const { return to_document_string(to_xml()); }

Result<GridDoc> GridDoc::from_xml(const XmlElement& root) {
  if (root.name() != "GRID") {
    return make_error(ErrorCode::protocol, "root element is not GRID");
  }
  GridDoc doc;
  if (const XmlElement* label = root.first_child("LABEL")) {
    doc.label = label->attribute("name");
  }
  for (const XmlElement* site_el : root.children_named("SITE")) {
    Site site;
    site.domain = site_el->attribute("domain");
    if (const XmlElement* label = site_el->first_child("LABEL")) {
      site.label = label->attribute("name");
    }
    for (const XmlElement* machine_el : site_el->children_named("MACHINE")) {
      auto machine = machine_from_xml(*machine_el);
      if (!machine.ok()) return machine.error();
      site.machines.push_back(std::move(machine.value()));
    }
    doc.sites.push_back(std::move(site));
  }
  for (const XmlElement* network_el : root.children_named("NETWORK")) {
    auto network = network_from_xml(*network_el);
    if (!network.ok()) return network.error();
    doc.networks.push_back(std::move(network.value()));
  }
  return doc;
}

Result<GridDoc> GridDoc::parse(const std::string& text) {
  auto root = parse_xml(text);
  if (!root.ok()) return root.error();
  return from_xml(root.value());
}

}  // namespace envnws::gridml
