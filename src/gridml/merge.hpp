// Merging per-firewall-zone GridML documents (paper §4.3, "Firewalls").
//
// When machines cannot all talk to each other, ENV runs once per zone and
// the results are merged: a new GRID containing both SITEs is created and
// the gateway machines — which appear in both runs under different names —
// get each other's names as ALIASes. "This operation is often as simple
// as a file concatenation. The only information the user has to provide
// is the several aliases of the gateway machines."
#pragma once

#include <string>
#include <vector>

#include "common/result.hpp"
#include "gridml/model.hpp"

namespace envnws::gridml {

/// One gateway's identities across zones, e.g.
/// {"popc.ens-lyon.fr", "popc0.popc.private"}.
using AliasGroup = std::vector<std::string>;

/// Merge `docs` into one document. Every alias group links machines that
/// are physically the same box; their alias lists are unioned so lookups
/// under either name resolve to the merged machine. Site lists are
/// concatenated; NETWORK trees are concatenated (the env::merge layer
/// does the semantic reconciliation of ENV networks).
Result<GridDoc> merge(const std::vector<GridDoc>& docs,
                      const std::vector<AliasGroup>& gateway_aliases,
                      const std::string& merged_label = "Grid1");

}  // namespace envnws::gridml
