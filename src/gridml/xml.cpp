#include "gridml/xml.hpp"

#include <cctype>
#include <sstream>

namespace envnws::gridml {

void XmlElement::set_attribute(const std::string& key, const std::string& value) {
  for (auto& [existing_key, existing_value] : attributes_) {
    if (existing_key == key) {
      existing_value = value;
      return;
    }
  }
  attributes_.emplace_back(key, value);
}

bool XmlElement::has_attribute(const std::string& key) const {
  for (const auto& [existing_key, value] : attributes_) {
    if (existing_key == key) return true;
  }
  return false;
}

std::string XmlElement::attribute(const std::string& key, const std::string& fallback) const {
  for (const auto& [existing_key, value] : attributes_) {
    if (existing_key == key) return value;
  }
  return fallback;
}

XmlElement& XmlElement::add_child(XmlElement child) {
  children_.push_back(std::move(child));
  return children_.back();
}

const XmlElement* XmlElement::first_child(const std::string& name) const {
  for (const auto& child : children_) {
    if (child.name() == name) return &child;
  }
  return nullptr;
}

std::vector<const XmlElement*> XmlElement::children_named(const std::string& name) const {
  std::vector<const XmlElement*> out;
  for (const auto& child : children_) {
    if (child.name() == name) out.push_back(&child);
  }
  return out;
}

std::string xml_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string XmlElement::to_string(int indent) const {
  std::ostringstream out;
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  out << pad << '<' << name_;
  for (const auto& [key, value] : attributes_) {
    out << ' ' << key << "=\"" << xml_escape(value) << '"';
  }
  if (children_.empty()) {
    out << " />\n";
    return out.str();
  }
  out << ">\n";
  for (const auto& child : children_) out << child.to_string(indent + 1);
  out << pad << "</" << name_ << ">\n";
  return out.str();
}

std::string to_document_string(const XmlElement& root) {
  return "<?xml version=\"1.0\"?>\n" + root.to_string();
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<XmlElement> parse() {
    skip_prolog();
    auto root = parse_element();
    if (!root.ok()) return root;
    skip_whitespace_and_comments();
    if (pos_ != text_.size()) {
      return fail("trailing content after root element");
    }
    return root;
  }

 private:
  Error fail(const std::string& message) const {
    return make_error(ErrorCode::protocol,
                      message + " (offset " + std::to_string(pos_) + ")");
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }
  [[nodiscard]] bool starts(const std::string& token) const {
    return text_.compare(pos_, token.size(), token) == 0;
  }

  void skip_whitespace() {
    while (!eof() && std::isspace(static_cast<unsigned char>(peek())) != 0) ++pos_;
  }

  void skip_whitespace_and_comments() {
    while (true) {
      skip_whitespace();
      if (starts("<!--")) {
        const std::size_t end = text_.find("-->", pos_ + 4);
        pos_ = end == std::string::npos ? text_.size() : end + 3;
        continue;
      }
      return;
    }
  }

  void skip_prolog() {
    skip_whitespace();
    if (starts("<?xml")) {
      const std::size_t end = text_.find("?>", pos_);
      pos_ = end == std::string::npos ? text_.size() : end + 2;
    }
    skip_whitespace_and_comments();
    // Tolerate a DOCTYPE line (the GridML DTD reference).
    if (starts("<!DOCTYPE")) {
      const std::size_t end = text_.find('>', pos_);
      pos_ = end == std::string::npos ? text_.size() : end + 1;
    }
    skip_whitespace_and_comments();
  }

  static bool is_name_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' || c == '-' ||
           c == '.' || c == ':';
  }

  Result<std::string> parse_name() {
    const std::size_t start = pos_;
    while (!eof() && is_name_char(peek())) ++pos_;
    if (pos_ == start) return Result<std::string>(fail("expected a name"));
    return text_.substr(start, pos_ - start);
  }

  Result<std::string> parse_attribute_value() {
    if (eof() || (peek() != '"' && peek() != '\'')) {
      return Result<std::string>(fail("expected quoted attribute value"));
    }
    const char quote = peek();
    ++pos_;
    std::string value;
    while (!eof() && peek() != quote) {
      if (peek() == '&') {
        if (starts("&amp;")) {
          value += '&';
          pos_ += 5;
        } else if (starts("&lt;")) {
          value += '<';
          pos_ += 4;
        } else if (starts("&gt;")) {
          value += '>';
          pos_ += 4;
        } else if (starts("&quot;")) {
          value += '"';
          pos_ += 6;
        } else if (starts("&apos;")) {
          value += '\'';
          pos_ += 6;
        } else {
          return Result<std::string>(fail("unknown entity"));
        }
        continue;
      }
      value += peek();
      ++pos_;
    }
    if (eof()) return Result<std::string>(fail("unterminated attribute value"));
    ++pos_;  // closing quote
    return value;
  }

  Result<XmlElement> parse_element() {
    skip_whitespace_and_comments();
    if (eof() || peek() != '<') return Result<XmlElement>(fail("expected '<'"));
    ++pos_;
    auto name = parse_name();
    if (!name.ok()) return name.error();
    XmlElement element(name.value());

    while (true) {
      skip_whitespace();
      if (eof()) return Result<XmlElement>(fail("unterminated start tag"));
      if (starts("/>")) {
        pos_ += 2;
        return element;
      }
      if (peek() == '>') {
        ++pos_;
        break;
      }
      auto key = parse_name();
      if (!key.ok()) return key.error();
      skip_whitespace();
      if (eof() || peek() != '=') return Result<XmlElement>(fail("expected '='"));
      ++pos_;
      skip_whitespace();
      auto value = parse_attribute_value();
      if (!value.ok()) return value.error();
      element.set_attribute(key.value(), value.value());
    }

    // Children until the matching end tag. Text content is not part of
    // GridML; any non-markup characters are skipped.
    while (true) {
      while (!eof() && peek() != '<') ++pos_;
      if (eof()) return Result<XmlElement>(fail("missing end tag for " + element.name()));
      if (starts("<!--")) {
        const std::size_t end = text_.find("-->", pos_ + 4);
        pos_ = end == std::string::npos ? text_.size() : end + 3;
        continue;
      }
      if (starts("</")) {
        pos_ += 2;
        auto end_name = parse_name();
        if (!end_name.ok()) return end_name.error();
        if (end_name.value() != element.name()) {
          return Result<XmlElement>(
              fail("mismatched end tag: " + end_name.value() + " vs " + element.name()));
        }
        skip_whitespace();
        if (eof() || peek() != '>') return Result<XmlElement>(fail("expected '>'"));
        ++pos_;
        return element;
      }
      auto child = parse_element();
      if (!child.ok()) return child;
      element.add_child(std::move(child.value()));
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<XmlElement> parse_xml(const std::string& text) { return Parser(text).parse(); }

}  // namespace envnws::gridml
