#include "gridml/merge.hpp"

#include <algorithm>
#include <set>

namespace envnws::gridml {

namespace {

void add_alias_unique(Machine& machine, const std::string& alias) {
  if (machine.name == alias) return;
  if (std::find(machine.aliases.begin(), machine.aliases.end(), alias) ==
      machine.aliases.end()) {
    machine.aliases.push_back(alias);
  }
}

}  // namespace

Result<GridDoc> merge(const std::vector<GridDoc>& docs,
                      const std::vector<AliasGroup>& gateway_aliases,
                      const std::string& merged_label) {
  GridDoc merged;
  merged.label = merged_label;
  for (const auto& doc : docs) {
    for (const auto& site : doc.sites) merged.sites.push_back(site);
    for (const auto& network : doc.networks) merged.networks.push_back(network);
  }

  for (const auto& group : gateway_aliases) {
    if (group.size() < 2) {
      return make_error(ErrorCode::invalid_argument,
                        "alias group needs at least two names");
    }
    // Collect every identity known for this gateway across all sites...
    std::set<std::string> identities(group.begin(), group.end());
    for (const auto& name : group) {
      if (const Machine* machine = merged.find_machine(name)) {
        identities.insert(machine->name);
        identities.insert(machine->aliases.begin(), machine->aliases.end());
      }
    }
    // ...and graft the union onto each per-zone record of the machine.
    bool found_any = false;
    for (auto& site : merged.sites) {
      for (auto& machine : site.machines) {
        const bool in_group = std::any_of(
            group.begin(), group.end(),
            [&machine](const std::string& name) { return machine.answers_to(name); });
        if (!in_group) continue;
        found_any = true;
        for (const auto& identity : identities) add_alias_unique(machine, identity);
      }
    }
    if (!found_any) {
      return make_error(ErrorCode::not_found,
                        "no machine matches alias group starting with '" + group.front() + "'");
    }
  }
  return merged;
}

}  // namespace envnws::gridml
