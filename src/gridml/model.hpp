// Typed GridML document model.
//
// GridML is "a specialized form of XML [...] a flexible format for
// describing the physical and observable characteristics of resources and
// networks constituting a Grid" (paper §4). The element vocabulary is the
// one used by the paper's listings: GRID / SITE / MACHINE / LABEL / ALIAS /
// PROPERTY / NETWORK. This model converts to and from the generic XML
// layer and offers the lookups the mapper and planner need.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "gridml/xml.hpp"

namespace envnws::gridml {

struct Property {
  std::string name;
  std::string value;
  std::string units;  ///< optional
};

struct Machine {
  std::string name;                 ///< canonical fqdn
  std::string ip;                   ///< dotted quad (may be empty)
  std::vector<std::string> aliases;
  std::vector<Property> properties;

  [[nodiscard]] bool answers_to(const std::string& any_name) const;
  [[nodiscard]] std::optional<std::string> property(const std::string& key) const;
};

struct Site {
  std::string domain;  ///< e.g. "ens-lyon.fr"
  std::string label;   ///< e.g. "ENS-LYON-FR"
  std::vector<Machine> machines;
};

/// ENV network node kinds as they appear in `NETWORK type="..."`.
enum class NetworkType { structural, env_shared, env_switched, env_inconclusive };

[[nodiscard]] const char* to_string(NetworkType type);
[[nodiscard]] Result<NetworkType> network_type_from_string(const std::string& text);

struct NetworkNode {
  NetworkType type = NetworkType::structural;
  std::string label_name;
  std::string label_ip;
  std::vector<Property> properties;
  /// Machines directly on this network, referenced by fqdn.
  std::vector<std::string> machine_names;
  std::vector<NetworkNode> children;

  [[nodiscard]] std::optional<std::string> property(const std::string& key) const;
  /// Machines of this node and every descendant.
  [[nodiscard]] std::vector<std::string> all_machine_names() const;
};

struct GridDoc {
  std::string label;
  std::vector<Site> sites;
  std::vector<NetworkNode> networks;

  /// Machine lookup across all sites, by canonical name or alias.
  [[nodiscard]] const Machine* find_machine(const std::string& any_name) const;
  [[nodiscard]] Machine* find_machine(const std::string& any_name);
  [[nodiscard]] std::size_t machine_count() const;

  [[nodiscard]] XmlElement to_xml() const;
  [[nodiscard]] std::string to_string() const;
  static Result<GridDoc> from_xml(const XmlElement& root);
  static Result<GridDoc> parse(const std::string& text);
};

}  // namespace envnws::gridml
