#include "api/gridml_scenario.hpp"

#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "common/strings.hpp"
#include "common/units.hpp"
#include "env/env_tree.hpp"
#include "simnet/address.hpp"
#include "simnet/topology.hpp"

namespace envnws::api {

namespace {

using simnet::Ipv4;
using simnet::NodeId;

constexpr double kDefaultBwBps = 100e6;

/// Builds the topology from the effective-view tree. Names, addresses
/// and traversal order are fully deterministic so the same document
/// always yields the same platform.
class ViewBuilder {
 public:
  ViewBuilder(const gridml::GridDoc& doc, simnet::Scenario& scenario)
      : doc_(doc), scenario_(scenario), topo_(scenario.topology) {}

  Status build(const env::EnvNetwork& root) {
    const NodeId root_device = add_device(root);
    if (topo_.node(root_device).kind != simnet::NodeKind::router) {
      // Traceroutes need somewhere to stop: front the view with an edge
      // router when the root itself is a LAN segment.
      const NodeId edge = topo_.add_router("edge", "edge.view", next_router_ip());
      topo_.connect(edge, root_device, segment_bw(root), 100e-6);
      topo_.set_edge_router(edge);
    } else {
      topo_.set_edge_router(root_device);
    }
    if (auto status = attach(root, root_device); !status.ok()) return status;
    if (scenario_.master.empty()) {
      return make_error(ErrorCode::invalid_argument,
                        "GridML network tree names no machines to simulate");
    }
    return {};
  }

 private:
  /// Bandwidth of the medium itself (what members share locally).
  static double segment_bw(const env::EnvNetwork& net) {
    if (net.base_local_bw_bps > 0.0) return net.base_local_bw_bps;
    if (net.base_bw_bps > 0.0) return net.base_bw_bps;
    return kDefaultBwBps;
  }
  /// Bandwidth of the uplink towards the parent (what the master saw).
  static double uplink_bw(const env::EnvNetwork& net) {
    if (net.base_bw_bps > 0.0) return net.base_bw_bps;
    return segment_bw(net);
  }

  Ipv4 next_router_ip() {
    const int n = router_count_++;
    return Ipv4(10, 250, static_cast<std::uint8_t>(n / 250),
                static_cast<std::uint8_t>(1 + n % 250));
  }

  NodeId add_device(const env::EnvNetwork& net) {
    const std::string name = "net" + std::to_string(device_count_++);
    switch (net.kind) {
      case env::NetKind::shared:
        return topo_.add_hub(name, segment_bw(net));
      case env::NetKind::switched:
      case env::NetKind::inconclusive:
        return topo_.add_switch(name);
      case env::NetKind::structural:
        break;
    }
    // The published hop name doubles as the router's reverse-DNS name,
    // unless another router already claimed it (then DNS "fails", which
    // ENV handles anyway).
    std::string fqdn = net.label;
    if (fqdn.empty() || !used_names_.insert(fqdn).second) fqdn.clear();
    return topo_.add_router(name, fqdn, router_ip(net));
  }

  Ipv4 router_ip(const env::EnvNetwork& net) {
    if (const auto parsed = Ipv4::parse(net.label_ip); parsed.ok()) return parsed.value();
    return next_router_ip();
  }

  std::string unique_short_name(const std::string& fqdn) {
    std::string base = strings::split_nonempty(fqdn, '.').empty()
                           ? fqdn
                           : strings::split_nonempty(fqdn, '.').front();
    if (base.empty()) base = "host";
    std::string candidate = base;
    for (int suffix = 2; used_names_.count(candidate) > 0; ++suffix) {
      candidate = base + "-" + std::to_string(suffix);
    }
    used_names_.insert(candidate);
    return candidate;
  }

  Ipv4 host_ip(const std::string& machine_name) {
    if (const gridml::Machine* machine = doc_.find_machine(machine_name)) {
      if (const auto parsed = Ipv4::parse(machine->ip); parsed.ok()) return parsed.value();
    }
    const int n = host_count_++;
    return Ipv4(172, 16, static_cast<std::uint8_t>(n / 250),
                static_cast<std::uint8_t>(1 + n % 250));
  }

  Status attach(const env::EnvNetwork& net, NodeId device) {
    simnet::GroundTruthNet truth;
    truth.kind = net.kind == env::NetKind::shared ? simnet::GroundTruthNet::Kind::shared
                                                  : simnet::GroundTruthNet::Kind::switched;
    truth.local_bw_bps = segment_bw(net);
    for (const auto& machine_name : net.machines) {
      if (hosts_.count(machine_name) > 0) {
        return make_error(ErrorCode::invalid_argument,
                          "machine '" + machine_name +
                              "' appears on two networks of the GridML view");
      }
      const std::string short_name = unique_short_name(machine_name);
      const NodeId host = topo_.add_host(short_name, machine_name, host_ip(machine_name));
      if (const gridml::Machine* machine = doc_.find_machine(machine_name)) {
        for (const auto& property : machine->properties) {
          topo_.set_property(host, property.name, property.value);
        }
      }
      topo_.connect(host, device, segment_bw(net), 50e-6);
      hosts_[machine_name] = host;
      truth.member_names.push_back(short_name);
      if (scenario_.master.empty()) scenario_.master = short_name;
    }
    if (net.kind != env::NetKind::structural && truth.member_names.size() >= 2) {
      scenario_.ground_truth.push_back(std::move(truth));
    }
    for (const auto& child : net.children) {
      const NodeId child_device = add_device(child);
      topo_.connect(device, child_device, uplink_bw(child), 100e-6);
      if (auto status = attach(child, child_device); !status.ok()) return status;
    }
    return {};
  }

  const gridml::GridDoc& doc_;
  simnet::Scenario& scenario_;
  simnet::Topology& topo_;
  std::map<std::string, NodeId> hosts_;
  std::set<std::string> used_names_;
  int device_count_ = 0;
  int router_count_ = 0;
  int host_count_ = 0;
};

}  // namespace

Result<simnet::Scenario> scenario_from_effective_view(const gridml::GridDoc& doc) {
  if (doc.networks.empty()) {
    return make_error(ErrorCode::invalid_argument,
                      "GridML document carries no NETWORK tree to simulate");
  }
  simnet::Scenario scenario;
  scenario.name = doc.label.empty() ? "gridml-view" : doc.label;
  scenario.description = "platform synthesized from a published effective network view";
  auto root = env::EnvNetwork::from_gridml(doc.networks.back());
  if (!root.ok()) return root.error();
  ViewBuilder builder(doc, scenario);
  if (auto status = builder.build(root.value()); !status.ok()) return status.error();
  if (auto status = scenario.topology.validate(); !status.ok()) {
    return make_error(ErrorCode::invalid_argument,
                      "GridML view yields an unusable platform: " + status.error().message);
  }
  return scenario;
}

Result<simnet::Scenario> scenario_from_gridml_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return make_error(ErrorCode::not_found, "cannot read GridML file '" + path + "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  auto doc = gridml::GridDoc::parse(text.str());
  if (!doc.ok()) {
    return make_error(doc.error().code, "GridML file '" + path + "': " + doc.error().message);
  }
  return scenario_from_effective_view(doc.value());
}

}  // namespace envnws::api
