// Structured progress events of the staged deployment pipeline.
//
// Every `api::Session` stage announces itself through this interface:
// started / finished / failed markers plus free-form notes (per-zone
// mapping progress, planner decisions, validator verdicts). Observers are
// how CLIs show progress bars, tests assert ordering, and services export
// pipeline telemetry without the pipeline knowing about any of them.
#pragma once

#include <string>
#include <vector>

namespace envnws::api {

/// The four pipeline stages, in execution order.
enum class Stage { map, plan, apply, validate };

[[nodiscard]] constexpr const char* to_string(Stage stage) {
  switch (stage) {
    case Stage::map: return "map";
    case Stage::plan: return "plan";
    case Stage::apply: return "apply";
    case Stage::validate: return "validate";
  }
  return "unknown";
}

struct Event {
  enum class Kind { stage_started, stage_finished, stage_failed, note };
  Kind kind = Kind::note;
  Stage stage = Stage::map;
  std::string detail;     ///< summary / note text; error text for stage_failed
  double sim_time_s = 0;  ///< simulated clock when the event fired
};

[[nodiscard]] constexpr const char* to_string(Event::Kind kind) {
  switch (kind) {
    case Event::Kind::stage_started: return "started";
    case Event::Kind::stage_finished: return "finished";
    case Event::Kind::stage_failed: return "failed";
    case Event::Kind::note: return "note";
  }
  return "unknown";
}

class Observer {
 public:
  virtual ~Observer() = default;
  virtual void on_event(const Event& event) = 0;
};

/// Observer that records everything — the default choice for tests and
/// for CLIs that render a summary afterwards.
class EventLog final : public Observer {
 public:
  void on_event(const Event& event) override { events_.push_back(event); }
  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  void clear() { events_.clear(); }

 private:
  std::vector<Event> events_;
};

}  // namespace envnws::api
