// Structured progress events of the staged deployment pipeline.
//
// Every `api::Session` stage announces itself through this interface:
// started / finished / failed markers, per-zone mapping progress, plus
// free-form notes (planner decisions, validator verdicts, map-cache
// hits). Observers are how CLIs show progress bars, tests assert
// ordering, and services export pipeline telemetry without the pipeline
// knowing about any of them.
//
// ## Event schema and ordering guarantees (see also docs/EVENTS.md)
//
// Delivery is THREAD-SAFE and SERIALIZED: when the map stage probes
// firewall zones concurrently (`MapperOptions::map_threads > 1`),
// `on_event` is invoked from worker threads, but never from two threads
// at once — the Session serializes deliveries under one mutex and stamps
// each event with a strictly increasing `sequence` number in delivery
// order. An Observer therefore needs no locking of its own unless it is
// shared between several Sessions.
//
// Ordering guarantees, per Session:
//   1. `sequence` increases by exactly 1 per delivered event.
//   2. Stage markers follow the pipeline order map -> plan -> apply ->
//      validate; a stage's `stage_started` precedes every other event of
//      that stage run, and its `stage_finished` / `stage_failed` follows
//      them.
//   3. Zone events (`zone_started` / `zone_finished` / `zone_failed`)
//      occur only between the map stage's `stage_started` and
//      `stage_finished`/`stage_failed` markers. Each carries the zone's
//      name and its index in the ZoneSpec list.
//   4. Per zone, `zone_started` precedes that zone's `zone_finished` /
//      `zone_failed`. Events of DIFFERENT zones may interleave freely
//      when zones are mapped concurrently — consumers must group by
//      `zone` / `zone_index`, not assume contiguity. With
//      `map_threads == 1` zone event pairs are contiguous and in zone
//      order.
//   5. `sim_time_s` never decreases between consecutive events.
//   6. Probe-batch events (`probe_batch_started` / `probe_batch_finished`,
//      emitted only when `MapperOptions::probe_jobs > 1`) occur between
//      their zone's `zone_started` and `zone_finished`/`zone_failed`,
//      carry that zone's `zone` / `zone_index`, and pair up in order per
//      zone: each batch finishes before the next one of the same zone
//      starts. Batches of different zones interleave like zone events do.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace envnws::api {

/// The four pipeline stages, in execution order.
enum class Stage { map, plan, apply, validate };

[[nodiscard]] constexpr const char* to_string(Stage stage) {
  switch (stage) {
    case Stage::map: return "map";
    case Stage::plan: return "plan";
    case Stage::apply: return "apply";
    case Stage::validate: return "validate";
  }
  return "unknown";
}

struct Event {
  enum class Kind {
    stage_started,
    stage_finished,
    stage_failed,
    /// One firewall zone's ENV run began / completed / failed (map stage
    /// only; concurrent zones interleave, see ordering guarantee 4).
    zone_started,
    zone_finished,
    zone_failed,
    /// One within-zone probe batch was issued / completed (map stage
    /// only, and only when `MapperOptions::probe_jobs > 1` and the
    /// batch holds at least two experiments — a sequential run's event
    /// stream carries no batch events at all). Both carry the zone
    /// fields of the zone the batch belongs to; `detail` names the
    /// refine stage (host-bw / pairwise / internal), segment, size and
    /// worker count, and the finished event adds the modeled
    /// sequential-vs-scheduled cost (see docs/EVENTS.md).
    probe_batch_started,
    probe_batch_finished,
    note,
  };
  Kind kind = Kind::note;
  Stage stage = Stage::map;
  std::string detail;     ///< summary / note text; error text for *_failed
  double sim_time_s = 0;  ///< simulated clock when the event fired
  /// Delivery order stamp, starting at 0 per Session; strictly
  /// increasing even when zone events originate on worker threads.
  std::uint64_t sequence = 0;
  std::string zone;     ///< zone name (zone_* events only, else empty)
  int zone_index = -1;  ///< position in the ZoneSpec list (zone_* events only)
};

[[nodiscard]] constexpr const char* to_string(Event::Kind kind) {
  switch (kind) {
    case Event::Kind::stage_started: return "started";
    case Event::Kind::stage_finished: return "finished";
    case Event::Kind::stage_failed: return "failed";
    case Event::Kind::zone_started: return "zone-started";
    case Event::Kind::zone_finished: return "zone-finished";
    case Event::Kind::zone_failed: return "zone-failed";
    case Event::Kind::probe_batch_started: return "probe-batch-started";
    case Event::Kind::probe_batch_finished: return "probe-batch-finished";
    case Event::Kind::note: return "note";
  }
  return "unknown";
}

class Observer {
 public:
  virtual ~Observer() = default;
  /// Called under the Session's event mutex: implementations may be
  /// invoked from map-stage worker threads but never concurrently.
  virtual void on_event(const Event& event) = 0;
};

/// Observer that records everything — the default choice for tests and
/// for CLIs that render a summary afterwards.
class EventLog final : public Observer {
 public:
  void on_event(const Event& event) override { events_.push_back(event); }
  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  void clear() { events_.clear(); }

 private:
  std::vector<Event> events_;
};

}  // namespace envnws::api
