// Umbrella header: the public surface of the envnws library.
//
//   #include "api/envnws.hpp"
//
//   auto scenario = envnws::api::ScenarioRegistry::builtin().make("ens-lyon");
//   envnws::simnet::Network net(envnws::simnet::Scenario(scenario.value()).topology);
//   envnws::api::Session session(net, scenario.value());
//   if (session.run_all().ok()) { ... session.queries().bandwidth(...) ... }
//
// Pulls in the staged pipeline (api/session.hpp), the progress-event
// interface (api/observer.hpp), the named scenario registry
// (api/scenario_registry.hpp) and the one-call compatibility wrapper
// (core/autodeploy.hpp).
#pragma once

#include "api/gridml_scenario.hpp"
#include "api/map_cache.hpp"
#include "api/observer.hpp"
#include "api/scenario_registry.hpp"
#include "api/session.hpp"
#include "core/autodeploy.hpp"
