// api::Session — the paper's pipeline as a staged, observable object.
//
// The four stages of the title ("automatic deployment of the NWS using
// an effective network view": map the platform with ENV, derive a
// deployment plan, apply it, validate the §2.3 constraints) are
// individually runnable and resumable:
//
//   api::Session session(net, scenario);
//   session.map();       // probe the platform (or load a cached view)
//   session.plan();      // re-runnable with different planner options
//   session.apply();     // launch the NWS processes
//   session.validate();  // check the four deployment constraints
//
// Calling a stage whose prerequisites have not run yet runs them first;
// calling a stage again re-runs it from the cached output of the stage
// before it and drops everything downstream. `load_map()` /
// `load_map_from_gridml()` seed the map stage without probing — the
// §4.3 "publish the mapping" workflow — so a platform mapped once can
// be re-planned forever; `set_map_cache()` makes that durable across
// processes (a second map() of the same spec performs zero probes).
// Probing itself goes through a pluggable `ProbeEngineFactory`
// (simulator by default; scripted traces and real sockets implement the
// same `env::ProbeEngine` interface) and fans out over firewall zones
// when `options().mapper.map_threads > 1` — with deterministic engines
// (e.g. the default simulator without measurement jitter) the merged
// view is bit-identical to the sequential one, it just arrives sooner.
// `options().mapper.probe_jobs > 1` additionally batches the
// within-zone experiments of mapping phases 2a-2c (see
// env/batch_schedule.hpp): the experiment stream and the MapResult stay
// bit-identical, the modeled probe cost (`MapResult::batch`) and batch
// observer events report what the concurrent schedule saves.
//
// Progress flows through `api::Observer` (see observer.hpp).
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "api/map_cache.hpp"
#include "api/observer.hpp"
#include "common/result.hpp"
#include "deploy/manager.hpp"
#include "deploy/plan.hpp"
#include "deploy/planner.hpp"
#include "deploy/query.hpp"
#include "deploy/validate.hpp"
#include "env/fault_probe_engine.hpp"
#include "env/mapper.hpp"
#include "env/options.hpp"
#include "env/probe_engine.hpp"
#include "env/probe_wire.hpp"
#include "env/trace_probe_engine.hpp"
#include "monitor/daemon.hpp"
#include "simnet/scenario.hpp"

namespace envnws::api {

struct SessionOptions {
  env::MapperOptions mapper;
  deploy::PlannerOptions planner;
  deploy::ManagerOptions manager;
  deploy::ValidatorOptions validator;
};

/// Builds the probe engine the map stage observes the platform with.
using ProbeEngineFactory = std::function<std::unique_ptr<env::ProbeEngine>(
    simnet::Network& net, const env::MapperOptions& options)>;

class Session {
 public:
  /// A session around a scenario: zones and gateway aliases for the map
  /// stage are derived from it.
  Session(simnet::Network& net, simnet::Scenario scenario, SessionOptions options = {});
  /// A session without a scenario: the map stage must be seeded through
  /// `load_map()` or `load_map_from_gridml()`.
  Session(simnet::Network& net, SessionOptions options = {});

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Observer is not owned; nullptr disables events. Delivery is
  /// serialized and sequence-stamped (see observer.hpp): safe even when
  /// the map stage probes zones on `options().mapper.map_threads` workers.
  Session& set_observer(Observer* observer);
  /// Replace the probe backend (default: env::SimProbeEngine). With
  /// `map_threads > 1` the factory is invoked once per firewall zone,
  /// each call receiving a private replica of the scenario platform, so
  /// the engines can probe concurrently.
  Session& set_probe_engine_factory(ProbeEngineFactory factory);
  /// Configure the probe backend from a spec string (docs/TESTING.md,
  /// docs/SOCKET_ENGINE.md):
  ///   "sim"                   — the engine factory alone (the default)
  ///   "socket:<agents.cfg>"   — env::SocketProbeEngine over the agent
  ///                             roster at <agents.cfg>: REAL TCP
  ///                             experiments against probe-agent daemons
  ///   "record:<path>"         — base engine, every experiment appended
  ///                             to the ENVTRACE file at <path>
  ///   "replay:<path>"         — strict replay of <path>: ZERO live probes;
  ///                             any out-of-trace request fails map() with
  ///                             the offending experiment index
  ///   "replay-lenient:<path>" — replay; out-of-trace requests fall back
  ///                             to the base engine
  ///   "fault:<rules>"         — base engine behind fault injection,
  ///                             e.g. "fault:bw#3=fail:timeout,cbw*=scale:0.5"
  /// The decorating specs (record:/replay-lenient:/fault:) take an
  /// optional "@<base>" suffix selecting the base engine they wrap:
  /// "@sim" (the factory, the default) or "@socket:<agents.cfg>" — so
  /// "record:run.envtrace@socket:agents.cfg" maps through live sockets
  /// while producing a golden trace that later replays bit-identically
  /// offline, agents long gone. "replay:" is offline by definition and
  /// rejects a base suffix.
  /// With `map_threads > 1` each zone records/replays its own file at
  /// `<path>.zone<k>` (a sequential trace holds all zones in one file, so
  /// traces replay with the thread mode they were recorded with).
  /// Single-file replay traces are parsed eagerly — missing or malformed
  /// files fail here; a per-zone recording is detected by its `.zone0`
  /// file and the zone files load (and may fail) at map() time, one per
  /// zone engine. Any spec but "sim" bypasses the persistent map cache:
  /// a cache hit would defeat record:/replay:, and fault:/replay-lenient:
  /// results must never be stored as the platform's truth.
  Status set_probe_engine_spec(const std::string& spec);
  [[nodiscard]] const std::string& probe_engine_spec() const { return probe_spec_text_; }

  /// Enable the persistent map cache: map() first tries to reload the
  /// mapped platform from `directory` (zero probe experiments on a hit)
  /// and persists a fresh mapping after probing. Entries are keyed by
  /// `label` plus a hash of the probe-relevant mapper options (see
  /// MapCache::key_for). The default label is the scenario's name — the
  /// registry stamps the canonical spec string — coupled with a
  /// fingerprint of the platform itself, so a platform changed under an
  /// unchanged name misses; pass an explicit label to opt out.
  Session& set_map_cache(std::string directory, std::string label = {});
  /// Drop this session's cache entry (the explicit invalidation of the
  /// "re-probe a changed platform" workflow). No-op without a cache.
  Status invalidate_map_cache();
  [[nodiscard]] const MapCache* map_cache() const {
    return map_cache_.has_value() ? &*map_cache_ : nullptr;
  }
  /// Mutable access, e.g. to configure eviction bounds
  /// (`map_cache()->set_limits(...)`). nullptr without a cache.
  [[nodiscard]] MapCache* map_cache() { return map_cache_.has_value() ? &*map_cache_ : nullptr; }

  // --- stages -------------------------------------------------------------
  Status map();
  Status plan();
  Status apply();
  Status validate();
  /// map -> plan -> apply [-> validate]; stages already run are reused.
  Status run_all(bool with_validation = true);

  // --- stage reuse --------------------------------------------------------
  /// Seed the map stage with a previously computed view (no probing).
  void load_map(env::MapResult map);
  /// Seed the map stage from published GridML text (§4.3 "Bandwidth
  /// waste": deploy from the published mapping without redoing it).
  /// Memory servers are later placed on the master and on every gateway
  /// named in the view, since zone data is not published.
  Status load_map_from_gridml(const std::string& gridml_text, const std::string& master);
  /// Drop `stage`'s output and everything downstream of it.
  void invalidate(Stage stage);
  [[nodiscard]] bool has(Stage stage) const;

  /// Mutable: tweak between stage runs (e.g. re-plan with host locks).
  SessionOptions& options() { return options_; }
  [[nodiscard]] simnet::Network& network() { return net_; }

  // --- stage outputs (valid once the stage has run) -----------------------
  [[nodiscard]] const env::MapResult& map_result() const;
  [[nodiscard]] env::MapResult& map_result();
  [[nodiscard]] const deploy::DeploymentPlan& plan_result() const;
  [[nodiscard]] deploy::DeploymentPlan& plan_result();
  [[nodiscard]] const std::string& config_text() const { return config_text_; }
  [[nodiscard]] nws::NwsSystem& system();
  [[nodiscard]] deploy::QueryService& queries();
  [[nodiscard]] const deploy::ValidationReport& validation() const;

  // --- monitoring ---------------------------------------------------------
  /// Build a monitoring daemon (src/monitor/, docs/MONITORD.md) over this
  /// session's deployment plan and probe-engine spec, running plan()
  /// first when needed. The daemon owns a fresh sequential engine built
  /// from the current spec — so "replay:<trace>" monitors fully offline
  /// and "record:<trace>@socket:<roster>" captures a live session for
  /// later replay — and `options.remap` is overwritten with this
  /// session's mapper options (incremental re-maps probe exactly like the
  /// map stage did). Daemon events surface as Stage::apply notes through
  /// the session observer, and a successful incremental re-map
  /// invalidates the session's map-cache entry: the platform provably
  /// changed under the cached view. The daemon must not outlive the
  /// session.
  Result<std::unique_ptr<monitor::MonitorDaemon>> make_monitor(
      monitor::MonitorOptions options = {});

  /// Transfer ownership of the running system / query service out of the
  /// session (the core::auto_deploy compatibility wrapper uses these).
  std::unique_ptr<nws::NwsSystem> take_system() { return std::move(system_); }
  std::unique_ptr<deploy::QueryService> take_queries() { return std::move(queries_); }

  /// One-page report of every stage that has run so far.
  [[nodiscard]] std::string render() const;

 private:
  void emit(Event::Kind kind, Stage stage, std::string detail = {}, std::string zone = {},
            int zone_index = -1);
  Status fail(Stage stage, const Error& error);
  [[nodiscard]] std::string map_cache_key() const;
  /// The base (undecorated) engine of the current spec: a
  /// SocketProbeEngine when a "socket:" roster is configured, the
  /// engine factory otherwise.
  std::unique_ptr<env::ProbeEngine> make_base_engine(simnet::Network& net);
  /// Probe every zone (sequentially on net_, or concurrently on private
  /// platform replicas when map_threads > 1) and merge.
  Result<env::MapResult> probe_map();
  /// The engine of a sequential map run, wrapped per the probe spec.
  Result<std::unique_ptr<env::ProbeEngine>> make_sequential_engine();
  /// One zone's engine for a concurrent map run (nullptr on failure, the
  /// reason recorded through record_trace_issue).
  std::unique_ptr<env::ProbeEngine> make_zone_engine(std::size_t zone_index);
  /// First replay violation / trace build failure of the current map run
  /// (thread-safe: zone engines report from pool workers).
  void record_trace_issue(const Error& error);

  enum class ProbeMode { factory, record, replay_strict, replay_lenient, fault };

  simnet::Network& net_;
  std::optional<simnet::Scenario> scenario_;
  SessionOptions options_;
  Observer* observer_ = nullptr;
  /// Serializes observer deliveries (map-stage workers emit zone events)
  /// and guards the sequence counter.
  std::mutex event_mutex_;
  std::uint64_t event_sequence_ = 0;
  ProbeEngineFactory engine_factory_;
  ProbeMode probe_mode_ = ProbeMode::factory;
  std::string probe_spec_text_ = "sim";
  /// Base engine of the spec: a loaded "socket:" roster, or nullopt for
  /// the engine factory. Orthogonal to probe_mode_ (the decorator).
  std::optional<env::wire::AgentRoster> socket_roster_;
  std::string trace_path_;
  /// Eagerly parsed single-file replay trace; unset for per-zone
  /// (threaded) recordings, which load lazily per zone.
  std::optional<env::ProbeTrace> replay_trace_;
  env::FaultSpec fault_spec_;
  std::mutex trace_issue_mutex_;
  std::optional<Error> trace_issue_;
  std::optional<MapCache> map_cache_;
  std::string map_cache_label_;

  std::optional<env::MapResult> map_;
  /// The map was loaded from published GridML (no zone information).
  bool published_view_ = false;
  std::optional<deploy::DeploymentPlan> plan_;
  std::string config_text_;
  std::unique_ptr<nws::NwsSystem> system_;
  std::unique_ptr<deploy::QueryService> queries_;
  std::optional<deploy::ValidationReport> validation_;
};

}  // namespace envnws::api
