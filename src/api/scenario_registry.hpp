// String-keyed scenario construction: `"dumbbell:3x3@100/10"` -> Scenario.
//
// Every platform builder in simnet/scenario.hpp is registered under a
// stable name, so examples, benches and tests can select workloads at run
// time instead of recompiling. A spec string is
//
//     [decorator:...]name[:D1xD2...][@R1/R2...]
//
// where the D's are integer dimensions (host counts, site counts, seeds)
// and the R's are link rates in Mbps. Each entry documents its own
// parameter meaning; omitted parameters fall back to the entry's
// defaults, so `"dumbbell"` alone is a runnable platform.
//
// Decorators degrade the platform's link model and compose with every
// family (see docs/SCENARIOS.md):
//
//     tcp-lv08:          SimGrid lv08 TCP corrections
//     lossy:[p=P%:][c=C%:]  P% segment loss, C% checksum corruption
//     wifi:              switches become shared-medium access points
//     bg:<flows>:        seeded background cross-traffic generators
//
// They commute; `to_string()` renders the canonical order
// tcp-lv08/lossy/wifi/bg, and `parse(to_string())` round-trips.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "simnet/scenario.hpp"

namespace envnws::api {

/// Parsed form of a scenario spec string.
struct ScenarioSpec {
  std::string name;
  std::vector<int> dims;          ///< ":3x3" -> {3, 3}
  std::vector<double> rates_mbps; ///< "@100/10" -> {100, 10}
  /// Free-form argument for path-like specs: `file:<path.gridml>` parses
  /// to name "file" + payload "<path.gridml>" with NO dim/rate parsing
  /// (paths may contain ':', 'x', '@' and '/'). Empty for every other
  /// family.
  std::string payload;
  /// Accumulated `tcp-lv08:`/`lossy:`/`wifi:` decorator prefixes
  /// (ideal when the spec carries none).
  simnet::LinkModelSpec link_model;
  /// Accumulated `bg:<flows>:` decorator (inactive by default).
  simnet::BackgroundSpec background;

  static Result<ScenarioSpec> parse(const std::string& text);
  /// Canonical spec string; `parse(s.to_string())` round-trips.
  [[nodiscard]] std::string to_string() const;
};

class ScenarioRegistry {
 public:
  using Factory = std::function<Result<simnet::Scenario>(const ScenarioSpec&)>;

  struct Entry {
    std::string name;
    std::string synopsis;  ///< e.g. "dumbbell[:LxR][@port/bottleneck]"
    std::string description;
    Factory factory;
  };

  ScenarioRegistry() = default;

  void add(Entry entry);
  [[nodiscard]] bool contains(const std::string& name) const;

  /// Build a scenario from a spec string ("ens-lyon", "star:8@100", ...).
  /// Unknown names fail with `not_found` listing what is available;
  /// malformed or out-of-range parameters fail with `invalid_argument`.
  /// The returned scenario's `name` is stamped with the canonical spec
  /// string (`ScenarioSpec::to_string`), so "dumbbell:4x4@100/10" and
  /// "dumbbell" are distinguishable downstream (e.g. as map-cache keys).
  [[nodiscard]] Result<simnet::Scenario> make(const std::string& spec_text) const;
  [[nodiscard]] Result<simnet::Scenario> make(const ScenarioSpec& spec) const;

  /// Entries sorted by name.
  [[nodiscard]] std::vector<const Entry*> entries() const;
  /// Human-readable catalog (the `--list` output of the benches).
  [[nodiscard]] std::string render_catalog() const;

  /// The shared registry with every simnet builder pre-registered.
  static const ScenarioRegistry& builtin();

 private:
  std::map<std::string, Entry> entries_;
};

}  // namespace envnws::api
