#include "api/map_cache.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <vector>

#include "common/parse.hpp"
#include "env/env_tree.hpp"
#include "gridml/xml.hpp"

namespace envnws::api {

namespace fs = std::filesystem;

namespace {

constexpr const char* kFileExtension = ".envmap.xml";
constexpr const char* kFormatVersion = "1";

/// Full-precision double formatting: the cache must restore bandwidths
/// bit-identically so a re-plan from the cache matches a fresh plan
/// (GridML's human-facing 2-decimal properties are too lossy for that).
std::string full(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

Result<double> parse_double(const std::string& text, const std::string& what) {
  if (const auto value = parse::to_double(text); value.has_value()) return *value;
  return make_error(ErrorCode::protocol, "bad " + what + " '" + text + "' in map cache entry");
}

Result<std::uint64_t> parse_u64(const std::string& text, const std::string& what) {
  if (const auto value = parse::to_u64(text); value.has_value()) return *value;
  return make_error(ErrorCode::protocol, "bad " + what + " '" + text + "' in map cache entry");
}

Result<std::int64_t> parse_i64(const std::string& text, const std::string& what) {
  if (const auto value = parse::to_i64(text); value.has_value()) return *value;
  return make_error(ErrorCode::protocol, "bad " + what + " '" + text + "' in map cache entry");
}

std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

gridml::XmlElement envnet_to_xml(const env::EnvNetwork& net) {
  gridml::XmlElement element("ENVNET");
  element.set_attribute("kind", env::to_string(net.kind));
  if (!net.label.empty()) element.set_attribute("label", net.label);
  if (!net.label_ip.empty()) element.set_attribute("ip", net.label_ip);
  if (net.base_bw_bps != 0.0) element.set_attribute("base-bw-bps", full(net.base_bw_bps));
  if (net.base_local_bw_bps != 0.0) {
    element.set_attribute("local-bw-bps", full(net.base_local_bw_bps));
  }
  if (net.base_reverse_bw_bps != 0.0) {
    element.set_attribute("reverse-bw-bps", full(net.base_reverse_bw_bps));
  }
  if (net.route_asymmetric) element.set_attribute("asymmetric", "true");
  if (!net.gateway.empty()) element.set_attribute("gateway", net.gateway);
  for (const auto& machine : net.machines) {
    gridml::XmlElement member("MACHINE");
    member.set_attribute("name", machine);
    element.add_child(std::move(member));
  }
  for (const auto& child : net.children) element.add_child(envnet_to_xml(child));
  return element;
}

Result<env::NetKind> kind_from_string(const std::string& text) {
  if (text == "structural") return env::NetKind::structural;
  if (text == "shared") return env::NetKind::shared;
  if (text == "switched") return env::NetKind::switched;
  if (text == "inconclusive") return env::NetKind::inconclusive;
  return make_error(ErrorCode::protocol, "unknown ENVNET kind '" + text + "'");
}

Result<env::EnvNetwork> envnet_from_xml(const gridml::XmlElement& element) {
  env::EnvNetwork net;
  auto kind = kind_from_string(element.attribute("kind", "structural"));
  if (!kind.ok()) return kind.error();
  net.kind = kind.value();
  net.label = element.attribute("label");
  net.label_ip = element.attribute("ip");
  for (const auto* name : {"base-bw-bps", "local-bw-bps", "reverse-bw-bps"}) {
    if (!element.has_attribute(name)) continue;
    auto value = parse_double(element.attribute(name), name);
    if (!value.ok()) return value.error();
    if (std::string(name) == "base-bw-bps") net.base_bw_bps = value.value();
    if (std::string(name) == "local-bw-bps") net.base_local_bw_bps = value.value();
    if (std::string(name) == "reverse-bw-bps") net.base_reverse_bw_bps = value.value();
  }
  net.route_asymmetric = element.attribute("asymmetric") == "true";
  net.gateway = element.attribute("gateway");
  for (const auto& child : element.children()) {
    if (child.name() == "MACHINE") {
      net.machines.push_back(child.attribute("name"));
    } else if (child.name() == "ENVNET") {
      auto nested = envnet_from_xml(child);
      if (!nested.ok()) return nested.error();
      net.children.push_back(std::move(nested.value()));
    }
  }
  return net;
}

void add_stats(gridml::XmlElement& element, const env::MapStats& stats) {
  element.set_attribute("experiments", std::to_string(stats.experiments));
  element.set_attribute("bytes-sent", std::to_string(stats.bytes_sent));
  element.set_attribute("duration-s", full(stats.duration_s));
}

Status read_stats(const gridml::XmlElement& element, env::MapStats& stats) {
  auto experiments = parse_u64(element.attribute("experiments", "0"), "experiments");
  if (!experiments.ok()) return experiments.error();
  stats.experiments = experiments.value();
  auto bytes = parse_i64(element.attribute("bytes-sent", "0"), "bytes-sent");
  if (!bytes.ok()) return bytes.error();
  stats.bytes_sent = bytes.value();
  auto duration = parse_double(element.attribute("duration-s", "0"), "duration-s");
  if (!duration.ok()) return duration.error();
  stats.duration_s = duration.value();
  return {};
}

void add_warnings(gridml::XmlElement& element, const std::vector<std::string>& warnings) {
  for (const auto& warning : warnings) {
    gridml::XmlElement child("WARNING");
    child.set_attribute("text", warning);
    element.add_child(std::move(child));
  }
}

std::vector<std::string> read_warnings(const gridml::XmlElement& element) {
  std::vector<std::string> warnings;
  for (const auto* child : element.children_named("WARNING")) {
    warnings.push_back(child->attribute("text"));
  }
  return warnings;
}

}  // namespace

MapCache::MapCache(std::string directory) : directory_(std::move(directory)) {}

MapCache& MapCache::set_limits(Limits limits) {
  limits_ = limits;
  return *this;
}

std::string MapCache::key_for(const std::string& scenario_label,
                              const env::MapperOptions& options) {
  std::string label;
  for (const char c : scenario_label) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '.';
    label.push_back(keep ? c : '_');
  }
  if (label.empty()) label = "unnamed";
  // Every option that changes what the probes would measure; NOT
  // map_threads (the result is thread-count independent).
  std::ostringstream fields;
  fields << full(options.bw_split_ratio) << '|' << full(options.pairwise_independence_ratio)
         << '|' << full(options.jam_shared_max) << '|' << full(options.jam_switched_min) << '|'
         << options.jam_repetitions << '|' << options.probe_bytes << '|'
         << full(options.stabilization_gap_s) << '|' << options.site_domain_labels << '|'
         << options.purpose << '|' << (options.bidirectional_probes ? 1 : 0) << '|'
         << full(options.asymmetry_ratio) << '|' << options.max_pairwise << '|'
         << options.sample_seed << '|' << full(options.sample_confidence_ratio);
  char hash[17];
  std::snprintf(hash, sizeof(hash), "%016" PRIx64, fnv1a(fields.str()));
  return label + "-" + hash;
}

std::string MapCache::platform_fingerprint(const simnet::Topology& topology) {
  std::ostringstream fields;
  // The link model changes what every probe would measure, so a cached
  // ideal map must never serve a lossy/tcp/wifi-decorated spec (and
  // vice versa); same for background load.
  fields << topology.link_model().fingerprint() << '|'
         << topology.background().flows << '|' << full(topology.background().intensity) << '|'
         << topology.background().seed << ';';
  for (const simnet::Node& node : topology.nodes()) {
    fields << node.name << '|' << node.fqdn << '|' << node.ip.to_string() << '|'
           << static_cast<int>(node.kind) << '|' << full(node.hub_capacity_bps) << '|';
    for (const auto& zone : node.zones) fields << zone << ',';
    for (const auto& alias : node.aliases) {
      fields << alias.fqdn << '/' << alias.ip.to_string() << '/' << alias.zone << ',';
    }
    fields << ';';
  }
  for (const simnet::Link& link : topology.links()) {
    fields << link.a.index() << '-' << link.b.index() << '|' << full(link.bw_ab_bps) << '|'
           << full(link.bw_ba_bps) << '|' << full(link.latency_s) << '|'
           << (link.half_duplex ? 1 : 0) << '|' << full(link.weight_ab) << '|'
           << full(link.weight_ba) << ';';
  }
  char hash[17];
  std::snprintf(hash, sizeof(hash), "%016" PRIx64, fnv1a(fields.str()));
  return hash;
}

std::string MapCache::path_for(const std::string& key) const {
  return (fs::path(directory_) / (key + kFileExtension)).string();
}

Status MapCache::store(const std::string& key, const env::MapResult& map) const {
  gridml::XmlElement root("ENVMAP");
  root.set_attribute("version", kFormatVersion);
  root.set_attribute("master", map.master_fqdn);
  add_stats(root, map.stats);
  add_warnings(root, map.warnings);
  for (const auto& zone : map.zones) {
    gridml::XmlElement element("ZONE");
    element.set_attribute("name", zone.spec.zone_name);
    element.set_attribute("master", zone.spec.master);
    element.set_attribute("master-fqdn", zone.master_fqdn);
    element.set_attribute("traceroute-target", zone.spec.traceroute_target);
    add_stats(element, zone.stats);
    for (const auto& hostname : zone.spec.hostnames) {
      gridml::XmlElement host("HOST");
      host.set_attribute("name", hostname);
      element.add_child(std::move(host));
    }
    add_warnings(element, zone.warnings);
    root.add_child(std::move(element));
  }
  gridml::XmlElement view("ROOT");
  view.add_child(envnet_to_xml(map.root));
  root.add_child(std::move(view));
  root.add_child(map.grid.to_xml());

  std::error_code ec;
  fs::create_directories(directory_, ec);
  if (ec) {
    return make_error(ErrorCode::internal,
                      "cannot create map cache directory '" + directory_ + "': " + ec.message());
  }
  // Write-then-rename so a concurrent load never sees a torn entry. The
  // temp name is unique per process AND per store() call, so concurrent
  // writers of the same key cannot interleave into one temp file — last
  // rename wins with a complete document either way.
  static std::atomic<std::uint64_t> store_counter{0};
  const fs::path final_path = path_for(key);
  const fs::path temp_path =
      final_path.string() + ".tmp." + std::to_string(static_cast<long long>(::getpid())) + "." +
      std::to_string(store_counter.fetch_add(1));
  {
    std::ofstream out(temp_path, std::ios::trunc);
    if (!out) {
      return make_error(ErrorCode::internal,
                        "cannot write map cache entry '" + temp_path.string() + "'");
    }
    out << gridml::to_document_string(root);
    out.close();
    if (!out) {
      // A torn write (disk full, quota) must never replace a valid entry.
      fs::remove(temp_path, ec);
      return make_error(ErrorCode::internal,
                        "short write on map cache entry '" + temp_path.string() + "'");
    }
  }
  fs::rename(temp_path, final_path, ec);
  if (ec) {
    return make_error(ErrorCode::internal,
                      "cannot finalize map cache entry '" + final_path.string() +
                          "': " + ec.message());
  }
  if (limits_.bounded()) {
    // Hygiene must never fail the store that triggered it: the entry is
    // durable on disk already, and the just-written file is the newest
    // by mtime, so the sweep keeps it unless max_age_s is pathological.
    (void)sweep();
  }
  return {};
}

Result<std::size_t> MapCache::sweep() const {
  std::error_code ec;
  if (!fs::exists(directory_, ec) || ec) return std::size_t{0};
  const std::string ext = kFileExtension;
  struct Entry {
    fs::path path;
    fs::file_time_type mtime;
  };
  std::vector<Entry> entries;
  std::size_t removed = 0;
  // Every removal also drops the file's memoized parse verdict, so the
  // marker map tracks the directory instead of growing with the history
  // of everything ever evicted.
  const auto remove_file = [&](const fs::path& path) {
    std::error_code remove_ec;
    if (fs::remove(path, remove_ec) && !remove_ec) ++removed;
    validity_.erase(path.filename().string());
  };
  for (const auto& item : fs::directory_iterator(directory_, ec)) {
    const std::string name = item.path().filename().string();
    // Finalized entries only: in-flight `.tmp.<pid>.<n>` files belong
    // to a concurrent store() and are not ours to judge.
    if (name.size() <= ext.size() || name.rfind(ext) != name.size() - ext.size()) continue;
    std::error_code stat_ec;
    const auto mtime = fs::last_write_time(item.path(), stat_ec);
    if (stat_ec) continue;
    const auto size = fs::file_size(item.path(), stat_ec);
    if (stat_ec) continue;
    // An entry that no longer parses can never serve a hit — it is not
    // a miss to tolerate but disk waste (and a lingering trap for
    // humans inspecting the directory): delete it, don't skip it. The
    // verdict is memoized per file identity so a warm directory costs
    // one stat, not one XML parse, per entry per sweep.
    const std::int64_t mtime_ticks = mtime.time_since_epoch().count();
    auto marker = validity_.find(name);
    if (marker == validity_.end() || marker->second.size != size ||
        marker->second.mtime_ticks != mtime_ticks) {
      marker = validity_
                   .insert_or_assign(name, ValidityMarker{size, mtime_ticks,
                                                          load_file(item.path().string()).ok()})
                   .first;
    }
    if (!marker->second.valid) {
      remove_file(item.path());  // also erases the marker
      continue;
    }
    entries.push_back(Entry{item.path(), mtime});
  }
  if (ec) {
    return make_error(ErrorCode::internal,
                      "cannot sweep map cache directory '" + directory_ + "': " + ec.message());
  }
  if (limits_.max_age_s > 0.0) {
    const auto now = fs::file_time_type::clock::now();
    const auto cutoff = now - std::chrono::duration_cast<fs::file_time_type::duration>(
                                  std::chrono::duration<double>(limits_.max_age_s));
    std::erase_if(entries, [&](const Entry& entry) {
      if (entry.mtime >= cutoff) return false;
      remove_file(entry.path);
      return true;
    });
  }
  if (limits_.max_entries > 0 && entries.size() > limits_.max_entries) {
    // LRU by mtime: load() touches the entries it serves, so the oldest
    // mtime really is the least recently used.
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) { return a.mtime < b.mtime; });
    const std::size_t excess = entries.size() - limits_.max_entries;
    for (std::size_t i = 0; i < excess; ++i) remove_file(entries[i].path);
  }
  return removed;
}

Result<env::MapResult> MapCache::load(const std::string& key) const {
  const fs::path path = path_for(key);
  auto loaded = load_file(path.string());
  if (loaded.ok()) {
    // LRU bookkeeping for sweep(): a served entry counts as freshly
    // used. Best-effort — a read-only cache directory still serves.
    std::error_code ec;
    fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
  }
  return loaded;
}

Result<env::MapResult> MapCache::load_file(const std::string& path_text) const {
  const fs::path path = path_text;
  std::error_code ec;
  if (!fs::exists(path, ec) || ec) {
    return make_error(ErrorCode::not_found, "no map cache entry at '" + path.string() + "'");
  }
  std::ifstream in(path);
  std::ostringstream text;
  text << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return make_error(ErrorCode::internal, "cannot read map cache entry '" + path.string() + "'");
  }

  auto parsed = gridml::parse_xml(text.str());
  if (!parsed.ok()) return parsed.error();
  const gridml::XmlElement& root = parsed.value();
  if (root.name() != "ENVMAP" || root.attribute("version") != kFormatVersion) {
    return make_error(ErrorCode::protocol,
                      "'" + path.string() + "' is not a version-" + kFormatVersion +
                          " ENVMAP document");
  }

  env::MapResult map;
  map.master_fqdn = root.attribute("master");
  if (auto status = read_stats(root, map.stats); !status.ok()) return status.error();
  map.warnings = read_warnings(root);
  for (const auto* element : root.children_named("ZONE")) {
    env::ZoneMapResult zone;
    zone.spec.zone_name = element->attribute("name");
    zone.spec.master = element->attribute("master");
    zone.spec.traceroute_target = element->attribute("traceroute-target");
    zone.master_fqdn = element->attribute("master-fqdn");
    if (auto status = read_stats(*element, zone.stats); !status.ok()) return status.error();
    for (const auto* host : element->children_named("HOST")) {
      zone.spec.hostnames.push_back(host->attribute("name"));
    }
    zone.warnings = read_warnings(*element);
    map.zones.push_back(std::move(zone));
  }
  const gridml::XmlElement* view = root.first_child("ROOT");
  if (view == nullptr || view->children().empty()) {
    return make_error(ErrorCode::protocol, "'" + path.string() + "' carries no effective view");
  }
  auto tree = envnet_from_xml(view->children().front());
  if (!tree.ok()) return tree.error();
  map.root = std::move(tree.value());
  const gridml::XmlElement* grid = root.first_child("GRID");
  if (grid == nullptr) {
    return make_error(ErrorCode::protocol, "'" + path.string() + "' carries no GRID document");
  }
  auto doc = gridml::GridDoc::from_xml(*grid);
  if (!doc.ok()) return doc.error();
  map.grid = std::move(doc.value());
  return map;
}

Status MapCache::invalidate(const std::string& key) const {
  std::error_code ec;
  fs::remove(path_for(key), ec);
  if (ec) {
    return make_error(ErrorCode::internal,
                      "cannot remove map cache entry '" + path_for(key) + "': " + ec.message());
  }
  return {};
}

Result<std::size_t> MapCache::clear() const {
  std::error_code ec;
  if (!fs::exists(directory_, ec) || ec) return std::size_t{0};
  std::size_t removed = 0;
  for (const auto& entry : fs::directory_iterator(directory_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > std::string(kFileExtension).size() &&
        name.rfind(kFileExtension) == name.size() - std::string(kFileExtension).size()) {
      fs::remove(entry.path(), ec);
      if (!ec) ++removed;
    }
  }
  return removed;
}

}  // namespace envnws::api
