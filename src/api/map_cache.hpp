// Persistent cache of mapped platforms.
//
// The paper's §4.3 workflow publishes a finished mapping so it can be
// reused without re-probing ("Once the network mapped, we can deploy the
// NWS using this mapping" — and re-deploy forever). `MapCache` makes that
// workflow durable: a merged `env::MapResult` is written to disk as one
// XML document per (scenario, probe options) key, and
// `api::Session::map()` transparently reloads it, performing ZERO probe
// experiments on the reload path.
//
// Keys couple the scenario spec label with a hash of every probe-relevant
// `MapperOptions` field, so changing a threshold or the probe payload
// invalidates naturally. `map_threads` is deliberately NOT part of the
// key: the mapped view is identical for any thread count.
//
// The cache entry persists, at full floating-point precision, everything
// downstream stages consume: the merged effective view, the merged
// GridML document (sites + published NETWORK tree), the per-zone specs,
// masters, stats and warnings. Probe-time scaffolding (per-zone
// structural trees and per-zone GridML documents) is not persisted — a
// reloaded result re-plans byte-identically but is not meant to be
// re-merged.
//
// Disk hygiene is opt-in via `Limits` (`max_entries`, `max_age_s`):
// store() then ends with an LRU-by-mtime sweep() that also deletes —
// instead of merely skipping — entry files that no longer parse.
// Correctness never depends on the sweep (keys fingerprint the platform,
// a vanished entry is just a re-probe), so the bounds are purely about
// keeping long-lived cache directories from growing without end.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "common/result.hpp"
#include "env/mapper.hpp"
#include "env/options.hpp"
#include "simnet/topology.hpp"

namespace envnws::api {

class MapCache {
 public:
  /// Disk-hygiene bounds, enforced by sweep(). Zero means unbounded.
  struct Limits {
    /// Keep at most this many entries; the oldest (LRU by file mtime —
    /// load() refreshes the mtime of the entry it serves) go first.
    std::size_t max_entries = 0;
    /// Drop entries whose mtime is older than this many seconds.
    double max_age_s = 0.0;

    [[nodiscard]] bool bounded() const { return max_entries > 0 || max_age_s > 0.0; }
  };

  /// The directory is created lazily on the first store().
  explicit MapCache(std::string directory);

  [[nodiscard]] const std::string& directory() const { return directory_; }

  /// Configure eviction; store() runs a sweep() automatically after
  /// persisting whenever any bound is set.
  MapCache& set_limits(Limits limits);
  [[nodiscard]] const Limits& limits() const { return limits_; }

  /// Garbage-collect the cache directory: delete entries that fail to
  /// parse (a corrupt file will never serve a hit — it is disk waste,
  /// not a miss, so it is removed rather than skipped), then entries
  /// older than max_age_s, then — oldest first — whatever exceeds
  /// max_entries. Returns how many files were removed. Safe against
  /// concurrent writers: only finalized `*.envmap.xml` entries are
  /// considered, never in-flight `.tmp.*` files. Parse verdicts are
  /// memoized per (path, size, mtime) in this instance, so the
  /// store()-triggered sweeps of a warm cache stat every entry but
  /// re-parse only ones that changed on disk. Like load()/store(), not
  /// meant to be called from several threads on one instance.
  Result<std::size_t> sweep() const;

  /// Cache key: sanitized scenario label + hash of the probe-relevant
  /// mapper options (thresholds, payload, gap, site labels, purpose,
  /// bidirectional flags — NOT map_threads).
  [[nodiscard]] static std::string key_for(const std::string& scenario_label,
                                           const env::MapperOptions& options);

  /// Hash of the ground-truth platform (nodes, addresses, zones,
  /// aliases, links, capacities). `api::Session` folds this into its
  /// default cache label: scenario names alone are unreliable keys —
  /// the bare simnet builders stamp the same name for every size
  /// (`simnet::multi_firewall(2,2)` and `(8,50)` are both
  /// "multi-firewall") — so a changed platform under an unchanged name
  /// must still miss.
  [[nodiscard]] static std::string platform_fingerprint(const simnet::Topology& topology);

  /// File a given key is stored at (whether or not it exists yet).
  [[nodiscard]] std::string path_for(const std::string& key) const;

  /// Reload a cached mapping. `not_found` when the entry does not exist;
  /// `protocol` when the file exists but cannot be parsed (e.g. written
  /// by an incompatible version) — callers should treat both as a miss.
  /// A successful load refreshes the entry's mtime, so the LRU sweep
  /// evicts by recency of USE, not of creation.
  [[nodiscard]] Result<env::MapResult> load(const std::string& key) const;

  /// Persist a mapping (overwrites any previous entry for the key).
  Status store(const std::string& key, const env::MapResult& map) const;

  /// Explicitly drop one entry. Succeeds when the entry was absent.
  Status invalidate(const std::string& key) const;

  /// Drop every entry in the directory; returns how many were removed.
  Result<std::size_t> clear() const;

 private:
  /// Parse one entry file; no mtime side effects (sweep() must inspect
  /// entries without disturbing the LRU order that load() maintains).
  [[nodiscard]] Result<env::MapResult> load_file(const std::string& path) const;

  /// Memoized "does this file parse" verdict for sweep(), keyed on the
  /// file's identity at stat time.
  struct ValidityMarker {
    std::uintmax_t size = 0;
    std::int64_t mtime_ticks = 0;
    bool valid = false;
  };

  std::string directory_;
  Limits limits_;
  mutable std::map<std::string, ValidityMarker> validity_;
};

}  // namespace envnws::api
