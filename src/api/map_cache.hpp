// Persistent cache of mapped platforms.
//
// The paper's §4.3 workflow publishes a finished mapping so it can be
// reused without re-probing ("Once the network mapped, we can deploy the
// NWS using this mapping" — and re-deploy forever). `MapCache` makes that
// workflow durable: a merged `env::MapResult` is written to disk as one
// XML document per (scenario, probe options) key, and
// `api::Session::map()` transparently reloads it, performing ZERO probe
// experiments on the reload path.
//
// Keys couple the scenario spec label with a hash of every probe-relevant
// `MapperOptions` field, so changing a threshold or the probe payload
// invalidates naturally. `map_threads` is deliberately NOT part of the
// key: the mapped view is identical for any thread count.
//
// The cache entry persists, at full floating-point precision, everything
// downstream stages consume: the merged effective view, the merged
// GridML document (sites + published NETWORK tree), the per-zone specs,
// masters, stats and warnings. Probe-time scaffolding (per-zone
// structural trees and per-zone GridML documents) is not persisted — a
// reloaded result re-plans byte-identically but is not meant to be
// re-merged.
#pragma once

#include <cstddef>
#include <string>

#include "common/result.hpp"
#include "env/mapper.hpp"
#include "env/options.hpp"
#include "simnet/topology.hpp"

namespace envnws::api {

class MapCache {
 public:
  /// The directory is created lazily on the first store().
  explicit MapCache(std::string directory);

  [[nodiscard]] const std::string& directory() const { return directory_; }

  /// Cache key: sanitized scenario label + hash of the probe-relevant
  /// mapper options (thresholds, payload, gap, site labels, purpose,
  /// bidirectional flags — NOT map_threads).
  [[nodiscard]] static std::string key_for(const std::string& scenario_label,
                                           const env::MapperOptions& options);

  /// Hash of the ground-truth platform (nodes, addresses, zones,
  /// aliases, links, capacities). `api::Session` folds this into its
  /// default cache label: scenario names alone are unreliable keys —
  /// the bare simnet builders stamp the same name for every size
  /// (`simnet::multi_firewall(2,2)` and `(8,50)` are both
  /// "multi-firewall") — so a changed platform under an unchanged name
  /// must still miss.
  [[nodiscard]] static std::string platform_fingerprint(const simnet::Topology& topology);

  /// File a given key is stored at (whether or not it exists yet).
  [[nodiscard]] std::string path_for(const std::string& key) const;

  /// Reload a cached mapping. `not_found` when the entry does not exist;
  /// `protocol` when the file exists but cannot be parsed (e.g. written
  /// by an incompatible version) — callers should treat both as a miss.
  [[nodiscard]] Result<env::MapResult> load(const std::string& key) const;

  /// Persist a mapping (overwrites any previous entry for the key).
  Status store(const std::string& key, const env::MapResult& map) const;

  /// Explicitly drop one entry. Succeeds when the entry was absent.
  Status invalidate(const std::string& key) const;

  /// Drop every entry in the directory; returns how many were removed.
  Result<std::size_t> clear() const;

 private:
  std::string directory_;
};

}  // namespace envnws::api
