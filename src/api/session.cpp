#include "api/session.hpp"

#include <algorithm>
#include <cassert>
#include <filesystem>
#include <sstream>

#include "common/strings.hpp"
#include "common/units.hpp"
#include "env/scenario_zones.hpp"
#include "env/sim_probe_engine.hpp"
#include "env/socket_probe_engine.hpp"

namespace envnws::api {

namespace {

ProbeEngineFactory sim_engine_factory() {
  return [](simnet::Network& net, const env::MapperOptions& options) {
    return std::make_unique<env::SimProbeEngine>(net, options);
  };
}

/// A probe engine bundled with the private platform replica it observes.
/// Concurrent zone mapping builds one of these per zone *inside* the
/// factory call — i.e. on the worker, when the zone actually starts — so
/// peak memory is bounded by the zones in flight (<= map_threads), not
/// by the zone count.
class ReplicaEngine final : public env::ProbeEngine {
 public:
  ReplicaEngine(std::unique_ptr<simnet::Network> replica,
                std::unique_ptr<env::ProbeEngine> inner)
      : replica_(std::move(replica)), inner_(std::move(inner)) {}

  Result<env::HostIdentity> lookup(const std::string& hostname) override {
    return inner_->lookup(hostname);
  }
  Result<std::vector<env::TraceHop>> traceroute(const std::string& from,
                                                const std::string& target) override {
    return inner_->traceroute(from, target);
  }
  Result<double> bandwidth(const std::string& from, const std::string& to) override {
    return inner_->bandwidth(from, to);
  }
  std::vector<Result<double>> concurrent_bandwidth(
      const std::vector<env::BandwidthRequest>& requests) override {
    return inner_->concurrent_bandwidth(requests);
  }
  [[nodiscard]] env::ProbeStats stats() const override { return inner_->stats(); }

 private:
  std::unique_ptr<simnet::Network> replica_;  ///< declared first: outlives inner_
  std::unique_ptr<env::ProbeEngine> inner_;
};

}  // namespace

Session::Session(simnet::Network& net, simnet::Scenario scenario, SessionOptions options)
    : net_(net),
      scenario_(std::move(scenario)),
      options_(std::move(options)),
      engine_factory_(sim_engine_factory()) {}

Session::Session(simnet::Network& net, SessionOptions options)
    : net_(net), options_(std::move(options)), engine_factory_(sim_engine_factory()) {}

Session& Session::set_observer(Observer* observer) {
  observer_ = observer;
  return *this;
}

Session& Session::set_probe_engine_factory(ProbeEngineFactory factory) {
  engine_factory_ = factory ? std::move(factory) : sim_engine_factory();
  return *this;
}

Status Session::set_probe_engine_spec(const std::string& spec_text) {
  const std::string spec = strings::trim(spec_text);
  ProbeMode mode = ProbeMode::factory;
  std::string path;
  env::FaultSpec fault;
  std::optional<env::ProbeTrace> trace;
  std::optional<env::wire::AgentRoster> roster;

  // Split an optional "@<base>" suffix off a decorating spec
  // ("record:<path>@socket:<agents.cfg>"). Splitting at the LAST '@'
  // whose suffix parses as a base spec keeps '@' usable inside paths.
  std::string working = spec;
  std::string base;
  bool base_was_suffix = false;
  if (const auto at = working.rfind('@'); at != std::string::npos) {
    const std::string suffix = working.substr(at + 1);
    if (suffix == "sim" || strings::starts_with(suffix, "socket:")) {
      base = suffix;
      base_was_suffix = true;
      working = working.substr(0, at);
    }
  }
  if (strings::starts_with(working, "socket:")) {
    if (!base.empty()) {
      return make_error(ErrorCode::invalid_argument,
                        "probe spec '" + spec + "' names two base engines");
    }
    base = working;
    working = "sim";
  } else if (base_was_suffix && (working.empty() || working == "sim")) {
    return make_error(ErrorCode::invalid_argument,
                      "probe spec '" + spec +
                          "' decorates nothing; use the base spec by itself");
  }
  if (strings::starts_with(base, "socket:")) {
    const std::string roster_path =
        strings::trim(base.substr(std::string("socket:").size()));
    if (roster_path.empty()) {
      return make_error(ErrorCode::invalid_argument,
                        "probe spec 'socket:' names no agent roster file");
    }
    auto loaded = env::wire::AgentRoster::load(roster_path);
    if (!loaded.ok()) return loaded.error();
    if (loaded.value().empty()) {
      return make_error(ErrorCode::invalid_argument,
                        "agent roster '" + roster_path + "' lists no agents");
    }
    roster = std::move(loaded.value());
  }

  if (working.empty() || working == "sim") {
    // the base engine alone
  } else if (strings::starts_with(working, "record:")) {
    mode = ProbeMode::record;
    path = strings::trim(working.substr(std::string("record:").size()));
    if (path.empty()) {
      return make_error(ErrorCode::invalid_argument, "probe spec 'record:' names no trace file");
    }
  } else if (strings::starts_with(working, "replay:") ||
             strings::starts_with(working, "replay-lenient:")) {
    const bool lenient = strings::starts_with(working, "replay-lenient:");
    if (!lenient && base_was_suffix) {
      return make_error(ErrorCode::invalid_argument,
                        "probe spec 'replay:' is offline by definition and takes no "
                        "@<base> suffix (use replay-lenient: for a live fallback)");
    }
    mode = lenient ? ProbeMode::replay_lenient : ProbeMode::replay_strict;
    path = strings::trim(working.substr(working.find(':') + 1));
    if (path.empty()) {
      return make_error(ErrorCode::invalid_argument,
                        "probe spec '" + working.substr(0, working.find(':') + 1) +
                            "' names no trace file");
    }
    auto loaded = env::ProbeTrace::load(path);
    if (loaded.ok()) {
      trace = std::move(loaded.value());
    } else if (loaded.error().code == ErrorCode::not_found &&
               std::filesystem::exists(env::zone_trace_path(path, 0))) {
      // A per-zone (threaded) recording: the zone files load lazily, one
      // per zone engine, when map() runs with map_threads > 1.
    } else {
      return loaded.error();
    }
  } else if (strings::starts_with(working, "fault:")) {
    mode = ProbeMode::fault;
    auto parsed = env::FaultSpec::parse(working.substr(std::string("fault:").size()));
    if (!parsed.ok()) return parsed.error();
    if (parsed.value().empty()) {
      return make_error(ErrorCode::invalid_argument, "probe spec 'fault:' carries no rules");
    }
    fault = std::move(parsed.value());
  } else {
    return make_error(ErrorCode::invalid_argument,
                      "unknown probe engine spec '" + spec +
                          "' (expected sim, socket:<agents.cfg>, record:<path>, "
                          "replay:<path>, replay-lenient:<path> or fault:<rules>, "
                          "decorators optionally suffixed with @sim or "
                          "@socket:<agents.cfg>)");
  }
  probe_mode_ = mode;
  probe_spec_text_ = spec.empty() ? "sim" : spec;
  socket_roster_ = std::move(roster);
  trace_path_ = std::move(path);
  replay_trace_ = std::move(trace);
  fault_spec_ = std::move(fault);
  return {};
}

std::unique_ptr<env::ProbeEngine> Session::make_base_engine(simnet::Network& net) {
  if (socket_roster_.has_value()) {
    // Each call builds an independent engine over the shared roster:
    // separate connection pools, so per-zone engines probe concurrently
    // without sharing sockets.
    return std::make_unique<env::SocketProbeEngine>(*socket_roster_, options_.mapper);
  }
  return engine_factory_(net, options_.mapper);
}

void Session::record_trace_issue(const Error& error) {
  std::lock_guard<std::mutex> lock(trace_issue_mutex_);
  if (!trace_issue_.has_value()) trace_issue_ = error;
}

Result<std::unique_ptr<env::ProbeEngine>> Session::make_sequential_engine() {
  switch (probe_mode_) {
    case ProbeMode::factory:
      return std::unique_ptr<env::ProbeEngine>(make_base_engine(net_));
    case ProbeMode::record: {
      auto recorder = env::RecordingProbeEngine::open(make_base_engine(net_), trace_path_);
      if (!recorder.ok()) return recorder.error();
      recorder.value()->set_error_handler([this](const Error& error) { record_trace_issue(error); });
      return std::unique_ptr<env::ProbeEngine>(std::move(recorder.value()));
    }
    case ProbeMode::replay_strict:
    case ProbeMode::replay_lenient: {
      if (!replay_trace_.has_value()) {
        return make_error(ErrorCode::invalid_argument,
                          "probe trace '" + trace_path_ +
                              "' is a per-zone (threaded) recording; replay it with "
                              "options().mapper.map_threads > 1");
      }
      const bool lenient = probe_mode_ == ProbeMode::replay_lenient;
      auto replayer = std::make_unique<env::TraceProbeEngine>(
          *replay_trace_,
          lenient ? env::TraceProbeEngine::Mode::lenient : env::TraceProbeEngine::Mode::strict,
          lenient ? make_base_engine(net_) : nullptr);
      replayer->set_violation_handler([this](const Error& error) { record_trace_issue(error); });
      return std::unique_ptr<env::ProbeEngine>(std::move(replayer));
    }
    case ProbeMode::fault:
      return std::unique_ptr<env::ProbeEngine>(std::make_unique<env::FaultInjectingProbeEngine>(
          make_base_engine(net_), fault_spec_));
  }
  return make_error(ErrorCode::internal, "unhandled probe engine mode");
}

std::unique_ptr<env::ProbeEngine> Session::make_zone_engine(std::size_t zone_index) {
  const std::string path =
      trace_path_.empty() ? std::string() : env::zone_trace_path(trace_path_, zone_index);
  if (probe_mode_ == ProbeMode::replay_strict || probe_mode_ == ProbeMode::replay_lenient) {
    auto trace = env::ProbeTrace::load(path);
    if (!trace.ok()) {
      record_trace_issue(trace.error());
      return nullptr;
    }
    const bool lenient = probe_mode_ == ProbeMode::replay_lenient;
    std::unique_ptr<simnet::Network> replica;
    std::unique_ptr<env::ProbeEngine> delegate;
    if (lenient) {
      if (socket_roster_.has_value()) {
        delegate = make_base_engine(net_);  // sockets need no replica
      } else {
        replica = std::make_unique<simnet::Network>(scenario_->topology, net_.options());
        delegate = engine_factory_(*replica, options_.mapper);
      }
    }
    auto replayer = std::make_unique<env::TraceProbeEngine>(
        std::move(trace.value()),
        lenient ? env::TraceProbeEngine::Mode::lenient : env::TraceProbeEngine::Mode::strict,
        std::move(delegate));
    replayer->set_violation_handler([this](const Error& error) { record_trace_issue(error); });
    if (replica == nullptr) return replayer;
    // Keep the lenient delegate's replica alive for the engine's lifetime.
    return std::make_unique<ReplicaEngine>(std::move(replica), std::move(replayer));
  }
  std::unique_ptr<env::ProbeEngine> wrapped;
  if (socket_roster_.has_value()) {
    // Socket engines observe the real agents, not the simulated
    // platform: no replica needed, each zone just gets its own engine
    // (private connection pool) so zones can probe concurrently.
    wrapped = make_base_engine(net_);
  } else {
    auto replica = std::make_unique<simnet::Network>(scenario_->topology, net_.options());
    auto engine = engine_factory_(*replica, options_.mapper);
    wrapped = std::make_unique<ReplicaEngine>(std::move(replica), std::move(engine));
  }
  switch (probe_mode_) {
    case ProbeMode::record: {
      auto recorder = env::RecordingProbeEngine::open(std::move(wrapped), path);
      if (!recorder.ok()) {
        record_trace_issue(recorder.error());
        return nullptr;
      }
      recorder.value()->set_error_handler([this](const Error& error) { record_trace_issue(error); });
      return std::move(recorder.value());
    }
    case ProbeMode::fault:
      return std::make_unique<env::FaultInjectingProbeEngine>(std::move(wrapped), fault_spec_);
    default:
      return wrapped;
  }
}

Session& Session::set_map_cache(std::string directory, std::string label) {
  map_cache_.emplace(std::move(directory));
  map_cache_label_ = std::move(label);
  return *this;
}

std::string Session::map_cache_key() const {
  // An explicit label is trusted verbatim (the caller owns collisions).
  // The default label couples the scenario name with a fingerprint of
  // the platform itself: bare simnet builders reuse one name for every
  // size, and a platform changed under an unchanged name must miss.
  std::string label = map_cache_label_;
  if (label.empty() && scenario_.has_value()) {
    label = scenario_->name + "+" + MapCache::platform_fingerprint(scenario_->topology);
  }
  return MapCache::key_for(label, options_.mapper);
}

Status Session::invalidate_map_cache() {
  if (!map_cache_.has_value()) return {};
  return map_cache_->invalidate(map_cache_key());
}

void Session::emit(Event::Kind kind, Stage stage, std::string detail, std::string zone,
                   int zone_index) {
  if (observer_ == nullptr) return;
  std::lock_guard<std::mutex> lock(event_mutex_);
  Event event;
  event.kind = kind;
  event.stage = stage;
  event.detail = std::move(detail);
  event.sim_time_s = net_.now();
  event.sequence = event_sequence_++;
  event.zone = std::move(zone);
  event.zone_index = zone_index;
  observer_->on_event(event);
}

Status Session::fail(Stage stage, const Error& error) {
  emit(Event::Kind::stage_failed, stage, error.to_string());
  return error;
}

Result<env::MapResult> Session::probe_map() {
  const auto zones = env::zones_from_scenario(*scenario_);
  if (!zones.ok()) return zones.error();
  const auto aliases = env::gateway_aliases_from_scenario(*scenario_);
  const int threads = std::max(options_.mapper.map_threads, 1);
  emit(Event::Kind::note, Stage::map,
       "mapping " + std::to_string(zones.value().size()) + " firewall zone(s) of scenario '" +
           scenario_->name + "'" +
           (threads > 1 ? " on " + std::to_string(threads) + " threads" : ""));
  if (socket_roster_.has_value()) {
    emit(Event::Kind::note, Stage::map,
         "probing through socket agent roster '" + socket_roster_->source + "' (" +
             std::to_string(socket_roster_->agents.size()) + " agent(s))");
  }
  const auto progress = [this](const env::ZoneProgress& zone) {
    Event::Kind kind = Event::Kind::zone_started;
    if (zone.phase == env::ZoneProgress::Phase::finished) kind = Event::Kind::zone_finished;
    if (zone.phase == env::ZoneProgress::Phase::failed) kind = Event::Kind::zone_failed;
    emit(kind, Stage::map, zone.detail, zone.zone_name, static_cast<int>(zone.zone_index));
  };
  const auto batch_progress = [this](const env::BatchProgress& batch) {
    std::ostringstream detail;
    detail << batch.stage << " batch on '" << batch.label << "': " << batch.experiments
           << " experiment(s) over " << batch.workers << " worker(s)";
    if (batch.phase == env::BatchProgress::Phase::finished) {
      detail << ", " << strings::format_double(batch.sequential_s, 1) << " s sequential -> "
             << strings::format_double(batch.makespan_s, 1) << " s scheduled";
    }
    emit(batch.phase == env::BatchProgress::Phase::started ? Event::Kind::probe_batch_started
                                                           : Event::Kind::probe_batch_finished,
         Stage::map, detail.str(), batch.zone_name, static_cast<int>(batch.zone_index));
  };
  {
    std::lock_guard<std::mutex> lock(trace_issue_mutex_);
    trace_issue_.reset();
  }
  if (probe_mode_ == ProbeMode::record) {
    // Path reuse is the normal case (the golden re-record workflow), so
    // scrub everything a previous recording may have left here — the
    // single-file root AND every `.zone<k>` sibling, whichever thread
    // mode produced them. A stale leftover would later replay as truth.
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::remove(trace_path_, ec);
    const fs::path base(trace_path_);
    const std::string prefix = base.filename().string() + ".zone";
    const fs::path dir = base.has_parent_path() ? base.parent_path() : fs::path(".");
    if (fs::exists(dir, ec) && !ec) {
      for (const auto& entry : fs::directory_iterator(dir, ec)) {
        if (entry.path().filename().string().rfind(prefix, 0) == 0) {
          fs::remove(entry.path(), ec);
        }
      }
    }
  }
  std::optional<Result<env::MapResult>> mapped;
  if (threads > 1) {
    // Concurrent zones need independent engines. Each zone's engine
    // observes a private replica of the scenario platform — built with
    // the session network's own options, so the replicas measure what
    // the shared network would — and the session's network is left
    // untouched (no probe traffic, no clock advance), exactly as if the
    // mapping had happened offline. Note the bit-identical-to-sequential
    // guarantee assumes deterministic engines: with measurement jitter
    // enabled, each replica draws its own noise stream. Trace specs
    // record/replay one file per zone (env::zone_trace_path).
    env::Mapper mapper(env::ZoneEngineFactory([this](const env::ZoneSpec&,
                                                     std::size_t zone_index) {
                         return make_zone_engine(zone_index);
                       }),
                       options_.mapper);
    mapper.set_progress(progress);
    mapper.set_batch_progress(batch_progress);
    mapped = mapper.map(zones.value(), aliases);
  } else {
    auto engine = make_sequential_engine();
    if (!engine.ok()) {
      mapped = Result<env::MapResult>(engine.error());
    } else {
      env::Mapper mapper(*engine.value(), options_.mapper);
      mapper.set_progress(progress);
      mapper.set_batch_progress(batch_progress);
      mapped = mapper.map(zones.value(), aliases);
    }
  }
  // The mapper downgrades probe errors to per-host warnings, so a replay
  // violation (out-of-trace request, exhausted trace) or a recording
  // write failure would otherwise hide inside a "successful" result.
  // Surface the first one as the map stage's real failure.
  {
    std::lock_guard<std::mutex> lock(trace_issue_mutex_);
    if (trace_issue_.has_value()) return *trace_issue_;
  }
  if (mapped->ok() && probe_mode_ == ProbeMode::record) {
    emit(Event::Kind::note, Stage::map,
         threads > 1 ? "probe traces recorded to '" + trace_path_ + ".zone<k>'"
                     : "probe trace recorded to '" + trace_path_ + "'");
  }
  return *mapped;
}

Status Session::map() {
  if (!scenario_.has_value()) {
    // Before invalidate(): a map seeded via load_map*() must survive
    // this argument error.
    emit(Event::Kind::stage_started, Stage::map);
    return fail(Stage::map,
                make_error(ErrorCode::invalid_argument,
                           "session has no scenario; seed the map stage with load_map() "
                           "or load_map_from_gridml()"));
  }
  invalidate(Stage::map);
  emit(Event::Kind::stage_started, Stage::map);

  // The persistent cache serves the default engine only: trace and
  // fault specs exist to exercise the probe path itself, so a cache hit
  // would defeat record:/replay: (success with no trace touched), and a
  // fault:/replay-lenient: result must never be stored as the
  // platform's truth. Socket specs bypass too: the cache key
  // fingerprints the SCENARIO platform, which a live agent fleet is
  // not — a hit would silently serve simulator truth for a real run.
  const bool use_cache = map_cache_.has_value() && probe_mode_ == ProbeMode::factory &&
                         !socket_roster_.has_value();
  if (map_cache_.has_value() && !use_cache) {
    emit(Event::Kind::note, Stage::map,
         "map cache bypassed (probe engine spec '" + probe_spec_text_ + "')");
  }
  // One key per map() call: computing it serializes the whole platform
  // into the fingerprint, so don't do that twice.
  const std::string key = use_cache ? map_cache_key() : std::string();
  if (use_cache) {
    auto cached = map_cache_->load(key);
    if (cached.ok()) {
      map_ = std::move(cached.value());
      published_view_ = false;
      // This run performed zero probe experiments; the entry keeps the
      // original cost on disk for the curious.
      const std::uint64_t original_experiments = map_->stats.experiments;
      map_->stats = env::MapStats{};
      emit(Event::Kind::note, Stage::map,
           "map stage reloaded from cache entry '" + map_cache_->path_for(key) +
               "' (originally " + std::to_string(original_experiments) + " experiments)");
      // Warnings are part of the result: a reload surfaces them exactly
      // like the probe run that produced them did.
      for (const auto& warning : map_->warnings) {
        emit(Event::Kind::note, Stage::map, "warning: " + warning);
      }
      emit(Event::Kind::stage_finished, Stage::map,
           std::to_string(map_->zones.size()) + " zone(s), 0 experiments (cache hit)");
      return {};
    }
    if (cached.error().code != ErrorCode::not_found) {
      emit(Event::Kind::note, Stage::map,
           "map cache entry ignored: " + cached.error().to_string());
    }
  }

  auto result = probe_map();
  if (!result.ok()) return fail(Stage::map, result.error());
  map_ = std::move(result.value());
  published_view_ = false;
  for (const auto& warning : map_->warnings) {
    emit(Event::Kind::note, Stage::map, "warning: " + warning);
  }
  if (options_.mapper.probe_jobs > 1 && map_->batch.batches > 0) {
    emit(Event::Kind::note, Stage::map,
         "batched probe schedule (probe_jobs=" + std::to_string(options_.mapper.probe_jobs) +
             "): " + strings::format_double(map_->stats.duration_s / 60.0, 1) +
             " min sequential -> " + strings::format_double(map_->batched_duration_s() / 60.0, 1) +
             " min scheduled");
  }
  if (use_cache) {
    if (auto stored = map_cache_->store(key, *map_); stored.ok()) {
      emit(Event::Kind::note, Stage::map,
           "mapped platform persisted to '" + map_cache_->path_for(key) + "'");
    } else {
      emit(Event::Kind::note, Stage::map,
           "map cache store failed: " + stored.error().to_string());
    }
  }
  emit(Event::Kind::stage_finished, Stage::map,
       std::to_string(map_->zones.size()) + " zone(s), " +
           std::to_string(map_->stats.experiments) + " experiments, " +
           strings::format_double(
               static_cast<double>(map_->stats.bytes_sent) / (1024.0 * 1024.0), 1) +
           " MiB injected");
  return {};
}

Status Session::plan() {
  if (!map_.has_value()) {
    if (auto status = map(); !status.ok()) return status;
  }
  invalidate(Stage::plan);
  emit(Event::Kind::stage_started, Stage::plan);
  auto planned = published_view_
                     ? deploy::plan_from_tree(map_->root, map_->master_fqdn, options_.planner)
                     : deploy::plan_deployment(*map_, options_.planner);
  if (!planned.ok()) return fail(Stage::plan, planned.error());
  plan_ = std::move(planned.value());
  if (published_view_) {
    // Without zone information, place one memory on the master and one on
    // each gateway of the published view (the site heads).
    for (const auto& gateway : map_->root.gateways()) {
      if (std::find(plan_->memory_hosts.begin(), plan_->memory_hosts.end(), gateway) ==
          plan_->memory_hosts.end()) {
        plan_->memory_hosts.push_back(gateway);
      }
    }
  }
  config_text_ = deploy::generate_config(*plan_);
  emit(Event::Kind::stage_finished, Stage::plan,
       std::to_string(plan_->cliques.size()) + " clique(s) over " +
           std::to_string(plan_->hosts.size()) + " host(s), " +
           std::to_string(plan_->memory_hosts.size()) + " memory server(s)");
  return {};
}

Status Session::apply() {
  if (!plan_.has_value()) {
    if (auto status = plan(); !status.ok()) return status;
  }
  invalidate(Stage::apply);
  emit(Event::Kind::stage_started, Stage::apply);
  auto system = deploy::apply_plan(*plan_, net_, options_.manager);
  if (!system.ok()) return fail(Stage::apply, system.error());
  system_ = std::move(system.value());
  queries_ = std::make_unique<deploy::QueryService>(*system_, *plan_);
  emit(Event::Kind::stage_finished, Stage::apply,
       "NWS running: nameserver on " + plan_->nameserver_host + ", " +
           std::to_string(plan_->cliques.size()) + " clique(s) circulating");
  return {};
}

Status Session::validate() {
  if (!plan_.has_value()) {
    if (auto status = plan(); !status.ok()) return status;
  }
  invalidate(Stage::validate);
  emit(Event::Kind::stage_started, Stage::validate);
  auto options = options_.validator;
  options.bandwidth_probe_bytes = options_.manager.bandwidth_probe_bytes;
  validation_ = deploy::validate_plan(*plan_, net_, options);
  emit(Event::Kind::stage_finished, Stage::validate,
       std::string(validation_->complete ? "complete" : "INCOMPLETE") + ", worst collision error " +
           strings::format_double(validation_->worst_collision_error * 100.0, 1) + "%");
  return {};
}

Result<std::unique_ptr<monitor::MonitorDaemon>> Session::make_monitor(
    monitor::MonitorOptions options) {
  if (!plan_.has_value()) {
    if (auto status = plan(); !status.ok()) return status.error();
  }
  auto engine = make_sequential_engine();
  if (!engine.ok()) return engine.error();
  // Incremental re-maps probe with the same tunables the map stage used
  // (probe payload, stabilization gap, thresholds).
  options.remap = options_.mapper;
  auto daemon =
      std::make_unique<monitor::MonitorDaemon>(*plan_, std::move(engine.value()), options);
  daemon->set_observer([this](const monitor::MonitorEvent& event) {
    std::string detail = std::string("monitor ") + monitor::to_string(event.kind) +
                         " cycle=" + std::to_string(event.cycle);
    if (!event.segment.empty()) detail += " segment=" + event.segment;
    if (!event.detail.empty()) detail += " " + event.detail;
    emit(Event::Kind::note, Stage::apply, std::move(detail));
  });
  daemon->set_remap_sink([this](const std::string& segment, const env::ZoneMapResult&) {
    // The segment provably changed under the cached map: drop the entry
    // so the next map() re-probes instead of serving a stale platform.
    (void)invalidate_map_cache();
    emit(Event::Kind::note, Stage::apply,
         "monitor re-mapped segment '" + segment + "'; map cache entry invalidated");
  });
  emit(Event::Kind::note, Stage::apply,
       "monitor daemon created: " + std::to_string(daemon->scheduler().probes_per_cycle()) +
           " probe(s)/cycle over " + std::to_string(plan_->cliques.size()) + " clique(s), spec " +
           probe_spec_text_);
  return daemon;
}

Status Session::run_all(bool with_validation) {
  // apply() auto-runs any missing plan()/map() prerequisites itself.
  if (system_ == nullptr) {
    if (auto status = apply(); !status.ok()) return status;
  }
  if (with_validation && !validation_.has_value()) {
    if (auto status = validate(); !status.ok()) return status;
  }
  return {};
}

void Session::load_map(env::MapResult map) {
  invalidate(Stage::map);
  map_ = std::move(map);
  published_view_ = false;
  emit(Event::Kind::note, Stage::map,
       "map stage seeded from a cached view (master " + map_->master_fqdn + ")");
}

Status Session::load_map_from_gridml(const std::string& gridml_text, const std::string& master) {
  invalidate(Stage::map);
  auto grid = gridml::GridDoc::parse(gridml_text);
  if (!grid.ok()) return fail(Stage::map, grid.error());
  if (grid.value().networks.empty()) {
    return fail(Stage::map, make_error(ErrorCode::invalid_argument,
                                       "published GridML carries no NETWORK tree"));
  }
  env::MapResult map;
  map.grid = std::move(grid.value());
  // The merged effective view is the last NETWORK element by convention
  // (Mapper::map appends it after the per-zone SITE data).
  auto root = env::EnvNetwork::from_gridml(map.grid.networks.back());
  if (!root.ok()) return fail(Stage::map, root.error());
  map.root = std::move(root.value());
  map.master_fqdn = map.canonical(master);
  map_ = std::move(map);
  published_view_ = true;
  emit(Event::Kind::note, Stage::map,
       "map stage seeded from published GridML (master " + map_->master_fqdn + ")");
  return {};
}

void Session::invalidate(Stage stage) {
  switch (stage) {
    case Stage::map:
      map_.reset();
      published_view_ = false;
      [[fallthrough]];
    case Stage::plan:
      plan_.reset();
      config_text_.clear();
      [[fallthrough]];
    case Stage::apply:
      queries_.reset();  // references the system; must go first
      if (system_ != nullptr) system_->stop();
      system_.reset();
      [[fallthrough]];
    case Stage::validate:
      validation_.reset();
  }
}

bool Session::has(Stage stage) const {
  switch (stage) {
    case Stage::map: return map_.has_value();
    case Stage::plan: return plan_.has_value();
    case Stage::apply: return system_ != nullptr;
    case Stage::validate: return validation_.has_value();
  }
  return false;
}

const env::MapResult& Session::map_result() const {
  assert(map_.has_value());
  return *map_;
}
env::MapResult& Session::map_result() {
  assert(map_.has_value());
  return *map_;
}
const deploy::DeploymentPlan& Session::plan_result() const {
  assert(plan_.has_value());
  return *plan_;
}
deploy::DeploymentPlan& Session::plan_result() {
  assert(plan_.has_value());
  return *plan_;
}
nws::NwsSystem& Session::system() {
  assert(system_ != nullptr);  // apply() has run and take_system() hasn't
  return *system_;
}
deploy::QueryService& Session::queries() {
  assert(queries_ != nullptr);
  return *queries_;
}
const deploy::ValidationReport& Session::validation() const {
  assert(validation_.has_value());
  return *validation_;
}

std::string Session::render() const {
  std::ostringstream out;
  if (map_.has_value()) {
    out << "=== ENV effective view (master: " << map_->master_fqdn << ") ===\n";
    out << env::render_effective(map_->root);
    out << "\nENV mapping cost: " << map_->stats.experiments << " experiments, "
        << strings::format_double(
               static_cast<double>(map_->stats.bytes_sent) / (1024.0 * 1024.0), 1)
        << " MiB injected, " << strings::format_double(map_->stats.duration_s / 60.0, 1)
        << " simulated minutes\n";
  }
  if (plan_.has_value()) out << "\n=== deployment plan ===\n" << plan_->render();
  if (validation_.has_value()) out << "\n=== validation ===\n" << validation_->render();
  return out.str();
}

}  // namespace envnws::api
