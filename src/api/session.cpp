#include "api/session.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "common/strings.hpp"
#include "common/units.hpp"
#include "env/scenario_zones.hpp"
#include "env/sim_probe_engine.hpp"

namespace envnws::api {

namespace {

ProbeEngineFactory sim_engine_factory() {
  return [](simnet::Network& net, const env::MapperOptions& options) {
    return std::make_unique<env::SimProbeEngine>(net, options);
  };
}

}  // namespace

Session::Session(simnet::Network& net, simnet::Scenario scenario, SessionOptions options)
    : net_(net),
      scenario_(std::move(scenario)),
      options_(std::move(options)),
      engine_factory_(sim_engine_factory()) {}

Session::Session(simnet::Network& net, SessionOptions options)
    : net_(net), options_(std::move(options)), engine_factory_(sim_engine_factory()) {}

Session& Session::set_observer(Observer* observer) {
  observer_ = observer;
  return *this;
}

Session& Session::set_probe_engine_factory(ProbeEngineFactory factory) {
  engine_factory_ = factory ? std::move(factory) : sim_engine_factory();
  return *this;
}

void Session::emit(Event::Kind kind, Stage stage, std::string detail) {
  if (observer_ == nullptr) return;
  observer_->on_event(Event{kind, stage, std::move(detail), net_.now()});
}

Status Session::fail(Stage stage, const Error& error) {
  emit(Event::Kind::stage_failed, stage, error.to_string());
  return error;
}

Status Session::map() {
  if (!scenario_.has_value()) {
    // Before invalidate(): a map seeded via load_map*() must survive
    // this argument error.
    emit(Event::Kind::stage_started, Stage::map);
    return fail(Stage::map,
                make_error(ErrorCode::invalid_argument,
                           "session has no scenario; seed the map stage with load_map() "
                           "or load_map_from_gridml()"));
  }
  invalidate(Stage::map);
  emit(Event::Kind::stage_started, Stage::map);
  auto engine = engine_factory_(net_, options_.mapper);
  env::Mapper mapper(*engine, options_.mapper);
  const auto zones = env::zones_from_scenario(*scenario_);
  if (!zones.ok()) return fail(Stage::map, zones.error());
  const auto aliases = env::gateway_aliases_from_scenario(*scenario_);
  emit(Event::Kind::note, Stage::map,
       "mapping " + std::to_string(zones.value().size()) + " firewall zone(s) of scenario '" +
           scenario_->name + "'");
  auto result = mapper.map(zones.value(), aliases);
  if (!result.ok()) return fail(Stage::map, result.error());
  map_ = std::move(result.value());
  published_view_ = false;
  for (const auto& warning : map_->warnings) {
    emit(Event::Kind::note, Stage::map, "warning: " + warning);
  }
  emit(Event::Kind::stage_finished, Stage::map,
       std::to_string(map_->zones.size()) + " zone(s), " +
           std::to_string(map_->stats.experiments) + " experiments, " +
           strings::format_double(
               static_cast<double>(map_->stats.bytes_sent) / (1024.0 * 1024.0), 1) +
           " MiB injected");
  return {};
}

Status Session::plan() {
  if (!map_.has_value()) {
    if (auto status = map(); !status.ok()) return status;
  }
  invalidate(Stage::plan);
  emit(Event::Kind::stage_started, Stage::plan);
  auto planned = published_view_
                     ? deploy::plan_from_tree(map_->root, map_->master_fqdn, options_.planner)
                     : deploy::plan_deployment(*map_, options_.planner);
  if (!planned.ok()) return fail(Stage::plan, planned.error());
  plan_ = std::move(planned.value());
  if (published_view_) {
    // Without zone information, place one memory on the master and one on
    // each gateway of the published view (the site heads).
    for (const auto& gateway : map_->root.gateways()) {
      if (std::find(plan_->memory_hosts.begin(), plan_->memory_hosts.end(), gateway) ==
          plan_->memory_hosts.end()) {
        plan_->memory_hosts.push_back(gateway);
      }
    }
  }
  config_text_ = deploy::generate_config(*plan_);
  emit(Event::Kind::stage_finished, Stage::plan,
       std::to_string(plan_->cliques.size()) + " clique(s) over " +
           std::to_string(plan_->hosts.size()) + " host(s), " +
           std::to_string(plan_->memory_hosts.size()) + " memory server(s)");
  return {};
}

Status Session::apply() {
  if (!plan_.has_value()) {
    if (auto status = plan(); !status.ok()) return status;
  }
  invalidate(Stage::apply);
  emit(Event::Kind::stage_started, Stage::apply);
  auto system = deploy::apply_plan(*plan_, net_, options_.manager);
  if (!system.ok()) return fail(Stage::apply, system.error());
  system_ = std::move(system.value());
  queries_ = std::make_unique<deploy::QueryService>(*system_, *plan_);
  emit(Event::Kind::stage_finished, Stage::apply,
       "NWS running: nameserver on " + plan_->nameserver_host + ", " +
           std::to_string(plan_->cliques.size()) + " clique(s) circulating");
  return {};
}

Status Session::validate() {
  if (!plan_.has_value()) {
    if (auto status = plan(); !status.ok()) return status;
  }
  invalidate(Stage::validate);
  emit(Event::Kind::stage_started, Stage::validate);
  auto options = options_.validator;
  options.bandwidth_probe_bytes = options_.manager.bandwidth_probe_bytes;
  validation_ = deploy::validate_plan(*plan_, net_, options);
  emit(Event::Kind::stage_finished, Stage::validate,
       std::string(validation_->complete ? "complete" : "INCOMPLETE") + ", worst collision error " +
           strings::format_double(validation_->worst_collision_error * 100.0, 1) + "%");
  return {};
}

Status Session::run_all(bool with_validation) {
  // apply() auto-runs any missing plan()/map() prerequisites itself.
  if (system_ == nullptr) {
    if (auto status = apply(); !status.ok()) return status;
  }
  if (with_validation && !validation_.has_value()) {
    if (auto status = validate(); !status.ok()) return status;
  }
  return {};
}

void Session::load_map(env::MapResult map) {
  invalidate(Stage::map);
  map_ = std::move(map);
  published_view_ = false;
  emit(Event::Kind::note, Stage::map,
       "map stage seeded from a cached view (master " + map_->master_fqdn + ")");
}

Status Session::load_map_from_gridml(const std::string& gridml_text, const std::string& master) {
  invalidate(Stage::map);
  auto grid = gridml::GridDoc::parse(gridml_text);
  if (!grid.ok()) return fail(Stage::map, grid.error());
  if (grid.value().networks.empty()) {
    return fail(Stage::map, make_error(ErrorCode::invalid_argument,
                                       "published GridML carries no NETWORK tree"));
  }
  env::MapResult map;
  map.grid = std::move(grid.value());
  // The merged effective view is the last NETWORK element by convention
  // (Mapper::map appends it after the per-zone SITE data).
  map.root = env::EnvNetwork::from_gridml(map.grid.networks.back());
  map.master_fqdn = map.canonical(master);
  map_ = std::move(map);
  published_view_ = true;
  emit(Event::Kind::note, Stage::map,
       "map stage seeded from published GridML (master " + map_->master_fqdn + ")");
  return {};
}

void Session::invalidate(Stage stage) {
  switch (stage) {
    case Stage::map:
      map_.reset();
      published_view_ = false;
      [[fallthrough]];
    case Stage::plan:
      plan_.reset();
      config_text_.clear();
      [[fallthrough]];
    case Stage::apply:
      queries_.reset();  // references the system; must go first
      if (system_ != nullptr) system_->stop();
      system_.reset();
      [[fallthrough]];
    case Stage::validate:
      validation_.reset();
  }
}

bool Session::has(Stage stage) const {
  switch (stage) {
    case Stage::map: return map_.has_value();
    case Stage::plan: return plan_.has_value();
    case Stage::apply: return system_ != nullptr;
    case Stage::validate: return validation_.has_value();
  }
  return false;
}

const env::MapResult& Session::map_result() const {
  assert(map_.has_value());
  return *map_;
}
env::MapResult& Session::map_result() {
  assert(map_.has_value());
  return *map_;
}
const deploy::DeploymentPlan& Session::plan_result() const {
  assert(plan_.has_value());
  return *plan_;
}
deploy::DeploymentPlan& Session::plan_result() {
  assert(plan_.has_value());
  return *plan_;
}
nws::NwsSystem& Session::system() {
  assert(system_ != nullptr);  // apply() has run and take_system() hasn't
  return *system_;
}
deploy::QueryService& Session::queries() {
  assert(queries_ != nullptr);
  return *queries_;
}
const deploy::ValidationReport& Session::validation() const {
  assert(validation_.has_value());
  return *validation_;
}

std::string Session::render() const {
  std::ostringstream out;
  if (map_.has_value()) {
    out << "=== ENV effective view (master: " << map_->master_fqdn << ") ===\n";
    out << env::render_effective(map_->root);
    out << "\nENV mapping cost: " << map_->stats.experiments << " experiments, "
        << strings::format_double(
               static_cast<double>(map_->stats.bytes_sent) / (1024.0 * 1024.0), 1)
        << " MiB injected, " << strings::format_double(map_->stats.duration_s / 60.0, 1)
        << " simulated minutes\n";
  }
  if (plan_.has_value()) out << "\n=== deployment plan ===\n" << plan_->render();
  if (validation_.has_value()) out << "\n=== validation ===\n" << validation_->render();
  return out.str();
}

}  // namespace envnws::api
