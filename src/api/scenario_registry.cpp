#include "api/scenario_registry.hpp"

#include <algorithm>
#include <sstream>

#include "api/gridml_scenario.hpp"
#include "common/strings.hpp"
#include "common/units.hpp"

namespace envnws::api {

namespace {

Result<int> parse_int(const std::string& piece, const std::string& what) {
  try {
    std::size_t used = 0;
    const int value = std::stoi(piece, &used);
    if (used != piece.size()) throw std::invalid_argument(piece);
    return value;
  } catch (const std::exception&) {
    return make_error(ErrorCode::invalid_argument,
                      "bad " + what + " '" + piece + "' (expected an integer)");
  }
}

Result<double> parse_rate(const std::string& piece) {
  try {
    std::size_t used = 0;
    const double value = std::stod(piece, &used);
    if (used != piece.size() || value <= 0.0) throw std::invalid_argument(piece);
    return value;
  } catch (const std::exception&) {
    return make_error(ErrorCode::invalid_argument,
                      "bad rate '" + piece + "' (expected Mbps > 0)");
  }
}

/// Reject specs carrying more parameters than the builder understands —
/// a typoed spec should fail loudly, not half-apply.
Status check_arity(const ScenarioSpec& spec, std::size_t max_dims, std::size_t max_rates) {
  if (spec.dims.size() > max_dims) {
    return make_error(ErrorCode::invalid_argument,
                      "scenario '" + spec.name + "' takes at most " +
                          std::to_string(max_dims) + " dimension(s), got " +
                          std::to_string(spec.dims.size()));
  }
  if (spec.rates_mbps.size() > max_rates) {
    return make_error(ErrorCode::invalid_argument,
                      "scenario '" + spec.name + "' takes at most " +
                          std::to_string(max_rates) + " rate(s), got " +
                          std::to_string(spec.rates_mbps.size()));
  }
  return {};
}

Result<int> positive_dim(const ScenarioSpec& spec, std::size_t i, int fallback) {
  if (i >= spec.dims.size()) return fallback;
  if (spec.dims[i] <= 0) {
    return make_error(ErrorCode::invalid_argument,
                      "scenario '" + spec.name + "': dimension " + std::to_string(i + 1) +
                          " must be positive");
  }
  return spec.dims[i];
}

double rate_bps_or(const ScenarioSpec& spec, std::size_t i, double fallback_mbps) {
  return units::mbps(i < spec.rates_mbps.size() ? spec.rates_mbps[i] : fallback_mbps);
}

/// `"2%"` / `"0.5%"` -> 2.0 / 0.5; anything else (missing '%', trailing
/// junk, negative, NaN) is an invalid_argument error, never a throw.
Result<double> parse_percent(const std::string& piece, const std::string& what) {
  if (piece.empty() || piece.back() != '%') {
    return make_error(ErrorCode::invalid_argument,
                      "bad " + what + " '" + piece + "' (expected '<value>%')");
  }
  const std::string digits = piece.substr(0, piece.size() - 1);
  try {
    std::size_t used = 0;
    const double value = std::stod(digits, &used);
    if (used != digits.size() || !(value >= 0.0)) throw std::invalid_argument(digits);
    return value;
  } catch (const std::exception&) {
    return make_error(ErrorCode::invalid_argument,
                      "bad " + what + " '" + piece + "' (expected '<value>%')");
  }
}

/// Peels `tcp-lv08:` / `lossy:...` / `wifi:` / `bg:<flows>:` prefixes off
/// `head`, accumulating into `spec`. Decorators commute but may appear
/// at most once each.
Status peel_decorators(ScenarioSpec& spec, std::string& head) {
  bool saw_lossy = false;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    const auto colon = head.find(':');
    if (colon == std::string::npos) break;
    const std::string token = strings::to_lower(strings::trim(head.substr(0, colon)));
    const auto duplicate = [&](const char* name) {
      return make_error(ErrorCode::invalid_argument,
                        std::string("decorator '") + name + "' given more than once");
    };
    if (token == "tcp-lv08") {
      if (spec.link_model.tcp) return duplicate("tcp-lv08");
      spec.link_model.tcp = true;
    } else if (token == "wifi") {
      if (spec.link_model.wifi) return duplicate("wifi");
      spec.link_model.wifi = true;
    } else if (token == "lossy") {
      if (saw_lossy) return duplicate("lossy");
      saw_lossy = true;
      head = head.substr(colon + 1);
      // Optional colon-terminated `p=P%` / `c=C%` argument tokens.
      double loss = -1.0;
      double cksum = -1.0;
      while (true) {
        const auto next = head.find(':');
        if (next == std::string::npos) break;
        const std::string arg = strings::to_lower(strings::trim(head.substr(0, next)));
        double* slot = nullptr;
        const char* what = nullptr;
        if (arg.rfind("p=", 0) == 0) {
          slot = &loss;
          what = "loss percentage";
        } else if (arg.rfind("c=", 0) == 0) {
          slot = &cksum;
          what = "corruption percentage";
        } else {
          break;
        }
        if (*slot >= 0.0) return duplicate(what);
        auto value = parse_percent(arg.substr(2), what);
        if (!value.ok()) return value.error();
        if (value.value() >= 100.0) {
          return make_error(ErrorCode::invalid_argument,
                            std::string("decorator 'lossy': ") + what + " must be below 100%");
        }
        *slot = value.value();
        head = head.substr(next + 1);
      }
      spec.link_model.loss_pct = loss >= 0.0 ? loss : 2.0;
      spec.link_model.cksum_pct = cksum >= 0.0 ? cksum : 0.0;
      progressed = true;
      continue;
    } else if (token == "bg") {
      if (spec.background.active()) return duplicate("bg");
      const std::string rest = head.substr(colon + 1);
      const auto next = rest.find(':');
      if (next == std::string::npos) {
        return make_error(ErrorCode::invalid_argument,
                          "decorator 'bg' needs a flow count ('bg:<flows>:')");
      }
      auto flows = parse_int(strings::trim(rest.substr(0, next)), "background flow count");
      if (!flows.ok()) return flows.error();
      if (flows.value() <= 0 || flows.value() > 4096) {
        return make_error(ErrorCode::invalid_argument,
                          "decorator 'bg': flow count must be in [1, 4096]");
      }
      spec.background.flows = flows.value();
      head = rest.substr(next + 1);
      progressed = true;
      continue;
    } else {
      break;
    }
    head = head.substr(colon + 1);
    progressed = true;
  }
  return {};
}

}  // namespace

Result<ScenarioSpec> ScenarioSpec::parse(const std::string& text) {
  ScenarioSpec spec;
  std::string head = strings::trim(text);
  // Decorator prefixes come first, before the '@' split: their arguments
  // never contain '@', and peeling first keeps "file:" payloads (which
  // may contain anything) verbatim.
  if (auto status = peel_decorators(spec, head); !status.ok()) return status.error();
  // Path-like specs: everything after "file:" is the payload, verbatim.
  constexpr const char* kFilePrefix = "file:";
  if (strings::to_lower(head).rfind(kFilePrefix, 0) == 0) {
    spec.name = "file";
    spec.payload = strings::trim(head.substr(std::string(kFilePrefix).size()));
    if (spec.payload.empty()) {
      return make_error(ErrorCode::invalid_argument,
                        "scenario spec 'file:' names no GridML file");
    }
    return spec;
  }
  if (const auto at = head.find('@'); at != std::string::npos) {
    for (const auto& piece : strings::split(head.substr(at + 1), '/')) {
      auto rate = parse_rate(piece);
      if (!rate.ok()) return rate.error();
      spec.rates_mbps.push_back(rate.value());
    }
    if (spec.rates_mbps.empty()) {
      return make_error(ErrorCode::invalid_argument, "empty rate list after '@' in '" + text + "'");
    }
    head = head.substr(0, at);
  }
  if (const auto colon = head.find(':'); colon != std::string::npos) {
    for (const auto& piece : strings::split(head.substr(colon + 1), 'x')) {
      auto dim = parse_int(piece, "dimension");
      if (!dim.ok()) return dim.error();
      spec.dims.push_back(dim.value());
    }
    if (spec.dims.empty()) {
      return make_error(ErrorCode::invalid_argument,
                        "empty dimension list after ':' in '" + text + "'");
    }
    head = head.substr(0, colon);
  }
  spec.name = strings::to_lower(strings::trim(head));
  if (spec.name.empty()) {
    return make_error(ErrorCode::invalid_argument, "scenario spec '" + text + "' has no name");
  }
  return spec;
}

std::string ScenarioSpec::to_string() const {
  const std::string prefix = link_model.decorator_prefix() + background.decorator_prefix();
  if (!payload.empty()) return prefix + name + ":" + payload;
  std::ostringstream out;
  out << prefix << name;
  for (std::size_t i = 0; i < dims.size(); ++i) out << (i == 0 ? ':' : 'x') << dims[i];
  for (std::size_t i = 0; i < rates_mbps.size(); ++i) {
    out << (i == 0 ? '@' : '/') << rates_mbps[i];
  }
  return out.str();
}

void ScenarioRegistry::add(Entry entry) {
  const std::string key = entry.name;
  entries_[key] = std::move(entry);
}

bool ScenarioRegistry::contains(const std::string& name) const {
  return entries_.count(name) > 0;
}

Result<simnet::Scenario> ScenarioRegistry::make(const std::string& spec_text) const {
  auto spec = ScenarioSpec::parse(spec_text);
  if (!spec.ok()) return spec.error();
  return make(spec.value());
}

Result<simnet::Scenario> ScenarioRegistry::make(const ScenarioSpec& spec) const {
  const auto it = entries_.find(spec.name);
  if (it == entries_.end()) {
    std::vector<std::string> known;
    known.reserve(entries_.size());
    for (const auto& [name, entry] : entries_) known.push_back(name);
    return make_error(ErrorCode::not_found,
                      "unknown scenario '" + spec.name + "' (known: " +
                          strings::join(known, ", ") + ")");
  }
  auto made = it->second.factory(spec);
  if (!made.ok()) return made;
  // Decorators travel with the topology, so every Network built from
  // this scenario — including per-zone replicas — applies the same
  // model and background load.
  made.value().topology.set_link_model(spec.link_model);
  made.value().topology.set_background(spec.background);
  // Registry-built scenarios are self-describing: the name IS the
  // canonical spec, which keeps e.g. "dumbbell:4x4" and "dumbbell:3x3"
  // apart when the name becomes a map-cache key.
  made.value().name = spec.to_string();
  return made;
}

std::vector<const ScenarioRegistry::Entry*> ScenarioRegistry::entries() const {
  std::vector<const Entry*> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(&entry);
  return out;  // std::map iteration is already name-sorted
}

std::string ScenarioRegistry::render_catalog() const {
  std::ostringstream out;
  for (const Entry* entry : entries()) {
    out << "  " << strings::pad_right(entry->synopsis, 40) << entry->description << "\n";
  }
  return out.str();
}

const ScenarioRegistry& ScenarioRegistry::builtin() {
  static const ScenarioRegistry registry = [] {
    ScenarioRegistry r;
    r.add({"ens-lyon", "ens-lyon",
           "the paper's ENS-Lyon evaluation network (Fig. 1a)",
           [](const ScenarioSpec& spec) -> Result<simnet::Scenario> {
             if (auto st = check_arity(spec, 0, 0); !st.ok()) return st.error();
             return simnet::ens_lyon();
           }});
    const auto star_factory = [](bool hub) {
      return [hub](const ScenarioSpec& spec) -> Result<simnet::Scenario> {
        if (auto st = check_arity(spec, 1, 1); !st.ok()) return st.error();
        auto n = positive_dim(spec, 0, 8);
        if (!n.ok()) return n.error();
        // The host addressing plan packs 254 hosts per /24 inside 10/8;
        // 65534 keeps every generated address unique with room to spare
        // and bounds a typoed spec before it tries to allocate the moon.
        if (n.value() > 65534) {
          return make_error(ErrorCode::invalid_argument,
                            "scenario '" + spec.name + "': at most 65534 hosts");
        }
        const double bw = rate_bps_or(spec, 0, 100.0);
        return hub ? simnet::star_hub(n.value(), bw) : simnet::star_switch(n.value(), bw);
      };
    };
    r.add({"star", "star[:N][@bw]",
           "N hosts on one shared hub (alias of star-hub)", star_factory(true)});
    r.add({"star-hub", "star-hub[:N][@bw]",
           "N hosts on one shared half-duplex hub", star_factory(true)});
    r.add({"star-switch", "star-switch[:N][@bw]",
           "N hosts on one full-duplex switch", star_factory(false)});
    r.add({"dumbbell", "dumbbell[:LxR][@port/bottleneck]",
           "two switched clusters joined by a bottleneck link",
           [](const ScenarioSpec& spec) -> Result<simnet::Scenario> {
             if (auto st = check_arity(spec, 2, 2); !st.ok()) return st.error();
             auto left = positive_dim(spec, 0, 3);
             auto right = positive_dim(spec, 1, 3);
             if (!left.ok()) return left.error();
             if (!right.ok()) return right.error();
             return simnet::dumbbell(left.value(), right.value(), rate_bps_or(spec, 0, 100.0),
                                     rate_bps_or(spec, 1, 10.0));
           }});
    r.add({"two-cluster", "two-cluster[:N][@port/transversal]",
           "master + two N-host clusters with a transversal link",
           [](const ScenarioSpec& spec) -> Result<simnet::Scenario> {
             if (auto st = check_arity(spec, 1, 2); !st.ok()) return st.error();
             auto per = positive_dim(spec, 0, 4);
             if (!per.ok()) return per.error();
             return simnet::two_cluster_transversal(per.value(), rate_bps_or(spec, 0, 100.0),
                                                    rate_bps_or(spec, 1, 50.0));
           }});
    r.add({"vlan", "vlan[:HxV][@port]",
           "one switch carved into V VLANs of H hosts joined by a router",
           [](const ScenarioSpec& spec) -> Result<simnet::Scenario> {
             if (auto st = check_arity(spec, 2, 1); !st.ok()) return st.error();
             auto hosts = positive_dim(spec, 0, 4);
             auto vlans = positive_dim(spec, 1, 2);
             if (!hosts.ok()) return hosts.error();
             if (!vlans.ok()) return vlans.error();
             return simnet::vlan_lab(hosts.value(), vlans.value(), rate_bps_or(spec, 0, 100.0));
           }});
    r.add({"constellation", "constellation[:SxH][@lan/wan]",
           "WAN constellation of S LAN sites with H hosts each",
           [](const ScenarioSpec& spec) -> Result<simnet::Scenario> {
             if (auto st = check_arity(spec, 2, 2); !st.ok()) return st.error();
             auto sites = positive_dim(spec, 0, 4);
             auto hosts = positive_dim(spec, 1, 5);
             if (!sites.ok()) return sites.error();
             if (!hosts.ok()) return hosts.error();
             return simnet::wan_constellation(sites.value(), hosts.value(),
                                              rate_bps_or(spec, 0, 100.0),
                                              rate_bps_or(spec, 1, 10.0));
           }});
    r.add({"random-lan", "random-lan[:SEED][@bw1/bw2...]",
           "randomized multi-segment LAN with recorded ground truth; the"
           " rates replace the candidate segment speeds",
           [](const ScenarioSpec& spec) -> Result<simnet::Scenario> {
             if (auto st = check_arity(spec, 1, 8); !st.ok()) return st.error();
             const int seed = spec.dims.empty() ? 1 : spec.dims[0];
             if (seed < 0) {
               return make_error(ErrorCode::invalid_argument,
                                 "scenario 'random-lan': seed must be >= 0");
             }
             simnet::RandomLanParams params;
             if (!spec.rates_mbps.empty()) {
               params.segment_bw_bps.clear();
               for (const double rate : spec.rates_mbps) {
                 params.segment_bw_bps.push_back(units::mbps(rate));
               }
             }
             return simnet::random_lan(static_cast<std::uint64_t>(seed), params);
           }});
    r.add({"multi-firewall", "multi-firewall[:ZxH][@lan/public]",
           "Z firewalled private domains of H hosts behind dual-homed"
           " gateways (Z+1 independent mapping zones)",
           [](const ScenarioSpec& spec) -> Result<simnet::Scenario> {
             if (auto st = check_arity(spec, 2, 2); !st.ok()) return st.error();
             auto zones = positive_dim(spec, 0, 2);
             auto hosts = positive_dim(spec, 1, 3);
             if (!zones.ok()) return zones.error();
             if (!hosts.ok()) return hosts.error();
             if (zones.value() > 64 || hosts.value() > 200) {
               return make_error(ErrorCode::invalid_argument,
                                 "scenario 'multi-firewall': at most 64 zones of 200 hosts");
             }
             return simnet::multi_firewall(zones.value(), hosts.value(),
                                           rate_bps_or(spec, 0, 100.0),
                                           rate_bps_or(spec, 1, 100.0));
           }});
    r.add({"fat-tree", "fat-tree[:K][@bw]",
           "K-ary fat-tree (K even) of K^3/4 hosts behind routed"
           " aggregation and core tiers",
           [](const ScenarioSpec& spec) -> Result<simnet::Scenario> {
             if (auto st = check_arity(spec, 1, 1); !st.ok()) return st.error();
             auto k = positive_dim(spec, 0, 4);
             if (!k.ok()) return k.error();
             if (k.value() % 2 != 0 || k.value() > 10) {
               return make_error(ErrorCode::invalid_argument,
                                 "scenario 'fat-tree': K must be even and <= 10");
             }
             return simnet::fat_tree(k.value(), rate_bps_or(spec, 0, 100.0));
           }});
    r.add({"torus", "torus[:XxYxZ][@bw]",
           "3-D torus of routers with one host each (unset trailing"
           " dimensions default to 1; bare 'torus' is 2x2x2)",
           [](const ScenarioSpec& spec) -> Result<simnet::Scenario> {
             if (auto st = check_arity(spec, 3, 1); !st.ok()) return st.error();
             const bool bare = spec.dims.empty();
             auto x = positive_dim(spec, 0, 2);
             auto y = positive_dim(spec, 1, bare ? 2 : 1);
             auto z = positive_dim(spec, 2, bare ? 2 : 1);
             if (!x.ok()) return x.error();
             if (!y.ok()) return y.error();
             if (!z.ok()) return z.error();
             if (x.value() > 16 || y.value() > 16 || z.value() > 16 ||
                 x.value() * y.value() * z.value() > 64) {
               return make_error(ErrorCode::invalid_argument,
                                 "scenario 'torus': each dimension <= 16 and at most 64"
                                 " nodes in total");
             }
             return simnet::torus3d(x.value(), y.value(), z.value(),
                                    rate_bps_or(spec, 0, 100.0));
           }});
    r.add({"file", "file:<path.gridml>",
           "platform synthesized from a published GridML effective view",
           [](const ScenarioSpec& spec) -> Result<simnet::Scenario> {
             if (auto st = check_arity(spec, 0, 0); !st.ok()) return st.error();
             if (spec.payload.empty()) {
               return make_error(ErrorCode::invalid_argument,
                                 "scenario 'file': needs a path (file:<path.gridml>)");
             }
             return scenario_from_gridml_file(spec.payload);
           }});
    return r;
  }();
  return registry;
}

}  // namespace envnws::api
