// Synthesizing a simulatable platform from a published GridML document.
//
// The SimGrid lineage of grid tooling treats platform descriptions as
// durable artifacts that *drive* simulation; here the artifact is the
// effective network view ENV itself publishes (§4.3). Each ENV network
// becomes the matching simulated medium — shared segments become hubs at
// their measured ENV_base_local_BW, switched segments become switches,
// structural nodes become routers — so a platform mapped once (or edited
// by hand) can be re-simulated, re-mapped and re-planned without the
// original network. This is what backs the scenario registry's
// `file:<path.gridml>` family.
#pragma once

#include <string>

#include "common/result.hpp"
#include "gridml/model.hpp"
#include "simnet/scenario.hpp"

namespace envnws::api {

/// Build a scenario from the LAST NETWORK tree of the document (the
/// merged effective view, by the same convention as
/// `Session::load_map_from_gridml`). The first machine of the view (in
/// pre-order) becomes the master; machines listed in SITEs but absent
/// from the network tree are ignored; segments without recorded
/// bandwidth default to 100 Mbps. Fails with `invalid_argument` when the
/// document carries no network tree or no machines.
[[nodiscard]] Result<simnet::Scenario> scenario_from_effective_view(const gridml::GridDoc& doc);

/// Read + parse + synthesize. `not_found` when the file cannot be read;
/// `protocol` / `invalid_argument` when it is not a usable GridML
/// document.
[[nodiscard]] Result<simnet::Scenario> scenario_from_gridml_file(const std::string& path);

}  // namespace envnws::api
