// The envnws monitoring daemon (docs/MONITORD.md).
//
// A MonitorDaemon closes the loop the paper leaves open between ENV's
// one-shot map and NWS's continuous measurement: it takes a validated
// deploy::DeploymentPlan, schedules that plan's clique experiments over
// any ProbeEngine (live socket fleet, simulator, or a recorded trace —
// the engine spec decides, the daemon never knows), streams the results
// into the sharded series store, periodically folds store + forecasts
// into an immutable MonitorSnapshot (RCU publication, see
// monitor/snapshot.hpp), and watches per-pair forecast error for drift.
// When a segment drifts it re-probes ONLY that segment through the ENV
// Mapper — an incremental re-map, orders of magnitude cheaper than
// re-mapping the platform.
//
// Determinism contract: with a deterministic engine (replay:, sim) the
// whole daemon is a pure function of (plan, engine, options, cycle
// count). The virtual clock ties timestamps to cycle counts, run_batch
// returns canonical-order results for any probe_jobs, drift decisions
// are made in sorted segment order, and snapshots digest only what was
// measured — so the replay suite can assert bit-identical digests and
// identical decision logs across runs and query loads.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/result.hpp"
#include "deploy/plan.hpp"
#include "env/mapper.hpp"
#include "env/options.hpp"
#include "env/probe_engine.hpp"
#include "monitor/drift.hpp"
#include "monitor/query_server.hpp"
#include "monitor/schedule.hpp"
#include "monitor/snapshot.hpp"
#include "monitor/store.hpp"

namespace envnws::monitor {

struct MonitorOptions {
  /// Virtual seconds per measurement cycle (the series timestamp step).
  double period_s = 1.0;
  /// Store shards (lock granularity of the write path).
  std::size_t shards = 8;
  /// Measurement history kept per series.
  std::size_t history = 512;
  /// Endpoint-disjoint experiments one cycle's batch may overlap
  /// (forwarded to ProbeEngine::run_batch; never changes what is
  /// measured).
  std::size_t probe_jobs = 1;
  /// Publish a snapshot every N cycles.
  std::uint64_t snapshot_every = 1;
  DriftPolicy drift;
  /// Re-probe a drifting segment through the ENV mapper (false: detect
  /// and report only).
  bool remap_on_drift = true;
  /// start() only: sleep one period of real time per cycle. run_cycles()
  /// never paces — offline runs and tests go full speed.
  bool pace = true;
  /// Mapper tunables for incremental re-maps.
  env::MapperOptions remap;
  /// Schedule-exploration seam (src/testing/): when set, the cycle's
  /// batch dispatch AND the order outcomes are folded into the store
  /// become scheduler decisions, so tests can permute them and assert
  /// the determinism contract holds. Must outlive the daemon; null (the
  /// default) is production behavior. Only meaningful for run_cycles()
  /// — the seam is not wired into the background start() loop.
  testing::VirtualScheduler* virtual_scheduler = nullptr;
};

struct MonitorEvent {
  enum class Kind {
    cycle_finished,
    snapshot_published,
    probe_failed,
    drift_detected,
    remap_started,
    remap_finished,
    remap_failed,
  };
  Kind kind = Kind::cycle_finished;
  std::uint64_t cycle = 0;  ///< cycles completed when the event fired
  double time_s = 0.0;      ///< virtual clock
  std::string segment;      ///< drift/remap/probe events: the segment
  std::string detail;
};

[[nodiscard]] const char* to_string(MonitorEvent::Kind kind);

class MonitorDaemon {
 public:
  /// The daemon owns its engine: all probing — periodic cycles and
  /// incremental re-maps alike — flows through this one instance, so a
  /// `record:` spec captures the complete session and a `replay:` spec
  /// reproduces it.
  MonitorDaemon(deploy::DeploymentPlan plan, std::unique_ptr<env::ProbeEngine> engine,
                MonitorOptions options = {});
  ~MonitorDaemon();

  MonitorDaemon(const MonitorDaemon&) = delete;
  MonitorDaemon& operator=(const MonitorDaemon&) = delete;

  /// Event callback; deliveries are serialized (measurement-loop thread).
  MonitorDaemon& set_observer(std::function<void(const MonitorEvent&)> observer);

  /// Called after every successful incremental re-map with the fresh
  /// zone view (api::Session wires this into its MapCache).
  using RemapSink = std::function<void(const std::string& segment, const env::ZoneMapResult&)>;
  MonitorDaemon& set_remap_sink(RemapSink sink);

  /// Run `n` measurement cycles synchronously (never paces). The
  /// deterministic entry point: tests and offline replays use this.
  Status run_cycles(std::uint64_t n);

  /// Run cycles on a background thread until stop() (paced per
  /// MonitorOptions::pace). Queries are served concurrently either way.
  Status start();
  void stop();
  [[nodiscard]] bool running() const;

  /// Serve SNAPSHOT/QUERY/SERIES clients; port 0 picks an ephemeral one.
  Status start_query_server(const std::string& address = "127.0.0.1", std::uint16_t port = 0);
  [[nodiscard]] std::uint16_t query_port() const;
  [[nodiscard]] std::uint64_t queries_served() const;

  /// The currently published snapshot (wait-free, never null).
  [[nodiscard]] std::shared_ptr<const MonitorSnapshot> snapshot() const {
    return board_.current();
  }
  [[nodiscard]] std::vector<nws::Measurement> series(const nws::SeriesKey& key,
                                                     std::size_t max = 0) const {
    return store_.series(key, max);
  }

  /// Persistence: nws::MemoryServer dump grammar, restore() re-trains
  /// forecasters from the history (see SeriesShardStore).
  [[nodiscard]] std::string dump_series() const { return store_.dump(); }
  Status restore_series(const std::string& text) { return store_.restore(text); }

  /// One line per drift decision, in decision order — part of the
  /// determinism contract (replays produce identical logs).
  [[nodiscard]] std::vector<std::string> decision_log() const;

  [[nodiscard]] std::uint64_t cycles() const { return cycles_done_.load(); }
  [[nodiscard]] std::uint64_t measurements() const { return measurements_.load(); }
  [[nodiscard]] std::uint64_t probe_failures() const { return probe_failures_.load(); }
  [[nodiscard]] std::uint64_t remaps() const { return remaps_.load(); }
  /// Probe experiments the incremental re-maps cost (the "cheaper than a
  /// full re-map" number the acceptance test asserts on).
  [[nodiscard]] std::uint64_t remap_experiments() const { return remap_experiments_.load(); }

  [[nodiscard]] const deploy::DeploymentPlan& plan() const { return plan_; }
  [[nodiscard]] const CycleScheduler& scheduler() const { return scheduler_; }
  [[nodiscard]] env::ProbeEngine& engine() { return *engine_; }

 private:
  void run_one_cycle();
  /// Detect drift, decide per segment (sorted order), maybe re-map;
  /// returns the segments still drifting afterwards (for the snapshot).
  std::vector<std::string> drift_pass();
  Status remap_segment(const std::string& segment, std::size_t pairs_drifting);
  void publish_snapshot(std::vector<std::string> drifting_segments);
  void emit(MonitorEvent::Kind kind, std::string segment, std::string detail);
  void log_decision(std::string line);

  deploy::DeploymentPlan plan_;
  std::unique_ptr<env::ProbeEngine> engine_;
  MonitorOptions options_;
  MonitorClock clock_;
  CycleScheduler scheduler_;
  SeriesShardStore store_;
  SnapshotBoard board_;
  std::unique_ptr<QueryServer> query_server_;

  /// segment -> hosts it spans (for the re-map ZoneSpec).
  std::map<std::string, std::set<std::string>> segment_hosts_;
  /// series key -> segment (drift grouping).
  std::map<nws::SeriesKey, std::string> pair_segment_;
  /// segment -> first cycle it may trigger drift again.
  std::map<std::string, std::uint64_t> segment_cooldown_until_;

  std::atomic<std::uint64_t> cycles_done_{0};
  std::atomic<std::uint64_t> measurements_{0};
  std::atomic<std::uint64_t> probe_failures_{0};
  std::atomic<std::uint64_t> remaps_{0};
  std::atomic<std::uint64_t> remap_experiments_{0};
  std::uint64_t snapshot_version_ = 0;  ///< measurement-loop thread only

  std::function<void(const MonitorEvent&)> observer_;
  RemapSink remap_sink_;

  mutable std::mutex decision_mutex_;
  std::vector<std::string> decisions_;

  mutable std::mutex run_mutex_;  ///< loop ownership + background state
  bool running_ = false;
  std::atomic<bool> stopping_{false};
  std::thread loop_;
};

}  // namespace envnws::monitor
