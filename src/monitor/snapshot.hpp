// Immutable monitoring snapshots and their RCU-style publication.
//
// The daemon's read path must never contend with its measurement loop:
// a periodic aggregation pass folds the store's fresh measurements and
// nws::forecast predictions into one immutable MonitorSnapshot, which is
// swapped into a SnapshotBoard with a std::shared_ptr atomic exchange.
// Readers load the shared_ptr (one lock-free pointer acquisition, no
// data-structure locks anywhere), then walk a structure no writer will
// ever touch again; the previous snapshot dies when its last reader
// drops it — classic RCU with shared_ptr as the grace period.
//
// Like env::MapResult, a snapshot has ONE definition of bit-identity:
// digest() hashes the full-precision render(), and the replay suite's
// "same trace + same config => identical snapshots" guarantee is exactly
// digest equality. BatchStats-style schedule metadata is deliberately
// absent: a snapshot records what was measured and predicted, never how
// the probing was scheduled, so digests are invariant under probe_jobs
// and query-client count.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "monitor/store.hpp"
#include "nws/forecast.hpp"
#include "nws/series.hpp"

namespace envnws::monitor {

/// One pair's folded state: latest observation + current forecast.
struct PairReading {
  nws::SeriesKey key;
  double time = 0.0;  ///< virtual time of the latest observation
  double value = 0.0;
  nws::Forecast forecast;
  double drift_relative_mae = 0.0;
  bool drifting = false;
};

struct MonitorSnapshot {
  std::uint64_t version = 0;  ///< publication counter (0 = empty boot snapshot)
  std::uint64_t cycles = 0;
  double time_s = 0.0;  ///< virtual clock at publication
  std::uint64_t measurements = 0;
  std::uint64_t probe_failures = 0;
  std::uint64_t remaps = 0;             ///< incremental re-mappings so far
  std::uint64_t remap_experiments = 0;  ///< probe experiments those re-maps cost
  std::vector<PairReading> pairs;       ///< sorted by key
  std::vector<std::string> drifting_segments;  ///< sorted, currently in drift

  /// Binary search by key; nullptr when the pair is unknown.
  [[nodiscard]] const PairReading* find(const nws::SeriesKey& key) const;

  /// Full-precision canonical text (17 significant digits everywhere).
  [[nodiscard]] std::string render() const;
  /// FNV-1a 64 of render(), fixed-width hex — THE identity of this
  /// snapshot (see file comment).
  [[nodiscard]] std::string digest() const;
};

/// The published-snapshot slot. current() is wait-free for readers up to
/// the atomic<shared_ptr> load itself; publish() is a single exchange.
/// Never holds a null snapshot: the board boots with an empty version-0
/// snapshot, so readers need no null check.
class SnapshotBoard {
 public:
  SnapshotBoard() : current_(std::make_shared<const MonitorSnapshot>()) {}

  [[nodiscard]] std::shared_ptr<const MonitorSnapshot> current() const {
    return current_.load(std::memory_order_acquire);
  }

  void publish(std::shared_ptr<const MonitorSnapshot> next) {
    if (next == nullptr) return;
    current_.store(std::move(next), std::memory_order_release);
  }

 private:
  std::atomic<std::shared_ptr<const MonitorSnapshot>> current_;
};

/// The aggregation pass: fold the store's current state into a fresh
/// snapshot (counters supplied by the daemon).
[[nodiscard]] std::shared_ptr<const MonitorSnapshot> build_snapshot(
    const SeriesShardStore& store, std::uint64_t version, std::uint64_t cycles, double time_s,
    std::uint64_t measurements, std::uint64_t probe_failures, std::uint64_t remaps,
    std::uint64_t remap_experiments, std::vector<std::string> drifting_segments);

}  // namespace envnws::monitor
