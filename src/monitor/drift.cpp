#include "monitor/drift.hpp"

#include <algorithm>
#include <cmath>

namespace envnws::monitor {

void DriftTracker::observe(double predicted, double actual) {
  // Relative to the observation, floored so a (physically impossible)
  // zero measurement cannot divide the error away.
  const double scale = std::max(std::fabs(actual), 1e-12);
  errors_.push_back(std::fabs(predicted - actual) / scale);
  while (errors_.size() > window_) errors_.pop_front();
}

double DriftTracker::relative_mae() const {
  if (errors_.empty()) return 0.0;
  double sum = 0.0;
  for (const double error : errors_) sum += error;
  return sum / static_cast<double>(errors_.size());
}

bool DriftTracker::drifting(const DriftPolicy& policy) const {
  if (errors_.size() < policy.min_samples) return false;
  return relative_mae() > policy.relative_error_threshold;
}

}  // namespace envnws::monitor
