// The monitor's query front-end: SNAPSHOT / QUERY / SERIES over the
// probe_wire framed protocol (frame grammar in env/probe_wire.hpp,
// lifecycle in docs/MONITORD.md).
//
// Structured like env::ProbeAgent: one acceptor thread polling a
// TcpListener, one serving thread per connection, stop() waking every
// blocked thread via shutdown(). The request handlers are where the
// RCU model pays off: SNAPSHOT and QUERY answer entirely from the
// currently published MonitorSnapshot — one atomic shared_ptr load,
// zero locks, no matter how many clients hammer the daemon while the
// measurement loop runs. Only SERIES (raw history, not part of the
// snapshot) reads a store shard under that shard's mutex.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.hpp"
#include "env/probe_wire.hpp"
#include "monitor/snapshot.hpp"
#include "monitor/store.hpp"
#include "nws/series.hpp"

namespace envnws::monitor {

class QueryServer {
 public:
  /// Serves `board` (SNAPSHOT/QUERY) and `store` (SERIES); both must
  /// outlive the server. `max_series_points` caps one SERIES reply so a
  /// full-history request cannot overflow a control frame.
  QueryServer(const SnapshotBoard& board, const SeriesShardStore& store,
              std::size_t max_series_points = 256);
  ~QueryServer();

  /// Bind and start serving; `port == 0` picks an ephemeral port.
  Status start(const std::string& address = "127.0.0.1", std::uint16_t port = 0);
  void stop();
  [[nodiscard]] bool running() const;
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] std::uint64_t requests_served() const;

 private:
  struct Connection {
    env::wire::TcpSocket socket;
    std::thread thread;
    bool done = false;
  };

  void accept_loop();
  void serve_connection(std::size_t slot);
  /// One request -> one reply payload (never empty).
  [[nodiscard]] std::string handle(const env::wire::WireMessage& request) const;
  [[nodiscard]] std::string handle_snapshot() const;
  [[nodiscard]] std::string handle_query(const env::wire::WireMessage& request) const;
  [[nodiscard]] std::string handle_series(const env::wire::WireMessage& request) const;

  const SnapshotBoard& board_;
  const SeriesShardStore& store_;
  std::size_t max_series_points_;
  double io_timeout_s_ = 10.0;

  mutable std::mutex mutex_;  ///< conns_, flags, counters
  bool running_ = false;
  bool stopping_ = false;
  std::uint64_t requests_ = 0;
  env::wire::TcpListener listener_;
  std::uint16_t port_ = 0;
  std::thread acceptor_;
  std::vector<std::unique_ptr<Connection>> conns_;
};

/// One client connection to a QueryServer (tests, the monitord example,
/// operator tooling). Not thread-safe; give each thread its own client.
class QueryClient {
 public:
  static Result<QueryClient> connect(const std::string& address, std::uint16_t port,
                                     double timeout_s = 5.0);

  /// Raw round trip (reply may be any type, ERR already converted).
  Result<env::wire::WireMessage> request(const env::wire::WireMessage& message,
                                         std::string_view expected_type);

  struct SnapshotSummary {
    std::uint64_t version = 0;
    std::uint64_t cycles = 0;
    double time_s = 0.0;
    std::uint64_t pairs = 0;
    std::uint64_t measurements = 0;
    std::uint64_t failures = 0;
    std::uint64_t remaps = 0;
    std::string drifting;  ///< comma-joined drifting segments
    std::string digest;
  };
  Result<SnapshotSummary> snapshot();

  struct PairAnswer {
    double latest = 0.0;
    double latest_time = 0.0;
    nws::Forecast forecast;
    bool drifting = false;
  };
  Result<PairAnswer> query(const nws::SeriesKey& key);

  Result<std::vector<nws::Measurement>> series(const nws::SeriesKey& key, std::size_t max = 0);

 private:
  QueryClient(env::wire::TcpSocket socket, double timeout_s)
      : socket_(std::move(socket)), timeout_s_(timeout_s) {}

  env::wire::TcpSocket socket_;
  env::wire::FrameBuffer buffer_;
  double timeout_s_;
};

}  // namespace envnws::monitor
