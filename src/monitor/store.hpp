// Sharded measurement store: the daemon's write path.
//
// Every measured pair owns one nws::TimeSeries (held by an
// nws::MemoryServer — the NWS memory with its dump/restore persistence
// format), one nws::AdaptiveForecaster (the NWS predictor battery) and
// one DriftTracker. Series are spread over N shards by a STABLE hash of
// the series key (common/hash.hpp FNV-1a — std::hash would make shard
// membership, and thus lock contention, platform-dependent), each shard
// behind its own mutex: the measurement loop and SERIES queries contend
// per shard, never globally, and nothing here is on the snapshot read
// path at all (queries answered from the published MonitorSnapshot take
// no lock in this file).
//
// record() is forecast-then-observe: the pre-observation forecast is
// compared against the arriving measurement (that error feeds the drift
// tracker), THEN the forecaster learns the value — the only order under
// which the error measures prediction rather than recall.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "monitor/drift.hpp"
#include "nws/forecast.hpp"
#include "nws/memory.hpp"
#include "nws/series.hpp"

namespace envnws::monitor {

class SeriesShardStore {
 public:
  SeriesShardStore(std::size_t shards, std::size_t history, DriftPolicy policy);

  struct Recorded {
    bool had_forecast = false;  ///< a forecast existed before this value
    double predicted = 0.0;
    double relative_error = 0.0;
  };
  /// Store one measurement (see file comment for the ordering contract).
  Recorded record(const nws::SeriesKey& key, double time, double value);

  /// Everything the aggregation pass folds into a snapshot, sorted by
  /// key (canonical order, independent of sharding).
  struct PairState {
    nws::SeriesKey key;
    double time = 0.0;   ///< latest observation
    double value = 0.0;
    nws::Forecast forecast;
    double drift_relative_mae = 0.0;
    std::size_t drift_samples = 0;
    bool drifting = false;
  };
  [[nodiscard]] std::vector<PairState> collect() const;

  /// Up to `max` most recent points of one series (empty when unknown).
  [[nodiscard]] std::vector<nws::Measurement> series(const nws::SeriesKey& key,
                                                     std::size_t max) const;

  /// Keys currently judged drifting, sorted.
  [[nodiscard]] std::vector<nws::SeriesKey> drifting() const;

  /// Forget the learned state (forecaster + drift window, NOT the
  /// measurement history) of the given keys — after an incremental
  /// re-map refreshed their segment.
  void reset_learning(const std::vector<nws::SeriesKey>& keys);

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] std::uint64_t stored() const;

  /// Concatenated nws::MemoryServer dumps, shard order (deterministic:
  /// shard assignment is FNV-stable). restore() re-records every point,
  /// so forecasters and drift windows warm up exactly as if the history
  /// had been measured live.
  [[nodiscard]] std::string dump() const;
  Status restore(const std::string& text);

  /// Stable shard index of a key.
  [[nodiscard]] static std::size_t shard_of(const nws::SeriesKey& key, std::size_t shards);

 private:
  struct Tracked {
    nws::AdaptiveForecaster forecaster;
    DriftTracker drift;
    explicit Tracked(std::size_t window) : drift(window) {}
  };
  struct Shard {
    mutable std::mutex mutex;
    nws::MemoryServer memory;
    std::map<nws::SeriesKey, Tracked> tracked;
    Shard(std::string name, std::size_t history)
        : memory(std::move(name), simnet::NodeId(0), history) {}
  };

  DriftPolicy policy_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace envnws::monitor
