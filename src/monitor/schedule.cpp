#include "monitor/schedule.hpp"

#include <algorithm>

#include "nws/clique.hpp"

namespace envnws::monitor {

CycleScheduler::CycleScheduler(const deploy::DeploymentPlan& plan) {
  for (const deploy::PlannedClique& clique : plan.cliques) {
    CliqueSchedule schedule;
    schedule.name = clique.name;
    schedule.segment = clique.network_label;
    schedule.pairs = nws::ordered_experiment_pairs(clique.members);
    if (schedule.pairs.empty()) continue;  // single-member clique: nothing to measure
    schedule.tokens = std::clamp<std::size_t>(clique.parallel_tokens, 1, schedule.pairs.size());
    cliques_.push_back(std::move(schedule));
  }
}

std::vector<ScheduledProbe> CycleScheduler::cycle(std::uint64_t k) const {
  std::vector<ScheduledProbe> probes;
  probes.reserve(probes_per_cycle());
  for (const CliqueSchedule& clique : cliques_) {
    // Token t of cycle k probes pair (k*tokens + t) mod pairs: the
    // multi-token walk covers the whole pair list exactly like the
    // single-token one, just `tokens` pairs per cycle. Tokens of one
    // cycle never collide (tokens <= pairs), though their pairs may
    // share endpoints — run_batch serializes exactly those.
    const std::uint64_t pairs = clique.pairs.size();
    for (std::size_t t = 0; t < clique.tokens; ++t) {
      const auto& pair = clique.pairs[static_cast<std::size_t>(
          (k * clique.tokens + t) % pairs)];
      ScheduledProbe probe;
      probe.clique = clique.name;
      probe.segment = clique.segment;
      probe.transfer = env::BandwidthRequest{pair.first, pair.second, {}};
      probes.push_back(std::move(probe));
    }
  }
  return probes;
}

std::size_t CycleScheduler::probes_per_cycle() const {
  std::size_t total = 0;
  for (const CliqueSchedule& clique : cliques_) total += clique.tokens;
  return total;
}

std::uint64_t CycleScheduler::pairs_total() const {
  std::uint64_t total = 0;
  for (const CliqueSchedule& clique : cliques_) total += clique.pairs.size();
  return total;
}

std::uint64_t CycleScheduler::full_sweep_cycles() const {
  std::uint64_t sweep = 0;
  for (const CliqueSchedule& clique : cliques_) {
    const std::uint64_t pairs = clique.pairs.size();
    const std::uint64_t tokens = clique.tokens;
    sweep = std::max(sweep, (pairs + tokens - 1) / tokens);
  }
  return sweep;
}

}  // namespace envnws::monitor
