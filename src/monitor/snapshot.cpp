#include "monitor/snapshot.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/hash.hpp"

namespace envnws::monitor {

namespace {

/// 17 significant digits: enough to round-trip any double, the same
/// full-precision convention as MapResult::identity_digest().
std::string f64(double value) {
  char out[40];
  std::snprintf(out, sizeof(out), "%.17g", value);
  return out;
}

}  // namespace

const PairReading* MonitorSnapshot::find(const nws::SeriesKey& key) const {
  const auto it = std::lower_bound(
      pairs.begin(), pairs.end(), key,
      [](const PairReading& reading, const nws::SeriesKey& wanted) { return reading.key < wanted; });
  if (it == pairs.end() || !(it->key == key)) return nullptr;
  return &*it;
}

std::string MonitorSnapshot::render() const {
  std::ostringstream out;
  out << "monitor snapshot v" << version << "\n";
  out << "cycles " << cycles << " time " << f64(time_s) << "\n";
  out << "measurements " << measurements << " failures " << probe_failures << "\n";
  out << "remaps " << remaps << " remap-experiments " << remap_experiments << "\n";
  out << "drifting";
  for (const auto& segment : drifting_segments) out << " " << segment;
  out << "\n";
  out << "pairs " << pairs.size() << "\n";
  for (const PairReading& pair : pairs) {
    out << pair.key.to_string() << " t=" << f64(pair.time) << " v=" << f64(pair.value)
        << " forecast=" << f64(pair.forecast.value) << " mae=" << f64(pair.forecast.mae)
        << " rmse=" << f64(pair.forecast.rmse) << " winner=" << pair.forecast.winner
        << " samples=" << pair.forecast.samples << " drift=" << f64(pair.drift_relative_mae)
        << (pair.drifting ? " DRIFTING" : "") << "\n";
  }
  return out.str();
}

std::string MonitorSnapshot::digest() const { return hash::hex64(hash::fnv1a64(render())); }

std::shared_ptr<const MonitorSnapshot> build_snapshot(
    const SeriesShardStore& store, std::uint64_t version, std::uint64_t cycles, double time_s,
    std::uint64_t measurements, std::uint64_t probe_failures, std::uint64_t remaps,
    std::uint64_t remap_experiments, std::vector<std::string> drifting_segments) {
  auto snapshot = std::make_shared<MonitorSnapshot>();
  snapshot->version = version;
  snapshot->cycles = cycles;
  snapshot->time_s = time_s;
  snapshot->measurements = measurements;
  snapshot->probe_failures = probe_failures;
  snapshot->remaps = remaps;
  snapshot->remap_experiments = remap_experiments;
  std::sort(drifting_segments.begin(), drifting_segments.end());
  drifting_segments.erase(std::unique(drifting_segments.begin(), drifting_segments.end()),
                          drifting_segments.end());
  snapshot->drifting_segments = std::move(drifting_segments);
  for (SeriesShardStore::PairState& state : store.collect()) {
    PairReading reading;
    reading.key = std::move(state.key);
    reading.time = state.time;
    reading.value = state.value;
    reading.forecast = std::move(state.forecast);
    reading.drift_relative_mae = state.drift_relative_mae;
    reading.drifting = state.drifting;
    snapshot->pairs.push_back(std::move(reading));
  }
  return snapshot;
}

}  // namespace envnws::monitor
