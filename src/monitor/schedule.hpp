// Monitoring clock and cycle scheduler.
//
// The daemon's measurement loop is driven by a VIRTUAL clock: time
// advances by exactly one period per cycle, so series timestamps — and
// with them snapshot digests — depend only on the cycle count, never on
// wall-clock jitter. Live deployments pace the loop in real time on top
// (MonitorOptions::pace); replayed ones do not, and both produce the
// bit-identical measurement record.
//
// The CycleScheduler turns a validated deploy::DeploymentPlan into the
// per-cycle experiment list: each clique contributes `parallel_tokens`
// experiments per cycle, rotating round-robin through its ordered pair
// list (nws::ordered_experiment_pairs — the same schedule the simulated
// token ring walks). The resulting list is in plan order, which makes it
// the canonical batch order for ProbeEngine::run_batch: what runs
// concurrently may vary with probe_jobs, what is measured never does.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "deploy/plan.hpp"
#include "env/probe_engine.hpp"

namespace envnws::monitor {

/// Deterministic monitoring time: now() == period_s * cycles().
class MonitorClock {
 public:
  explicit MonitorClock(double period_s) : period_s_(period_s) {}

  [[nodiscard]] double now() const { return now_; }
  [[nodiscard]] double period_s() const { return period_s_; }
  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }

  /// End of one cycle: advance exactly one period.
  void tick() {
    ++cycles_;
    now_ = period_s_ * static_cast<double>(cycles_);
  }

 private:
  double period_s_;
  double now_ = 0.0;
  std::uint64_t cycles_ = 0;
};

/// One experiment of a monitoring cycle.
struct ScheduledProbe {
  std::string clique;   ///< PlannedClique::name
  std::string segment;  ///< PlannedClique::network_label (drift/re-map unit)
  env::BandwidthRequest transfer;
};

class CycleScheduler {
 public:
  explicit CycleScheduler(const deploy::DeploymentPlan& plan);

  /// The experiments of cycle `k`, in plan order (the canonical batch
  /// order). Deterministic: same plan + same k => same list.
  [[nodiscard]] std::vector<ScheduledProbe> cycle(std::uint64_t k) const;

  /// Experiments every cycle issues (constant across cycles).
  [[nodiscard]] std::size_t probes_per_cycle() const;
  /// Distinct ordered pairs across all cliques (with multiplicity).
  [[nodiscard]] std::uint64_t pairs_total() const;
  /// Cycles after which every pair of every clique has been visited at
  /// least once (a "full sweep").
  [[nodiscard]] std::uint64_t full_sweep_cycles() const;

 private:
  struct CliqueSchedule {
    std::string name;
    std::string segment;
    std::vector<std::pair<std::string, std::string>> pairs;
    std::size_t tokens = 1;  ///< experiments per cycle (clamped to pairs)
  };

  std::vector<CliqueSchedule> cliques_;
};

}  // namespace envnws::monitor
