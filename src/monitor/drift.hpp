// Forecast-drift detection.
//
// The monitoring loop closes the ENV->NWS feedback: when the forecaster
// stops explaining what a pair measures — the platform changed under the
// map — the affected network segment is re-probed through the ENV
// mapper. "Stops explaining" is judged per pair by the relative mean
// absolute error of the one-step forecast over a rolling window:
// |forecast - observed| / |observed|, averaged over the last `window`
// observations. A threshold on that number is scale-free (a 100 Mbit/s
// LAN and a 2 Mbit/s WAN drift at the same 30%), and the window makes
// one outlier measurement insufficient while a sustained shift trips
// within `window` cycles.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>

namespace envnws::monitor {

struct DriftPolicy {
  /// Rolling relative MAE above this means the pair drifts.
  double relative_error_threshold = 0.30;
  /// Observations in the rolling error window.
  std::size_t window = 8;
  /// Errors needed in the window before a verdict (a fresh or re-mapped
  /// pair is never judged on one or two points).
  std::size_t min_samples = 4;
  /// Cycles a re-mapped segment is left alone before it may trigger
  /// again (the re-probe itself proves nothing about the forecast).
  std::uint64_t cooldown_cycles = 8;
};

/// Per-pair rolling forecast-error tracker.
class DriftTracker {
 public:
  explicit DriftTracker(std::size_t window = 8) : window_(window == 0 ? 1 : window) {}

  /// Record one forecast-vs-observation error.
  void observe(double predicted, double actual);
  /// Mean relative error over the window (0 when empty).
  [[nodiscard]] double relative_mae() const;
  /// Errors currently in the window.
  [[nodiscard]] std::size_t samples() const { return errors_.size(); }
  [[nodiscard]] bool drifting(const DriftPolicy& policy) const;
  /// Forget everything (after an incremental re-map: the refreshed
  /// platform seeds a fresh verdict).
  void reset() { errors_.clear(); }

 private:
  std::size_t window_;
  std::deque<double> errors_;  ///< relative absolute errors, oldest first
};

}  // namespace envnws::monitor
