#include "monitor/store.hpp"

#include <algorithm>
#include <cstdio>

#include "common/hash.hpp"
#include "common/strings.hpp"

namespace envnws::monitor {

SeriesShardStore::SeriesShardStore(std::size_t shards, std::size_t history, DriftPolicy policy)
    : policy_(policy) {
  const std::size_t count = std::max<std::size_t>(shards, 1);
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Shard>("shard-" + std::to_string(i),
                                              std::max<std::size_t>(history, 1)));
  }
}

std::size_t SeriesShardStore::shard_of(const nws::SeriesKey& key, std::size_t shards) {
  if (shards <= 1) return 0;
  return static_cast<std::size_t>(hash::fnv1a64(key.to_string()) % shards);
}

SeriesShardStore::Recorded SeriesShardStore::record(const nws::SeriesKey& key, double time,
                                                    double value) {
  Shard& shard = *shards_[shard_of(key, shards_.size())];
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto [it, inserted] = shard.tracked.try_emplace(key, policy_.window);
  Tracked& tracked = it->second;
  Recorded recorded;
  if (tracked.forecaster.observations() > 0) {
    const nws::Forecast forecast = tracked.forecaster.forecast();
    recorded.had_forecast = true;
    recorded.predicted = forecast.value;
    tracked.drift.observe(forecast.value, value);
    recorded.relative_error = tracked.drift.relative_mae();
  }
  tracked.forecaster.observe(value);
  shard.memory.store(key, time, value);
  return recorded;
}

std::vector<SeriesShardStore::PairState> SeriesShardStore::collect() const {
  std::vector<PairState> out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (const auto& [key, series] : shard->memory.series()) {
      if (series.empty()) continue;
      PairState state;
      state.key = key;
      state.time = series.latest().time;
      state.value = series.latest().value;
      const auto tracked = shard->tracked.find(key);
      if (tracked != shard->tracked.end()) {
        state.forecast = tracked->second.forecaster.forecast();
        state.drift_relative_mae = tracked->second.drift.relative_mae();
        state.drift_samples = tracked->second.drift.samples();
        state.drifting = tracked->second.drift.drifting(policy_);
      }
      out.push_back(std::move(state));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const PairState& a, const PairState& b) { return a.key < b.key; });
  return out;
}

std::vector<nws::Measurement> SeriesShardStore::series(const nws::SeriesKey& key,
                                                       std::size_t max) const {
  const Shard& shard = *shards_[shard_of(key, shards_.size())];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const nws::TimeSeries* found = shard.memory.find(key);
  if (found == nullptr || found->empty()) return {};
  const std::size_t want = std::min(max == 0 ? found->size() : max, found->size());
  std::vector<nws::Measurement> out;
  out.reserve(want);
  for (std::size_t i = found->size() - want; i < found->size(); ++i) {
    out.push_back(found->at(i));
  }
  return out;
}

std::vector<nws::SeriesKey> SeriesShardStore::drifting() const {
  std::vector<nws::SeriesKey> out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (const auto& [key, tracked] : shard->tracked) {
      if (tracked.drift.drifting(policy_)) out.push_back(key);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void SeriesShardStore::reset_learning(const std::vector<nws::SeriesKey>& keys) {
  for (const nws::SeriesKey& key : keys) {
    Shard& shard = *shards_[shard_of(key, shards_.size())];
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto tracked = shard.tracked.find(key);
    if (tracked == shard.tracked.end()) continue;
    tracked->second = Tracked(policy_.window);
  }
}

std::uint64_t SeriesShardStore::stored() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->memory.stored_count();
  }
  return total;
}

std::string SeriesShardStore::dump() const {
  std::string out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    out += shard->memory.dump();
  }
  return out;
}

Status SeriesShardStore::restore(const std::string& text) {
  // Same line grammar as nws::MemoryServer::restore, but routed through
  // record() so the restored history trains forecasters and drift
  // windows exactly like live measurements would have.
  bool have_key = false;
  nws::SeriesKey key;
  for (const auto& raw_line : strings::split(text, '\n')) {
    const std::string line = strings::trim(raw_line);
    if (line.empty() || line.front() == '#') continue;
    if (strings::starts_with(line, "series ")) {
      const auto fields = strings::split_nonempty(line, ' ');
      if (fields.size() != 4) {
        return make_error(ErrorCode::protocol, "malformed series header: " + line);
      }
      const auto resource = nws::resource_from_string(fields[1]);
      if (!resource.ok()) return resource.error();
      key = nws::SeriesKey{resource.value(), fields[2], fields[3] == "-" ? "" : fields[3]};
      have_key = true;
      continue;
    }
    if (!have_key) {
      return make_error(ErrorCode::protocol, "measurement before any series header");
    }
    double time = 0.0;
    double value = 0.0;
    if (std::sscanf(line.c_str(), "%lf %lf", &time, &value) != 2) {
      return make_error(ErrorCode::protocol, "malformed measurement line: " + line);
    }
    record(key, time, value);
  }
  return {};
}

}  // namespace envnws::monitor
