#include "monitor/query_server.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace envnws::monitor {

namespace wire = env::wire;

QueryServer::QueryServer(const SnapshotBoard& board, const SeriesShardStore& store,
                         std::size_t max_series_points)
    : board_(board), store_(store), max_series_points_(std::max<std::size_t>(max_series_points, 1)) {}

QueryServer::~QueryServer() { stop(); }

Status QueryServer::start(const std::string& address, std::uint16_t port) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (running_) return make_error(ErrorCode::invalid_argument, "query server already running");
    stopping_ = false;
  }
  auto listener = wire::TcpListener::listen(address, port);
  if (!listener.ok()) return listener.error();
  listener_ = std::move(listener.value());
  port_ = listener_.port();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    running_ = true;
  }
  acceptor_ = std::thread([this] { accept_loop(); });
  return {};
}

void QueryServer::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_ && !acceptor_.joinable()) return;
    stopping_ = true;
    for (auto& conn : conns_) conn->socket.shutdown_both();
  }
  if (acceptor_.joinable()) acceptor_.join();
  listener_.close_fd();
  std::vector<std::unique_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    conns.swap(conns_);
    running_ = false;
  }
  for (auto& conn : conns) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

bool QueryServer::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

std::uint64_t QueryServer::requests_served() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return requests_;
}

void QueryServer::accept_loop() {
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return;
    }
    auto accepted = listener_.accept(0.25);
    if (!accepted.ok()) {
      if (accepted.error().code == ErrorCode::timeout) continue;
      return;  // listener closed (stop()) or fatal
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    auto conn = std::make_unique<Connection>();
    conn->socket = std::move(accepted.value());
    conns_.push_back(std::move(conn));
    const std::size_t slot = conns_.size() - 1;
    conns_.back()->thread = std::thread([this, slot] { serve_connection(slot); });
  }
}

void QueryServer::serve_connection(std::size_t slot) {
  Connection* conn = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    conn = conns_[slot].get();
  }
  wire::FrameBuffer buffer;
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) break;
    }
    auto payload = wire::recv_frame(conn->socket, buffer, io_timeout_s_);
    if (!payload.ok()) {
      if (payload.error().code == ErrorCode::protocol) {
        (void)wire::send_frame(conn->socket, wire::error_payload(payload.error()), 1.0);
      }
      break;
    }
    auto message = wire::WireMessage::parse(payload.value());
    const std::string reply =
        message.ok() ? handle(message.value()) : wire::error_payload(message.error());
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++requests_;
    }
    if (!wire::send_frame(conn->socket, reply, io_timeout_s_).ok()) break;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  conn->socket.close_fd();
  conn->done = true;
}

namespace {

/// Parse the (resource, src, dst) triple shared by QUERY and SERIES.
Result<nws::SeriesKey> key_from(const wire::WireMessage& request) {
  const std::string resource_text = request.get("resource", "bandwidth");
  auto resource = nws::resource_from_string(resource_text);
  if (!resource.ok()) return resource.error();
  const std::string src = request.get("src");
  if (src.empty()) {
    return make_error(ErrorCode::protocol, request.type + " carries no 'src' field");
  }
  return nws::SeriesKey{resource.value(), src, request.get("dst")};
}

}  // namespace

std::string QueryServer::handle(const wire::WireMessage& request) const {
  if (request.type == wire::kSnapshotFrame) return handle_snapshot();
  if (request.type == wire::kQueryFrame) return handle_query(request);
  if (request.type == wire::kSeriesFrame) return handle_series(request);
  return wire::error_payload(
      make_error(ErrorCode::protocol, "unknown frame type '" + request.type + "'"));
}

std::string QueryServer::handle_snapshot() const {
  const std::shared_ptr<const MonitorSnapshot> snapshot = board_.current();
  wire::WireMessage reply("SNAPSHOT-OK");
  reply.add_u64("version", snapshot->version);
  reply.add_u64("cycles", snapshot->cycles);
  reply.add_f64("time", snapshot->time_s);
  reply.add_u64("pairs", snapshot->pairs.size());
  reply.add_u64("measurements", snapshot->measurements);
  reply.add_u64("failures", snapshot->probe_failures);
  reply.add_u64("remaps", snapshot->remaps);
  reply.add("drifting", strings::join(snapshot->drifting_segments, ","));
  reply.add("digest", snapshot->digest());
  return reply.serialize();
}

std::string QueryServer::handle_query(const wire::WireMessage& request) const {
  auto key = key_from(request);
  if (!key.ok()) return wire::error_payload(key.error());
  const std::shared_ptr<const MonitorSnapshot> snapshot = board_.current();
  const PairReading* reading = snapshot->find(key.value());
  if (reading == nullptr) {
    return wire::error_payload(make_error(
        ErrorCode::not_found, "no series '" + key.value().to_string() + "' in snapshot v" +
                                  std::to_string(snapshot->version)));
  }
  wire::WireMessage reply("QUERY-OK");
  reply.add_f64("value", reading->forecast.value);
  reply.add_f64("mae", reading->forecast.mae);
  reply.add_f64("rmse", reading->forecast.rmse);
  reply.add("winner", reading->forecast.winner);
  reply.add_u64("samples", reading->forecast.samples);
  reply.add_f64("latest", reading->value);
  reply.add_f64("time", reading->time);
  reply.add_u64("drifting", reading->drifting ? 1 : 0);
  return reply.serialize();
}

std::string QueryServer::handle_series(const wire::WireMessage& request) const {
  auto key = key_from(request);
  if (!key.ok()) return wire::error_payload(key.error());
  std::size_t max = max_series_points_;
  if (request.has("max")) {
    auto wanted = request.u64("max");
    if (!wanted.ok()) return wire::error_payload(wanted.error());
    if (wanted.value() > 0) {
      max = std::min<std::size_t>(static_cast<std::size_t>(wanted.value()), max_series_points_);
    }
  }
  const std::vector<nws::Measurement> points = store_.series(key.value(), max);
  if (points.empty()) {
    return wire::error_payload(
        make_error(ErrorCode::not_found, "no series '" + key.value().to_string() + "'"));
  }
  std::string joined;
  for (const nws::Measurement& point : points) {
    if (!joined.empty()) joined += ',';
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g:%.17g", point.time, point.value);
    joined += buffer;
  }
  wire::WireMessage reply("SERIES-OK");
  reply.add_u64("count", points.size());
  reply.add("points", joined);
  return reply.serialize();
}

// --- client -----------------------------------------------------------------

Result<QueryClient> QueryClient::connect(const std::string& address, std::uint16_t port,
                                         double timeout_s) {
  auto socket = wire::TcpSocket::dial(address, port, timeout_s);
  if (!socket.ok()) return socket.error();
  return QueryClient(std::move(socket.value()), timeout_s);
}

Result<wire::WireMessage> QueryClient::request(const wire::WireMessage& message,
                                               std::string_view expected_type) {
  if (auto sent = wire::send_frame(socket_, message.serialize(), timeout_s_); !sent.ok()) {
    return sent.error();
  }
  return wire::expect_reply(wire::recv_message(socket_, buffer_, timeout_s_), expected_type,
                            message.type);
}

Result<QueryClient::SnapshotSummary> QueryClient::snapshot() {
  auto reply = request(wire::WireMessage(std::string(wire::kSnapshotFrame)), "SNAPSHOT-OK");
  if (!reply.ok()) return reply.error();
  SnapshotSummary summary;
  auto version = reply.value().u64("version");
  auto cycles = reply.value().u64("cycles");
  auto time = reply.value().f64("time");
  auto pairs = reply.value().u64("pairs");
  auto measurements = reply.value().u64("measurements");
  auto failures = reply.value().u64("failures");
  auto remaps = reply.value().u64("remaps");
  if (!version.ok()) return version.error();
  if (!cycles.ok()) return cycles.error();
  if (!time.ok()) return time.error();
  if (!pairs.ok()) return pairs.error();
  if (!measurements.ok()) return measurements.error();
  if (!failures.ok()) return failures.error();
  if (!remaps.ok()) return remaps.error();
  summary.version = version.value();
  summary.cycles = cycles.value();
  summary.time_s = time.value();
  summary.pairs = pairs.value();
  summary.measurements = measurements.value();
  summary.failures = failures.value();
  summary.remaps = remaps.value();
  summary.drifting = reply.value().get("drifting");
  summary.digest = reply.value().get("digest");
  if (summary.digest.empty()) {
    return make_error(ErrorCode::protocol, "SNAPSHOT-OK carries no digest");
  }
  return summary;
}

Result<QueryClient::PairAnswer> QueryClient::query(const nws::SeriesKey& key) {
  wire::WireMessage message(std::string(wire::kQueryFrame));
  message.add("resource", nws::to_string(key.resource));
  message.add("src", key.src);
  if (!key.dst.empty()) message.add("dst", key.dst);
  auto reply = request(message, "QUERY-OK");
  if (!reply.ok()) return reply.error();
  PairAnswer answer;
  auto value = reply.value().f64("value");
  auto mae = reply.value().f64("mae");
  auto rmse = reply.value().f64("rmse");
  auto samples = reply.value().u64("samples");
  auto latest = reply.value().f64("latest");
  auto time = reply.value().f64("time");
  auto drifting = reply.value().u64("drifting");
  if (!value.ok()) return value.error();
  if (!mae.ok()) return mae.error();
  if (!rmse.ok()) return rmse.error();
  if (!samples.ok()) return samples.error();
  if (!latest.ok()) return latest.error();
  if (!time.ok()) return time.error();
  if (!drifting.ok()) return drifting.error();
  answer.forecast.value = value.value();
  answer.forecast.mae = mae.value();
  answer.forecast.rmse = rmse.value();
  answer.forecast.winner = reply.value().get("winner");
  answer.forecast.samples = static_cast<std::size_t>(samples.value());
  answer.latest = latest.value();
  answer.latest_time = time.value();
  answer.drifting = drifting.value() != 0;
  return answer;
}

Result<std::vector<nws::Measurement>> QueryClient::series(const nws::SeriesKey& key,
                                                          std::size_t max) {
  wire::WireMessage message(std::string(wire::kSeriesFrame));
  message.add("resource", nws::to_string(key.resource));
  message.add("src", key.src);
  if (!key.dst.empty()) message.add("dst", key.dst);
  if (max > 0) message.add_u64("max", max);
  auto reply = request(message, "SERIES-OK");
  if (!reply.ok()) return reply.error();
  auto count = reply.value().u64("count");
  if (!count.ok()) return count.error();
  std::vector<nws::Measurement> points;
  for (const auto& token : strings::split_nonempty(reply.value().get("points"), ',')) {
    double time = 0.0;
    double value = 0.0;
    if (std::sscanf(token.c_str(), "%lf:%lf", &time, &value) != 2) {
      return make_error(ErrorCode::protocol, "bad SERIES-OK point token '" + token + "'");
    }
    points.push_back(nws::Measurement{time, value});
  }
  if (points.size() != count.value()) {
    return make_error(ErrorCode::protocol, "SERIES-OK count disagrees with its point list");
  }
  return points;
}

}  // namespace envnws::monitor
