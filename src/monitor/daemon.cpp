#include "monitor/daemon.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <sstream>

#include "env/batch_schedule.hpp"
#include "nws/clique.hpp"
#include "testing/virtual_scheduler.hpp"

namespace envnws::monitor {

const char* to_string(MonitorEvent::Kind kind) {
  switch (kind) {
    case MonitorEvent::Kind::cycle_finished:
      return "cycle_finished";
    case MonitorEvent::Kind::snapshot_published:
      return "snapshot_published";
    case MonitorEvent::Kind::probe_failed:
      return "probe_failed";
    case MonitorEvent::Kind::drift_detected:
      return "drift_detected";
    case MonitorEvent::Kind::remap_started:
      return "remap_started";
    case MonitorEvent::Kind::remap_finished:
      return "remap_finished";
    case MonitorEvent::Kind::remap_failed:
      return "remap_failed";
  }
  return "unknown";
}

namespace {

/// The drift/re-map unit of a clique: its network label, falling back to
/// the clique name for cliques without one (inter-network cliques).
std::string segment_of(const deploy::PlannedClique& clique) {
  return clique.network_label.empty() ? clique.name : clique.network_label;
}

}  // namespace

MonitorDaemon::MonitorDaemon(deploy::DeploymentPlan plan, std::unique_ptr<env::ProbeEngine> engine,
                             MonitorOptions options)
    : plan_(std::move(plan)),
      engine_(std::move(engine)),
      options_(options),
      clock_(options.period_s > 0 ? options.period_s : 1.0),
      scheduler_(plan_),
      store_(options.shards, options.history, options.drift) {
  for (const deploy::PlannedClique& clique : plan_.cliques) {
    if (clique.members.size() < 2) continue;
    const std::string segment = segment_of(clique);
    for (const std::string& member : clique.members) segment_hosts_[segment].insert(member);
    for (const auto& [from, to] : nws::ordered_experiment_pairs(clique.members)) {
      pair_segment_.emplace(nws::SeriesKey{nws::ResourceKind::bandwidth, from, to}, segment);
    }
  }
}

MonitorDaemon::~MonitorDaemon() {
  stop();
  if (query_server_ != nullptr) query_server_->stop();
}

MonitorDaemon& MonitorDaemon::set_observer(std::function<void(const MonitorEvent&)> observer) {
  observer_ = std::move(observer);
  return *this;
}

MonitorDaemon& MonitorDaemon::set_remap_sink(RemapSink sink) {
  remap_sink_ = std::move(sink);
  return *this;
}

Status MonitorDaemon::run_cycles(std::uint64_t n) {
  {
    std::lock_guard<std::mutex> lock(run_mutex_);
    if (running_) {
      return make_error(ErrorCode::invalid_argument, "monitor daemon is already running");
    }
    running_ = true;
  }
  for (std::uint64_t i = 0; i < n; ++i) run_one_cycle();
  std::lock_guard<std::mutex> lock(run_mutex_);
  running_ = false;
  return {};
}

Status MonitorDaemon::start() {
  std::lock_guard<std::mutex> lock(run_mutex_);
  if (running_) {
    return make_error(ErrorCode::invalid_argument, "monitor daemon is already running");
  }
  running_ = true;
  stopping_.store(false);
  loop_ = std::thread([this] {
    while (!stopping_.load()) {
      run_one_cycle();
      if (!options_.pace) continue;
      // Paced mode: sleep one period of real time, in slices so stop()
      // is never more than a slice away.
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::duration<double>(clock_.period_s());
      while (!stopping_.load() && std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    }
  });
  return {};
}

void MonitorDaemon::stop() {
  stopping_.store(true);
  if (loop_.joinable()) loop_.join();
  std::lock_guard<std::mutex> lock(run_mutex_);
  running_ = false;
}

bool MonitorDaemon::running() const {
  std::lock_guard<std::mutex> lock(run_mutex_);
  return running_;
}

Status MonitorDaemon::start_query_server(const std::string& address, std::uint16_t port) {
  if (query_server_ != nullptr && query_server_->running()) {
    return make_error(ErrorCode::invalid_argument, "query server is already running");
  }
  query_server_ = std::make_unique<QueryServer>(board_, store_);
  return query_server_->start(address, port);
}

std::uint16_t MonitorDaemon::query_port() const {
  return query_server_ == nullptr ? 0 : query_server_->port();
}

std::uint64_t MonitorDaemon::queries_served() const {
  return query_server_ == nullptr ? 0 : query_server_->requests_served();
}

std::vector<std::string> MonitorDaemon::decision_log() const {
  std::lock_guard<std::mutex> lock(decision_mutex_);
  return decisions_;
}

void MonitorDaemon::run_one_cycle() {
  const std::vector<ScheduledProbe> probes = scheduler_.cycle(clock_.cycles());
  std::vector<env::ProbeExperiment> experiments;
  experiments.reserve(probes.size());
  for (const ScheduledProbe& probe : probes) {
    experiments.push_back(env::ProbeExperiment::single(probe.transfer.from, probe.transfer.to));
  }
  const std::size_t probe_jobs = std::max<std::size_t>(options_.probe_jobs, 1);
  const std::vector<env::ProbeExperimentOutcome> outcomes =
      options_.virtual_scheduler != nullptr
          ? env::run_batch_virtual(*engine_, experiments, probe_jobs,
                                   *options_.virtual_scheduler)
          : engine_->run_batch(experiments, probe_jobs);

  clock_.tick();
  const double now = clock_.now();
  // Store writes are per-key independent, so the order this loop folds
  // outcomes into the store must not matter: with a virtual scheduler
  // attached, the order itself becomes a decision ("monitor-record"),
  // and the replay suite asserts that every permutation yields the same
  // snapshot digests, drift decisions and counters.
  std::vector<std::size_t> record_order(probes.size());
  std::iota(record_order.begin(), record_order.end(), 0);
  if (options_.virtual_scheduler != nullptr) {
    std::vector<std::size_t> remaining = record_order;
    record_order.clear();
    while (!remaining.empty()) {
      testing::DecisionPoint point;
      point.point = "monitor-record";
      point.ready.reserve(remaining.size());
      for (const std::size_t i : remaining) {
        point.ready.push_back(testing::ReadyTask{
            i, "record " + probes[i].transfer.from + "->" + probes[i].transfer.to});
      }
      const std::size_t slot = options_.virtual_scheduler->pick(point);
      record_order.push_back(remaining[slot]);
      remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(slot));
    }
  }
  std::uint64_t cycle_failures = 0;
  for (const std::size_t i : record_order) {
    const ScheduledProbe& probe = probes[i];
    const std::string pair_label = probe.transfer.from + "->" + probe.transfer.to;
    if (i >= outcomes.size() || outcomes[i].results.empty()) {
      ++cycle_failures;
      probe_failures_.fetch_add(1);
      emit(MonitorEvent::Kind::probe_failed, probe.segment, pair_label + ": no batch outcome");
      continue;
    }
    const Result<double>& measured = outcomes[i].results.front();
    if (!measured.ok()) {
      ++cycle_failures;
      probe_failures_.fetch_add(1);
      emit(MonitorEvent::Kind::probe_failed, probe.segment,
           pair_label + ": " + measured.error().message);
      continue;
    }
    store_.record(nws::SeriesKey{nws::ResourceKind::bandwidth, probe.transfer.from,
                                 probe.transfer.to},
                  now, measured.value());
    measurements_.fetch_add(1);
  }
  cycles_done_.store(clock_.cycles());

  std::vector<std::string> drifting = drift_pass();

  if (options_.snapshot_every > 0 && clock_.cycles() % options_.snapshot_every == 0) {
    publish_snapshot(std::move(drifting));
  }

  std::ostringstream detail;
  detail << "probes=" << probes.size() << " failures=" << cycle_failures;
  emit(MonitorEvent::Kind::cycle_finished, {}, detail.str());
}

std::vector<std::string> MonitorDaemon::drift_pass() {
  // Group the drifting pairs by segment. std::map keeps segments in
  // sorted order — decisions (and thus the decision log) are made in a
  // deterministic order regardless of which shard flagged what first.
  std::map<std::string, std::size_t> per_segment;
  for (const nws::SeriesKey& key : store_.drifting()) {
    const auto segment = pair_segment_.find(key);
    if (segment != pair_segment_.end()) ++per_segment[segment->second];
  }

  const std::uint64_t cycle = clock_.cycles();
  std::vector<std::string> still_drifting;
  for (const auto& [segment, pairs] : per_segment) {
    std::ostringstream line;
    line << "cycle=" << cycle << " segment=" << segment << " pairs=" << pairs;
    const auto cooldown = segment_cooldown_until_.find(segment);
    if (cooldown != segment_cooldown_until_.end() && cycle < cooldown->second) {
      line << " action=cooldown until=" << cooldown->second;
      log_decision(line.str());
      still_drifting.push_back(segment);
      continue;
    }
    emit(MonitorEvent::Kind::drift_detected, segment,
         "pairs=" + std::to_string(pairs));
    if (!options_.remap_on_drift) {
      line << " action=observe";
      log_decision(line.str());
      segment_cooldown_until_[segment] = cycle + options_.drift.cooldown_cycles;
      still_drifting.push_back(segment);
      continue;
    }
    line << " action=remap";
    log_decision(line.str());
    if (!remap_segment(segment, pairs).ok()) still_drifting.push_back(segment);
  }
  return still_drifting;
}

Status MonitorDaemon::remap_segment(const std::string& segment, std::size_t pairs_drifting) {
  const auto hosts = segment_hosts_.find(segment);
  if (hosts == segment_hosts_.end() || hosts->second.size() < 2) {
    return make_error(ErrorCode::not_found, "segment '" + segment + "' has no host set");
  }
  env::ZoneSpec spec;
  spec.zone_name = segment;
  spec.hostnames.assign(hosts->second.begin(), hosts->second.end());
  spec.master = hosts->second.count(plan_.master) > 0 ? plan_.master : spec.hostnames.front();
  spec.traceroute_target = spec.master;

  emit(MonitorEvent::Kind::remap_started, segment,
       "hosts=" + std::to_string(spec.hostnames.size()) +
           " drifting-pairs=" + std::to_string(pairs_drifting));

  // Whatever the incremental re-map probes goes through the daemon's own
  // engine: the experiment-count diff below is exactly its probe cost,
  // and recorded/replayed sessions capture it like any other probing.
  const std::uint64_t experiments_before = engine_->stats().experiments;
  env::Mapper mapper(*engine_, options_.remap);
  Result<env::ZoneMapResult> remapped = mapper.map_zone(spec);
  const std::uint64_t cost = engine_->stats().experiments - experiments_before;
  remap_experiments_.fetch_add(cost);

  // Cooldown either way: the re-probe itself says nothing about the
  // forecast, and a failing segment must not retry every cycle.
  segment_cooldown_until_[segment] = clock_.cycles() + options_.drift.cooldown_cycles;

  if (!remapped.ok()) {
    emit(MonitorEvent::Kind::remap_failed, segment, remapped.error().message);
    return remapped.error();
  }

  // The refreshed platform seeds fresh verdicts: forget the learned
  // state (forecasters + drift windows) of every pair in the segment.
  std::vector<nws::SeriesKey> keys;
  for (const auto& [key, owner] : pair_segment_) {
    if (owner == segment) keys.push_back(key);
  }
  store_.reset_learning(keys);

  remaps_.fetch_add(1);
  emit(MonitorEvent::Kind::remap_finished, segment,
       "experiments=" + std::to_string(cost) + " pairs-reset=" + std::to_string(keys.size()));
  if (remap_sink_) remap_sink_(segment, remapped.value());
  return {};
}

void MonitorDaemon::publish_snapshot(std::vector<std::string> drifting_segments) {
  ++snapshot_version_;
  auto snapshot = build_snapshot(store_, snapshot_version_, clock_.cycles(), clock_.now(),
                                 measurements_.load(), probe_failures_.load(), remaps_.load(),
                                 remap_experiments_.load(), std::move(drifting_segments));
  const std::string digest = snapshot->digest();
  board_.publish(std::move(snapshot));
  emit(MonitorEvent::Kind::snapshot_published, {},
       "version=" + std::to_string(snapshot_version_) + " digest=" + digest);
}

void MonitorDaemon::emit(MonitorEvent::Kind kind, std::string segment, std::string detail) {
  if (!observer_) return;
  MonitorEvent event;
  event.kind = kind;
  event.cycle = clock_.cycles();
  event.time_s = clock_.now();
  event.segment = std::move(segment);
  event.detail = std::move(detail);
  observer_(event);
}

void MonitorDaemon::log_decision(std::string line) {
  std::lock_guard<std::mutex> lock(decision_mutex_);
  decisions_.push_back(std::move(line));
}

}  // namespace envnws::monitor
