// Unit helpers. All simulator-internal quantities use SI base units:
// seconds for time, bits/second for bandwidth, bytes for payload sizes.
// These helpers exist so call sites read like the paper ("a 10 Mbps hub",
// "64 Kb messages") instead of raw magic numbers.
#pragma once

#include <cstdint>

namespace envnws::units {

// --- bandwidth (bits per second) ---
constexpr double kbps(double v) { return v * 1e3; }
constexpr double mbps(double v) { return v * 1e6; }
constexpr double gbps(double v) { return v * 1e9; }
constexpr double to_mbps(double bits_per_sec) { return bits_per_sec / 1e6; }

// --- payload sizes (bytes) ---
constexpr std::int64_t kib(std::int64_t v) { return v * 1024; }
constexpr std::int64_t mib(std::int64_t v) { return v * 1024 * 1024; }

// --- time (seconds) ---
constexpr double usec(double v) { return v * 1e-6; }
constexpr double msec(double v) { return v * 1e-3; }
constexpr double minutes(double v) { return v * 60.0; }
constexpr double hours(double v) { return v * 3600.0; }
constexpr double days(double v) { return v * 86400.0; }
constexpr double to_days(double seconds) { return seconds / 86400.0; }

}  // namespace envnws::units
