#include "common/table.hpp"

#include <algorithm>
#include <cassert>

#include "common/strings.hpp"

namespace envnws {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_numeric_row(const std::string& label, const std::vector<double>& values,
                            int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(strings::format_double(v, precision));
  add_row(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  std::string out;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += strings::pad_right(row[c], widths[c]);
      if (c + 1 < row.size()) out += "  ";
    }
    out += '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  out += std::string(total, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

std::string Table::to_csv() const {
  std::string out = strings::join(headers_, ",") + "\n";
  for (const auto& row : rows_) out += strings::join(row, ",") + "\n";
  return out;
}

}  // namespace envnws
