#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace envnws::stats {

double sum(std::span<const double> xs) {
  double total = 0.0;
  for (double x : xs) total += x;
  return total;
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return sum(xs) / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double median(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  const std::size_t n = copy.size();
  if (n % 2 == 1) return copy[n / 2];
  return 0.5 * (copy[n / 2 - 1] + copy[n / 2]);
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(copy.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return copy[lo] + (copy[hi] - copy[lo]) * frac;
}

double trimmed_mean(std::span<const double> xs, double trim_fraction) {
  if (xs.empty()) return 0.0;
  trim_fraction = std::clamp(trim_fraction, 0.0, 0.49);
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  const auto cut = static_cast<std::size_t>(
      std::floor(trim_fraction * static_cast<double>(copy.size())));
  if (copy.size() <= 2 * cut) return median(xs);
  double acc = 0.0;
  for (std::size_t i = cut; i < copy.size() - cut; ++i) acc += copy[i];
  return acc / static_cast<double>(copy.size() - 2 * cut);
}

double mean_absolute_error(std::span<const double> predicted, std::span<const double> actual) {
  const std::size_t n = std::min(predicted.size(), actual.size());
  if (n == 0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += std::abs(predicted[i] - actual[i]);
  return acc / static_cast<double>(n);
}

double rmse(std::span<const double> predicted, std::span<const double> actual) {
  const std::size_t n = std::min(predicted.size(), actual.size());
  if (n == 0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = predicted[i] - actual[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(n));
}

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

}  // namespace envnws::stats
