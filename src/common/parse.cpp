#include "common/parse.hpp"

#include <cctype>
#include <stdexcept>

namespace envnws::parse {

namespace {

/// std::sto* skip leading whitespace AND count it as consumed, so the
/// full-consumption check alone would accept " 3"; reject it up front.
bool leading_whitespace(const std::string& text) {
  return !text.empty() && std::isspace(static_cast<unsigned char>(text.front()));
}

}  // namespace

std::optional<double> to_double(const std::string& text) {
  if (leading_whitespace(text)) return std::nullopt;
  try {
    std::size_t used = 0;
    const double value = std::stod(text, &used);
    if (used != text.size()) return std::nullopt;
    return value;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::optional<std::int64_t> to_i64(const std::string& text) {
  if (leading_whitespace(text)) return std::nullopt;
  try {
    std::size_t used = 0;
    const long long value = std::stoll(text, &used);
    if (used != text.size()) return std::nullopt;
    return static_cast<std::int64_t>(value);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::optional<std::uint64_t> to_u64(const std::string& text) {
  // std::stoull negates instead of rejecting a leading '-' ("-1" parses
  // as 18446744073709551615), so scan for one explicitly.
  if (leading_whitespace(text) || text.find('-') != std::string::npos) return std::nullopt;
  try {
    std::size_t used = 0;
    const unsigned long long value = std::stoull(text, &used);
    if (used != text.size()) return std::nullopt;
    return static_cast<std::uint64_t>(value);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace envnws::parse
