// String helpers used across the GridML parser, hostname handling and the
// text renderers. Nothing clever: std::string based, allocation-honest.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace envnws::strings {

[[nodiscard]] std::vector<std::string> split(std::string_view input, char sep);
/// Split on `sep`, dropping empty pieces.
[[nodiscard]] std::vector<std::string> split_nonempty(std::string_view input, char sep);
[[nodiscard]] std::string join(const std::vector<std::string>& parts, std::string_view sep);
[[nodiscard]] std::string trim(std::string_view input);
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);
[[nodiscard]] bool ends_with(std::string_view text, std::string_view suffix);
[[nodiscard]] std::string to_lower(std::string_view input);
/// True if `text` contains `needle`.
[[nodiscard]] bool contains(std::string_view text, std::string_view needle);
/// printf-style double formatting with a fixed precision.
[[nodiscard]] std::string format_double(double v, int precision);
/// Pad/truncate to exactly `width` columns (left-aligned).
[[nodiscard]] std::string pad_right(std::string_view text, std::size_t width);
[[nodiscard]] std::string pad_left(std::string_view text, std::size_t width);

}  // namespace envnws::strings
