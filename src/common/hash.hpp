// Stable, platform-independent hashing.
//
// std::hash makes no cross-platform (or even cross-run) guarantees, so
// anything that must hash identically wherever it runs — snapshot
// digests, shard assignment of measurement series — uses FNV-1a here.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace envnws::hash {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// 64-bit FNV-1a over the bytes of `data`; `seed` chains digests.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view data,
                                              std::uint64_t seed = kFnvOffset) {
  std::uint64_t state = seed;
  for (const char byte : data) {
    state ^= static_cast<unsigned char>(byte);
    state *= kFnvPrime;
  }
  return state;
}

/// Fixed-width lowercase hex rendering of a 64-bit digest.
[[nodiscard]] inline std::string hex64(std::uint64_t value) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int nibble = 15; nibble >= 0; --nibble) {
    out[static_cast<std::size_t>(nibble)] = digits[value & 0xf];
    value >>= 4;
  }
  return out;
}

}  // namespace envnws::hash
