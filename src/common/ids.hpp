// Strongly-typed integer identifiers.
//
// Every subsystem (topology nodes, links, flows, actors, ...) indexes its
// objects with a dense integer id. Using a distinct C++ type per id space
// turns "passed a LinkId where a NodeId was expected" into a compile error
// instead of a silent off-by-table bug.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace envnws {

/// A strongly typed id. `Tag` is an empty struct unique to the id space.
template <typename Tag>
class Id {
 public:
  using underlying_type = std::uint32_t;

  constexpr Id() = default;
  constexpr explicit Id(underlying_type v) : value_(v) {}

  /// Sentinel meaning "no object".
  static constexpr Id invalid() {
    return Id(std::numeric_limits<underlying_type>::max());
  }

  [[nodiscard]] constexpr bool valid() const {
    return value_ != std::numeric_limits<underlying_type>::max();
  }
  [[nodiscard]] constexpr underlying_type value() const { return value_; }
  /// Convenience for indexing into dense vectors.
  [[nodiscard]] constexpr std::size_t index() const { return value_; }

  friend constexpr bool operator==(Id a, Id b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(Id a, Id b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(Id a, Id b) { return a.value_ < b.value_; }
  friend constexpr bool operator>(Id a, Id b) { return a.value_ > b.value_; }
  friend constexpr bool operator<=(Id a, Id b) { return a.value_ <= b.value_; }
  friend constexpr bool operator>=(Id a, Id b) { return a.value_ >= b.value_; }

 private:
  underlying_type value_ = std::numeric_limits<underlying_type>::max();
};

}  // namespace envnws

namespace std {
template <typename Tag>
struct hash<envnws::Id<Tag>> {
  size_t operator()(envnws::Id<Tag> id) const noexcept {
    return std::hash<typename envnws::Id<Tag>::underlying_type>{}(id.value());
  }
};
}  // namespace std
