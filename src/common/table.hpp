// ASCII table renderer used by the benchmark harness to print paper-style
// result rows, and by the examples for readable reports.
#pragma once

#include <string>
#include <vector>

namespace envnws {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);
  /// Convenience: formats doubles with the given precision.
  void add_numeric_row(const std::string& label, const std::vector<double>& values,
                       int precision = 2);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  /// Render with column alignment and a separator under the header.
  [[nodiscard]] std::string to_string() const;
  /// Render as comma-separated values (for machine post-processing).
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace envnws
