// Small descriptive-statistics toolbox shared by the NWS forecasters,
// the ENV threshold logic, and the benchmark reports.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace envnws::stats {

[[nodiscard]] double sum(std::span<const double> xs);
[[nodiscard]] double mean(std::span<const double> xs);
/// Sample variance (divides by n-1); 0 for fewer than two samples.
[[nodiscard]] double variance(std::span<const double> xs);
[[nodiscard]] double stddev(std::span<const double> xs);
[[nodiscard]] double min(std::span<const double> xs);
[[nodiscard]] double max(std::span<const double> xs);
/// Median (average of the middle two for even sizes). 0 for empty input.
[[nodiscard]] double median(std::span<const double> xs);
/// Linear-interpolated percentile, p in [0, 100].
[[nodiscard]] double percentile(std::span<const double> xs, double p);
/// Mean of the values that survive trimming `trim_fraction` from each end.
[[nodiscard]] double trimmed_mean(std::span<const double> xs, double trim_fraction);
/// Mean absolute error between pairwise-aligned sequences.
[[nodiscard]] double mean_absolute_error(std::span<const double> predicted,
                                         std::span<const double> actual);
/// Root mean squared error between pairwise-aligned sequences.
[[nodiscard]] double rmse(std::span<const double> predicted, std::span<const double> actual);

/// Streaming mean/variance accumulator (Welford).
class Accumulator {
 public:
  void add(double x);
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace envnws::stats
