#include "common/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace envnws::strings {

std::vector<std::string> split(std::string_view input, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      return out;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_nonempty(std::string_view input, char sep) {
  std::vector<std::string> out;
  for (auto& piece : split(input, sep)) {
    if (!piece.empty()) out.push_back(std::move(piece));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string trim(std::string_view input) {
  std::size_t begin = 0;
  std::size_t end = input.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(input[begin])) != 0) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(input[end - 1])) != 0) --end;
  return std::string(input.substr(begin, end - begin));
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view input) {
  std::string out(input);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool contains(std::string_view text, std::string_view needle) {
  return text.find(needle) != std::string_view::npos;
}

std::string format_double(double v, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, v);
  return buffer;
}

std::string pad_right(std::string_view text, std::size_t width) {
  std::string out(text.substr(0, width));
  out.resize(width, ' ');
  return out;
}

std::string pad_left(std::string_view text, std::size_t width) {
  std::string trimmed(text.substr(0, width));
  std::string out(width - trimmed.size(), ' ');
  out += trimmed;
  return out;
}

}  // namespace envnws::strings
