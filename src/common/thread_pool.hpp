// Fixed-size worker pool.
//
// The simulation core is deliberately single-threaded (determinism), but
// parameter sweeps in the benchmark harness run *independent* simulations
// — one per parameter point — and those parallelize embarrassingly. The
// pool hands out std::future results so callers keep ordinary structured
// control flow.
//
// For the schedule-exploration harness the pool has a second, virtual
// mode: constructed with a testing::VirtualScheduler it spawns no OS
// threads at all. Submitted tasks queue up and run cooperatively on the
// caller's thread at drain() points, in whatever order the scheduler
// picks — so a test enumerates the execution orders real workers could
// produce, deterministically.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace envnws::testing {
class VirtualScheduler;
}  // namespace envnws::testing

namespace envnws {

class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Virtual mode: no OS threads; tasks run at drain() points on the
  /// calling thread, in scheduler-picked order ("pool" decision point).
  /// `threads` is reported by size() but has no other effect — a
  /// cooperative pool has no genuine concurrency to bound.
  ThreadPool(std::size_t threads, testing::VirtualScheduler* scheduler);

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool virtual_mode() const { return scheduler_ != nullptr; }

  /// Enqueue a callable; returns a future for its result. In virtual
  /// mode the future is only satisfied once drain() runs the task.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(Queued{next_task_id_++, [task] { (*task)(); }});
    }
    wake_.notify_one();
    return result;
  }

  /// Run `fn(i)` for i in [0, count) across the pool and wait for all.
  /// Every task completes before this returns even when some throw; the
  /// first exception in SUBMISSION order is rethrown (not whichever
  /// worker happened to lose the race).
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// Virtual mode only: run every queued task on this thread, asking
  /// the scheduler which one goes next whenever more than one is
  /// queued. No-op with real workers (they drain continuously).
  void drain();

 private:
  struct Queued {
    std::size_t id = 0;  ///< submission counter, labels decision points
    std::function<void()> run;
  };

  void worker_loop();

  std::size_t size_ = 0;
  testing::VirtualScheduler* scheduler_ = nullptr;
  std::vector<std::thread> workers_;
  std::deque<Queued> queue_;
  std::size_t next_task_id_ = 0;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
};

}  // namespace envnws
