// Fixed-size worker pool.
//
// The simulation core is deliberately single-threaded (determinism), but
// parameter sweeps in the benchmark harness run *independent* simulations
// — one per parameter point — and those parallelize embarrassingly. The
// pool hands out std::future results so callers keep ordinary structured
// control flow.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace envnws {

class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueue a callable; returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    wake_.notify_one();
    return result;
  }

  /// Run `fn(i)` for i in [0, count) across the pool and wait for all.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
};

}  // namespace envnws
