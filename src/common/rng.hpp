// Deterministic random number generation.
//
// Every stochastic element in the repository (measurement jitter, load
// models, random scenario generators) draws from an explicitly-seeded Rng
// so that tests and benches are reproducible bit-for-bit. The generator is
// xoshiro256**, seeded through SplitMix64 as its authors recommend.
#pragma once

#include <cstdint>

namespace envnws {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform in [0, 2^64).
  std::uint64_t next_u64();
  /// Uniform in [0, bound).
  std::uint64_t next_below(std::uint64_t bound);
  /// Uniform double in [0, 1).
  double next_double();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Standard normal via Marsaglia polar method.
  double normal();
  /// Normal with the given mean / standard deviation.
  double normal(double mean, double stddev);
  /// Derive an independent child generator (for per-host noise streams).
  Rng fork();

 private:
  std::uint64_t state_[4];
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace envnws
