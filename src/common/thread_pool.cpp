#include "common/thread_pool.hpp"

#include <algorithm>
#include <exception>

#include "testing/virtual_scheduler.hpp"

namespace envnws {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  size_ = threads;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::ThreadPool(std::size_t threads, testing::VirtualScheduler* scheduler)
    : scheduler_(scheduler) {
  if (scheduler_ == nullptr) {
    // Null scheduler degrades to the real pool, so call sites can pass
    // an optional seam pointer straight through.
    if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    size_ = threads;
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
    return;
  }
  size_ = std::max<std::size_t>(1, threads);
}

ThreadPool::~ThreadPool() {
  if (scheduler_ != nullptr) {
    // Match the real pool's shutdown contract: queued tasks still run
    // (FIFO — destruction is not a decision point) so no future is left
    // holding a broken promise.
    while (!queue_.empty()) {
      Queued task = std::move(queue_.front());
      queue_.pop_front();
      task.run();
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front().run);
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::drain() {
  if (scheduler_ == nullptr) return;
  while (!queue_.empty()) {
    testing::DecisionPoint point;
    point.point = "pool";
    point.ready.reserve(queue_.size());
    for (const Queued& task : queue_) {
      point.ready.push_back(testing::ReadyTask{task.id, "task #" + std::to_string(task.id)});
    }
    const std::size_t choice = scheduler_->pick(point);
    Queued task = std::move(queue_[choice]);
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(choice));
    task.run();  // packaged_task: exceptions land in the future
  }
}

void ThreadPool::parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  drain();
  // Wait for EVERY task before rethrowing: the tasks reference `fn` (and
  // whatever it captures), so bailing on the first failure would leave
  // later tasks running against dead references. Collecting all futures
  // first also makes propagation deterministic — the first failure in
  // submission order wins, not whichever worker lost the race.
  std::exception_ptr first;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (first == nullptr) first = std::current_exception();
    }
  }
  if (first != nullptr) std::rethrow_exception(first);
}

}  // namespace envnws
