// Exception-free numeric parsing.
//
// Bare `std::stod`/`std::stoull` calls turn a malformed GridML attribute
// or config value into a process-killing exception, and `stoull` happily
// wraps negative input around 2^64. Every text-to-number conversion in
// the codebase goes through these helpers instead: they accept exactly a
// full, in-range numeric token and return `nullopt` for everything else,
// leaving the caller to wrap the failure in its own `Result` error.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace envnws::parse {

/// Strict double: the whole string must be one numeric token — no
/// leading whitespace, no trailing junk. An explicit '+' sign is
/// allowed (it is part of the token); out-of-range magnitudes are
/// rejected.
[[nodiscard]] std::optional<double> to_double(const std::string& text);

/// Strict signed 64-bit integer (same token rules as to_double).
[[nodiscard]] std::optional<std::int64_t> to_i64(const std::string& text);

/// Strict unsigned 64-bit integer (same token rules). Unlike
/// std::stoull, a leading '-' is rejected instead of wrapping around
/// 2^64.
[[nodiscard]] std::optional<std::uint64_t> to_u64(const std::string& text);

}  // namespace envnws::parse
