// Minimal Result<T> error-handling vocabulary.
//
// Probing a network that contains firewalls, dead hosts, and routers that
// drop traceroute is an exercise in expected failure; exceptions are kept
// for programmer errors only. Result<T> carries either a value or an Error
// with a category and a human-readable message.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace envnws {

/// Why an operation failed. Categories matter to callers (ENV reacts to
/// `blocked_by_firewall` by scheduling a per-zone mapping, but treats
/// `invalid_argument` as a bug); messages are for humans.
enum class ErrorCode {
  invalid_argument,
  not_found,
  unreachable,          ///< no route between the endpoints
  blocked_by_firewall,  ///< endpoints live in disjoint firewall zones
  host_down,            ///< endpoint host is failed/off
  timeout,
  protocol,  ///< malformed message / parse error
  internal,
};

[[nodiscard]] constexpr const char* to_string(ErrorCode c) {
  switch (c) {
    case ErrorCode::invalid_argument: return "invalid_argument";
    case ErrorCode::not_found: return "not_found";
    case ErrorCode::unreachable: return "unreachable";
    case ErrorCode::blocked_by_firewall: return "blocked_by_firewall";
    case ErrorCode::host_down: return "host_down";
    case ErrorCode::timeout: return "timeout";
    case ErrorCode::protocol: return "protocol";
    case ErrorCode::internal: return "internal";
  }
  return "unknown";
}

/// Inverse of `to_string(ErrorCode)` — the parsing side of serialized
/// errors (probe traces, fault-injection specs). `nullopt` for anything
/// that is not exactly a known category name.
[[nodiscard]] inline std::optional<ErrorCode> error_code_from_string(const std::string& text) {
  for (const ErrorCode code :
       {ErrorCode::invalid_argument, ErrorCode::not_found, ErrorCode::unreachable,
        ErrorCode::blocked_by_firewall, ErrorCode::host_down, ErrorCode::timeout,
        ErrorCode::protocol, ErrorCode::internal}) {
    if (text == to_string(code)) return code;
  }
  return std::nullopt;
}

struct Error {
  ErrorCode code = ErrorCode::internal;
  std::string message;

  [[nodiscard]] std::string to_string() const {
    return std::string(envnws::to_string(code)) + ": " + message;
  }
};

/// Either a T or an Error. Intentionally tiny; not a std::expected clone.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error error) : error_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] T& value() {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }
  [[nodiscard]] const Error& error() const {
    assert(!ok());
    return *error_;
  }

 private:
  std::optional<T> value_;
  std::optional<Error> error_;
};

/// Result<void> analogue.
class Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }
  [[nodiscard]] const Error& error() const {
    assert(!ok());
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

inline Error make_error(ErrorCode code, std::string message) {
  return Error{code, std::move(message)};
}

}  // namespace envnws
