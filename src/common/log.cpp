#include "common/log.hpp"

#include <atomic>
#include <cstdio>

namespace envnws {

namespace {
std::atomic<LogLevel> g_level{LogLevel::warn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::trace: return "TRACE";
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO";
    case LogLevel::warn: return "WARN";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

namespace detail {
void log_write(LogLevel level, const std::string& component, const std::string& message) {
  std::fprintf(stderr, "[%s] %s: %s\n", level_name(level), component.c_str(), message.c_str());
}
}  // namespace detail

}  // namespace envnws
