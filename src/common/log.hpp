// Leveled logging with a process-global threshold.
//
// The simulator and the NWS actors log through this so tests can silence
// everything and benches can show progress. Not thread-safe by design:
// the simulation core is single-threaded; the thread pool is only used to
// run *independent* simulations, each of which should keep quiet or log
// through its own sink.
#pragma once

#include <sstream>
#include <string>

namespace envnws {

enum class LogLevel { trace = 0, debug = 1, info = 2, warn = 3, error = 4, off = 5 };

/// Process-wide log threshold. Defaults to `warn` so tests stay quiet.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_write(LogLevel level, const std::string& component, const std::string& message);
}

/// Stream-style log statement collector:
///   ENVNWS_LOG(info, "simnet") << "flow " << id << " started";
class LogLine {
 public:
  LogLine(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)), enabled_(level >= log_level()) {}
  ~LogLine() {
    if (enabled_) detail::log_write(level_, component_, stream_.str());
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace envnws

#define ENVNWS_LOG(level, component) ::envnws::LogLine(::envnws::LogLevel::level, component)
