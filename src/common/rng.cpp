#include "common/rng.hpp"

#include <cmath>

namespace envnws {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % bound;
}

double Rng::next_double() {
  // 53 high-quality bits into [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

double Rng::normal() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  have_spare_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace envnws
