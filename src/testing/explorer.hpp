// Schedule-space exploration over the VirtualScheduler seam.
//
// A "scenario" is any deterministic function of a scheduler: build the
// system under test, run it with the scheduler injected at the seams,
// check the invariance contract (canonical result order, digest
// identity, no lost or duplicated work), and return a Status — plus
// whatever the scheduler itself noticed (watchdog, dispatch-invariant
// faults) via `health()`. The explorer then walks schedules:
//
//  - `explore_exhaustive` enumerates EVERY schedule by depth-first
//    search over the recorded (choice, fanout) tree — the CHESS-style
//    stateless enumeration: rerun the scenario with a choice prefix,
//    extend greedily with 0s, advance the deepest incrementable choice,
//    repeat until no frontier remains (or the schedule cap trips, in
//    which case `exhaustive` stays false). Feasible when decision
//    points stay small (the ISSUE's N <= ~6 regime); the recorded
//    fanouts make the bound checkable instead of guessed.
//  - `explore_random` samples `random_schedules` seeded schedules
//    (seed+k for round k) — the large-N regime. Every sampled schedule
//    is replayable: the failure carries the recorded choices, not the
//    seed, so one CI line reproduces locally.
//
// A failing schedule is shrunk to a minimal reproducer before it is
// reported: shortest failing prefix first (everything past a prefix
// replays as FIFO), then a budget-bounded breadth-first search of the
// decision tree for a shorter failing prefix on a sibling branch, then
// middle-step deletion to a fixpoint, then per-position choice
// minimization. The result is the `sched:` string a human actually
// wants to stare at — "1 decision" instead of "214".
//
// Modeled in spirit on SimGrid's UnfoldingChecker (exhaustive
// interleaving exploration with replayable traces); the unfolding
// machinery is replaced by brute schedule enumeration, which the seam's
// singleton-skipping keeps tractable for the batch sizes under test.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "testing/virtual_scheduler.hpp"

namespace envnws::testing {

struct ExploreOptions {
  /// Exhaustive mode: stop (non-exhaustively) after this many schedules.
  std::size_t max_schedules = 20000;
  /// Random mode: schedules sampled, seeded seed+k.
  std::size_t random_schedules = 100;
  std::uint64_t seed = 1;
  /// Progress watchdog forwarded to every scheduler (decisions/run).
  std::size_t max_decisions = 100000;
  /// Shrink failing schedules to a minimal reproducer.
  bool shrink = true;
  /// Replay budget the shrinker may spend.
  std::size_t shrink_budget = 2000;
};

/// A run of the system under test against one scheduler. Must be
/// deterministic (same schedule => same behavior) and self-contained
/// (fresh state every call): the explorer reruns it freely.
using ExploreScenario = std::function<Status(VirtualScheduler&)>;

struct ExploreFailure {
  std::vector<std::size_t> schedule;  ///< minimal reproducer (shrunk)
  std::string message;                ///< scenario/scheduler error + reproducer
  std::size_t schedules_before = 0;   ///< passing schedules before the failure
};

struct ExploreResult {
  std::size_t schedules = 0;      ///< schedules that ran (passing + failing)
  bool exhaustive = false;        ///< every schedule was covered
  std::size_t max_decisions = 0;  ///< deepest decision sequence observed
  std::optional<ExploreFailure> failure;

  [[nodiscard]] bool ok() const { return !failure.has_value(); }
};

class Explorer {
 public:
  explicit Explorer(ExploreOptions options = {}) : options_(options) {}

  /// DFS over every schedule; `result.exhaustive` is true iff the whole
  /// space fit under `max_schedules`.
  ExploreResult explore_exhaustive(const ExploreScenario& scenario);

  /// `random_schedules` seeded samples.
  ExploreResult explore_random(const ExploreScenario& scenario);

  /// Run one schedule (a parsed `sched:` string). The returned failure,
  /// if any, is NOT shrunk — this is the replay/debugging entry point.
  ExploreResult replay(const ExploreScenario& scenario, const std::vector<std::size_t>& schedule);

  /// Shrink a known-failing schedule to a minimal one that still fails.
  /// Returns the input if no smaller reproducer is found in budget.
  std::vector<std::size_t> shrink(const ExploreScenario& scenario,
                                  std::vector<std::size_t> schedule);

 private:
  struct RunOutcome {
    Status status;
    std::vector<std::size_t> choices;
    std::vector<std::size_t> fanouts;
  };
  /// One scenario run under a replayed prefix (FIFO past the end).
  RunOutcome run_with(const std::vector<std::size_t>& prefix);
  ExploreFailure make_failure(const RunOutcome& outcome, std::size_t schedules_before);

  ExploreOptions options_;
  const ExploreScenario* scenario_ = nullptr;  ///< active scenario during a walk
};

}  // namespace envnws::testing
