#include "testing/explorer.hpp"

#include <algorithm>

namespace envnws::testing {

Explorer::RunOutcome Explorer::run_with(const std::vector<std::size_t>& prefix) {
  ReplayScheduler scheduler(prefix);
  scheduler.set_max_decisions(options_.max_decisions);
  RunOutcome outcome;
  outcome.status = (*scenario_)(scheduler);
  if (outcome.status.ok() && !scheduler.health().ok()) {
    outcome.status = scheduler.health();
  }
  outcome.choices = scheduler.choices();
  outcome.fanouts = scheduler.fanouts();
  return outcome;
}

ExploreFailure Explorer::make_failure(const RunOutcome& outcome, std::size_t schedules_before) {
  ExploreFailure failure;
  failure.schedule = outcome.choices;
  failure.schedules_before = schedules_before;
  if (options_.shrink) failure.schedule = shrink(*scenario_, failure.schedule);
  failure.message = outcome.status.error().to_string() + " (reproduce with " +
                    format_schedule(failure.schedule) + ")";
  return failure;
}

ExploreResult Explorer::explore_exhaustive(const ExploreScenario& scenario) {
  scenario_ = &scenario;
  ExploreResult result;
  std::vector<std::size_t> prefix;
  while (true) {
    const RunOutcome outcome = run_with(prefix);
    ++result.schedules;
    result.max_decisions = std::max(result.max_decisions, outcome.choices.size());
    if (!outcome.status.ok()) {
      result.failure = make_failure(outcome, result.schedules - 1);
      break;
    }
    // Advance the DFS frontier: bump the deepest choice with siblings
    // left, truncate everything below it. No such choice = the whole
    // tree is enumerated.
    std::size_t depth = outcome.choices.size();
    while (depth > 0 && outcome.choices[depth - 1] + 1 >= outcome.fanouts[depth - 1]) --depth;
    if (depth == 0) {
      result.exhaustive = true;
      break;
    }
    if (result.schedules >= options_.max_schedules) break;  // capped, not exhaustive
    prefix.assign(outcome.choices.begin(), outcome.choices.begin() + depth);
    ++prefix.back();
  }
  scenario_ = nullptr;
  return result;
}

ExploreResult Explorer::explore_random(const ExploreScenario& scenario) {
  scenario_ = &scenario;
  ExploreResult result;
  for (std::size_t round = 0; round < options_.random_schedules; ++round) {
    RandomScheduler scheduler(options_.seed + round);
    scheduler.set_max_decisions(options_.max_decisions);
    Status status = scenario(scheduler);
    if (status.ok() && !scheduler.health().ok()) status = scheduler.health();
    ++result.schedules;
    result.max_decisions = std::max(result.max_decisions, scheduler.choices().size());
    if (!status.ok()) {
      RunOutcome outcome;
      outcome.status = std::move(status);
      outcome.choices = scheduler.choices();
      outcome.fanouts = scheduler.fanouts();
      result.failure = make_failure(outcome, result.schedules - 1);
      break;
    }
  }
  scenario_ = nullptr;
  return result;
}

ExploreResult Explorer::replay(const ExploreScenario& scenario,
                               const std::vector<std::size_t>& schedule) {
  scenario_ = &scenario;
  ExploreResult result;
  const RunOutcome outcome = run_with(schedule);
  result.schedules = 1;
  result.max_decisions = outcome.choices.size();
  if (!outcome.status.ok()) {
    ExploreFailure failure;
    failure.schedule = outcome.choices;
    failure.message = outcome.status.error().to_string() + " (schedule " +
                      format_schedule(outcome.choices) + ")";
    result.failure = std::move(failure);
  }
  scenario_ = nullptr;
  return result;
}

std::vector<std::size_t> Explorer::shrink(const ExploreScenario& scenario,
                                          std::vector<std::size_t> schedule) {
  const ExploreScenario* saved = scenario_;
  scenario_ = &scenario;
  std::size_t budget = options_.shrink_budget;
  const auto fails = [&](const std::vector<std::size_t>& candidate) {
    if (budget == 0) return false;
    --budget;
    return !run_with(candidate).status.ok();
  };

  // 1. Shortest failing prefix: past a prefix, replay degrades to FIFO,
  //    so every prefix is itself a complete schedule. Scan from the
  //    empty schedule up; the first failing prefix is length-minimal.
  for (std::size_t length = 0; length < schedule.size(); ++length) {
    std::vector<std::size_t> prefix(schedule.begin(),
                                    schedule.begin() + static_cast<std::ptrdiff_t>(length));
    if (fails(prefix)) {
      schedule = std::move(prefix);
      break;
    }
  }

  // 2. Breadth-first search of the decision tree for an even shorter
  //    failing prefix. Stage 1 only scans prefixes of the schedule the
  //    exploration happened to find first (DFS visits lexicographic
  //    order, so that schedule can sit deep on an all-FIFO spine while a
  //    two-step reproducer lives on a sibling branch). Levels are prefix
  //    lengths, so the first failure found here is length-minimal among
  //    everything the remaining budget reaches. A prefix ending in 0
  //    replays identically to its parent (FIFO past the end), so those
  //    children are carried forward without spending budget.
  if (schedule.size() > 1) {
    struct Node {
      std::vector<std::size_t> prefix;
      std::vector<std::size_t> fanouts;  ///< of the prefix's FIFO-completed run
    };
    std::vector<Node> level;
    level.push_back(Node{{}, run_with({}).fanouts});
    bool found = false;
    for (std::size_t length = 1; !found && length < schedule.size() && budget > 0; ++length) {
      std::vector<Node> next;
      for (const Node& node : level) {
        if (found || budget == 0) break;
        const std::size_t depth = node.prefix.size();
        const std::size_t fanout = depth < node.fanouts.size() ? node.fanouts[depth] : 0;
        for (std::size_t value = 0; value < fanout; ++value) {
          std::vector<std::size_t> child = node.prefix;
          child.push_back(value);
          if (value == 0) {
            next.push_back(Node{std::move(child), node.fanouts});
            continue;
          }
          if (budget == 0) break;
          --budget;
          const RunOutcome outcome = run_with(child);
          if (!outcome.status.ok()) {
            schedule = std::move(child);
            found = true;
            break;
          }
          next.push_back(Node{std::move(child), outcome.fanouts});
        }
      }
      level = std::move(next);
    }
  }

  // 3. Delete middle steps until no single deletion still fails.
  bool changed = true;
  while (changed && budget > 0) {
    changed = false;
    for (std::size_t i = 0; i < schedule.size(); ++i) {
      std::vector<std::size_t> candidate = schedule;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
      if (fails(candidate)) {
        schedule = std::move(candidate);
        changed = true;
        break;
      }
    }
  }

  // 4. Minimize each choice value (smallest failing value per step).
  for (std::size_t i = 0; i < schedule.size() && budget > 0; ++i) {
    for (std::size_t value = 0; value < schedule[i]; ++value) {
      std::vector<std::size_t> candidate = schedule;
      candidate[i] = value;
      if (fails(candidate)) {
        schedule = std::move(candidate);
        break;
      }
    }
  }

  scenario_ = saved;
  return schedule;
}

}  // namespace envnws::testing
