// The schedule seam of the concurrent core.
//
// Every concurrency mechanism in this repository — the zone thread pool
// (common/thread_pool), the batched within-zone probe dispatch
// (env/batch_schedule + Mapper phase loops + SocketProbeEngine::
// run_batch workers), and the monitor daemon's cycle loop — promises
// the same contract: the RESULT is bit-identical no matter how the OS
// interleaves the work. That promise is only testable if a test can
// decide the interleaving. A `VirtualScheduler` is that seam: wherever
// the production code would let "whichever thread gets there first"
// pick the next task, it instead (when a scheduler is injected; never
// by default) asks the scheduler to choose among the ready tasks.
//
// A schedule is then just the sequence of choices made — serialized as
// `sched:3,0,1,...` (one zero-based index per decision point, counting
// only points with 2+ ready tasks) — and any run is replayable bit for
// bit from its schedule string. testing/explorer.hpp walks the space of
// schedules exhaustively (small N) or randomly (seeded), asserting the
// invariance contract on every one; this header is deliberately tiny so
// production code can depend on it without dragging the explorer in.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/rng.hpp"

namespace envnws::testing {

/// One task a decision point offers. `id` is the caller's stable handle
/// (experiment index, queue slot, ...); `label` is for humans debugging
/// a failing schedule.
struct ReadyTask {
  std::size_t id = 0;
  std::string label;
};

/// One decision point: a named seam location and the tasks ready there.
struct DecisionPoint {
  std::string point;  ///< seam name: "batch", "pool", "monitor-record", ...
  std::vector<ReadyTask> ready;
};

/// Base of every scheduler. `pick()` is the only call production seams
/// make; it centralizes the bookkeeping every strategy shares:
///
///  - choices and fanouts are recorded (the replayable schedule — and
///    the DFS frontier the explorer advances);
///  - decision points with exactly one ready task are NOT decisions:
///    they return 0 without recording, so schedule strings stay minimal
///    and exhaustive exploration only branches where behavior can;
///  - a progress watchdog bounds the decision count: a seam stuck in a
///    wait loop (deadlock, livelock) exceeds the bound and the run
///    fails with a diagnosable error instead of hanging the suite;
///  - faults are sticky and never thrown: after the first fault the
///    scheduler degrades to FIFO picks and `health()` reports the
///    error. Seam code stays exception-free (common/result.hpp rules).
class VirtualScheduler {
 public:
  virtual ~VirtualScheduler() = default;

  /// Choose among `point.ready` (must not be empty); returns an index
  /// INTO the ready list, always in range even after a fault.
  [[nodiscard]] std::size_t pick(const DecisionPoint& point);

  /// OK until a fault: watchdog exceeded, empty ready list, or a
  /// strategy-reported problem (replay choice out of range, dispatch
  /// invariant violation). Sticky; the first fault wins.
  [[nodiscard]] Status health() const {
    return fault_.has_value() ? Status(*fault_) : Status();
  }
  /// Report a seam-detected invariant violation (lost task, endpoint
  /// conflict, deadlock) against this schedule. First fault wins.
  void report_fault(Error error);

  /// Decisions recorded so far — the replayable schedule.
  [[nodiscard]] const std::vector<std::size_t>& choices() const { return choices_; }
  /// Ready-list size at each recorded decision (the DFS branching).
  [[nodiscard]] const std::vector<std::size_t>& fanouts() const { return fanouts_; }
  /// This run's schedule as a `sched:` string.
  [[nodiscard]] std::string schedule_string() const;

  /// Progress watchdog bound (decisions per run). The default is far
  /// above any legitimate schedule in the suite.
  void set_max_decisions(std::size_t bound) { max_decisions_ = bound; }

 protected:
  /// Strategy hook: choose among `point.ready` (size >= 2 guaranteed).
  /// Out-of-range returns are treated as a strategy fault.
  [[nodiscard]] virtual std::size_t choose(const DecisionPoint& point) = 0;

 private:
  std::vector<std::size_t> choices_;
  std::vector<std::size_t> fanouts_;
  std::size_t max_decisions_ = 100000;
  std::optional<Error> fault_;
};

/// Production semantics: always the first ready task (the canonical
/// greedy pick every seam uses when no scheduler is injected).
class FifoScheduler final : public VirtualScheduler {
 protected:
  std::size_t choose(const DecisionPoint&) override { return 0; }
};

/// Replays a recorded schedule: decision k takes `schedule[k]`; past
/// the end of the schedule it picks 0 (FIFO) — which is what makes
/// shrunk prefixes valid schedules. A choice that does not fit the
/// decision's fanout is a fault (the schedule belongs to a different
/// scenario or the scenario is nondeterministic).
class ReplayScheduler final : public VirtualScheduler {
 public:
  explicit ReplayScheduler(std::vector<std::size_t> schedule)
      : schedule_(std::move(schedule)) {}

 protected:
  std::size_t choose(const DecisionPoint& point) override;

 private:
  std::vector<std::size_t> schedule_;
  std::size_t cursor_ = 0;
};

/// Seeded uniform choices (xoshiro via common/rng): one seed = one
/// schedule, and the recorded choices replay it exactly — which is how
/// a failing seed from a CI sweep turns into a `sched:` reproducer.
class RandomScheduler final : public VirtualScheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed) : rng_(seed) {}

 protected:
  std::size_t choose(const DecisionPoint& point) override;

 private:
  Rng rng_;
};

/// `sched:` string codec. `format_schedule({})` is "sched:";
/// `parse_schedule` accepts exactly what format_schedule emits:
/// the prefix plus comma-separated zero-based indices, each a strict
/// u64 (common/parse rules — no signs, no junk, no overflow wrap),
/// bounded in count and magnitude. Malformed input is a Result error,
/// never a throw.
[[nodiscard]] std::string format_schedule(const std::vector<std::size_t>& choices);
[[nodiscard]] Result<std::vector<std::size_t>> parse_schedule(const std::string& text);

/// Bounds enforced by parse_schedule (exposed for the fuzz tests).
inline constexpr std::size_t kMaxScheduleSteps = 100000;
inline constexpr std::uint64_t kMaxScheduleChoice = 1000000;

}  // namespace envnws::testing
