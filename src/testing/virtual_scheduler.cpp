#include "testing/virtual_scheduler.hpp"

#include <sstream>

#include "common/parse.hpp"
#include "common/strings.hpp"

namespace envnws::testing {

std::size_t VirtualScheduler::pick(const DecisionPoint& point) {
  if (point.ready.empty()) {
    report_fault(make_error(ErrorCode::internal,
                            "decision point '" + point.point + "' offered no ready tasks"));
    return 0;
  }
  if (point.ready.size() == 1) return 0;  // not a decision: nothing to permute
  if (fault_.has_value()) return 0;       // degraded: deterministic FIFO
  if (choices_.size() >= max_decisions_) {
    report_fault(make_error(
        ErrorCode::timeout,
        "progress watchdog: more than " + std::to_string(max_decisions_) +
            " decisions without finishing (suspected deadlock/livelock at '" + point.point +
            "', schedule so far " + schedule_string() + ")"));
    return 0;
  }
  std::size_t choice = choose(point);
  if (choice >= point.ready.size()) {
    report_fault(make_error(ErrorCode::invalid_argument,
                            "decision " + std::to_string(choices_.size()) + " at '" + point.point +
                                "' chose " + std::to_string(choice) + " of only " +
                                std::to_string(point.ready.size()) + " ready tasks"));
    choice = 0;
  }
  choices_.push_back(choice);
  fanouts_.push_back(point.ready.size());
  return choice;
}

void VirtualScheduler::report_fault(Error error) {
  if (!fault_.has_value()) fault_ = std::move(error);
}

std::string VirtualScheduler::schedule_string() const { return format_schedule(choices_); }

std::size_t ReplayScheduler::choose(const DecisionPoint&) {
  if (cursor_ >= schedule_.size()) return 0;  // past the schedule: FIFO
  return schedule_[cursor_++];
}

std::size_t RandomScheduler::choose(const DecisionPoint& point) {
  return static_cast<std::size_t>(rng_.next_below(point.ready.size()));
}

std::string format_schedule(const std::vector<std::size_t>& choices) {
  std::ostringstream out;
  out << "sched:";
  for (std::size_t i = 0; i < choices.size(); ++i) {
    if (i > 0) out << ',';
    out << choices[i];
  }
  return out.str();
}

Result<std::vector<std::size_t>> parse_schedule(const std::string& text) {
  const std::string prefix = "sched:";
  if (text.rfind(prefix, 0) != 0) {
    return make_error(ErrorCode::invalid_argument,
                      "schedule string must start with 'sched:' (got '" + text + "')");
  }
  const std::string body = text.substr(prefix.size());
  std::vector<std::size_t> choices;
  if (body.empty()) return choices;  // "sched:" = the all-FIFO schedule
  // split() keeps empty tokens, so "sched:1,,2" and trailing commas are
  // rejected instead of silently skipped.
  const auto tokens = strings::split(body, ',');
  if (tokens.size() > kMaxScheduleSteps) {
    return make_error(ErrorCode::invalid_argument,
                      "schedule has " + std::to_string(tokens.size()) + " steps (limit " +
                          std::to_string(kMaxScheduleSteps) + ")");
  }
  choices.reserve(tokens.size());
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    // Canonical digits only — stricter than parse::to_u64, which lets
    // "+1" and "01" through; accepted schedules must round-trip through
    // format_schedule bit for bit.
    const std::string& token = tokens[i];
    bool canonical = !token.empty() && (token.size() == 1 || token[0] != '0');
    for (const char c : token) {
      if (c < '0' || c > '9') canonical = false;
    }
    const auto value = canonical ? parse::to_u64(token) : std::optional<std::uint64_t>();
    if (!value.has_value()) {
      return make_error(ErrorCode::invalid_argument,
                        "schedule step " + std::to_string(i) + " is not a valid index: '" +
                            tokens[i] + "'");
    }
    if (*value > kMaxScheduleChoice) {
      return make_error(ErrorCode::invalid_argument,
                        "schedule step " + std::to_string(i) + " chooses " +
                            std::to_string(*value) + " (limit " +
                            std::to_string(kMaxScheduleChoice) + ")");
    }
    choices.push_back(static_cast<std::size_t>(*value));
  }
  return choices;
}

}  // namespace envnws::testing
