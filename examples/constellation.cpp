// WAN constellation: the "most common Grid testbed" shape of paper §5 —
// several LAN sites joined by a wide-area network — deployed with a
// hierarchical monitoring infrastructure: per-site cliques, one inter-site
// clique of representatives, and a memory server placement that keeps
// measurement storage site-local.
//
//   $ ./examples/constellation [sites] [hosts_per_site]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "api/envnws.hpp"
#include "common/units.hpp"

using namespace envnws;

int main(int argc, char** argv) {
  const int sites = argc > 1 ? std::atoi(argv[1]) : 4;
  const int hosts = argc > 2 ? std::atoi(argv[2]) : 5;

  const std::string spec =
      "constellation:" + std::to_string(sites) + "x" + std::to_string(hosts) + "@100/10";
  auto scenario = api::ScenarioRegistry::builtin().make(spec);
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s\n", scenario.error().to_string().c_str());
    return 1;
  }
  simnet::Network net(simnet::Scenario(scenario.value()).topology);

  api::Session session(net, scenario.value());
  if (auto status = session.run_all(); !status.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n", status.error().to_string().c_str());
    return 1;
  }
  std::printf("%s\n", session.render().c_str());

  net.run_until(net.now() + units::minutes(15));

  // Compare intra-site vs inter-site forecasts with ground truth.
  std::printf("=== forecasts vs ground truth ===\n");
  const auto compare = [&](const std::string& src, const std::string& dst) {
    const auto reply = session.queries().bandwidth(src, src, dst);
    const auto src_id = net.topology().find_host_by_fqdn(src);
    const auto dst_id = net.topology().find_host_by_fqdn(dst);
    if (!reply.ok() || !src_id.ok() || !dst_id.ok()) return;
    const double truth =
        net.ground_truth_bandwidth(src_id.value(), dst_id.value()).value_or(0.0);
    std::printf("  %-22s -> %-22s  forecast %7.2f Mbps  truth %7.2f Mbps  [%s]\n",
                src.c_str(), dst.c_str(), units::to_mbps(reply.value().value),
                units::to_mbps(truth), to_string(reply.value().method));
  };
  compare("site0n0.site0.org", "site0n1.site0.org");  // intra-site (hub)
  compare("site1n0.site1.org", "site1n1.site1.org");  // intra-site (switch)
  compare("site0n0.site0.org", "site1n3.site1.org");  // inter-site
  if (sites > 2) compare("site0n2.site0.org", "site2n4.site2.org");

  // Show how stale each series can get: the measurement frequency of
  // every clique (paper constraint 2, "scalability concerns").
  std::printf("\n=== clique cycle times ===\n");
  for (const auto& clique : session.system().cliques()) {
    std::printf("  %-34s %2zu members, full cycle %6.1f s\n", clique->name().c_str(),
                clique->spec().members.size(), clique->expected_cycle_time());
  }
  session.system().stop();
  return 0;
}
