// Standalone probe-agent daemon (docs/SOCKET_ENGINE.md).
//
// Runs one env::ProbeAgent — the NWS-style sensor process every mapped
// host needs — until stdin closes or SIGINT/SIGTERM arrives:
//
//   $ ./examples/probe_agent --name h0 --fqdn h0.lan --port 0
//   probe_agent: 'h0' listening on 127.0.0.1:49152
//
// The printed `<host> <address>:<port>` line is exactly one roster line,
// so a fleet can be assembled with shell alone:
//
//   $ for h in h0 h1 h2; do ./examples/probe_agent --name $h --quiet \
//       --roster-line >> agents.cfg & done
//
// --rate fixes the reported transfer timing (deterministic offline-first
// mode); --pace additionally makes wall time track it. Without --rate
// the agent reports measured wall time — the real mode.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/parse.hpp"
#include "env/probe_agent.hpp"

using namespace envnws;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --name <host> [--fqdn <fqdn>] [--ip <ipv4>] [--listen <ipv4>]\n"
               "          [--port <n>] [--prop k=v]... [--rate <bps>] [--pace]\n"
               "          [--io-timeout <s>] [--roster-line] [--quiet]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  env::ProbeAgentConfig config;
  bool roster_line = false;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--name") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      config.name = v;
    } else if (arg == "--fqdn") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      config.fqdn = v;
    } else if (arg == "--ip") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      config.ip = v;
    } else if (arg == "--listen") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      config.listen_address = v;
    } else if (arg == "--port") {
      const char* v = value();
      const auto port = v != nullptr ? parse::to_u64(v) : std::optional<std::uint64_t>();
      if (!port.has_value() || *port > 65535) return usage(argv[0]);
      config.port = static_cast<std::uint16_t>(*port);
    } else if (arg == "--prop") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      const std::string pair = v;
      const auto eq = pair.find('=');
      if (eq == std::string::npos || eq == 0) return usage(argv[0]);
      config.properties[pair.substr(0, eq)] = pair.substr(eq + 1);
    } else if (arg == "--rate") {
      const char* v = value();
      const auto rate = v != nullptr ? parse::to_double(v) : std::optional<double>();
      if (!rate.has_value() || *rate <= 0.0) return usage(argv[0]);
      config.fixed_rate_bps = *rate;
    } else if (arg == "--pace") {
      config.pace = true;
    } else if (arg == "--io-timeout") {
      const char* v = value();
      const auto timeout = v != nullptr ? parse::to_double(v) : std::optional<double>();
      if (!timeout.has_value() || *timeout <= 0.0) return usage(argv[0]);
      config.io_timeout_s = *timeout;
    } else if (arg == "--roster-line") {
      roster_line = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (config.name.empty()) return usage(argv[0]);
  if (config.fqdn.empty()) config.fqdn = config.name;

  env::ProbeAgent agent(std::move(config));
  if (auto status = agent.start(); !status.ok()) {
    std::fprintf(stderr, "probe_agent: %s\n", status.error().to_string().c_str());
    return 1;
  }
  if (roster_line) {
    std::printf("%s %s:%u\n", agent.config().name.c_str(),
                agent.config().listen_address.c_str(), agent.port());
  } else if (!quiet) {
    std::printf("probe_agent: '%s' listening on %s:%u (fqdn %s, %s)\n",
                agent.config().name.c_str(), agent.config().listen_address.c_str(), agent.port(),
                agent.config().fqdn.c_str(),
                agent.config().fixed_rate_bps > 0.0
                    ? (agent.config().pace ? "fixed rate, paced" : "fixed rate")
                    : "measured timing");
  }
  std::fflush(stdout);

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  // Serve until the controlling process closes stdin or signals us —
  // both work for shell fleets and test harnesses.
  char buffer[256];
  while (g_stop == 0 && std::fgets(buffer, sizeof(buffer), stdin) != nullptr) {
  }
  agent.stop();
  if (!quiet && !roster_line) {
    const auto stats = agent.stats();
    std::printf("probe_agent: '%s' served %llu experiment(s), %lld byte(s)\n",
                agent.config().name.c_str(), static_cast<unsigned long long>(stats.experiments),
                static_cast<long long>(stats.bytes_sent));
  }
  return 0;
}
