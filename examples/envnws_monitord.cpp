// envnws_monitord — the monitoring daemon as a command-line tool.
//
// Takes a scenario, derives its deployment plan (map -> plan through
// api::Session), then runs the monitor daemon over any probe-engine
// spec: the simulator, a live loopback agent fleet, a recorded trace.
// The CI smoke is one self-contained invocation:
//
//   $ ./examples/envnws_monitord --scenario=star-switch:6 --fleet \
//         --cycles=40 --serve --query
//
// which spawns one in-process ProbeAgent per scenario host on ephemeral
// loopback ports, monitors through real TCP probes for 40 cycles while
// serving SNAPSHOT/QUERY/SERIES clients, queries itself, and shuts the
// fleet down cleanly. Offline, no fleet required:
//
//   $ ./examples/envnws_monitord --scenario=star-switch:6 \
//         --probe=replay:run.envtrace --cycles=40
//
// With --fleet, the token AUTO inside --probe is replaced by the
// generated roster path, so "--fleet --probe=record:run.envtrace@socket:AUTO"
// records a golden monitoring trace for later replay.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "api/envnws.hpp"
#include "common/parse.hpp"
#include "env/probe_agent.hpp"
#include "monitor/query_server.hpp"

using namespace envnws;

namespace {

int fail(const std::string& message) {
  std::fprintf(stderr, "envnws_monitord: %s\n", message.c_str());
  return 1;
}

struct Args {
  std::string scenario = "star-switch:6";
  std::string probe;  ///< engine spec; empty = "sim", or socket: with --fleet
  std::uint64_t cycles = 20;
  double period_s = 1.0;
  std::size_t jobs = 1;
  bool fleet = false;
  double fleet_rate_bps = 1e9;
  bool serve = false;
  std::uint16_t serve_port = 0;
  bool query = false;
  bool no_remap = false;
  std::string dump_path;
  /// Sampled mapping (PR 8): cap on pairwise interrogations per zone,
  /// applied to the initial map AND every drift-triggered re-map.
  int max_pairwise = 0;
  std::uint64_t sample_seed = 1;
};

bool parse_args(int argc, char** argv, Args& args, std::string& error) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const std::string& prefix) { return arg.substr(prefix.size()); };
    if (arg.rfind("--scenario=", 0) == 0) {
      args.scenario = value("--scenario=");
    } else if (arg.rfind("--probe=", 0) == 0) {
      args.probe = value("--probe=");
    } else if (arg.rfind("--cycles=", 0) == 0) {
      auto parsed = parse::to_u64(value("--cycles="));
      if (!parsed.has_value()) { error = "bad --cycles"; return false; }
      args.cycles = *parsed;
    } else if (arg.rfind("--period=", 0) == 0) {
      auto parsed = parse::to_double(value("--period="));
      if (!parsed.has_value() || *parsed <= 0) { error = "bad --period"; return false; }
      args.period_s = *parsed;
    } else if (arg.rfind("--jobs=", 0) == 0) {
      auto parsed = parse::to_u64(value("--jobs="));
      if (!parsed.has_value() || *parsed == 0) { error = "bad --jobs"; return false; }
      args.jobs = static_cast<std::size_t>(*parsed);
    } else if (arg.rfind("--rate=", 0) == 0) {
      auto parsed = parse::to_double(value("--rate="));
      if (!parsed.has_value() || *parsed <= 0) { error = "bad --rate"; return false; }
      args.fleet_rate_bps = *parsed;
    } else if (arg.rfind("--serve=", 0) == 0) {
      auto parsed = parse::to_u64(value("--serve="));
      if (!parsed.has_value() || *parsed > 65535) { error = "bad --serve port"; return false; }
      args.serve = true;
      args.serve_port = static_cast<std::uint16_t>(*parsed);
    } else if (arg.rfind("--dump=", 0) == 0) {
      args.dump_path = value("--dump=");
    } else if (arg == "--fleet") {
      args.fleet = true;
    } else if (arg == "--serve") {
      args.serve = true;
    } else if (arg == "--query") {
      args.query = true;
    } else if (arg.rfind("--max-pairwise=", 0) == 0) {
      auto parsed = parse::to_u64(value("--max-pairwise="));
      if (!parsed.has_value() || *parsed > 1000000) { error = "bad --max-pairwise"; return false; }
      args.max_pairwise = static_cast<int>(*parsed);
    } else if (arg.rfind("--sample-seed=", 0) == 0) {
      auto parsed = parse::to_u64(value("--sample-seed="));
      if (!parsed.has_value()) { error = "bad --sample-seed"; return false; }
      args.sample_seed = *parsed;
    } else if (arg == "--no-remap") {
      args.no_remap = true;
    } else {
      error = "unknown argument '" + arg + "'";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  std::string arg_error;
  if (!parse_args(argc, argv, args, arg_error)) {
    std::fprintf(stderr,
                 "usage: %s [--scenario=<spec>] [--probe=<engine-spec>] [--cycles=N]\n"
                 "          [--period=S] [--jobs=N] [--fleet] [--rate=BPS]\n"
                 "          [--serve[=PORT]] [--query] [--no-remap] [--dump=<path>]\n"
                 "          [--max-pairwise=N] [--sample-seed=S]\n",
                 argv[0]);
    return fail(arg_error);
  }

  auto scenario = api::ScenarioRegistry::builtin().make(args.scenario);
  if (!scenario.ok()) {
    return fail("bad scenario '" + args.scenario + "': " + scenario.error().to_string());
  }

  // Optional in-process loopback fleet: one fixed-rate ProbeAgent per
  // scenario host, rostered under the names the plan's cliques probe.
  std::vector<std::unique_ptr<env::ProbeAgent>> fleet;
  std::string roster_path;
  if (args.fleet) {
    for (const simnet::NodeId id : scenario.value().topology.hosts()) {
      const simnet::Node& node = scenario.value().topology.node(id);
      env::ProbeAgentConfig config;
      config.name = node.fqdn.empty() ? node.name : node.fqdn;
      config.fqdn = node.fqdn;
      config.fixed_rate_bps = args.fleet_rate_bps;
      fleet.push_back(std::make_unique<env::ProbeAgent>(std::move(config)));
      if (auto started = fleet.back()->start(); !started.ok()) {
        return fail("agent for " + node.name + ": " + started.error().to_string());
      }
    }
    roster_path = (std::filesystem::temp_directory_path() /
                   ("monitord-roster-" + std::to_string(::getpid()) + ".cfg"))
                      .string();
    std::ofstream roster(roster_path, std::ios::trunc);
    for (const auto& agent : fleet) {
      roster << agent->config().name << " 127.0.0.1:" << agent->port() << "\n";
    }
    if (args.probe.empty()) args.probe = "socket:" + roster_path;
    // Let recorded-fleet specs reference the ephemeral roster.
    const std::string token = "AUTO";
    if (const auto at = args.probe.find(token); at != std::string::npos) {
      args.probe.replace(at, token.size(), roster_path);
    }
  }
  if (args.probe.empty()) args.probe = "sim";

  simnet::Network net(simnet::Scenario(scenario.value()).topology);
  api::Session session(net, scenario.value());
  if (args.fleet || args.probe.rfind("sim", 0) != 0) {
    // Loopback probes need no settle gap; keep payloads LAN-sized.
    session.options().mapper.probe_bytes = 64 * 1024;
    session.options().mapper.stabilization_gap_s = 0.0;
  }
  if (auto status = session.set_probe_engine_spec(args.probe); !status.ok()) {
    return fail("bad probe spec: " + status.error().to_string());
  }
  // Sampled mapping: the session's mapper options seed make_monitor's
  // remap options, so one setting covers map and drift re-maps alike.
  session.options().mapper.max_pairwise = args.max_pairwise;
  session.options().mapper.sample_seed = args.sample_seed;

  monitor::MonitorOptions options;
  options.period_s = args.period_s;
  options.probe_jobs = args.jobs;
  options.remap_on_drift = !args.no_remap;
  auto made = session.make_monitor(options);
  if (!made.ok()) return fail("monitor setup failed: " + made.error().to_string());
  std::unique_ptr<monitor::MonitorDaemon> daemon = std::move(made.value());
  std::printf("monitord: plan '%s': %zu probe(s)/cycle, %llu pair(s), spec %s\n",
              args.scenario.c_str(), daemon->scheduler().probes_per_cycle(),
              static_cast<unsigned long long>(daemon->scheduler().pairs_total()),
              args.probe.c_str());

  if (args.serve) {
    if (auto status = daemon->start_query_server("127.0.0.1", args.serve_port); !status.ok()) {
      return fail("query server: " + status.error().to_string());
    }
    std::printf("monitord: serving queries on 127.0.0.1:%u\n", daemon->query_port());
  }

  if (auto status = daemon->run_cycles(args.cycles); !status.ok()) {
    return fail("measurement loop: " + status.error().to_string());
  }

  const auto snapshot = daemon->snapshot();
  std::printf("monitord: %llu cycle(s), %llu measurement(s), %llu failure(s), "
              "%llu remap(s) (%llu experiment(s))\n",
              static_cast<unsigned long long>(daemon->cycles()),
              static_cast<unsigned long long>(daemon->measurements()),
              static_cast<unsigned long long>(daemon->probe_failures()),
              static_cast<unsigned long long>(daemon->remaps()),
              static_cast<unsigned long long>(daemon->remap_experiments()));
  std::printf("monitord: snapshot v%llu digest %s (%zu pair(s))\n",
              static_cast<unsigned long long>(snapshot->version), snapshot->digest().c_str(),
              snapshot->pairs.size());

  if (args.query) {
    if (!args.serve) return fail("--query needs --serve");
    auto client = monitor::QueryClient::connect("127.0.0.1", daemon->query_port());
    if (!client.ok()) return fail("query connect: " + client.error().to_string());
    auto summary = client.value().snapshot();
    if (!summary.ok()) return fail("SNAPSHOT: " + summary.error().to_string());
    if (summary.value().digest != snapshot->digest()) {
      return fail("served snapshot digest differs from the local one");
    }
    std::printf("monitord: SNAPSHOT served: v%llu digest %s, %llu measurement(s)\n",
                static_cast<unsigned long long>(summary.value().version),
                summary.value().digest.c_str(),
                static_cast<unsigned long long>(summary.value().measurements));
    if (!snapshot->pairs.empty()) {
      const auto& first = snapshot->pairs.front().key;
      auto answer = client.value().query(first);
      if (!answer.ok()) return fail("QUERY: " + answer.error().to_string());
      std::printf("monitord: QUERY %s -> %.6g bit/s (forecast %.6g, %s)\n",
                  first.to_string().c_str(), answer.value().latest,
                  answer.value().forecast.value, answer.value().forecast.winner.c_str());
    }
  }

  if (!args.dump_path.empty()) {
    std::ofstream out(args.dump_path, std::ios::trunc);
    out << daemon->dump_series();
    std::printf("monitord: series dumped to %s\n", args.dump_path.c_str());
  }

  daemon.reset();  // stops the query server before the fleet goes away
  for (auto& agent : fleet) agent->stop();
  if (!roster_path.empty()) std::filesystem::remove(roster_path);
  std::printf("monitord: clean shutdown\n");
  return 0;
}
