// The paper's experiment, end to end: map the ENS-Lyon network with ENV
// (both firewall zones), merge, plan the NWS deployment, apply it, verify
// the deployment constraints, and query the running system.
//
//   $ ./examples/ens_lyon
#include <cstdio>

#include "common/units.hpp"
#include "core/autodeploy.hpp"
#include "env/structural.hpp"
#include "simnet/render.hpp"

using namespace envnws;

int main() {
  simnet::Scenario scenario = simnet::ens_lyon();
  std::printf("=== physical topology (paper Fig. 1a, ground truth) ===\n%s\n",
              simnet::render_physical(scenario.topology).c_str());

  simnet::Network net(simnet::Scenario(scenario).topology);
  auto deployed = core::auto_deploy(net, scenario);
  if (!deployed.ok()) {
    std::fprintf(stderr, "auto-deploy failed: %s\n", deployed.error().to_string().c_str());
    return 1;
  }
  core::AutoDeployResult& result = deployed.value();

  std::printf("=== structural topology (paper Fig. 2) ===\n%s\n",
              env::render_structural(result.map.zones.front().structural).c_str());
  std::printf("%s\n", result.render().c_str());
  std::printf("=== shared manager configuration (paper S5.2) ===\n%s\n",
              result.config_text.c_str());

  // Per-host duties, as each host's manager instance would apply them.
  std::printf("=== per-host process assignments ===\n");
  for (const auto& host : result.plan.hosts) {
    std::printf("  %s\n", deploy::local_assignment(result.plan, host).render().c_str());
  }

  // Run the monitoring system, then demonstrate the three query paths.
  net.run_until(net.now() + units::minutes(20));
  std::printf("\n=== queries after 20 minutes of monitoring ===\n");
  const auto show = [&](const char* src, const char* dst) {
    const auto reply = result.queries->bandwidth("the-doors", src, dst);
    if (reply.ok()) {
      std::printf("  bandwidth %s -> %s: %.2f Mbps [%s, %zu segment(s)]\n", src, dst,
                  units::to_mbps(reply.value().value), to_string(reply.value().method),
                  reply.value().segments.size());
    } else {
      std::printf("  bandwidth %s -> %s: %s\n", src, dst,
                  reply.error().to_string().c_str());
    }
  };
  show("canaria.ens-lyon.fr", "moby.cri2000.ens-lyon.fr");   // direct
  show("the-doors.ens-lyon.fr", "canaria.ens-lyon.fr");      // substituted
  show("the-doors.ens-lyon.fr", "sci3.popc.private");        // aggregated
  show("myri1.popc.private", "sci5.popc.private");           // aggregated, private

  result.system->stop();
  return 0;
}
