// The paper's experiment, end to end and stage by stage: map the
// ENS-Lyon network with ENV (both firewall zones), merge, plan the NWS
// deployment, apply it, verify the deployment constraints, and query the
// running system — each stage run explicitly on an api::Session so its
// intermediate output can be inspected before the next one starts.
//
//   $ ./examples/ens_lyon
#include <cstdio>

#include "api/envnws.hpp"
#include "common/units.hpp"
#include "env/structural.hpp"
#include "simnet/render.hpp"

using namespace envnws;

int main() {
  auto made = api::ScenarioRegistry::builtin().make("ens-lyon");
  if (!made.ok()) {
    std::fprintf(stderr, "%s\n", made.error().to_string().c_str());
    return 1;
  }
  simnet::Scenario& scenario = made.value();
  std::printf("=== physical topology (paper Fig. 1a, ground truth) ===\n%s\n",
              simnet::render_physical(scenario.topology).c_str());

  simnet::Network net(simnet::Scenario(scenario).topology);
  api::Session session(net, scenario);

  // Stage 1 — map. The per-zone structural trees are only available on
  // the intermediate result, which the one-call wrapper hides.
  if (auto status = session.map(); !status.ok()) {
    std::fprintf(stderr, "map failed: %s\n", status.error().to_string().c_str());
    return 1;
  }
  std::printf("=== structural topology (paper Fig. 2) ===\n%s\n",
              env::render_structural(session.map_result().zones.front().structural).c_str());

  // Stages 2-4 — plan, apply, validate.
  if (auto status = session.run_all(); !status.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n", status.error().to_string().c_str());
    return 1;
  }
  std::printf("%s\n", session.render().c_str());
  std::printf("=== shared manager configuration (paper S5.2) ===\n%s\n",
              session.config_text().c_str());

  // Per-host duties, as each host's manager instance would apply them.
  std::printf("=== per-host process assignments ===\n");
  for (const auto& host : session.plan_result().hosts) {
    std::printf("  %s\n", deploy::local_assignment(session.plan_result(), host).render().c_str());
  }

  // Run the monitoring system, then demonstrate the three query paths.
  net.run_until(net.now() + units::minutes(20));
  std::printf("\n=== queries after 20 minutes of monitoring ===\n");
  const auto show = [&](const char* src, const char* dst) {
    const auto reply = session.queries().bandwidth("the-doors", src, dst);
    if (reply.ok()) {
      std::printf("  bandwidth %s -> %s: %.2f Mbps [%s, %zu segment(s)]\n", src, dst,
                  units::to_mbps(reply.value().value), to_string(reply.value().method),
                  reply.value().segments.size());
    } else {
      std::printf("  bandwidth %s -> %s: %s\n", src, dst,
                  reply.error().to_string().c_str());
    }
  };
  show("canaria.ens-lyon.fr", "moby.cri2000.ens-lyon.fr");   // direct
  show("the-doors.ens-lyon.fr", "canaria.ens-lyon.fr");      // substituted
  show("the-doors.ens-lyon.fr", "sci3.popc.private");        // aggregated
  show("myri1.popc.private", "sci5.popc.private");           // aggregated, private

  session.system().stop();
  return 0;
}
