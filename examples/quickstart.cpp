// Quickstart: pick a platform by name, run the staged deployment
// pipeline, and ask for a forecast — the whole pipeline of the paper in
// ~60 lines.
//
//   $ ./examples/quickstart [scenario-spec]     (default: dumbbell:3x3@100/10)
#include <cstdio>

#include "api/envnws.hpp"
#include "common/units.hpp"

using namespace envnws;

namespace {

// Stage progress straight from the pipeline's observer hook.
struct PrintObserver final : api::Observer {
  void on_event(const api::Event& event) override {
    if (event.kind == api::Event::Kind::note) return;
    const std::string what =
        event.zone.empty() ? event.detail : "'" + event.zone + "': " + event.detail;
    std::printf("[%8.1f s] %-8s %-13s %s\n", event.sim_time_s, to_string(event.stage),
                to_string(event.kind), what.c_str());
  }
};

}  // namespace

int main(int argc, char** argv) {
  // A platform by name: two switched clusters joined by a 10 Mbps bottleneck.
  auto scenario =
      api::ScenarioRegistry::builtin().make(argc > 1 ? argv[1] : "dumbbell:3x3@100/10");
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s\n", scenario.error().to_string().c_str());
    return 1;
  }
  simnet::Network net(simnet::Scenario(scenario.value()).topology);

  // The staged pipeline: map with ENV, plan the NWS deployment, apply it,
  // verify the four deployment constraints.
  PrintObserver progress;
  api::Session session(net, scenario.value());
  session.set_observer(&progress);
  if (auto status = session.run_all(); !status.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n", status.error().to_string().c_str());
    return 1;
  }
  std::printf("\n%s\n", session.render().c_str());

  // Let the monitoring system take measurements for ten simulated minutes.
  net.run_until(net.now() + units::minutes(10));

  // Ask for end-to-end forecasts between the deployment's first and last
  // hosts (the aggregation layer chains measured segments when no clique
  // covers the pair directly).
  const auto& hosts = session.plan_result().hosts;
  const std::string& src = hosts.front();
  const std::string& dst = hosts.back();
  const auto bw = session.queries().bandwidth(src, src, dst);
  const auto lat = session.queries().latency(src, src, dst);
  if (bw.ok() && lat.ok()) {
    std::printf("%s -> %s: %.1f Mbps (%s over %zu segment(s)), rtt %.2f ms\n", src.c_str(),
                dst.c_str(), units::to_mbps(bw.value().value), to_string(bw.value().method),
                bw.value().segments.size(), lat.value().value * 1e3);
  }

  session.system().stop();
  return 0;
}
