// Quickstart: build a small platform, auto-deploy the NWS on it, and ask
// for a forecast — the whole pipeline of the paper in ~60 lines.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/autodeploy.hpp"
#include "common/units.hpp"

using namespace envnws;

int main() {
  // A platform: two switched clusters joined by a 10 Mbps bottleneck.
  simnet::Scenario scenario = simnet::dumbbell(/*left=*/3, /*right=*/3,
                                               units::mbps(100), units::mbps(10));
  simnet::Network net(simnet::Scenario(scenario).topology);

  // Map with ENV, plan the NWS deployment, apply it, verify constraints.
  auto deployed = core::auto_deploy(net, scenario);
  if (!deployed.ok()) {
    std::fprintf(stderr, "auto-deploy failed: %s\n", deployed.error().to_string().c_str());
    return 1;
  }
  core::AutoDeployResult& result = deployed.value();
  std::printf("%s\n", result.render().c_str());

  // Let the monitoring system take measurements for ten simulated minutes.
  net.run_until(net.now() + units::minutes(10));

  // Ask for end-to-end forecasts, including pairs no clique measures
  // directly (the aggregation layer chains measured segments).
  for (const auto& [src, dst] : {std::pair<const char*, const char*>{"l0.lan", "l1.lan"},
                                 {"l0.lan", "r2.lan"}}) {
    const auto bw = result.queries->bandwidth("l0.lan", src, dst);
    const auto lat = result.queries->latency("l0.lan", src, dst);
    if (bw.ok() && lat.ok()) {
      std::printf("%s -> %s: %.1f Mbps (%s over %zu segment(s)), rtt %.2f ms\n", src, dst,
                  units::to_mbps(bw.value().value), to_string(bw.value().method),
                  bw.value().segments.size(), lat.value().value * 1e3);
    }
  }

  result.system->stop();
  return 0;
}
