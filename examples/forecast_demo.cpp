// The NWS forecasting battery on synthetic load traces (paper §2: the
// forecasters "deduce the future evolutions of measurement time series
// using statistics"), then on a live measurement series from an NWS
// deployed through the staged api::Session on a registry-named platform.
//
//   $ ./examples/forecast_demo [scenario-spec]    (default: star:4@100)
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "api/envnws.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "nws/forecast.hpp"

using namespace envnws;

namespace {

std::vector<double> make_trace(const std::string& family, int n, Rng& rng) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    if (family == "constant") {
      out.push_back(50.0);
    } else if (family == "noisy") {
      out.push_back(50.0 + rng.normal(0.0, 5.0));
    } else if (family == "trend") {
      out.push_back(10.0 + 0.2 * t + rng.normal(0.0, 1.0));
    } else if (family == "periodic") {
      out.push_back(50.0 + 20.0 * std::sin(t / 15.0) + rng.normal(0.0, 2.0));
    } else {  // bursty: occasional load spikes over a quiet baseline
      const bool spike = rng.next_double() < 0.08;
      out.push_back(20.0 + (spike ? rng.uniform(40.0, 80.0) : rng.normal(0.0, 1.5)));
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Rng rng(2003);
  const std::vector<std::string> families{"constant", "noisy", "trend", "periodic", "bursty"};

  Table summary({"trace", "winner", "winner MAE", "last-value MAE", "running-mean MAE"});
  for (const auto& family : families) {
    const auto trace = make_trace(family, 600, rng);
    nws::AdaptiveForecaster forecaster;
    for (const double v : trace) forecaster.observe(v);

    const nws::Forecast forecast = forecaster.forecast();
    double last_mae = 0.0;
    double mean_mae = 0.0;
    std::printf("--- %s ---\n", family.c_str());
    for (const auto& [name, mae] : forecaster.predictor_errors()) {
      std::printf("  %-16s MAE %8.3f\n", name.c_str(), mae);
      if (name == "last") last_mae = mae;
      if (name == "mean") mean_mae = mae;
    }
    std::printf("  => winner: %s (forecast %.2f, MAE %.3f, RMSE %.3f)\n\n",
                forecast.winner.c_str(), forecast.value, forecast.mae, forecast.rmse);
    summary.add_row({family, forecast.winner,
                     strings::format_double(forecast.mae, 3),
                     strings::format_double(last_mae, 3),
                     strings::format_double(mean_mae, 3)});
  }
  std::printf("%s", summary.to_string().c_str());

  // The same battery on a live series: deploy the NWS on a named platform
  // through the staged pipeline and forecast a measured bandwidth pair.
  auto scenario = api::ScenarioRegistry::builtin().make(argc > 1 ? argv[1] : "star:4@100");
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s\n", scenario.error().to_string().c_str());
    return 1;
  }
  simnet::Network net(simnet::Scenario(scenario.value()).topology);
  api::Session session(net, scenario.value());
  if (auto status = session.run_all(); !status.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n", status.error().to_string().c_str());
    return 1;
  }
  net.run_until(net.now() + units::minutes(10));

  const auto& hosts = session.plan_result().hosts;
  if (hosts.size() < 2) {
    std::fprintf(stderr, "scenario has fewer than two hosts; no pair to forecast\n");
    session.system().stop();
    return 1;
  }
  const auto reply = session.queries().bandwidth(hosts.front(), hosts.front(), hosts[1]);
  if (reply.ok()) {
    std::printf("\n--- live series (%s) ---\n", session.plan_result().cliques.front().name.c_str());
    std::printf("  %s -> %s after 10 minutes of monitoring: %.2f Mbps [%s]\n",
                hosts.front().c_str(), hosts[1].c_str(), units::to_mbps(reply.value().value),
                to_string(reply.value().method));
  }
  session.system().stop();
  return 0;
}
