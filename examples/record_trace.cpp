// Record a golden probe trace for a scenario — and prove it replays.
//
// The trace-format regression suite (tests/env/trace_engine_test.cpp)
// replays the committed traces under tests/data/traces/ and asserts the
// result is bit-identical to a live simulator run. When the mapper's
// probe schedule legitimately changes, re-record with this tool (see
// docs/TESTING.md, "Re-recording golden traces"):
//
//   $ ./examples/record_trace dumbbell:3x3@100/10 tests/data/traces/dumbbell-3x3.envtrace
//
// The tool maps the scenario once with a recording engine, then maps it
// again from the fresh trace and verifies the two MapResults match — a
// trace that does not survive its own round-trip is never written home.
#include <cstdio>
#include <string>

#include "api/envnws.hpp"
#include "env/env_tree.hpp"

using namespace envnws;

namespace {

int fail(const std::string& message) {
  std::fprintf(stderr, "record_trace: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s <scenario-spec> <output-trace-path>\n", argv[0]);
    return 2;
  }
  const std::string spec = argv[1];
  const std::string path = argv[2];

  auto scenario = api::ScenarioRegistry::builtin().make(spec);
  if (!scenario.ok()) return fail("bad scenario '" + spec + "': " + scenario.error().to_string());

  simnet::Network record_net(simnet::Scenario(scenario.value()).topology);
  api::Session recorder(record_net, scenario.value());
  if (auto status = recorder.set_probe_engine_spec("record:" + path); !status.ok()) {
    return fail(status.error().to_string());
  }
  if (auto status = recorder.map(); !status.ok()) {
    return fail("mapping failed: " + status.error().to_string());
  }
  const env::MapResult& live = recorder.map_result();
  std::printf("recorded %s: %llu experiments, %zu zone(s) -> %s\n", spec.c_str(),
              static_cast<unsigned long long>(live.stats.experiments), live.zones.size(),
              path.c_str());

  // Round-trip check: replay the trace we just wrote on a fresh session
  // and require the bit-identical MapResult the golden suite asserts.
  simnet::Network replay_net(simnet::Scenario(scenario.value()).topology);
  api::Session replayer(replay_net, scenario.value());
  if (auto status = replayer.set_probe_engine_spec("replay:" + path); !status.ok()) {
    return fail(status.error().to_string());
  }
  if (auto status = replayer.map(); !status.ok()) {
    return fail("replay failed: " + status.error().to_string());
  }
  const env::MapResult& replayed = replayer.map_result();
  if (live.identity_digest() != replayed.identity_digest()) {
    return fail("replayed MapResult differs from the recorded run");
  }
  std::printf("replay verified: MapResult bit-identical, zero live probes\n");
  return 0;
}
