// Record a golden probe trace for a scenario — and prove it replays.
//
// The trace-format regression suite (tests/env/trace_engine_test.cpp)
// replays the committed traces under tests/data/traces/ and asserts the
// result is bit-identical to a live simulator run. When the mapper's
// probe schedule legitimately changes, re-record with this tool (see
// docs/TESTING.md, "Re-recording golden traces"):
//
//   $ ./examples/record_trace dumbbell:3x3@100/10 tests/data/traces/dumbbell-3x3.envtrace
//
// With --fleet[=<rate_bps>] the probes are REAL: the tool spawns one
// fixed-rate loopback ProbeAgent per scenario host, maps through
// "record:<path>@socket:<roster>", stops the fleet, and replays the
// trace strictly offline — that is how the committed golden SOCKET
// trace (tests/data/traces/socket-star-6.envtrace) was produced:
//
//   $ ./examples/record_trace star-switch:6 tests/data/traces/socket-star-6.envtrace --fleet
//
// --fleet-tcp[=<rate_bps>] is the same live fleet with the lv08 TCP
// correction applied to the agents' deterministic timing (payloads
// extract 97% of the raw rate). The committed calibration trace was
// produced this way (see tests/env/calibration_test.cpp):
//
//   $ ./examples/record_trace star-switch:6@1000 \
//       tests/data/traces/socket-star-6-tcp.envtrace --fleet-tcp
//
// Either way the tool maps the scenario once with a recording engine,
// then maps it again from the fresh trace and verifies the two
// MapResults match — a trace that does not survive its own round-trip
// is never written home.
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/envnws.hpp"
#include "common/parse.hpp"
#include "env/env_tree.hpp"
#include "env/probe_agent.hpp"

using namespace envnws;

namespace {

int fail(const std::string& message) {
  std::fprintf(stderr, "record_trace: %s\n", message.c_str());
  return 1;
}

/// Fixed-rate agents make socket measurements — and thus the recorded
/// trace — reproducible across runs.
constexpr double kDefaultFleetRate = 1e9;
/// lv08: a TCP payload extracts ~97% of the raw link rate.
constexpr double kTcpUsableFraction = 0.97;

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3 && argc != 4) {
    std::fprintf(stderr,
                 "usage: %s <scenario-spec> <output-trace-path>"
                 " [--fleet[=<rate_bps>] | --fleet-tcp[=<rate_bps>]]\n",
                 argv[0]);
    return 2;
  }
  const std::string spec = argv[1];
  const std::string path = argv[2];
  std::optional<double> fleet_rate;
  double usable_fraction = 1.0;
  if (argc == 4) {
    const std::string flag = argv[3];
    if (flag == "--fleet") {
      fleet_rate = kDefaultFleetRate;
    } else if (flag.rfind("--fleet=", 0) == 0) {
      auto rate = parse::to_double(flag.substr(8));
      if (!rate.has_value() || *rate <= 0) return fail("bad --fleet rate '" + flag + "'");
      fleet_rate = *rate;
    } else if (flag == "--fleet-tcp") {
      fleet_rate = kDefaultFleetRate;
      usable_fraction = kTcpUsableFraction;
    } else if (flag.rfind("--fleet-tcp=", 0) == 0) {
      auto rate = parse::to_double(flag.substr(12));
      if (!rate.has_value() || *rate <= 0) return fail("bad --fleet-tcp rate '" + flag + "'");
      fleet_rate = *rate;
      usable_fraction = kTcpUsableFraction;
    } else {
      return fail("unknown argument '" + flag + "'");
    }
  }

  auto scenario = api::ScenarioRegistry::builtin().make(spec);
  if (!scenario.ok()) return fail("bad scenario '" + spec + "': " + scenario.error().to_string());

  // --fleet: live loopback agents behind the recorder, rostered under
  // the exact names the mapper probes with.
  std::vector<std::unique_ptr<env::ProbeAgent>> fleet;
  std::string record_spec = "record:" + path;
  std::string roster_path;
  if (fleet_rate.has_value()) {
    for (const simnet::NodeId id : scenario.value().topology.hosts()) {
      const simnet::Node& node = scenario.value().topology.node(id);
      env::ProbeAgentConfig config;
      config.name = node.fqdn.empty() ? node.name : node.fqdn;
      config.fqdn = node.fqdn;
      config.properties = node.properties;
      config.fixed_rate_bps = *fleet_rate;
      config.usable_fraction = usable_fraction;
      fleet.push_back(std::make_unique<env::ProbeAgent>(std::move(config)));
      if (auto started = fleet.back()->start(); !started.ok()) {
        return fail("agent for " + node.name + ": " + started.error().to_string());
      }
    }
    roster_path = path + ".roster.tmp";
    env::wire::AgentRoster roster;
    for (const auto& agent : fleet) {
      roster.agents.push_back(
          env::wire::AgentEndpoint{agent->config().name, "127.0.0.1", agent->port()});
    }
    std::FILE* out = std::fopen(roster_path.c_str(), "w");
    if (out == nullptr) return fail("cannot write roster " + roster_path);
    const std::string text = roster.to_string();
    std::fwrite(text.data(), 1, text.size(), out);
    std::fclose(out);
    record_spec += "@socket:" + roster_path;
  }

  simnet::Network record_net(simnet::Scenario(scenario.value()).topology);
  api::Session recorder(record_net, scenario.value());
  if (fleet_rate.has_value()) {
    // Loopback probes: LAN payloads, no settle gap (matches the socket
    // integration suite, so traces stay comparable).
    recorder.options().mapper.probe_bytes = 64 * 1024;
    recorder.options().mapper.stabilization_gap_s = 0.0;
  }
  if (auto status = recorder.set_probe_engine_spec(record_spec); !status.ok()) {
    return fail(status.error().to_string());
  }
  if (auto status = recorder.map(); !status.ok()) {
    return fail("mapping failed: " + status.error().to_string());
  }
  const env::MapResult& live = recorder.map_result();
  std::printf("recorded %s%s: %llu experiments, %zu zone(s) -> %s\n", spec.c_str(),
              fleet_rate.has_value() ? " (live socket fleet)" : "",
              static_cast<unsigned long long>(live.stats.experiments), live.zones.size(),
              path.c_str());

  // The offline half: agents (if any) gone, the trace alone must
  // reproduce the run bit-identically, with zero live probes.
  for (auto& agent : fleet) agent->stop();
  if (!roster_path.empty()) std::remove(roster_path.c_str());

  simnet::Network replay_net(simnet::Scenario(scenario.value()).topology);
  api::Session replayer(replay_net, scenario.value());
  if (fleet_rate.has_value()) {
    replayer.options().mapper.probe_bytes = 64 * 1024;
    replayer.options().mapper.stabilization_gap_s = 0.0;
  }
  if (auto status = replayer.set_probe_engine_spec("replay:" + path); !status.ok()) {
    return fail(status.error().to_string());
  }
  if (auto status = replayer.map(); !status.ok()) {
    return fail("replay failed: " + status.error().to_string());
  }
  const env::MapResult& replayed = replayer.map_result();
  if (live.identity_digest() != replayed.identity_digest()) {
    return fail("replayed MapResult differs from the recorded run");
  }
  std::printf("replay verified: MapResult bit-identical, zero live probes\n");
  return 0;
}
