// Firewalled mapping and the GridML merge (paper §4.3, "Firewalls").
//
// Runs only the map stage of an api::Session on the ENS-Lyon network —
// ENV executes separately inside each zone, since the private
// popc.private hosts cannot talk to the outside world — and shows the
// per-zone GridML documents, the user-provided gateway alias groups, and
// the merged document the deployment planner consumes.
//
//   $ ./examples/firewall_merge
#include <cstdio>

#include "api/envnws.hpp"
#include "env/scenario_zones.hpp"

using namespace envnws;

int main() {
  auto made = api::ScenarioRegistry::builtin().make("ens-lyon");
  if (!made.ok()) {
    std::fprintf(stderr, "%s\n", made.error().to_string().c_str());
    return 1;
  }
  simnet::Scenario& scenario = made.value();
  simnet::Network net(simnet::Scenario(scenario).topology);

  const auto zones = env::zones_from_scenario(scenario);
  if (!zones.ok()) {
    std::fprintf(stderr, "%s\n", zones.error().to_string().c_str());
    return 1;
  }
  const auto aliases = env::gateway_aliases_from_scenario(scenario);

  std::printf("=== zones to map (firewall partitions) ===\n");
  for (const auto& zone : zones.value()) {
    std::printf("  zone '%s': %zu hosts, master %s, traceroute target %s\n",
                zone.zone_name.c_str(), zone.hostnames.size(), zone.master.c_str(),
                zone.traceroute_target.c_str());
  }
  std::printf("\n=== gateway aliases (the only user-provided merge input) ===\n");
  for (const auto& group : aliases) {
    for (std::size_t i = 0; i < group.size(); ++i) {
      std::printf("%s%s", i > 0 ? "  <->  " : "  ", group[i].c_str());
    }
    std::printf("\n");
  }

  // Only the map stage runs; the session never plans or deploys anything.
  api::Session session(net, scenario);
  if (auto status = session.map(); !status.ok()) {
    std::fprintf(stderr, "mapping failed: %s\n", status.error().to_string().c_str());
    return 1;
  }
  const env::MapResult& result = session.map_result();

  std::printf("\n=== per-zone effective views ===\n");
  for (const auto& zone : result.zones) {
    std::printf("--- zone %s (master %s, %llu experiments) ---\n%s\n",
                zone.spec.zone_name.c_str(), zone.master_fqdn.c_str(),
                static_cast<unsigned long long>(zone.stats.experiments),
                env::render_effective(zone.root).c_str());
  }

  std::printf("=== merged effective view ===\n%s\n",
              env::render_effective(result.root).c_str());
  std::printf("=== merged GridML document ===\n%s", result.grid.to_string().c_str());
  return 0;
}
