// Firewalled mapping and the GridML merge (paper §4.3, "Firewalls").
//
// Runs ENV separately inside each zone of the ENS-Lyon network — the
// private popc.private hosts cannot talk to the outside world — and shows
// the per-zone GridML documents, the user-provided gateway alias groups,
// and the merged document the deployment planner consumes.
//
//   $ ./examples/firewall_merge
#include <cstdio>

#include "env/mapper.hpp"
#include "env/scenario_zones.hpp"
#include "env/sim_probe_engine.hpp"
#include "simnet/scenario.hpp"

using namespace envnws;

int main() {
  simnet::Scenario scenario = simnet::ens_lyon();
  simnet::Network net(simnet::Scenario(scenario).topology);

  env::MapperOptions options;
  env::SimProbeEngine engine(net, options);
  env::Mapper mapper(engine, options);

  const auto zones = env::zones_from_scenario(scenario);
  const auto aliases = env::gateway_aliases_from_scenario(scenario);

  std::printf("=== zones to map (firewall partitions) ===\n");
  for (const auto& zone : zones) {
    std::printf("  zone '%s': %zu hosts, master %s, traceroute target %s\n",
                zone.zone_name.c_str(), zone.hostnames.size(), zone.master.c_str(),
                zone.traceroute_target.c_str());
  }
  std::printf("\n=== gateway aliases (the only user-provided merge input) ===\n");
  for (const auto& group : aliases) {
    for (std::size_t i = 0; i < group.size(); ++i) {
      std::printf("%s%s", i > 0 ? "  <->  " : "  ", group[i].c_str());
    }
    std::printf("\n");
  }

  auto result = mapper.map(zones, aliases);
  if (!result.ok()) {
    std::fprintf(stderr, "mapping failed: %s\n", result.error().to_string().c_str());
    return 1;
  }

  std::printf("\n=== per-zone effective views ===\n");
  for (const auto& zone : result.value().zones) {
    std::printf("--- zone %s (master %s, %llu experiments) ---\n%s\n",
                zone.spec.zone_name.c_str(), zone.master_fqdn.c_str(),
                static_cast<unsigned long long>(zone.stats.experiments),
                env::render_effective(zone.root).c_str());
  }

  std::printf("=== merged effective view ===\n%s\n",
              env::render_effective(result.value().root).c_str());
  std::printf("=== merged GridML document ===\n%s", result.value().grid.to_string().c_str());
  return 0;
}
