// Explore, replay and shrink dispatch schedules of a mapping run.
//
// The schedule-exploration harness (src/testing/, docs/TESTING.md) can
// drive every concurrency decision of a map — which startable batch
// experiment dispatches or completes first — from a test instead of the
// OS. This tool is the command-line face of that seam:
//
//   # enumerate EVERY interleaving of a small scenario's batches and
//   # assert the MapResult digest never moves
//   $ ./examples/explore_schedules star-switch:4 --jobs=3
//
//   # 200 seeded random schedules of a bigger scenario
//   $ ./examples/explore_schedules vlan:4x2 --jobs=4 --mode=random \
//         --schedules=200 --seed=7
//
//   # replay the exact interleaving a CI failure printed
//   $ ./examples/explore_schedules star-switch:4 --jobs=3 \
//         --schedule=sched:2,0,1
//
//   # watch the harness catch and shrink a planted completion-order bug
//   $ ./examples/explore_schedules star-switch:4 --jobs=3 --inject-bug
//
// Every run of the scenario is deterministic given its schedule, so the
// `sched:` string a failure prints IS the reproducer.
#include <cstdio>
#include <string>
#include <vector>

#include "api/envnws.hpp"
#include "common/parse.hpp"
#include "env/batch_schedule.hpp"
#include "env/sim_probe_engine.hpp"
#include "testing/explorer.hpp"

using namespace envnws;

namespace {

int fail(const std::string& message) {
  std::fprintf(stderr, "explore_schedules: %s\n", message.c_str());
  return 1;
}

int report(const char* what, const testing::ExploreResult& result) {
  std::printf("%s: %zu schedule(s), %s, deepest run %zu decision(s)\n", what, result.schedules,
              result.exhaustive ? "exhaustive" : "not exhaustive", result.max_decisions);
  if (result.failure.has_value()) {
    std::printf("FAILURE after %zu passing schedule(s):\n  %s\n",
                result.failure->schedules_before, result.failure->message.c_str());
    return 1;
  }
  std::printf("all schedules agree with the canonical run\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec = "star-switch:4";
  std::string mode = "exhaustive";
  std::string schedule_text;
  std::size_t jobs = 3;
  bool inject_bug = false;
  testing::ExploreOptions explore_options;

  bool spec_seen = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const std::string& flag) -> std::string {
      return arg.substr(flag.size());
    };
    if (arg.rfind("--jobs=", 0) == 0) {
      auto parsed = parse::to_u64(value_of("--jobs="));
      if (!parsed.has_value() || *parsed == 0) return fail("bad " + arg);
      jobs = static_cast<std::size_t>(*parsed);
    } else if (arg.rfind("--mode=", 0) == 0) {
      mode = value_of("--mode=");
      if (mode != "exhaustive" && mode != "random") return fail("bad " + arg);
    } else if (arg.rfind("--schedules=", 0) == 0) {
      auto parsed = parse::to_u64(value_of("--schedules="));
      if (!parsed.has_value() || *parsed == 0) return fail("bad " + arg);
      explore_options.random_schedules = static_cast<std::size_t>(*parsed);
      explore_options.max_schedules = static_cast<std::size_t>(*parsed);
    } else if (arg.rfind("--seed=", 0) == 0) {
      auto parsed = parse::to_u64(value_of("--seed="));
      if (!parsed.has_value()) return fail("bad " + arg);
      explore_options.seed = *parsed;
    } else if (arg.rfind("--schedule=", 0) == 0) {
      schedule_text = value_of("--schedule=");
    } else if (arg == "--inject-bug") {
      inject_bug = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return fail("unknown argument '" + arg + "'");
    } else if (!spec_seen) {
      spec = arg;
      spec_seen = true;
    } else {
      return fail("more than one scenario spec ('" + spec + "' and '" + arg + "')");
    }
  }

  auto scenario = api::ScenarioRegistry::builtin().make(spec);
  if (!scenario.ok()) return fail("bad scenario '" + spec + "': " + scenario.error().to_string());

  // The reference: the canonical (FIFO) schedule's digest. Every other
  // schedule must land on exactly this MapResult.
  const auto map_digest = [&](testing::VirtualScheduler& scheduler) -> Result<std::string> {
    simnet::Network net(simnet::Scenario(scenario.value()).topology);
    api::Session session(net, scenario.value());
    session.options().mapper.probe_jobs = static_cast<int>(jobs);
    session.options().mapper.virtual_scheduler = &scheduler;
    if (auto status = session.map(); !status.ok()) return status.error();
    return session.map_result().identity_digest();
  };
  testing::FifoScheduler fifo;
  auto baseline = map_digest(fifo);
  if (!baseline.ok()) return fail("canonical map failed: " + baseline.error().to_string());

  testing::ExploreScenario run = [&](testing::VirtualScheduler& scheduler) -> Status {
    auto digest = map_digest(scheduler);
    if (!digest.ok()) return digest.error();
    if (digest.value() != baseline.value()) {
      return make_error(ErrorCode::internal,
                        "MapResult digest diverged from the canonical schedule");
    }
    return Status();
  };

  if (inject_bug) {
    // Demo: a 4-experiment batch dispatched through run_batch_virtual
    // with the planted "results indexed by completion order" bug. The
    // explorer finds a failing interleaving and shrinks it.
    const auto hosts = scenario.value().topology.hosts();
    if (hosts.size() < 4) return fail("--inject-bug needs a scenario with >= 4 hosts");
    std::vector<std::string> names;
    for (const simnet::NodeId id : hosts) {
      const simnet::Node& node = scenario.value().topology.node(id);
      names.push_back(node.fqdn.empty() ? node.name : node.fqdn);
    }
    // `names` dies with this block; the scenario runs much later.
    run = [&, names](testing::VirtualScheduler& scheduler) -> Status {
      simnet::Network net(simnet::Scenario(scenario.value()).topology);
      env::MapperOptions mapper_options;
      env::SimProbeEngine engine(net, mapper_options);
      const std::vector<env::ProbeExperiment> experiments = {
          env::ProbeExperiment::single(names[0], names[1]),
          env::ProbeExperiment::single(names[2], names[3]),
          env::ProbeExperiment::single(names[0], names[2]),
          env::ProbeExperiment::single(names[1], names[3]),
      };
      env::VirtualBatchOptions batch_options;
      batch_options.inject_completion_order_bug = true;
      const auto outcomes =
          env::run_batch_virtual(engine, experiments, jobs, scheduler, batch_options);

      simnet::Network reference_net(simnet::Scenario(scenario.value()).topology);
      env::SimProbeEngine reference(reference_net, mapper_options);
      const auto canonical = reference.run_batch(experiments, 1);
      for (std::size_t i = 0; i < canonical.size(); ++i) {
        const bool same = outcomes[i].results.size() == canonical[i].results.size() &&
                          outcomes[i].results.front().ok() == canonical[i].results.front().ok() &&
                          (!canonical[i].results.front().ok() ||
                           outcomes[i].results.front().value() == canonical[i].results.front().value());
        if (!same) {
          return make_error(ErrorCode::internal,
                            "outcome " + std::to_string(i) + " is not in canonical order");
        }
      }
      return scheduler.health();
    };
  }

  if (!schedule_text.empty()) {
    auto schedule = testing::parse_schedule(schedule_text);
    if (!schedule.ok()) return fail(schedule.error().to_string());
    testing::Explorer explorer(explore_options);
    return report("replay", explorer.replay(run, schedule.value()));
  }

  testing::Explorer explorer(explore_options);
  const auto result =
      mode == "random" ? explorer.explore_random(run) : explorer.explore_exhaustive(run);
  const int status = report(mode.c_str(), result);
  // --inject-bug is a demo of CATCHING a bug: finding (and shrinking)
  // the failure is the success condition.
  if (inject_bug) {
    if (status == 0) return fail("injected bug was not caught");
    std::printf("injected completion-order bug caught and shrunk as intended\n");
    return 0;
  }
  return status;
}
