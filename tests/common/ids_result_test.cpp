#include <gtest/gtest.h>

#include <unordered_set>

#include "common/ids.hpp"
#include "common/result.hpp"

namespace envnws {
namespace {

struct TestTag {};
using TestId = Id<TestTag>;

TEST(Ids, DefaultIsInvalid) {
  TestId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, TestId::invalid());
}

TEST(Ids, ValueRoundTrip) {
  TestId id(7);
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 7u);
  EXPECT_EQ(id.index(), 7u);
}

TEST(Ids, OrderingAndHash) {
  EXPECT_LT(TestId(1), TestId(2));
  EXPECT_GT(TestId(3), TestId(2));
  std::unordered_set<TestId> set;
  set.insert(TestId(1));
  set.insert(TestId(1));
  set.insert(TestId(2));
  EXPECT_EQ(set.size(), 2u);
}

TEST(Result, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(result.value_or(0), 42);
}

TEST(Result, HoldsError) {
  Result<int> result = make_error(ErrorCode::not_found, "missing");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::not_found);
  EXPECT_EQ(result.value_or(-1), -1);
  EXPECT_EQ(result.error().to_string(), "not_found: missing");
}

TEST(Result, StatusDefaultsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  Status failed = make_error(ErrorCode::timeout, "too slow");
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.error().code, ErrorCode::timeout);
}

TEST(Result, ErrorCodeNames) {
  EXPECT_STREQ(to_string(ErrorCode::blocked_by_firewall), "blocked_by_firewall");
  EXPECT_STREQ(to_string(ErrorCode::unreachable), "unreachable");
}

}  // namespace
}  // namespace envnws
