#include "common/table.hpp"

#include <gtest/gtest.h>

#include "common/strings.hpp"

namespace envnws {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table table({"name", "value"});
  table.add_row({"a", "1"});
  table.add_row({"longer", "22"});
  const std::string out = table.to_string();
  EXPECT_TRUE(strings::contains(out, "name"));
  EXPECT_TRUE(strings::contains(out, "longer"));
  // Separator line present.
  EXPECT_TRUE(strings::contains(out, "----"));
  EXPECT_EQ(table.rows(), 2u);
}

TEST(Table, NumericRowFormatsWithPrecision) {
  Table table({"label", "x", "y"});
  table.add_numeric_row("row", {1.23456, 2.0}, 3);
  const std::string csv = table.to_csv();
  EXPECT_TRUE(strings::contains(csv, "1.235"));
  EXPECT_TRUE(strings::contains(csv, "2.000"));
}

TEST(Table, CsvHasHeaderAndRows) {
  Table table({"a", "b"});
  table.add_row({"1", "2"});
  EXPECT_EQ(table.to_csv(), "a,b\n1,2\n");
}

}  // namespace
}  // namespace envnws
