#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "testing/virtual_scheduler.hpp"

namespace envnws {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(1);
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ParallelForRunsEveryTaskEvenWhenOneThrows) {
  // The regression this pins: parallel_for used to rethrow from the
  // FIRST failing future while later tasks still referenced `fn` — a
  // dangling reference once the exception unwound the caller. Every
  // task must complete before the exception propagates.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  try {
    pool.parallel_for(64, [&hits](std::size_t i) {
      hits[i].fetch_add(1);
      if (i == 3) throw std::runtime_error("task 3 failed");
    });
    FAIL() << "the task exception must propagate";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "task 3 failed");
  }
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesTheFirstExceptionInSubmissionOrder) {
  // Deterministic propagation: not whichever worker loses the race, but
  // the failure of the LOWEST index — the same exception a sequential
  // run would have surfaced first.
  ThreadPool pool(4);
  for (int round = 0; round < 8; ++round) {
    try {
      pool.parallel_for(32, [](std::size_t i) {
        if (i == 5 || i == 20 || i == 31) {
          throw std::runtime_error("task " + std::to_string(i));
        }
      });
      FAIL() << "the task exceptions must propagate";
    } catch (const std::runtime_error& error) {
      EXPECT_STREQ(error.what(), "task 5");
    }
  }
}

TEST(ThreadPool, PoolStaysUsableAfterAThrowingParallelFor) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(4, [](std::size_t) { throw std::runtime_error("boom"); }),
               std::runtime_error);
  std::atomic<int> counter{0};
  pool.parallel_for(10, [&counter](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolVirtual, RunsTasksInSchedulerPickedOrder) {
  // sched:2,1 over 3 queued tasks: pick task #2 first, then (of the
  // remaining {0, 1}) index 1 = task #1, then the singleton task #0.
  testing::ReplayScheduler scheduler({2, 1});
  ThreadPool pool(2, &scheduler);
  EXPECT_TRUE(pool.virtual_mode());
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(pool.submit([&order, i] { order.push_back(i); }));
  }
  pool.drain();
  for (auto& future : futures) future.get();
  EXPECT_EQ(order, (std::vector<int>{2, 1, 0}));
  EXPECT_TRUE(scheduler.health().ok());
  EXPECT_EQ(scheduler.schedule_string(), "sched:2,1");
}

TEST(ThreadPoolVirtual, ParallelForDrainsCooperatively) {
  testing::FifoScheduler scheduler;
  ThreadPool pool(4, &scheduler);
  std::vector<int> hits(20, 0);
  pool.parallel_for(20, [&hits](std::size_t i) { ++hits[i]; });  // no OS threads: plain ints
  for (const int hit : hits) EXPECT_EQ(hit, 1);
}

TEST(ThreadPoolVirtual, DestructorRunsUndrainedTasks) {
  testing::FifoScheduler scheduler;
  int runs = 0;
  {
    ThreadPool pool(2, &scheduler);
    for (int i = 0; i < 3; ++i) pool.submit([&runs] { ++runs; });
  }
  EXPECT_EQ(runs, 3);
}

TEST(ThreadPoolVirtual, NullSchedulerDegradesToARealPool) {
  ThreadPool pool(2, nullptr);
  EXPECT_FALSE(pool.virtual_mode());
  auto future = pool.submit([] { return 7; });
  EXPECT_EQ(future.get(), 7);  // real workers: no drain() needed
}

}  // namespace
}  // namespace envnws
