#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace envnws {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(1);
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

}  // namespace
}  // namespace envnws
