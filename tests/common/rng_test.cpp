#include "common/rng.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace envnws {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, DoublesInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, UniformRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.0, 3.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Rng, NormalHasApproximatelyUnitMoments) {
  Rng rng(17);
  stats::Accumulator acc;
  for (int i = 0; i < 20000; ++i) acc.add(rng.normal());
  EXPECT_NEAR(acc.mean(), 0.0, 0.03);
  EXPECT_NEAR(acc.stddev(), 1.0, 0.03);
}

TEST(Rng, NormalWithParameters) {
  Rng rng(19);
  stats::Accumulator acc;
  for (int i = 0; i < 20000; ++i) acc.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(acc.mean(), 10.0, 0.1);
  EXPECT_NEAR(acc.stddev(), 2.0, 0.1);
}

TEST(Rng, ForkedGeneratorIsIndependentButDeterministic) {
  Rng parent1(42);
  Rng parent2(42);
  Rng child1 = parent1.fork();
  Rng child2 = parent2.fork();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(child1.next_u64(), child2.next_u64());
  // Parent stream continues deterministically after the fork too.
  for (int i = 0; i < 50; ++i) EXPECT_EQ(parent1.next_u64(), parent2.next_u64());
}

}  // namespace
}  // namespace envnws
