#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace envnws::stats {
namespace {

TEST(Stats, MeanOfEmptyIsZero) { EXPECT_DOUBLE_EQ(mean({}), 0.0); }

TEST(Stats, MeanBasic) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(sum(xs), 10.0);
}

TEST(Stats, VarianceUsesSampleConvention) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(variance(xs), 4.571428571, 1e-9);
  EXPECT_NEAR(stddev(xs), 2.138089935, 1e-9);
}

TEST(Stats, VarianceOfSingletonIsZero) {
  const std::vector<double> xs{42.0};
  EXPECT_DOUBLE_EQ(variance(xs), 0.0);
}

TEST(Stats, MedianOddAndEven) {
  const std::vector<double> odd{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median(odd), 3.0);
  const std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs{3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min(xs), -1.0);
  EXPECT_DOUBLE_EQ(max(xs), 7.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
}

TEST(Stats, TrimmedMeanDropsOutliers) {
  const std::vector<double> xs{1.0, 10.0, 10.0, 10.0, 10.0, 10.0, 10.0, 10.0, 10.0, 1000.0};
  EXPECT_DOUBLE_EQ(trimmed_mean(xs, 0.1), 10.0);
}

TEST(Stats, TrimmedMeanFallsBackToMedianWhenOvertrimmed) {
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_DOUBLE_EQ(trimmed_mean(xs, 0.49), median(xs));
}

TEST(Stats, ErrorsBetweenSeries) {
  const std::vector<double> predicted{1.0, 2.0, 3.0};
  const std::vector<double> actual{1.0, 4.0, 3.0};
  EXPECT_NEAR(mean_absolute_error(predicted, actual), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(rmse(predicted, actual), std::sqrt(4.0 / 3.0), 1e-12);
}

TEST(Stats, AccumulatorMatchesBatch) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  Accumulator acc;
  for (double x : xs) acc.add(x);
  EXPECT_EQ(acc.count(), xs.size());
  EXPECT_NEAR(acc.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(acc.variance(), variance(xs), 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(Stats, AccumulatorEmpty) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

}  // namespace
}  // namespace envnws::stats
