// Guarded numeric parsing: the one set of helpers every text-to-number
// conversion routes through (probe traces, map cache entries, GridML
// properties, deploy configs, fault specs).
#include <gtest/gtest.h>

#include "common/parse.hpp"

namespace envnws::parse {
namespace {

TEST(Parse, DoubleAcceptsFullNumericTokensOnly) {
  EXPECT_DOUBLE_EQ(to_double("1.5").value(), 1.5);
  EXPECT_DOUBLE_EQ(to_double("-3e2").value(), -300.0);
  EXPECT_DOUBLE_EQ(to_double("0").value(), 0.0);
  EXPECT_FALSE(to_double("").has_value());
  EXPECT_FALSE(to_double("fast").has_value());
  EXPECT_FALSE(to_double("1.5x").has_value());     // trailing junk
  EXPECT_FALSE(to_double("1.5 2").has_value());    // embedded junk
  EXPECT_FALSE(to_double("1e999").has_value());    // out of range
  EXPECT_FALSE(to_double(" ").has_value());
  // std::stod counts skipped whitespace as consumed; the helpers must
  // not let that satisfy the full-token rule.
  EXPECT_FALSE(to_double(" 1.5").has_value());
  EXPECT_DOUBLE_EQ(to_double("+2.5").value(), 2.5);  // explicit sign is part of the token
}

TEST(Parse, I64RejectsJunkAndOverflow) {
  EXPECT_EQ(to_i64("-42").value(), -42);
  EXPECT_EQ(to_i64("9223372036854775807").value(), 9223372036854775807LL);
  EXPECT_FALSE(to_i64("9223372036854775808").has_value());  // INT64_MAX + 1
  EXPECT_FALSE(to_i64("12abc").has_value());
  EXPECT_FALSE(to_i64("").has_value());
  EXPECT_FALSE(to_i64(" 5").has_value());
}

TEST(Parse, U64RejectsNegativesInsteadOfWrapping) {
  EXPECT_EQ(to_u64("0").value(), 0u);
  EXPECT_EQ(to_u64("18446744073709551615").value(), 18446744073709551615ull);
  // std::stoull would happily return 2^64-1 for "-1".
  EXPECT_FALSE(to_u64("-1").has_value());
  EXPECT_FALSE(to_u64("18446744073709551616").has_value());  // UINT64_MAX + 1
  EXPECT_FALSE(to_u64("99999999999999999999999").has_value());
  EXPECT_FALSE(to_u64("huge").has_value());
  EXPECT_FALSE(to_u64("3 ").has_value());
  EXPECT_FALSE(to_u64(" 3").has_value());
}

}  // namespace
}  // namespace envnws::parse
