#include "common/strings.hpp"

#include <gtest/gtest.h>

namespace envnws::strings {
namespace {

TEST(Strings, SplitKeepsEmptyPieces) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Strings, SplitNonemptyDropsEmptyPieces) {
  const auto parts = split_nonempty(".a..b.", '.');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
}

TEST(Strings, JoinRoundTrip) {
  EXPECT_EQ(join({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, PrefixSuffix) {
  EXPECT_TRUE(starts_with("canaria.ens-lyon.fr", "canaria"));
  EXPECT_FALSE(starts_with("a", "ab"));
  EXPECT_TRUE(ends_with("canaria.ens-lyon.fr", "ens-lyon.fr"));
  EXPECT_FALSE(ends_with("fr", "ens-lyon.fr"));
}

TEST(Strings, ToLowerAndContains) {
  EXPECT_EQ(to_lower("ENS-Lyon.FR"), "ens-lyon.fr");
  EXPECT_TRUE(contains("the-doors.ens-lyon.fr", "doors"));
  EXPECT_FALSE(contains("abc", "xyz"));
}

TEST(Strings, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(10.0, 0), "10");
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("abcdef", 3), "abc");
}

}  // namespace
}  // namespace envnws::strings
