#include "gridml/xml.hpp"

#include <gtest/gtest.h>

namespace envnws::gridml {
namespace {

TEST(Xml, BuildAndSerialize) {
  XmlElement root("GRID");
  XmlElement site("SITE");
  site.set_attribute("domain", "ens-lyon.fr");
  root.add_child(std::move(site));
  const std::string text = to_document_string(root);
  EXPECT_NE(text.find("<?xml version=\"1.0\"?>"), std::string::npos);
  EXPECT_NE(text.find("<GRID>"), std::string::npos);
  EXPECT_NE(text.find("<SITE domain=\"ens-lyon.fr\" />"), std::string::npos);
}

TEST(Xml, ParseSimpleDocument) {
  const auto root = parse_xml(R"(<?xml version="1.0"?>
<GRID>
  <SITE domain="ens-lyon.fr">
    <MACHINE><LABEL ip="140.77.13.229" name="canaria.ens-lyon.fr" /></MACHINE>
  </SITE>
</GRID>)");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root.value().name(), "GRID");
  const XmlElement* site = root.value().first_child("SITE");
  ASSERT_NE(site, nullptr);
  EXPECT_EQ(site->attribute("domain"), "ens-lyon.fr");
  const XmlElement* machine = site->first_child("MACHINE");
  ASSERT_NE(machine, nullptr);
  EXPECT_EQ(machine->first_child("LABEL")->attribute("name"), "canaria.ens-lyon.fr");
}

TEST(Xml, RoundTripPreservesStructure) {
  XmlElement root("A");
  XmlElement b("B");
  b.set_attribute("x", "1");
  b.add_child(XmlElement("C"));
  root.add_child(std::move(b));
  root.add_child(XmlElement("B"));
  const auto reparsed = parse_xml(root.to_string());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.value().to_string(), root.to_string());
}

TEST(Xml, EscapesAttributeValues) {
  XmlElement root("X");
  root.set_attribute("v", R"(a<b&"c'>)");
  const auto reparsed = parse_xml(root.to_string());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.value().attribute("v"), R"(a<b&"c'>)");
}

TEST(Xml, CommentsAndDoctypeTolerated) {
  const auto root = parse_xml(R"(<?xml version="1.0"?>
<!DOCTYPE GRID SYSTEM "gridml.dtd">
<!-- header comment -->
<GRID>
  <!-- inner comment -->
  <SITE domain="x" />
</GRID>
<!-- trailing comment -->)");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root.value().children().size(), 1u);
}

TEST(Xml, SingleQuotedAttributes) {
  const auto root = parse_xml("<A v='hello' />");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root.value().attribute("v"), "hello");
}

TEST(Xml, ErrorsAreReported) {
  EXPECT_FALSE(parse_xml("").ok());
  EXPECT_FALSE(parse_xml("<A><B></A>").ok());      // mismatched end tag
  EXPECT_FALSE(parse_xml("<A>").ok());             // missing end tag
  EXPECT_FALSE(parse_xml("<A v=1 />").ok());       // unquoted attribute
  EXPECT_FALSE(parse_xml("<A v=\"&bogus;\"/>").ok());  // unknown entity
  EXPECT_FALSE(parse_xml("<A /><B />").ok());      // two roots
}

TEST(Xml, AttributeUpdateKeepsOrder) {
  XmlElement el("E");
  el.set_attribute("a", "1");
  el.set_attribute("b", "2");
  el.set_attribute("a", "3");
  ASSERT_EQ(el.attributes().size(), 2u);
  EXPECT_EQ(el.attributes()[0].first, "a");
  EXPECT_EQ(el.attributes()[0].second, "3");
  EXPECT_TRUE(el.has_attribute("b"));
  EXPECT_FALSE(el.has_attribute("c"));
  EXPECT_EQ(el.attribute("missing", "dflt"), "dflt");
}

TEST(Xml, ChildrenNamedFiltersCorrectly) {
  XmlElement root("R");
  root.add_child(XmlElement("A"));
  root.add_child(XmlElement("B"));
  root.add_child(XmlElement("A"));
  EXPECT_EQ(root.children_named("A").size(), 2u);
  EXPECT_EQ(root.children_named("B").size(), 1u);
  EXPECT_EQ(root.children_named("C").size(), 0u);
}

}  // namespace
}  // namespace envnws::gridml
