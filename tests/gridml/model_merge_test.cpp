#include <gtest/gtest.h>

#include "gridml/merge.hpp"
#include "gridml/model.hpp"

namespace envnws::gridml {
namespace {

/// The paper's §4.2.1.1 lookup listing, verbatim shape.
constexpr const char* kPaperLookup = R"(<?xml version="1.0"?>
<GRID>
<SITE domain="ens-lyon.fr">
<LABEL name="ENS-LYON-FR" />
<MACHINE>
<LABEL ip="140.77.13.229" name="canaria.ens-lyon.fr">
<ALIAS name="canaria" />
</LABEL>
</MACHINE>
<MACHINE>
<LABEL ip="140.77.13.82" name="moby.cri2000.ens-lyon.fr">
<ALIAS name="moby" />
</LABEL>
</MACHINE>
</SITE>
</GRID>)";

TEST(GridModel, ParsesPaperLookupListing) {
  const auto doc = GridDoc::parse(kPaperLookup);
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc.value().sites.size(), 1u);
  const Site& site = doc.value().sites.front();
  EXPECT_EQ(site.domain, "ens-lyon.fr");
  EXPECT_EQ(site.label, "ENS-LYON-FR");
  ASSERT_EQ(site.machines.size(), 2u);
  EXPECT_EQ(site.machines[0].name, "canaria.ens-lyon.fr");
  EXPECT_EQ(site.machines[0].ip, "140.77.13.229");
  ASSERT_EQ(site.machines[0].aliases.size(), 1u);
  EXPECT_EQ(site.machines[0].aliases[0], "canaria");
}

TEST(GridModel, ParsesPaperPropertyListing) {
  const auto doc = GridDoc::parse(R"(<GRID><SITE domain="ens-lyon.fr"><MACHINE>
<LABEL ip="140.77.13.92" name="pikaki.cri2000.ens-lyon.fr">
<ALIAS name="pikaki" />
</LABEL>
<PROPERTY name="CPU_clock" value="198.951" units="MHz" />
<PROPERTY name="CPU_model" value="Pentium Pro" />
<PROPERTY name="kflops" value="17607" />
</MACHINE></SITE></GRID>)");
  ASSERT_TRUE(doc.ok());
  const Machine& machine = doc.value().sites.front().machines.front();
  EXPECT_EQ(machine.property("CPU_model").value_or(""), "Pentium Pro");
  EXPECT_EQ(machine.property("kflops").value_or(""), "17607");
  EXPECT_FALSE(machine.property("missing").has_value());
  ASSERT_EQ(machine.properties.size(), 3u);
  EXPECT_EQ(machine.properties[0].units, "MHz");
}

TEST(GridModel, ParsesPaperSwitchedNetworkListing) {
  const auto doc = GridDoc::parse(R"(<GRID>
<NETWORK type="ENV_Switched">
<LABEL name="sci0" />
<PROPERTY name="ENV_base_BW" value="32.65" units="Mbps" />
<PROPERTY name="ENV_base_local_BW" value="32.29" units="Mbps" />
<MACHINE name="sci1.popc.private" />
<MACHINE name="sci2.popc.private" />
</NETWORK>
</GRID>)");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc.value().networks.size(), 1u);
  const NetworkNode& net = doc.value().networks.front();
  EXPECT_EQ(net.type, NetworkType::env_switched);
  EXPECT_EQ(net.label_name, "sci0");
  EXPECT_EQ(net.property("ENV_base_BW").value_or(""), "32.65");
  ASSERT_EQ(net.machine_names.size(), 2u);
  EXPECT_EQ(net.machine_names[0], "sci1.popc.private");
}

TEST(GridModel, NestedStructuralNetworks) {
  const auto doc = GridDoc::parse(R"(<GRID>
<NETWORK type="Structural">
<LABEL ip="192.168.254.1" name="192.168.254.1" />
<NETWORK type="Structural">
<LABEL ip="140.77.13.1" name="140.77.13.1" />
<MACHINE name="canaria.ens-lyon.fr" />
</NETWORK>
</NETWORK>
</GRID>)");
  ASSERT_TRUE(doc.ok());
  const NetworkNode& root = doc.value().networks.front();
  ASSERT_EQ(root.children.size(), 1u);
  EXPECT_EQ(root.children[0].label_ip, "140.77.13.1");
  const auto all = root.all_machine_names();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0], "canaria.ens-lyon.fr");
}

TEST(GridModel, RoundTripSerialization) {
  const auto doc = GridDoc::parse(kPaperLookup);
  ASSERT_TRUE(doc.ok());
  const auto again = GridDoc::parse(doc.value().to_string());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().to_string(), doc.value().to_string());
}

TEST(GridModel, FindMachineByNameOrAlias) {
  const auto doc = GridDoc::parse(kPaperLookup);
  ASSERT_TRUE(doc.ok());
  EXPECT_NE(doc.value().find_machine("canaria.ens-lyon.fr"), nullptr);
  EXPECT_NE(doc.value().find_machine("canaria"), nullptr);
  EXPECT_EQ(doc.value().find_machine("unknown"), nullptr);
  EXPECT_EQ(doc.value().machine_count(), 2u);
}

TEST(GridModel, UnknownNetworkTypeIsError) {
  const auto doc = GridDoc::parse(R"(<GRID><NETWORK type="Bogus" /></GRID>)");
  EXPECT_FALSE(doc.ok());
}

// --- merge (paper §4.3 "Firewalls") --------------------------------------

GridDoc public_side() {
  GridDoc doc;
  Site site;
  site.domain = "ens-lyon.fr";
  site.label = "ENS-LYON-FR";
  Machine myri;
  myri.name = "myri.ens-lyon.fr";
  myri.ip = "140.77.12.52";
  myri.aliases = {"myri"};
  site.machines.push_back(myri);
  doc.sites.push_back(site);
  return doc;
}

GridDoc private_side() {
  GridDoc doc;
  Site site;
  site.domain = "popc.private";
  site.label = "POPC-PRIVATE";
  Machine myri0;
  myri0.name = "myri0.popc.private";
  myri0.ip = "192.168.81.50";
  myri0.aliases = {"myri0"};
  site.machines.push_back(myri0);
  Machine sci1;
  sci1.name = "sci1.popc.private";
  sci1.ip = "192.168.81.11";
  site.machines.push_back(sci1);
  doc.sites.push_back(site);
  return doc;
}

TEST(GridMerge, PaperGatewayMergeCrossAliases) {
  const auto merged =
      merge({public_side(), private_side()}, {{"myri.ens-lyon.fr", "myri0.popc.private"}});
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value().sites.size(), 2u);
  // Looking the gateway up under either name finds a record carrying the
  // other name as alias — exactly the paper's merged listing.
  const Machine* via_public = merged.value().find_machine("myri.ens-lyon.fr");
  ASSERT_NE(via_public, nullptr);
  EXPECT_TRUE(via_public->answers_to("myri0.popc.private"));
  const Machine* via_private = merged.value().find_machine("myri0.popc.private");
  ASSERT_NE(via_private, nullptr);
  EXPECT_TRUE(via_private->answers_to("myri.ens-lyon.fr"));
  // Non-gateway machines untouched.
  const Machine* sci1 = merged.value().find_machine("sci1.popc.private");
  ASSERT_NE(sci1, nullptr);
  EXPECT_EQ(sci1->aliases.size(), 0u);
}

TEST(GridMerge, MergedLabel) {
  const auto merged = merge({public_side()}, {}, "Grid1");
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value().label, "Grid1");
}

TEST(GridMerge, RejectsSingletonAliasGroup) {
  EXPECT_FALSE(merge({public_side()}, {{"myri.ens-lyon.fr"}}).ok());
}

TEST(GridMerge, RejectsUnknownGateway) {
  EXPECT_FALSE(merge({public_side()}, {{"ghost.a", "ghost.b"}}).ok());
}

}  // namespace
}  // namespace envnws::gridml
