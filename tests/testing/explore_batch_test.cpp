// Schedule exploration of the batch executor and the mapping pipeline:
// exhaustive interleaving coverage of a star-switch batch at
// probe_jobs=3 (the ISSUE 7 acceptance scenario), the planted
// completion-order bug caught and shrunk to a tiny sched: reproducer,
// digest invariance of whole maps (sim engines, the committed golden
// socket trace, threaded multi-zone maps), and observer-event
// conservation across interleavings. Everything here is offline — no
// sockets, no live probes.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "api/envnws.hpp"
#include "env/batch_schedule.hpp"
#include "env/sim_probe_engine.hpp"
#include "testing/explorer.hpp"

namespace envnws::testing {
namespace {

namespace fs = std::filesystem;

const fs::path kTraceDir = fs::path(ENVNWS_TEST_DATA_DIR) / "traces";

simnet::Scenario make_scenario(const std::string& spec) {
  auto made = api::ScenarioRegistry::builtin().make(spec);
  EXPECT_TRUE(made.ok()) << spec;
  return std::move(made.value());
}

std::vector<std::string> host_names(const simnet::Scenario& scenario, std::size_t count) {
  std::vector<std::string> names;
  for (const simnet::NodeId id : scenario.topology.hosts()) {
    if (names.size() == count) break;
    const simnet::Node& node = scenario.topology.node(id);
    names.push_back(node.fqdn.empty() ? node.name : node.fqdn);
  }
  EXPECT_EQ(names.size(), count);
  return names;
}

/// The acceptance batch: four experiments over four star-switch members
/// with a mix of disjoint pairs (may overlap) and shared endpoints
/// (must serialize), plus distinct result SHAPES (single vs concurrent)
/// so a misplaced outcome is structurally visible, not just a value
/// coincidence away from passing.
std::vector<env::ProbeExperiment> acceptance_batch(const std::vector<std::string>& h) {
  return {
      env::ProbeExperiment::single(h[0], h[1]),
      env::ProbeExperiment::concurrent(
          {env::BandwidthRequest{h[2], h[3]}, env::BandwidthRequest{h[3], h[2]}}),
      env::ProbeExperiment::single(h[0], h[2]),
      env::ProbeExperiment::concurrent(
          {env::BandwidthRequest{h[1], h[3]}, env::BandwidthRequest{h[3], h[1]}}),
  };
}

Status outcomes_match(const std::vector<env::ProbeExperimentOutcome>& got,
                      const std::vector<env::ProbeExperimentOutcome>& want) {
  if (got.size() != want.size()) {
    return make_error(ErrorCode::internal, "outcome count diverged");
  }
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (got[i].results.size() != want[i].results.size()) {
      return make_error(ErrorCode::internal,
                        "outcome " + std::to_string(i) + " has the wrong result shape");
    }
    if (got[i].duration_s != want[i].duration_s) {
      return make_error(ErrorCode::internal,
                        "outcome " + std::to_string(i) + " duration diverged");
    }
    for (std::size_t r = 0; r < got[i].results.size(); ++r) {
      if (got[i].results[r].ok() != want[i].results[r].ok() ||
          (got[i].results[r].ok() && got[i].results[r].value() != want[i].results[r].value())) {
        return make_error(ErrorCode::internal,
                          "outcome " + std::to_string(i) + " result " + std::to_string(r) +
                              " is not the canonical measurement");
      }
    }
  }
  return Status();
}

// --- the ISSUE 7 acceptance criteria ----------------------------------------

TEST(ExploreBatch, ExhaustiveStarSwitchBatchAtThreeJobsIsScheduleInvariant) {
  const auto scenario = make_scenario("star-switch:6");
  const auto hosts = host_names(scenario, 4);
  const auto experiments = acceptance_batch(hosts);

  // The canonical (sequential) outcomes every schedule must reproduce.
  env::MapperOptions mapper_options;
  simnet::Network canonical_net(simnet::Scenario(scenario).topology);
  env::SimProbeEngine canonical_engine(canonical_net, mapper_options);
  const auto canonical = canonical_engine.run_batch(experiments, 1);
  ASSERT_EQ(canonical.size(), experiments.size());

  const ExploreScenario run = [&](VirtualScheduler& scheduler) {
    simnet::Network net(simnet::Scenario(scenario).topology);
    env::SimProbeEngine engine(net, mapper_options);
    const auto outcomes = env::run_batch_virtual(engine, experiments, 3, scheduler);
    if (auto status = outcomes_match(outcomes, canonical); !status.ok()) return status;
    return scheduler.health();
  };

  Explorer explorer;
  const auto result = explorer.explore_exhaustive(run);
  EXPECT_TRUE(result.ok()) << result.failure->message;
  // ALL interleavings of the batch, not a sample — and the batch
  // genuinely branches (starts may overtake, completions may reorder).
  EXPECT_TRUE(result.exhaustive);
  EXPECT_GT(result.schedules, 25u) << "the acceptance batch should branch substantially";
}

TEST(ExploreBatch, InjectedCompletionOrderBugIsCaughtAndShrunk) {
  const auto scenario = make_scenario("star-switch:6");
  const auto hosts = host_names(scenario, 4);
  const auto experiments = acceptance_batch(hosts);

  env::MapperOptions mapper_options;
  simnet::Network canonical_net(simnet::Scenario(scenario).topology);
  env::SimProbeEngine canonical_engine(canonical_net, mapper_options);
  const auto canonical = canonical_engine.run_batch(experiments, 1);

  env::VirtualBatchOptions bug;
  bug.inject_completion_order_bug = true;
  const ExploreScenario run = [&](VirtualScheduler& scheduler) {
    simnet::Network net(simnet::Scenario(scenario).topology);
    env::SimProbeEngine engine(net, mapper_options);
    const auto outcomes = env::run_batch_virtual(engine, experiments, 3, scheduler, bug);
    if (auto status = outcomes_match(outcomes, canonical); !status.ok()) return status;
    return scheduler.health();
  };

  Explorer explorer;
  const auto result = explorer.explore_exhaustive(run);
  ASSERT_FALSE(result.ok()) << "the planted bug must be caught";
  // The acceptance bar: a <= 5-step reproducer, printed as a sched:
  // string in the failure message.
  EXPECT_LE(result.failure->schedule.size(), 5u) << result.failure->message;
  EXPECT_NE(result.failure->message.find("sched:"), std::string::npos)
      << result.failure->message;
  EXPECT_NE(result.failure->message.find("outcome"), std::string::npos)
      << result.failure->message;

  // The printed schedule really reproduces the failure on a fresh run.
  ASSERT_FALSE(explorer.replay(run, result.failure->schedule).ok());
  // ...and the canonical schedule does NOT fail (the bug is an ordering
  // bug: it needs a completion overtaking to bite).
  EXPECT_TRUE(explorer.replay(run, {}).ok());
}

// --- whole-map digest invariance --------------------------------------------

/// One full map of `scenario` with the scheduler at every seam; returns
/// the identity digest (or the mapping error).
Result<std::string> map_digest(const simnet::Scenario& scenario, VirtualScheduler& scheduler,
                               int probe_jobs, int map_threads = 1) {
  simnet::Network net(simnet::Scenario(scenario).topology);
  api::Session session(net, scenario);
  session.options().mapper.probe_jobs = probe_jobs;
  session.options().mapper.map_threads = map_threads;
  session.options().mapper.virtual_scheduler = &scheduler;
  if (auto status = session.map(); !status.ok()) return status.error();
  return session.map_result().identity_digest();
}

TEST(ExploreBatch, ExhaustiveStarSwitchMapDigestIsScheduleInvariant) {
  const auto scenario = make_scenario("star-switch:4");
  FifoScheduler fifo;
  auto baseline = map_digest(scenario, fifo, 3);
  ASSERT_TRUE(baseline.ok()) << baseline.error().to_string();

  const ExploreScenario run = [&](VirtualScheduler& scheduler) {
    auto digest = map_digest(scenario, scheduler, 3);
    if (!digest.ok()) return Status(digest.error());
    if (digest.value() != baseline.value()) {
      return Status(make_error(ErrorCode::internal, "identity digest diverged"));
    }
    return scheduler.health();
  };

  Explorer explorer;
  const auto result = explorer.explore_exhaustive(run);
  EXPECT_TRUE(result.ok()) << result.failure->message;
  EXPECT_TRUE(result.exhaustive);
}

TEST(ExploreBatch, SampledModeMapDigestIsScheduleInvariant) {
  // Hierarchical sampled interrogation adds new batch decision points
  // (representative clique, escalation probes, sampled 2c pairs); every
  // interleaving of them must still produce the seed-determined digest.
  const auto scenario = make_scenario("star-switch:8");
  const auto sampled_digest = [&](VirtualScheduler* scheduler) -> Result<std::string> {
    simnet::Network net(simnet::Scenario(scenario).topology);
    api::Session session(net, scenario);
    session.options().mapper.probe_jobs = 3;
    session.options().mapper.max_pairwise = 3;
    session.options().mapper.sample_seed = 42;
    session.options().mapper.virtual_scheduler = scheduler;
    if (auto status = session.map(); !status.ok()) return status.error();
    return session.map_result().identity_digest();
  };

  auto baseline = sampled_digest(nullptr);
  ASSERT_TRUE(baseline.ok()) << baseline.error().to_string();
  // Sampling really engaged (7 members -> C(7,2)=21 pairs > budget 3).
  {
    simnet::Network net(simnet::Scenario(scenario).topology);
    api::Session session(net, scenario);
    session.options().mapper.max_pairwise = 3;
    session.options().mapper.sample_seed = 42;
    ASSERT_TRUE(session.map().ok());
    ASSERT_GT(session.map_result().sampling.sampled_groups, 0u);
  }

  const ExploreScenario run = [&](VirtualScheduler& scheduler) {
    auto digest = sampled_digest(&scheduler);
    if (!digest.ok()) return Status(digest.error());
    if (digest.value() != baseline.value()) {
      return Status(make_error(ErrorCode::internal, "sampled-mode digest diverged"));
    }
    return scheduler.health();
  };

  ExploreOptions options;
  options.max_schedules = 400;  // bound the DFS; the seams branch a lot
  Explorer explorer(options);
  const auto result = explorer.explore_exhaustive(run);
  EXPECT_TRUE(result.ok()) << result.failure->message;
  EXPECT_GT(result.schedules, 1u) << "sampled batches must actually branch";
}

TEST(ExploreBatch, ThreadedMultiZoneMapIsScheduleInvariant) {
  // map_threads=2 routes the per-zone tasks through the cooperative
  // ThreadPool ("pool" decisions) on top of the batch decisions.
  const auto scenario = make_scenario("multi-firewall:2x2");
  FifoScheduler fifo;
  auto baseline = map_digest(scenario, fifo, 2, 2);
  ASSERT_TRUE(baseline.ok()) << baseline.error().to_string();

  const ExploreScenario run = [&](VirtualScheduler& scheduler) {
    auto digest = map_digest(scenario, scheduler, 2, 2);
    if (!digest.ok()) return Status(digest.error());
    if (digest.value() != baseline.value()) {
      return Status(make_error(ErrorCode::internal, "identity digest diverged"));
    }
    return scheduler.health();
  };

  ExploreOptions options;
  options.max_schedules = 200;  // cap the DFS; coverage need not be total here
  Explorer explorer(options);
  const auto result = explorer.explore_exhaustive(run);
  EXPECT_TRUE(result.ok()) << result.failure->message;
  EXPECT_GE(result.schedules, 2u) << "the zone pool must actually branch";
}

TEST(ExploreBatch, SeededRandomSweepKeepsRegistryFamilyDigestsInvariant) {
  // The CI sweep: ENVNWS_EXPLORE_SCHEDULES random schedules (default
  // 25) from seed ENVNWS_EXPLORE_SEED (default 1, logged below so a CI
  // failure names the seed — though the sched: string in the failure
  // message is already the replayable artifact).
  ExploreOptions options;
  if (const char* env = std::getenv("ENVNWS_EXPLORE_SCHEDULES")) {
    options.random_schedules = static_cast<std::size_t>(std::max(1, std::atoi(env)));
  } else {
    options.random_schedules = 25;
  }
  if (const char* env = std::getenv("ENVNWS_EXPLORE_SEED")) {
    options.seed = static_cast<std::uint64_t>(std::strtoull(env, nullptr, 10));
  }
  std::printf("[explore] seed=%llu schedules=%zu\n",
              static_cast<unsigned long long>(options.seed), options.random_schedules);

  for (const char* spec : {"dumbbell:3x3@100/10", "vlan:4x2"}) {
    SCOPED_TRACE(spec);
    const auto scenario = make_scenario(spec);
    FifoScheduler fifo;
    auto baseline = map_digest(scenario, fifo, 4);
    ASSERT_TRUE(baseline.ok()) << baseline.error().to_string();

    const ExploreScenario run = [&](VirtualScheduler& scheduler) {
      auto digest = map_digest(scenario, scheduler, 4);
      if (!digest.ok()) return Status(digest.error());
      if (digest.value() != baseline.value()) {
        return Status(make_error(ErrorCode::internal, "identity digest diverged"));
      }
      return scheduler.health();
    };

    Explorer explorer(options);
    const auto result = explorer.explore_random(run);
    EXPECT_TRUE(result.ok()) << result.failure->message;
    EXPECT_EQ(result.schedules, options.random_schedules);
  }
}

TEST(ExploreBatch, GoldenSocketTraceReplaysIdenticallyUnderRandomSchedules) {
  // The committed socket trace replayed at probe_jobs=8 while random
  // schedulers permute the dispatch: the engine must still see the
  // canonical experiment stream (or strict replay faults the map), and
  // the digest must match the sequential replay. Zero live probes.
  const fs::path path = kTraceDir / "socket-star-6.envtrace";
  ASSERT_TRUE(fs::exists(path)) << path;
  const auto scenario = make_scenario("star-switch:6");

  const auto replay_digest = [&](VirtualScheduler* scheduler) -> Result<std::string> {
    simnet::Network net(simnet::Scenario(scenario).topology);
    api::Session session(net, scenario);
    session.options().mapper.probe_bytes = 64 * 1024;
    session.options().mapper.stabilization_gap_s = 0.0;
    session.options().mapper.probe_jobs = 8;
    session.options().mapper.virtual_scheduler = scheduler;
    if (auto status = session.set_probe_engine_spec("replay:" + path.string()); !status.ok()) {
      return status.error();
    }
    if (auto status = session.map(); !status.ok()) return status.error();
    const auto& purposes = net.stats().by_purpose;
    EXPECT_EQ(purposes.find("env-probe"), purposes.end());
    return session.map_result().identity_digest();
  };

  auto baseline = replay_digest(nullptr);
  ASSERT_TRUE(baseline.ok()) << baseline.error().to_string();

  const ExploreScenario run = [&](VirtualScheduler& scheduler) {
    auto digest = replay_digest(&scheduler);
    if (!digest.ok()) return Status(digest.error());
    if (digest.value() != baseline.value()) {
      return Status(make_error(ErrorCode::internal, "replay digest diverged"));
    }
    return scheduler.health();
  };

  ExploreOptions options;
  options.random_schedules = 10;
  Explorer explorer(options);
  const auto result = explorer.explore_random(run);
  EXPECT_TRUE(result.ok()) << result.failure->message;
}

// --- observer-event conservation --------------------------------------------

class EventCounter final : public api::Observer {
 public:
  void on_event(const api::Event& event) override {
    sequences_.push_back(event.sequence);
    ++counts_[event.kind];
  }
  [[nodiscard]] const std::map<api::Event::Kind, std::size_t>& counts() const { return counts_; }
  [[nodiscard]] bool gap_free() const {
    for (std::size_t i = 0; i < sequences_.size(); ++i) {
      if (sequences_[i] != i) return false;
    }
    return true;
  }

 private:
  std::vector<std::uint64_t> sequences_;
  std::map<api::Event::Kind, std::size_t> counts_;
};

TEST(ExploreBatch, ObserverEventsAreNeverLostOrDuplicatedAcrossSchedules) {
  const auto scenario = make_scenario("star-switch:4");

  const auto events_of = [&](VirtualScheduler& scheduler) {
    EventCounter counter;
    simnet::Network net(simnet::Scenario(scenario).topology);
    api::Session session(net, scenario);
    session.options().mapper.probe_jobs = 3;
    session.options().mapper.virtual_scheduler = &scheduler;
    session.set_observer(&counter);
    EXPECT_TRUE(session.map().ok());
    EXPECT_TRUE(counter.gap_free());
    return counter.counts();
  };

  FifoScheduler fifo;
  const auto baseline = events_of(fifo);
  ASSERT_FALSE(baseline.empty());

  const ExploreScenario run = [&](VirtualScheduler& scheduler) {
    if (events_of(scheduler) != baseline) {
      return Status(
          make_error(ErrorCode::internal, "observer event counts diverged across schedules"));
    }
    return scheduler.health();
  };

  Explorer explorer;
  const auto result = explorer.explore_exhaustive(run);
  EXPECT_TRUE(result.ok()) << result.failure->message;
  EXPECT_TRUE(result.exhaustive);
}

}  // namespace
}  // namespace envnws::testing
