// Schedule exploration of the monitor daemon: the cycle batch dispatch
// and the store-fold order are VirtualScheduler decisions, so the
// explorer can permute them and assert the PR 6 determinism contract —
// bit-identical snapshot digests, identical drift decision logs and
// identical drift/remap events under EVERY explored interleaving. The
// satellite: drift re-map triggers are identical whether 1 or 8 query
// clients hammer SERIES/QUERY while the daemon measures, with the map
// stage replayed from the committed socket-star-6.envtrace (zero live
// probes beyond the loopback query sockets).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/envnws.hpp"
#include "monitor/daemon.hpp"
#include "monitor/query_server.hpp"
#include "testing/explorer.hpp"

namespace envnws::testing {
namespace {

namespace fs = std::filesystem;

const fs::path kTraceDir = fs::path(ENVNWS_TEST_DATA_DIR) / "traces";

bool no_net() {
  const char* flag = std::getenv("ENVNWS_TEST_NO_NET");
  return flag != nullptr && std::string(flag) == "1";
}

#define SKIP_WITHOUT_NET()                                    \
  do {                                                        \
    if (no_net()) GTEST_SKIP() << "ENVNWS_TEST_NO_NET=1 set"; \
  } while (0)

simnet::Scenario make_scenario(const std::string& spec) {
  auto made = api::ScenarioRegistry::builtin().make(spec);
  EXPECT_TRUE(made.ok()) << spec;
  return std::move(made.value());
}

/// The replay suite's sensitive drift policy (see
/// tests/monitor/monitord_replay_test.cpp for the cycle arithmetic).
monitor::MonitorOptions drift_test_options() {
  monitor::MonitorOptions options;
  options.drift.relative_error_threshold = 0.2;
  options.drift.window = 4;
  options.drift.min_samples = 2;
  options.drift.cooldown_cycles = 30;
  return options;
}

/// Everything the determinism contract covers, comparable with ==.
struct MonitordRun {
  std::string digest;
  std::string render;
  std::vector<std::string> decisions;
  std::uint64_t measurements = 0;
  std::uint64_t failures = 0;
  std::uint64_t remaps = 0;
  std::vector<std::string> drift_events;  ///< "kind@cycle:segment" lines
};

std::vector<std::string> drift_lines(const std::vector<monitor::MonitorEvent>& events) {
  std::vector<std::string> lines;
  for (const auto& event : events) {
    if (event.kind == monitor::MonitorEvent::Kind::drift_detected ||
        event.kind == monitor::MonitorEvent::Kind::remap_started ||
        event.kind == monitor::MonitorEvent::Kind::remap_finished ||
        event.kind == monitor::MonitorEvent::Kind::remap_failed) {
      lines.push_back(std::string(monitor::to_string(event.kind)) + "@" +
                      std::to_string(event.cycle) + ":" + event.segment);
    }
  }
  return lines;
}

/// Plan under "sim", monitor `cycles` cycles through `monitor_spec` with
/// the scheduler (when given) driving batch dispatch and fold order.
MonitordRun run_monitord(const std::string& scenario_spec, const std::string& monitor_spec,
                         std::uint64_t cycles, monitor::MonitorOptions options,
                         VirtualScheduler* scheduler) {
  MonitordRun run;
  const auto scenario = make_scenario(scenario_spec);
  simnet::Network net(simnet::Scenario(scenario).topology);
  api::Session session(net, scenario);
  EXPECT_TRUE(session.plan().ok());
  EXPECT_TRUE(session.set_probe_engine_spec(monitor_spec).ok()) << monitor_spec;

  options.virtual_scheduler = scheduler;
  auto made = session.make_monitor(options);
  EXPECT_TRUE(made.ok()) << (made.ok() ? "" : made.error().to_string());
  if (!made.ok()) return run;
  auto daemon = std::move(made.value());
  std::vector<monitor::MonitorEvent> events;
  daemon->set_observer([&events](const monitor::MonitorEvent& event) { events.push_back(event); });
  EXPECT_TRUE(daemon->run_cycles(cycles).ok());

  const auto snapshot = daemon->snapshot();
  run.digest = snapshot->digest();
  run.render = snapshot->render();
  run.decisions = daemon->decision_log();
  run.measurements = daemon->measurements();
  run.failures = daemon->probe_failures();
  run.remaps = daemon->remaps();
  run.drift_events = drift_lines(events);
  return run;
}

// --- explorer-driven fold/dispatch orderings --------------------------------

TEST(ExploreMonitor, ExhaustiveCycleDispatchAndFoldOrderIsScheduleInvariant) {
  // dumbbell:3x3 schedules 3 probes per cycle, so with probe_jobs=2 both
  // the batch dispatch ("batch") and the store fold ("monitor-record")
  // genuinely branch: 54 dispatch interleavings x 6 fold orders. One
  // cycle keeps that product small enough to enumerate COMPLETELY.
  monitor::MonitorOptions options;
  options.probe_jobs = 2;
  FifoScheduler fifo;
  const auto baseline = run_monitord("dumbbell:3x3", "sim", 1, options, &fifo);
  ASSERT_FALSE(baseline.digest.empty());
  EXPECT_EQ(baseline.measurements, 3u);

  // The seam is inert when unset: production behavior is the baseline.
  const auto production = run_monitord("dumbbell:3x3", "sim", 1, options, nullptr);
  EXPECT_EQ(production.digest, baseline.digest);
  EXPECT_EQ(production.render, baseline.render);
  EXPECT_EQ(production.decisions, baseline.decisions);

  const ExploreScenario run = [&](VirtualScheduler& scheduler) {
    const auto permuted = run_monitord("dumbbell:3x3", "sim", 1, options, &scheduler);
    if (permuted.digest != baseline.digest || permuted.render != baseline.render) {
      return Status(make_error(ErrorCode::internal, "snapshot digest diverged"));
    }
    if (permuted.decisions != baseline.decisions) {
      return Status(make_error(ErrorCode::internal, "decision log diverged"));
    }
    if (permuted.measurements != baseline.measurements || permuted.failures != 0) {
      return Status(make_error(ErrorCode::internal, "measurements were lost or duplicated"));
    }
    return scheduler.health();
  };

  Explorer explorer;
  const auto result = explorer.explore_exhaustive(run);
  EXPECT_TRUE(result.ok()) << result.failure->message;
  EXPECT_TRUE(result.exhaustive);
  EXPECT_GT(result.schedules, 25u) << "dispatch and fold order must actually branch";
}

TEST(ExploreMonitor, DriftRunSurvivesRandomSchedulesWithIdenticalDecisions) {
  // The full PR 6 acceptance scenario — sustained bandwidth shift, drift
  // detection at cycle 21, one incremental re-map of router-right.lan —
  // under random interleavings of dispatch and fold order. The drift
  // verdicts, the decision log and the published snapshot must not move.
  auto options = drift_test_options();
  options.probe_jobs = 2;
  const std::string spec = "fault:bw#61=scale:0.35@sim";
  FifoScheduler fifo;
  const auto baseline = run_monitord("dumbbell:3x3", spec, 30, options, &fifo);
  ASSERT_EQ(baseline.remaps, 1u);
  ASSERT_FALSE(baseline.drift_events.empty());

  const ExploreScenario run = [&](VirtualScheduler& scheduler) {
    const auto permuted = run_monitord("dumbbell:3x3", spec, 30, options, &scheduler);
    if (permuted.digest != baseline.digest || permuted.render != baseline.render) {
      return Status(make_error(ErrorCode::internal, "snapshot digest diverged"));
    }
    if (permuted.decisions != baseline.decisions) {
      return Status(make_error(ErrorCode::internal, "drift decision log diverged"));
    }
    if (permuted.drift_events != baseline.drift_events || permuted.remaps != baseline.remaps) {
      return Status(make_error(ErrorCode::internal, "drift/remap events diverged"));
    }
    return scheduler.health();
  };

  ExploreOptions explore;
  explore.random_schedules = 10;  // 30 cycles x (dispatch + fold) decisions each
  Explorer explorer(explore);
  const auto result = explorer.explore_random(run);
  EXPECT_TRUE(result.ok()) << result.failure->message;
  EXPECT_EQ(result.schedules, explore.random_schedules);
}

// --- the query-load satellite ----------------------------------------------

/// Map from the committed socket trace, then monitor through `spec` with
/// `clients` loopback query clients continuously issuing SERIES + QUERY
/// for `keys` (gathered from a previous run's snapshot) while the
/// daemon measures.
MonitordRun run_traced_monitord(const std::string& spec, std::uint64_t cycles,
                                std::size_t clients, const std::vector<nws::SeriesKey>& keys,
                                std::vector<nws::SeriesKey>* keys_out = nullptr,
                                std::uint64_t* sweep_cycles_out = nullptr) {
  MonitordRun run;
  const fs::path trace = kTraceDir / "socket-star-6.envtrace";
  EXPECT_TRUE(fs::exists(trace)) << trace;
  const auto scenario = make_scenario("star-switch:6");
  simnet::Network net(simnet::Scenario(scenario).topology);
  api::Session session(net, scenario);
  // The committed recording ran with loopback tuning (see
  // tests/env/trace_engine_test.cpp); strict replay needs the same
  // probe schedule.
  session.options().mapper.probe_bytes = 64 * 1024;
  session.options().mapper.stabilization_gap_s = 0.0;
  session.options().mapper.probe_jobs = 8;
  EXPECT_TRUE(session.set_probe_engine_spec("replay:" + trace.string()).ok());
  EXPECT_TRUE(session.plan().ok());
  EXPECT_TRUE(session.set_probe_engine_spec(spec).ok()) << spec;

  auto made = session.make_monitor(drift_test_options());
  EXPECT_TRUE(made.ok()) << (made.ok() ? "" : made.error().to_string());
  if (!made.ok()) return run;
  auto daemon = std::move(made.value());
  std::vector<monitor::MonitorEvent> events;
  daemon->set_observer([&events](const monitor::MonitorEvent& event) { events.push_back(event); });

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> answers{0};
  std::vector<std::thread> load;
  if (clients > 0) {
    EXPECT_TRUE(daemon->start_query_server("127.0.0.1", 0).ok());
    const std::uint16_t port = daemon->query_port();
    for (std::size_t i = 0; i < clients; ++i) {
      load.emplace_back([port, &done, &answers, &keys] {
        auto client = monitor::QueryClient::connect("127.0.0.1", port);
        if (!client.ok()) return;
        do {  // at least one sweep even if the run already finished
          if (auto summary = client.value().snapshot(); summary.ok()) answers.fetch_add(1);
          for (const auto& key : keys) {
            // Early cycles may not have measured the pair yet; errors
            // are part of the load, not a test failure.
            if (auto points = client.value().series(key, 4); points.ok()) answers.fetch_add(1);
            if (auto answer = client.value().query(key); answer.ok()) answers.fetch_add(1);
          }
        } while (!done.load());
      });
    }
  }

  EXPECT_TRUE(daemon->run_cycles(cycles).ok());
  done.store(true);
  for (auto& thread : load) thread.join();
  if (clients > 0) EXPECT_GT(answers.load(), 0u);

  if (keys_out != nullptr) {
    keys_out->clear();
    for (const auto& pair : daemon->snapshot()->pairs) keys_out->push_back(pair.key);
  }
  if (sweep_cycles_out != nullptr) *sweep_cycles_out = daemon->scheduler().full_sweep_cycles();
  run.digest = daemon->snapshot()->digest();
  run.render = daemon->snapshot()->render();
  run.decisions = daemon->decision_log();
  run.measurements = daemon->measurements();
  run.failures = daemon->probe_failures();
  run.remaps = daemon->remaps();
  run.drift_events = drift_lines(events);
  return run;
}

TEST(ExploreMonitor, DriftRemapTriggersAreIdenticalUnderOneVersusEightSeriesClients) {
  SKIP_WITHOUT_NET();
  // Probes per cycle and the full-sweep length, measured instead of
  // assumed (star-switch plans one clique, but the rotation arithmetic
  // below depends on both exactly).
  std::vector<nws::SeriesKey> keys;
  std::uint64_t sweep = 0;
  const auto probe = run_traced_monitord("sim", 1, 0, {}, &keys, &sweep);
  ASSERT_EQ(probe.failures, 0u);
  ASSERT_FALSE(keys.empty());
  const std::uint64_t per_cycle = probe.measurements;
  ASSERT_GE(per_cycle, 1u);
  ASSERT_GE(sweep, 1u);

  // A sustained shift. A rotating pair's first visit only trains its
  // forecaster; the visit one sweep later records its first (clean)
  // error sample. Scaling every bandwidth probe from cycle 2*sweep on
  // makes each pair's THIRD visit the drifted one — two samples in the
  // window, both sides of min_samples satisfied — so the detector trips
  // within the first scaled cycles and re-maps the star segment.
  const std::uint64_t start = 2 * sweep;
  const std::uint64_t cycles = start + 5;
  std::string rules;
  for (std::uint64_t i = start * per_cycle; i < cycles * per_cycle; ++i) {
    if (!rules.empty()) rules += ",";
    rules += "bw#" + std::to_string(i) + "=scale:0.35";
  }
  const std::string spec = "fault:" + rules + "@sim";

  const auto lone = run_traced_monitord(spec, cycles, 1, keys);
  const auto crowd = run_traced_monitord(spec, cycles, 8, keys);

  // The satellite assertion: the query load — 1 client or 8 hammering
  // SERIES/SNAPSHOT while the daemon measures and re-maps — changes
  // NOTHING about what was measured or decided.
  EXPECT_GE(lone.remaps, 1u) << "the drift re-map never triggered (vacuous run)";
  EXPECT_EQ(crowd.remaps, lone.remaps);
  EXPECT_EQ(crowd.digest, lone.digest);
  EXPECT_EQ(crowd.render, lone.render);
  EXPECT_EQ(crowd.decisions, lone.decisions);
  EXPECT_EQ(crowd.drift_events, lone.drift_events);
  EXPECT_EQ(crowd.measurements, lone.measurements);
  ASSERT_FALSE(lone.drift_events.empty());
}

}  // namespace
}  // namespace envnws::testing
