// Unit tests of the schedule seam itself: scheduler bookkeeping, the
// sched: string codec (including the seeded parser fuzz satellite), the
// explorer's exhaustive DFS, the random sweep, and the shrinker — all
// on synthetic decision trees, no mapper involved.
#include "testing/virtual_scheduler.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "testing/explorer.hpp"

namespace envnws::testing {
namespace {

DecisionPoint point_of(std::size_t fanout, const std::string& name = "test") {
  DecisionPoint point;
  point.point = name;
  for (std::size_t i = 0; i < fanout; ++i) {
    point.ready.push_back(ReadyTask{i, "task #" + std::to_string(i)});
  }
  return point;
}

TEST(VirtualScheduler, RecordsChoicesAndFanouts) {
  ReplayScheduler scheduler({1, 2});
  EXPECT_EQ(scheduler.pick(point_of(2)), 1u);
  EXPECT_EQ(scheduler.pick(point_of(3)), 2u);
  EXPECT_EQ(scheduler.pick(point_of(2)), 0u);  // past the schedule: FIFO
  EXPECT_TRUE(scheduler.health().ok());
  EXPECT_EQ(scheduler.choices(), (std::vector<std::size_t>{1, 2, 0}));
  EXPECT_EQ(scheduler.fanouts(), (std::vector<std::size_t>{2, 3, 2}));
  EXPECT_EQ(scheduler.schedule_string(), "sched:1,2,0");
}

TEST(VirtualScheduler, SingletonReadyListsAreNotDecisions) {
  ReplayScheduler scheduler({1});
  EXPECT_EQ(scheduler.pick(point_of(1)), 0u);
  EXPECT_EQ(scheduler.pick(point_of(2)), 1u);  // the schedule's one entry
  EXPECT_EQ(scheduler.pick(point_of(1)), 0u);
  EXPECT_EQ(scheduler.choices(), (std::vector<std::size_t>{1}));
  EXPECT_TRUE(scheduler.health().ok());
}

TEST(VirtualScheduler, EmptyReadyListIsAFault) {
  FifoScheduler scheduler;
  EXPECT_EQ(scheduler.pick(point_of(0)), 0u);
  EXPECT_FALSE(scheduler.health().ok());
  EXPECT_EQ(scheduler.health().error().code, ErrorCode::internal);
}

TEST(VirtualScheduler, OutOfRangeReplayChoiceIsAFaultAndDegradesToFifo) {
  ReplayScheduler scheduler({5});
  EXPECT_EQ(scheduler.pick(point_of(3)), 0u);
  EXPECT_FALSE(scheduler.health().ok());
  EXPECT_EQ(scheduler.health().error().code, ErrorCode::invalid_argument);
  // Degraded: later picks are FIFO, the first fault stays reported.
  EXPECT_EQ(scheduler.pick(point_of(4)), 0u);
  EXPECT_NE(scheduler.health().error().message.find("chose 5"), std::string::npos);
}

TEST(VirtualScheduler, ProgressWatchdogTripsOnRunawayDecisionLoops) {
  FifoScheduler scheduler;
  scheduler.set_max_decisions(10);
  for (int i = 0; i < 50; ++i) (void)scheduler.pick(point_of(2));
  ASSERT_FALSE(scheduler.health().ok());
  EXPECT_EQ(scheduler.health().error().code, ErrorCode::timeout);
  EXPECT_NE(scheduler.health().error().message.find("watchdog"), std::string::npos);
  EXPECT_EQ(scheduler.choices().size(), 10u);  // recording stopped at the bound
}

TEST(VirtualScheduler, ReportedFaultsAreStickyFirstWins) {
  FifoScheduler scheduler;
  scheduler.report_fault(make_error(ErrorCode::internal, "first"));
  scheduler.report_fault(make_error(ErrorCode::timeout, "second"));
  EXPECT_EQ(scheduler.health().error().message, "first");
}

TEST(VirtualScheduler, RandomSchedulesAreSeedDeterministicAndReplayable) {
  const auto run = [](VirtualScheduler& scheduler) {
    const std::size_t fanouts[] = {4, 2, 5, 3, 2, 6};
    for (const std::size_t fanout : fanouts) (void)scheduler.pick(point_of(fanout));
    return scheduler.choices();
  };
  RandomScheduler a(42);
  RandomScheduler b(42);
  RandomScheduler c(43);
  const auto choices = run(a);
  EXPECT_EQ(run(b), choices);
  EXPECT_NE(run(c), choices);  // (astronomically unlikely to collide)
  // The recorded choices ARE the schedule: replaying them reproduces
  // the run without the seed.
  ReplayScheduler replay(choices);
  EXPECT_EQ(run(replay), choices);
}

// --- sched: string codec ----------------------------------------------------

TEST(ScheduleStrings, FormatAndParseRoundTrip) {
  const std::vector<std::vector<std::size_t>> schedules = {
      {}, {0}, {3, 0, 1}, {1, 2, 3, 4, 5, 0, 0, 9}};
  for (const auto& schedule : schedules) {
    const std::string text = format_schedule(schedule);
    auto parsed = parse_schedule(text);
    ASSERT_TRUE(parsed.ok()) << text;
    EXPECT_EQ(parsed.value(), schedule);
  }
  EXPECT_EQ(format_schedule({}), "sched:");
  EXPECT_EQ(format_schedule({3, 0, 1}), "sched:3,0,1");
}

TEST(ScheduleStrings, MalformedInputsAreResultErrors) {
  const char* bad[] = {
      "",
      "sched",
      "SCHED:1",
      " sched:1",
      "sched:,",
      "sched:1,",
      "sched:,1",
      "sched:1,,2",
      "sched:-1",
      "sched:+1",
      "sched: 1",
      "sched:1 ",
      "sched:0x3",
      "sched:1.5",
      "sched:99999999999999999999999999",  // u64 overflow
      "sched:9999999",                     // over kMaxScheduleChoice
  };
  for (const char* text : bad) {
    auto parsed = parse_schedule(text);
    EXPECT_FALSE(parsed.ok()) << "'" << text << "' should not parse";
    if (!parsed.ok()) EXPECT_EQ(parsed.error().code, ErrorCode::invalid_argument) << text;
  }
}

TEST(ScheduleStrings, SeededFuzzNeverThrows) {
  // The parse.hpp hardening style: throw random bytes at the parser; a
  // malformed schedule is a Result error, never an exception, and an
  // accepted one must round-trip through format_schedule.
  Rng rng(20260808);
  const std::string charset = "0123456789,:-+ schedx\tSCHED.eE_";
  for (int round = 0; round < 5000; ++round) {
    std::string text;
    if (rng.next_below(2) == 0) text = "sched:";  // half with a valid prefix
    const std::size_t length = static_cast<std::size_t>(rng.next_below(24));
    for (std::size_t i = 0; i < length; ++i) {
      text += charset[static_cast<std::size_t>(rng.next_below(charset.size()))];
    }
    Result<std::vector<std::size_t>> parsed = parse_schedule(text);
    if (parsed.ok()) {
      EXPECT_EQ(format_schedule(parsed.value()), text)
          << "accepted schedules must be canonical";
    } else {
      EXPECT_EQ(parsed.error().code, ErrorCode::invalid_argument) << "'" << text << "'";
    }
  }
}

// --- the explorer over synthetic decision trees -----------------------------

/// A scenario that walks `fanouts` as its decision points and fails iff
/// `bad` matches the recorded choices (element-wise; FIFO fills).
ExploreScenario tree_scenario(std::vector<std::size_t> fanouts,
                              std::vector<std::size_t> bad = {}) {
  return [fanouts = std::move(fanouts), bad = std::move(bad)](VirtualScheduler& scheduler) {
    std::vector<std::size_t> taken;
    for (const std::size_t fanout : fanouts) {
      DecisionPoint point;
      point.point = "tree";
      for (std::size_t i = 0; i < fanout; ++i) point.ready.push_back(ReadyTask{i, "t"});
      taken.push_back(scheduler.pick(point));
    }
    if (!bad.empty() && taken == bad) {
      return Status(make_error(ErrorCode::internal, "hit the planted bad interleaving"));
    }
    return Status();
  };
}

TEST(Explorer, ExhaustiveDfsCountsTheFullProduct) {
  Explorer explorer;
  const auto result = explorer.explore_exhaustive(tree_scenario({2, 3, 2}));
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.exhaustive);
  EXPECT_EQ(result.schedules, 2u * 3u * 2u);
  EXPECT_EQ(result.max_decisions, 3u);
}

TEST(Explorer, ExhaustiveDfsOfASingleScheduleTree) {
  // All-singleton trees have exactly one schedule: the canonical run.
  Explorer explorer;
  const auto result = explorer.explore_exhaustive(tree_scenario({1, 1, 1}));
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.exhaustive);
  EXPECT_EQ(result.schedules, 1u);
  EXPECT_EQ(result.max_decisions, 0u);
}

TEST(Explorer, ScheduleCapLeavesExhaustiveFalse) {
  ExploreOptions options;
  options.max_schedules = 5;
  Explorer explorer(options);
  const auto result = explorer.explore_exhaustive(tree_scenario({2, 2, 2, 2}));
  EXPECT_TRUE(result.ok());
  EXPECT_FALSE(result.exhaustive);
  EXPECT_EQ(result.schedules, 5u);
}

TEST(Explorer, ExhaustiveDfsFindsAndShrinksThePlantedFailure) {
  Explorer explorer;
  const auto result = explorer.explore_exhaustive(tree_scenario({2, 2, 2}, {1, 0, 1}));
  ASSERT_FALSE(result.ok());
  // Shrunk: the failing choices with every removable step removed (the
  // trailing FIFO fill of {1,0,1} is not removable here, but the
  // schedule is already minimal at 3 steps).
  EXPECT_EQ(result.failure->schedule, (std::vector<std::size_t>{1, 0, 1}));
  EXPECT_NE(result.failure->message.find("sched:1,0,1"), std::string::npos);
  EXPECT_NE(result.failure->message.find("planted bad interleaving"), std::string::npos);
}

TEST(Explorer, ShrinkDropsTheIrrelevantTail) {
  // Fails whenever the FIRST choice is 1 — everything after is noise.
  const auto scenario = [](VirtualScheduler& scheduler) {
    std::size_t first = 0;
    for (int i = 0; i < 6; ++i) {
      DecisionPoint point;
      point.point = "tree";
      point.ready = {ReadyTask{0, "a"}, ReadyTask{1, "b"}};
      const std::size_t choice = scheduler.pick(point);
      if (i == 0) first = choice;
    }
    if (first == 1) return Status(make_error(ErrorCode::internal, "first choice was 1"));
    return Status();
  };
  Explorer explorer;
  const auto shrunk = explorer.shrink(scenario, {1, 1, 0, 1, 0, 1});
  EXPECT_EQ(shrunk, (std::vector<std::size_t>{1}));
}

TEST(Explorer, RandomSweepFindsFrequentFailuresAndReportsAReproducer) {
  // Fails on half the schedule space: 100 seeded rounds miss it with
  // probability 2^-100.
  const auto scenario = [](VirtualScheduler& scheduler) {
    DecisionPoint point;
    point.point = "tree";
    point.ready = {ReadyTask{0, "a"}, ReadyTask{1, "b"}};
    if (scheduler.pick(point) == 1) {
      return Status(make_error(ErrorCode::internal, "took the racy branch"));
    }
    return Status();
  };
  Explorer explorer;
  const auto result = explorer.explore_random(scenario);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.failure->schedule, (std::vector<std::size_t>{1}));
  EXPECT_NE(result.failure->message.find("sched:1"), std::string::npos);
}

TEST(Explorer, ReplayReproducesAFailureWithoutShrinking) {
  Explorer explorer;
  const auto scenario = tree_scenario({2, 2, 2}, {1, 0, 1});
  ASSERT_FALSE(explorer.replay(scenario, {1, 0, 1}).ok());
  EXPECT_TRUE(explorer.replay(scenario, {0, 0, 0}).ok());
  EXPECT_TRUE(explorer.replay(scenario, {}).ok());  // "sched:" = canonical
}

TEST(Explorer, WatchdogSurfacesRunawayScenariosAsFailures) {
  ExploreOptions options;
  options.max_decisions = 20;
  options.shrink = false;
  Explorer explorer(options);
  const auto runaway = [](VirtualScheduler& scheduler) {
    // A wait loop that never makes progress: decisions forever.
    for (int i = 0; i < 1000 && scheduler.health().ok(); ++i) {
      DecisionPoint point;
      point.point = "spin";
      point.ready = {ReadyTask{0, "a"}, ReadyTask{1, "b"}};
      (void)scheduler.pick(point);
    }
    return Status();
  };
  const auto result = explorer.explore_exhaustive(runaway);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.failure->message.find("watchdog"), std::string::npos);
}

}  // namespace
}  // namespace envnws::testing
